// Command benchgate maintains the repository's benchmark baseline
// (BENCH_7.json) and gates CI on performance regressions against it.
//
// The baseline is a JSON document holding the key `go test -bench`
// results (ns/op, B/op, allocs/op — medians across -count repeats) plus
// the mmbench experiment tables (`cmd/mmbench -json`) measured at the
// same commit. CI re-runs the benchmarks, prints a human-readable
// benchstat comparison (via the fmt subcommand), and fails the build
// when any gated metric regresses past its threshold: ns/op always,
// B/op and allocs/op wherever the baseline recorded them — so the wire
// v2 bytes/alloc wins cannot silently erode.
//
// Usage:
//
//	go test -run '^$' -bench ... -count=5 | benchgate update -o BENCH_7.json -experiments exp.json
//	go test -run '^$' -bench ... -count=5 | benchgate check -baseline BENCH_7.json -max-regress 25 -max-regress-bytes 20 -max-regress-allocs 20
//	benchgate fmt -baseline BENCH_7.json > baseline.txt   # feed benchstat
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "update":
		err = cmdUpdate(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchgate update|check|fmt [flags] [bench-output files...]")
	os.Exit(2)
}

// readBench parses benchmark output from the file args, or stdin when
// none are given.
func readBench(args []string) ([]Benchmark, error) {
	if len(args) == 0 {
		return ParseBench(os.Stdin)
	}
	var all []Benchmark
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		bs, err := ParseBench(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, bs...)
	}
	return Aggregate(all), nil
}

func cmdUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	out := fs.String("o", "BENCH_7.json", "baseline file to write")
	expFile := fs.String("experiments", "", "mmbench -json output to embed (optional)")
	note := fs.String("note", "", "free-form note recorded in the baseline (e.g. benchtime)")
	fs.Parse(args)
	benchmarks, err := readBench(fs.Args())
	if err != nil {
		return err
	}
	if len(benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	base := &Baseline{Schema: baselineSchema, Note: *note, Benchmarks: benchmarks}
	if *expFile != "" {
		raw, err := os.ReadFile(*expFile)
		if err != nil {
			return err
		}
		// Keep the experiment tables verbatim: the baseline stores them
		// for humans and later tooling, the gate only reads Benchmarks.
		if err := json.Unmarshal(raw, &base.Experiments); err != nil {
			return fmt.Errorf("%s: %w", *expFile, err)
		}
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(data, '\n'), 0o644)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	baseFile := fs.String("baseline", "BENCH_7.json", "baseline file to compare against")
	maxRegress := fs.Float64("max-regress", 25, "fail when ns/op regresses more than this percentage")
	maxBytes := fs.Float64("max-regress-bytes", 20, "fail when B/op regresses more than this percentage (negative: report only)")
	maxAllocs := fs.Float64("max-regress-allocs", 20, "fail when allocs/op regresses more than this percentage (negative: report only)")
	fs.Parse(args)
	base, err := LoadBaseline(*baseFile)
	if err != nil {
		return err
	}
	current, err := readBench(fs.Args())
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	report := Compare(base.Benchmarks, current, Thresholds{Ns: *maxRegress, Bytes: *maxBytes, Allocs: *maxAllocs})
	fmt.Print(report.String())
	if len(report.Regressions) > 0 {
		return fmt.Errorf("%d metric(s) regressed past their threshold", len(report.Regressions))
	}
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	baseFile := fs.String("baseline", "BENCH_7.json", "baseline file to render")
	fs.Parse(args)
	base, err := LoadBaseline(*baseFile)
	if err != nil {
		return err
	}
	return WriteBenchFmt(os.Stdout, base.Benchmarks)
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.Schema != baselineSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, base.Schema, baselineSchema)
	}
	return &base, nil
}
