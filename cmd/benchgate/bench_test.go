package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mmconf
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkE12LimiterAcquire 	       3	       458.7 ns/op	      48 B/op	       0 allocs/op
BenchmarkE12LimiterAcquire 	       3	       600.0 ns/op	      50 B/op	       0 allocs/op
BenchmarkE12LimiterAcquire 	       3	       500.0 ns/op	      49 B/op	       0 allocs/op
BenchmarkE12AdmissionRPC/enabled          	       3	   3427006 ns/op	   30354 B/op	     547 allocs/op
BenchmarkE5FanOut/members=16-8	     100	     12345 ns/op
PASS
ok  	mmconf	1.243s
`

func TestParseBench(t *testing.T) {
	bs, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(bs), bs)
	}
	// Aggregate sorts by name.
	if bs[1].Name != "BenchmarkE12LimiterAcquire" {
		t.Fatalf("bs[1] = %q", bs[1].Name)
	}
	if bs[1].Runs != 3 || bs[1].NsPerOp != 500.0 {
		t.Fatalf("median aggregation: runs=%d ns/op=%v, want 3 runs at the 500.0 median", bs[1].Runs, bs[1].NsPerOp)
	}
	if bs[0].Name != "BenchmarkE12AdmissionRPC/enabled" || bs[0].AllocsPerOp != 547 {
		t.Fatalf("bs[0] = %+v", bs[0])
	}
	if bs[2].Name != "BenchmarkE5FanOut/members=16-8" || bs[2].NsPerOp != 12345 {
		t.Fatalf("bs[2] = %+v", bs[2])
	}
}

func TestParseBenchSkipsNonResultLines(t *testing.T) {
	in := "BenchmarkNameOnly\nBenchmarkX-8\t10\t5 MB/s\nBenchmarkY-8\t20\t7.5 ns/op\n"
	bs, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// The bare name and the ns/op-less line are skipped.
	if len(bs) != 1 || bs[0].Name != "BenchmarkY-8" || bs[0].NsPerOp != 7.5 {
		t.Fatalf("parsed %+v, want just BenchmarkY-8", bs)
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{1, 2, 3, 10}); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestCompareGate(t *testing.T) {
	base := []Benchmark{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 100},
	}
	current := []Benchmark{
		{Name: "A", NsPerOp: 124}, // +24%: inside the 25% budget
		{Name: "B", NsPerOp: 130}, // +30%: regressed
		{Name: "Fresh", NsPerOp: 5},
	}
	rep := Compare(base, current, Thresholds{Ns: 25, Bytes: 20, Allocs: 20})
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "B" {
		t.Fatalf("regressions = %+v, want just B", rep.Regressions)
	}
	if len(rep.MissingCurrent) != 1 || rep.MissingCurrent[0] != "Gone" {
		t.Fatalf("missing = %v, want [Gone]", rep.MissingCurrent)
	}
	if len(rep.NewCurrent) != 1 || rep.NewCurrent[0] != "Fresh" {
		t.Fatalf("new = %v, want [Fresh]", rep.NewCurrent)
	}
	out := rep.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "Fresh") {
		t.Fatalf("report output missing markers:\n%s", out)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := []Benchmark{{Name: "A", NsPerOp: 100}}
	current := []Benchmark{{Name: "A", NsPerOp: 20}} // -80%: faster is fine
	if rep := Compare(base, current, Thresholds{Ns: 25, Bytes: 20, Allocs: 20}); len(rep.Regressions) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", rep.Regressions)
	}
}

func TestCompareGatesBytesAndAllocs(t *testing.T) {
	base := []Benchmark{
		{Name: "A", NsPerOp: 100, BPerOp: 1000, AllocsPerOp: 50},
		{Name: "NoMem", NsPerOp: 100}, // no -benchmem record: only ns gated
	}
	current := []Benchmark{
		{Name: "A", NsPerOp: 100, BPerOp: 1500, AllocsPerOp: 80}, // +50% bytes, +60% allocs
		{Name: "NoMem", NsPerOp: 100, BPerOp: 999999, AllocsPerOp: 999},
	}
	rep := Compare(base, current, Thresholds{Ns: 25, Bytes: 20, Allocs: 20})
	var metrics []string
	for _, d := range rep.Regressions {
		metrics = append(metrics, d.Name+" "+d.Metric)
	}
	if len(metrics) != 2 || metrics[0] != "A B/op" || metrics[1] != "A allocs/op" {
		t.Fatalf("regressions = %v, want A's B/op and allocs/op only", metrics)
	}
	// A negative threshold reports without gating.
	rep = Compare(base, current, Thresholds{Ns: 25, Bytes: -1, Allocs: -1})
	if len(rep.Regressions) != 0 {
		t.Fatalf("disabled gates still regressed: %+v", rep.Regressions)
	}
	if len(rep.Deltas) != 4 {
		t.Fatalf("%d deltas, want 4 (ns+B+allocs for A, ns for NoMem)", len(rep.Deltas))
	}
}

func TestWriteBenchFmtRoundTrips(t *testing.T) {
	in := []Benchmark{
		{Name: "BenchmarkA-8", Runs: 1, Iters: 100, NsPerOp: 123.4, BPerOp: 48, AllocsPerOp: 2},
	}
	var sb strings.Builder
	if err := WriteBenchFmt(&sb, in); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].NsPerOp != 123.4 || back[0].BPerOp != 48 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestBaselineUpdateLoadCheck(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	expFile := filepath.Join(dir, "exp.json")
	if err := os.WriteFile(expFile, []byte(`[{"id":"E12","rows":[["protected 3x","84%"]]}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	baseFile := filepath.Join(dir, "BENCH.json")
	if err := cmdUpdate([]string{"-o", baseFile, "-experiments", expFile, "-note", "benchtime=3x", benchTxt}); err != nil {
		t.Fatal(err)
	}

	base, err := LoadBaseline(baseFile)
	if err != nil {
		t.Fatal(err)
	}
	if base.Schema != baselineSchema || len(base.Benchmarks) != 3 || base.Note != "benchtime=3x" {
		t.Fatalf("loaded baseline = %+v", base)
	}
	// The experiment tables survive verbatim.
	raw, err := json.Marshal(base.Experiments)
	if err != nil || !strings.Contains(string(raw), "protected 3x") {
		t.Fatalf("experiments did not round-trip: %s, %v", raw, err)
	}

	// An identical run passes the gate.
	if err := cmdCheck([]string{"-baseline", baseFile, "-max-regress", "25", benchTxt}); err != nil {
		t.Fatalf("identical run failed the gate: %v", err)
	}

	// A 2x-slower run fails it.
	slow := strings.ReplaceAll(sampleOutput, "458.7 ns/op", "45870.0 ns/op")
	slow = strings.ReplaceAll(slow, "600.0 ns/op", "60000.0 ns/op")
	slow = strings.ReplaceAll(slow, "500.0 ns/op", "50000.0 ns/op")
	slowTxt := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowTxt, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{"-baseline", baseFile, "-max-regress", "25", slowTxt}); err == nil {
		t.Fatal("regressed run passed the gate")
	}
}

func TestLoadBaselineRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
