package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// baselineSchema versions the BENCH_6.json format.
const baselineSchema = "mmconf-bench-baseline/v1"

// Baseline is the committed benchmark baseline: the regression gate
// reads Benchmarks; Experiments carries the mmbench tables measured at
// the same commit for humans and later tooling.
type Baseline struct {
	Schema      string      `json:"schema"`
	Note        string      `json:"note,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	Experiments any         `json:"experiments,omitempty"`
}

// Benchmark is one aggregated `go test -bench` result. With -count > 1
// the per-metric values are medians across the repeats — the median is
// robust to the stray slow run that CI machines produce.
type Benchmark struct {
	// Name is the full benchmark id including sub-benchmark path and
	// GOMAXPROCS suffix (e.g. "BenchmarkE5FanOut/members=16-8").
	Name string `json:"name"`
	// Runs counts how many result lines were aggregated.
	Runs int `json:"runs"`
	// Iters is the median iteration count the runs settled on.
	Iters int64 `json:"iters"`
	// NsPerOp, BPerOp and AllocsPerOp are the gated metrics, each with
	// its own regression threshold. B/op and allocs/op are only gated
	// when the baseline recorded them (a benchmark without -benchmem
	// leaves them 0).
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// ParseBench reads `go test -bench` output, returning one aggregated
// Benchmark per name (medians across -count repeats). Non-benchmark
// lines (goos/pkg headers, PASS, ok) are ignored.
func ParseBench(r io.Reader) ([]Benchmark, error) {
	var raw []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			raw = append(raw, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Aggregate(raw), nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1234   456.7 ns/op   48 B/op   0 allocs/op
//
// Reports ok=false for lines that start with "Benchmark" but are not
// results (e.g. a bare name printed before a sub-benchmark runs).
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: fields[0], Runs: 1, Iters: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp, seenNs = v, true
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if !seenNs {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}

// Aggregate folds repeated runs of the same benchmark into one record
// with median metrics, sorted by name for deterministic output.
// Already-aggregated inputs pass through (their Runs counts add up).
func Aggregate(in []Benchmark) []Benchmark {
	byName := make(map[string][]Benchmark)
	var names []string
	for _, b := range in {
		if _, ok := byName[b.Name]; !ok {
			names = append(names, b.Name)
		}
		byName[b.Name] = append(byName[b.Name], b)
	}
	sort.Strings(names)
	out := make([]Benchmark, 0, len(names))
	for _, name := range names {
		runs := byName[name]
		agg := Benchmark{Name: name}
		var ns, bs, allocs []float64
		var iters []float64
		for _, r := range runs {
			agg.Runs += r.Runs
			ns = append(ns, r.NsPerOp)
			bs = append(bs, r.BPerOp)
			allocs = append(allocs, r.AllocsPerOp)
			iters = append(iters, float64(r.Iters))
		}
		agg.NsPerOp = median(ns)
		agg.BPerOp = median(bs)
		agg.AllocsPerOp = median(allocs)
		agg.Iters = int64(median(iters))
		out = append(out, agg)
	}
	return out
}

// median returns the middle value (mean of the middle two for even
// lengths). Empty input returns 0.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Delta is one baseline-vs-current comparison of a single metric.
type Delta struct {
	Name      string
	Metric    string  // "ns/op", "B/op" or "allocs/op"
	Base      float64 // baseline value
	Current   float64 // current value
	Percent   float64 // (current-base)/base * 100; + is worse
	Regressed bool
}

// Thresholds are the per-metric regression budgets in percent. A
// negative threshold disables that metric's gate (the delta is still
// reported).
type Thresholds struct {
	Ns, Bytes, Allocs float64
}

// Report is the outcome of a Compare run.
type Report struct {
	Deltas []Delta
	// Regressions are the deltas past their metric's threshold.
	Regressions []Delta
	// MissingCurrent lists baseline benchmarks absent from the current
	// run (a renamed or deleted benchmark silently escapes the gate, so
	// the report calls it out); NewCurrent lists benchmarks with no
	// baseline entry yet.
	MissingCurrent, NewCurrent []string
}

// Compare evaluates current results against the baseline per metric:
// ns/op always, B/op and allocs/op when the baseline recorded a
// nonzero value — so the gate covers memory traffic, not just latency,
// on the benchmarks that measure it.
func Compare(base, current []Benchmark, th Thresholds) *Report {
	rep := &Report{}
	cur := make(map[string]Benchmark, len(current))
	for _, b := range current {
		cur[b.Name] = b
	}
	seen := make(map[string]bool, len(base))
	for _, b := range base {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			rep.MissingCurrent = append(rep.MissingCurrent, b.Name)
			continue
		}
		rep.add(Delta{Name: b.Name, Metric: "ns/op", Base: b.NsPerOp, Current: c.NsPerOp}, th.Ns)
		if b.BPerOp > 0 {
			rep.add(Delta{Name: b.Name, Metric: "B/op", Base: b.BPerOp, Current: c.BPerOp}, th.Bytes)
		}
		if b.AllocsPerOp > 0 {
			rep.add(Delta{Name: b.Name, Metric: "allocs/op", Base: b.AllocsPerOp, Current: c.AllocsPerOp}, th.Allocs)
		}
	}
	for _, c := range current {
		if !seen[c.Name] {
			rep.NewCurrent = append(rep.NewCurrent, c.Name)
		}
	}
	sort.Strings(rep.MissingCurrent)
	sort.Strings(rep.NewCurrent)
	return rep
}

// add appends one metric delta, gating it against threshold pct.
func (r *Report) add(d Delta, pct float64) {
	if d.Base > 0 {
		d.Percent = (d.Current - d.Base) / d.Base * 100
	}
	d.Regressed = pct >= 0 && d.Percent > pct
	r.Deltas = append(r.Deltas, d)
	if d.Regressed {
		r.Regressions = append(r.Regressions, d)
	}
}

// String renders the report as an aligned table plus notes.
func (r *Report) String() string {
	var sb strings.Builder
	w := 0
	for _, d := range r.Deltas {
		if len(d.Name) > w {
			w = len(d.Name)
		}
	}
	for _, d := range r.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&sb, "%-*s  %14.1f -> %14.1f %-9s  %+7.1f%%%s\n",
			w, d.Name, d.Base, d.Current, d.Metric, d.Percent, mark)
	}
	for _, name := range r.MissingCurrent {
		fmt.Fprintf(&sb, "missing from current run (baseline entry unchecked): %s\n", name)
	}
	for _, name := range r.NewCurrent {
		fmt.Fprintf(&sb, "new benchmark without baseline (run `benchgate update`): %s\n", name)
	}
	return sb.String()
}

// WriteBenchFmt renders benchmarks back into the standard `go test
// -bench` text format benchstat consumes.
func WriteBenchFmt(w io.Writer, benchmarks []Benchmark) error {
	for _, b := range benchmarks {
		iters := b.Iters
		if iters < 1 {
			iters = 1
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.1f ns/op\t%.0f B/op\t%.0f allocs/op\n",
			b.Name, iters, b.NsPerOp, b.BPerOp, b.AllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}
