// Command mmstore inspects and administers a multimedia database
// directory without the interaction server running.
//
// Usage:
//
//	mmstore -data ./mmdata tables            # list relations and row counts
//	mmstore -data ./mmdata types             # show the multimedia-type catalog (Fig. 7)
//	mmstore -data ./mmdata docs              # list stored documents
//	mmstore -data ./mmdata doc <id>          # dump one document's structure and CP-net
//	mmstore -data ./mmdata checkpoint        # snapshot state and truncate the WAL
//	mmstore -data ./mmdata vacuum            # reclaim unreferenced BLOB space
//	mmstore -data ./mmdata stats             # blob-store and WAL health gauges
//	mmstore -data ./mmdata fsck              # verify every blob reference and payload checksum
//	mmstore -data ./mmdata seed <id> [seed]  # populate a synthetic record (fixtures, demos)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mmconf/internal/document"
	"mmconf/internal/mediadb"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

func main() {
	data := flag.String("data", "./mmdata", "database directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mmstore [-data dir] tables|types|docs|doc <id>|checkpoint|vacuum|stats|fsck|seed <id> [seed]")
		os.Exit(2)
	}
	if err := run(*data, args); err != nil {
		log.Fatalf("mmstore: %v", err)
	}
}

func run(data string, args []string) error {
	db, err := store.Open(data, store.Options{Sync: store.SyncNever})
	if err != nil {
		return err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return err
	}
	switch args[0] {
	case "tables":
		for _, name := range db.Tables() {
			tbl, err := db.Table(name)
			if err != nil {
				return err
			}
			n, err := tbl.Len()
			if err != nil {
				return err
			}
			schema, err := tbl.Schema()
			if err != nil {
				return err
			}
			cols := make([]string, len(schema))
			for i, c := range schema {
				cols[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
			}
			fmt.Printf("%-28s %6d rows  (%s)\n", name, n, strings.Join(cols, ", "))
		}
	case "types":
		types, err := m.Types()
		if err != nil {
			return err
		}
		for _, ti := range types {
			fmt.Printf("%-12s %-24s -> %-24s %s\n", ti.Name, ti.MIME, ti.ObjectTable, ti.Description)
		}
	case "docs":
		ids, titles, err := m.ListDocuments()
		if err != nil {
			return err
		}
		for i, id := range ids {
			fmt.Printf("%-20s %s\n", id, titles[i])
		}
	case "doc":
		if len(args) != 2 {
			return fmt.Errorf("usage: mmstore doc <id>")
		}
		doc, err := m.GetDocument(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("document %s — %s\n\ncomponents:\n", doc.ID, doc.Title)
		dumpComponent(doc.Root, 1)
		fmt.Printf("\npreference network:\n%s", doc.Prefs.Text())
		v, err := doc.DefaultPresentation()
		if err != nil {
			return err
		}
		fmt.Printf("\ndefault presentation: %s\n", v.Outcome)
	case "checkpoint":
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("checkpoint written; WAL truncated")
	case "vacuum":
		reclaimed, err := db.CompactBlobs()
		if err != nil {
			return err
		}
		fmt.Printf("blob store compacted; %d bytes reclaimed\n", reclaimed)
	case "stats":
		bs, missing := db.BlobStats()
		appends, syncs := db.WALStats()
		fmt.Printf("blob objects        %d\n", bs.Manifests)
		fmt.Printf("blob chunks         %d\n", bs.Chunks)
		fmt.Printf("blob live bytes     %d\n", bs.LiveBytes)
		fmt.Printf("blob free bytes     %d\n", bs.FreeBytes)
		fmt.Printf("blob on-disk bytes  %d (%d segments)\n", bs.TotalBytes, bs.Segments)
		fmt.Printf("blob dedup hits     %d (%d bytes saved)\n", bs.DedupHits, bs.DedupBytes)
		fmt.Printf("blob hole reuses    %d\n", bs.HoleReuses)
		fmt.Printf("blob compactions    %d (%d bytes moved)\n", bs.Compactions, bs.CompactedBytes)
		fmt.Printf("blob missing refs   %d\n", missing)
		fmt.Printf("wal appends/fsyncs  %d/%d\n", appends, syncs)
		if bs.RebuiltFromScan {
			fmt.Println("note: blob index was rebuilt by segment scan on this open")
		}
		if migrated := db.MigratedBlobs(); migrated > 0 {
			fmt.Printf("note: %d payloads migrated from the legacy heap on this open\n", migrated)
		}
	case "fsck":
		rep, err := db.FsckBlobs()
		if err != nil {
			return err
		}
		fmt.Printf("objects %d  referenced %d  bytes-checked %d\n",
			rep.Objects, rep.Referenced, rep.BytesChecked)
		for _, d := range rep.Missing {
			fmt.Printf("MISSING  %x\n", d)
		}
		for _, d := range rep.Corrupt {
			fmt.Printf("CORRUPT  %x\n", d)
		}
		if rep.Orphans > 0 {
			fmt.Printf("orphaned objects: %d (vacuum reclaims them)\n", rep.Orphans)
		}
		if rep.RefMismatches > 0 {
			fmt.Printf("refcount mismatches: %d (healed on next open)\n", rep.RefMismatches)
		}
		if !rep.Clean() {
			return fmt.Errorf("fsck: store is not clean (%d missing, %d corrupt, %d orphans, %d ref mismatches)",
				len(rep.Missing), len(rep.Corrupt), rep.Orphans, rep.RefMismatches)
		}
		fmt.Println("clean: every reference resolves and every payload matches its digest")
	case "seed":
		if len(args) < 2 || len(args) > 3 {
			return fmt.Errorf("usage: mmstore seed <doc-id> [seed]")
		}
		seed := int64(1)
		if len(args) == 3 {
			if _, err := fmt.Sscanf(args[2], "%d", &seed); err != nil {
				return fmt.Errorf("seed: bad seed %q", args[2])
			}
		}
		rec, err := workload.Populate(m, args[1], seed)
		if err != nil {
			return err
		}
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Printf("seeded document %s (images %d,%d; cmp %d; audio %d)\n",
			args[1], rec.CTID, rec.XrayID, rec.CmpID, rec.VoiceID)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

func dumpComponent(c *document.Component, depth int) {
	indent := strings.Repeat("  ", depth)
	if c.Composite() {
		fmt.Printf("%s%s/ %q\n", indent, c.Name, c.Label)
		for _, ch := range c.Children {
			dumpComponent(ch, depth+1)
		}
		return
	}
	fmt.Printf("%s%s %q\n", indent, c.Name, c.Label)
	for _, p := range c.Presentations {
		loc := "inline"
		if p.ObjectID != 0 {
			loc = fmt.Sprintf("object %d", p.ObjectID)
		}
		fmt.Printf("%s  - %-12s %-16s %-10s ~%d bytes\n", indent, p.Name, p.Kind, loc, p.Bytes)
	}
}
