// Command mmstore inspects and administers a multimedia database
// directory without the interaction server running.
//
// Usage:
//
//	mmstore -data ./mmdata tables            # list relations and row counts
//	mmstore -data ./mmdata types             # show the multimedia-type catalog (Fig. 7)
//	mmstore -data ./mmdata docs              # list stored documents
//	mmstore -data ./mmdata doc <id>          # dump one document's structure and CP-net
//	mmstore -data ./mmdata checkpoint        # snapshot state and truncate the WAL
//	mmstore -data ./mmdata vacuum            # reclaim unreferenced BLOB space
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mmconf/internal/document"
	"mmconf/internal/mediadb"
	"mmconf/internal/store"
)

func main() {
	data := flag.String("data", "./mmdata", "database directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mmstore [-data dir] tables|types|docs|doc <id>|checkpoint|vacuum")
		os.Exit(2)
	}
	if err := run(*data, args); err != nil {
		log.Fatalf("mmstore: %v", err)
	}
}

func run(data string, args []string) error {
	db, err := store.Open(data, store.Options{Sync: store.SyncNever})
	if err != nil {
		return err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return err
	}
	switch args[0] {
	case "tables":
		for _, name := range db.Tables() {
			tbl, err := db.Table(name)
			if err != nil {
				return err
			}
			n, err := tbl.Len()
			if err != nil {
				return err
			}
			schema, err := tbl.Schema()
			if err != nil {
				return err
			}
			cols := make([]string, len(schema))
			for i, c := range schema {
				cols[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
			}
			fmt.Printf("%-28s %6d rows  (%s)\n", name, n, strings.Join(cols, ", "))
		}
	case "types":
		types, err := m.Types()
		if err != nil {
			return err
		}
		for _, ti := range types {
			fmt.Printf("%-12s %-24s -> %-24s %s\n", ti.Name, ti.MIME, ti.ObjectTable, ti.Description)
		}
	case "docs":
		ids, titles, err := m.ListDocuments()
		if err != nil {
			return err
		}
		for i, id := range ids {
			fmt.Printf("%-20s %s\n", id, titles[i])
		}
	case "doc":
		if len(args) != 2 {
			return fmt.Errorf("usage: mmstore doc <id>")
		}
		doc, err := m.GetDocument(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("document %s — %s\n\ncomponents:\n", doc.ID, doc.Title)
		dumpComponent(doc.Root, 1)
		fmt.Printf("\npreference network:\n%s", doc.Prefs.Text())
		v, err := doc.DefaultPresentation()
		if err != nil {
			return err
		}
		fmt.Printf("\ndefault presentation: %s\n", v.Outcome)
	case "checkpoint":
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("checkpoint written; WAL truncated")
	case "vacuum":
		reclaimed, err := db.CompactBlobs()
		if err != nil {
			return err
		}
		fmt.Printf("blob heap compacted; %d bytes reclaimed\n", reclaimed)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

func dumpComponent(c *document.Component, depth int) {
	indent := strings.Repeat("  ", depth)
	if c.Composite() {
		fmt.Printf("%s%s/ %q\n", indent, c.Name, c.Label)
		for _, ch := range c.Children {
			dumpComponent(ch, depth+1)
		}
		return
	}
	fmt.Printf("%s%s %q\n", indent, c.Name, c.Label)
	for _, p := range c.Presentations {
		loc := "inline"
		if p.ObjectID != 0 {
			loc = fmt.Sprintf("object %d", p.ObjectID)
		}
		fmt.Printf("%s  - %-12s %-16s %-10s ~%d bytes\n", indent, p.Name, p.Kind, loc, p.Bytes)
	}
}
