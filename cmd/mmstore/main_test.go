package main

import (
	"testing"

	"mmconf/internal/mediadb"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// populated creates a database directory with one record.
func populated(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(m, "patient-001", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunSubcommands(t *testing.T) {
	dir := populated(t)
	for _, args := range [][]string{
		{"tables"},
		{"types"},
		{"docs"},
		{"doc", "patient-001"},
		{"checkpoint"},
		{"vacuum"},
	} {
		if err := run(dir, args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := populated(t)
	if err := run(dir, []string{"nosuch"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(dir, []string{"doc"}); err == nil {
		t.Error("doc without id accepted")
	}
	if err := run(dir, []string{"doc", "missing"}); err == nil {
		t.Error("missing document accepted")
	}
}
