package main

import (
	"os"
	"path/filepath"
	"testing"

	"mmconf/internal/mediadb"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// populated creates a database directory with one record.
func populated(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(m, "patient-001", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunSubcommands(t *testing.T) {
	dir := populated(t)
	for _, args := range [][]string{
		{"tables"},
		{"types"},
		{"docs"},
		{"doc", "patient-001"},
		{"checkpoint"},
		{"vacuum"},
		{"stats"},
		{"fsck"},
		{"seed", "patient-002", "7"},
	} {
		if err := run(dir, args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	// The seeded record is queryable afterwards.
	if err := run(dir, []string{"doc", "patient-002"}); err != nil {
		t.Errorf("doc after seed: %v", err)
	}
}

// TestFsckFlagsCorruption flips payload bytes inside a blob segment and
// checks fsck reports the store unclean.
func TestFsckFlagsCorruption(t *testing.T) {
	dir := populated(t)
	segs, err := filepath.Glob(filepath.Join(dir, "cas", "seg-*.blk"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no blob segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Smash bytes well inside the first block's payload, past the header.
	if _, err := f.WriteAt([]byte("XXXXXXXX"), 200); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// The segment scan on open already quarantines the mangled chunk, or
	// fsck's payload verification catches it — either way the run must
	// not report a clean store.
	if err := run(dir, []string{"fsck"}); err == nil {
		t.Error("fsck passed over a corrupted segment")
	}
}

func TestRunErrors(t *testing.T) {
	dir := populated(t)
	if err := run(dir, []string{"nosuch"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(dir, []string{"doc"}); err == nil {
		t.Error("doc without id accepted")
	}
	if err := run(dir, []string{"doc", "missing"}); err == nil {
		t.Error("missing document accepted")
	}
}
