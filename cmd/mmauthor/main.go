// Command mmauthor is the document author's toolbench (the "advanced
// authoring tool" of the paper's future work, §6).
//
// Usage:
//
//	mmauthor check <prefs.cpn>             # parse + validate a CP-net text file
//	mmauthor -data ./mmdata lint <docID>   # lint a stored document's preferences
//	mmauthor -data ./mmdata review <docID> # print the click-reaction review table
//	mmauthor -data ./mmdata net <docID>    # dump the document's CP-net as text
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mmconf/internal/author"
	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/mediadb"
	"mmconf/internal/store"
)

func main() {
	data := flag.String("data", "./mmdata", "database directory (for lint/review/net)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mmauthor [-data dir] check <file> | lint <docID> | review <docID> | net <docID>")
		os.Exit(2)
	}
	if err := run(*data, args); err != nil {
		log.Fatalf("mmauthor: %v", err)
	}
}

func run(data string, args []string) error {
	switch args[0] {
	case "check":
		if len(args) != 2 {
			return fmt.Errorf("usage: mmauthor check <prefs.cpn>")
		}
		f, err := os.Open(args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := cpnet.ParseText(f)
		if err != nil {
			return err
		}
		opt, err := n.OptimalOutcome()
		if err != nil {
			return err
		}
		fmt.Printf("ok: %d variables, %d outcomes in the configuration space\n", n.Len(), n.OutcomeCount())
		fmt.Printf("optimal outcome: %s\n", opt)
		return nil
	case "lint", "review", "net":
		if len(args) != 2 {
			return fmt.Errorf("usage: mmauthor %s <docID>", args[0])
		}
		doc, closeDB, err := loadDoc(data, args[1])
		if err != nil {
			return err
		}
		defer closeDB()
		switch args[0] {
		case "lint":
			findings, err := author.Lint(doc)
			if err != nil {
				return err
			}
			if len(findings) == 0 {
				fmt.Println("no findings")
				return nil
			}
			for _, f := range findings {
				fmt.Println(f)
			}
			return nil
		case "review":
			table, err := author.ReviewTable(doc)
			if err != nil {
				return err
			}
			fmt.Print(table)
			return nil
		default: // net
			fmt.Print(doc.Prefs.Text())
			return nil
		}
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadDoc(data, docID string) (*document.Document, func(), error) {
	db, err := store.Open(data, store.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, nil, err
	}
	m, err := mediadb.Open(db)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	doc, err := m.GetDocument(docID)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	return doc, func() { db.Close() }, nil
}
