package main

import (
	"os"
	"path/filepath"
	"testing"

	"mmconf/internal/mediadb"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

func populated(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(m, "patient-001", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunStoredDocumentCommands(t *testing.T) {
	dir := populated(t)
	for _, args := range [][]string{
		{"lint", "patient-001"},
		{"review", "patient-001"},
		{"net", "patient-001"},
	} {
		if err := run(dir, args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run(dir, []string{"lint", "missing"}); err == nil {
		t.Error("missing document accepted")
	}
	if err := run(dir, []string{"lint"}); err == nil {
		t.Error("lint without id accepted")
	}
	if err := run(dir, []string{"frobnicate", "x"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestRunCheck(t *testing.T) {
	good := filepath.Join(t.TempDir(), "prefs.cpn")
	if err := os.WriteFile(good, []byte("var x { a b }\npref x : a > b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", []string{"check", good}); err != nil {
		t.Errorf("check(good): %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.cpn")
	if err := os.WriteFile(bad, []byte("var x { a b }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", []string{"check", bad}); err == nil {
		t.Error("incomplete network accepted")
	}
	if err := run("", []string{"check", "/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("", []string{"check"}); err == nil {
		t.Error("check without file accepted")
	}
}
