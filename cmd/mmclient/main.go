// Command mmclient is a line-oriented client module for the conferencing
// system: it joins a shared room, prints every propagated room event, and
// accepts interactive commands.
//
// Usage:
//
//	mmclient -addr 127.0.0.1:7070 -user dr-adams -room consult -doc patient-001
//
// -addr accepts a comma-separated endpoint list when the servers run as
// a cluster (DESIGN.md §12): redirects from the routing tier are
// followed transparently, and a dead node rotates to the next endpoint.
//
// Commands on stdin:
//
//	docs                          list stored documents
//	view                          show the current presentation
//	tree                          show the document's component hierarchy
//	choice <variable> <value>     pick a presentation (empty value retracts)
//	op <component> <op> <when>    apply a shared media operation
//	opp <component> <op> <when>   apply a private media operation
//	text <objID> <x> <y> <txt>    write a text element on an image
//	line <objID> <x1 y1 x2 y2>    draw a line element
//	del <objID> <annID>           delete an annotation
//	freeze <objID> / release <objID>
//	bcast start|stop              take or release the presentation floor
//	save                          persist the discussion minutes into the document
//	chat <message>
//	history                       replay the room's change buffer
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/document"
	"mmconf/internal/room"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "interaction server address (comma-separated list for cluster endpoints)")
	user := flag.String("user", "viewer", "user name")
	roomName := flag.String("room", "consult", "shared room to join")
	docID := flag.String("doc", "", "document id (required for the first joiner)")
	buffer := flag.Int64("buffer", 4<<20, "client prefetch buffer bytes (0 disables)")
	reconnect := flag.Bool("reconnect", true, "redial and resume the session after a dropped connection")
	retries := flag.Int("retries", 8, "redial attempts per outage (-1: unlimited)")
	callTimeout := flag.Duration("call-timeout", 30*time.Second, "per-call deadline (0: unbounded)")
	flag.Parse()

	opts := client.Options{
		Reconnect:   *reconnect,
		MaxAttempts: *retries,
		CallTimeout: *callTimeout,
	}
	if err := run(*addr, *user, *roomName, *docID, *buffer, opts); err != nil {
		log.Fatalf("mmclient: %v", err)
	}
}

func run(addr, user, roomName, docID string, buffer int64, opts client.Options) error {
	// Every request is bounded by this context: Ctrl-C aborts a call in
	// flight (the server abandons the work too) and ends the session.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, err := client.NewOverResolver(nil, strings.Split(addr, ","), user, opts)
	if err != nil {
		return err
	}
	defer c.Close()

	session, history, err := c.JoinCtx(ctx, roomName, docID, buffer)
	if err != nil {
		return err
	}
	fmt.Printf("joined room %q as %s — document %q (%d components)\n",
		roomName, user, session.Doc.ID, len(session.Doc.Components()))
	for _, ev := range history {
		printEvent(user, ev)
	}
	printView(session.View())

	go func() {
		for ev := range c.Events() {
			session.ApplyEvent(ev)
			printEvent(user, ev)
			if ev.Kind == room.EvShutdown {
				fmt.Println("server is shutting down; session over")
				stop()
				os.Exit(0)
			}
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if ctx.Err() != nil {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			break
		}
		if line != "" {
			if err := execute(ctx, c, session, line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		fmt.Print("> ")
	}
	// Leave with its own short deadline: the session context may already
	// be cancelled when we got here via Ctrl-C.
	lctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return session.LeaveCtx(lctx)
}

func execute(ctx context.Context, c *client.Client, s *client.Session, line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "docs":
		ids, titles, err := c.ListDocumentsCtx(ctx)
		if err != nil {
			return err
		}
		for i, id := range ids {
			fmt.Printf("  %-16s %s\n", id, titles[i])
		}
	case "view":
		printView(s.View())
	case "tree":
		printTree(s.Doc.Root, 0)
	case "choice":
		if len(args) < 1 {
			return fmt.Errorf("usage: choice <variable> [value]")
		}
		value := ""
		if len(args) > 1 {
			value = args[1]
		}
		return s.ChoiceCtx(ctx, args[0], value)
	case "op", "opp":
		if len(args) != 3 {
			return fmt.Errorf("usage: %s <component> <operation> <active-when>", cmd)
		}
		derived, err := s.OperationCtx(ctx, args[0], args[1], args[2], cmd == "opp")
		if err != nil {
			return err
		}
		fmt.Printf("derived variable: %s\n", derived)
	case "text":
		if len(args) < 4 {
			return fmt.Errorf("usage: text <objectID> <x> <y> <text...>")
		}
		id, x, y, err := parse3(args)
		if err != nil {
			return err
		}
		annID, err := s.AnnotateText(id, x, y, strings.Join(args[3:], " "), 1.0)
		if err != nil {
			return err
		}
		fmt.Printf("annotation %d\n", annID)
	case "line":
		if len(args) != 5 {
			return fmt.Errorf("usage: line <objectID> <x1> <y1> <x2> <y2>")
		}
		id, x1, y1, err := parse3(args)
		if err != nil {
			return err
		}
		x2, err1 := strconv.Atoi(args[3])
		y2, err2 := strconv.Atoi(args[4])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad coordinates")
		}
		annID, err := s.AnnotateLine(id, x1, y1, x2, y2, 1.0)
		if err != nil {
			return err
		}
		fmt.Printf("annotation %d\n", annID)
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: del <objectID> <annotationID>")
		}
		obj, err1 := strconv.ParseUint(args[0], 10, 64)
		ann, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad ids")
		}
		return s.DeleteAnnotation(obj, ann)
	case "freeze", "release":
		if len(args) != 1 {
			return fmt.Errorf("usage: %s <objectID>", cmd)
		}
		obj, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad object id")
		}
		if cmd == "freeze" {
			return s.Freeze(obj)
		}
		return s.Release(obj)
	case "save":
		comp, err := s.SaveMinutes()
		if err != nil {
			return err
		}
		fmt.Printf("discussion minutes saved as component %q\n", comp)
	case "bcast":
		if len(args) != 1 || (args[0] != "start" && args[0] != "stop") {
			return fmt.Errorf("usage: bcast start|stop")
		}
		if args[0] == "start" {
			return s.StartBroadcast()
		}
		return s.StopBroadcast()
	case "chat":
		return s.ChatCtx(ctx, strings.Join(args, " "))
	case "history":
		evs, err := s.HistoryCtx(ctx, 0)
		if err != nil {
			return err
		}
		for _, ev := range evs {
			printEvent("", ev)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

func parse3(args []string) (uint64, int, int, error) {
	id, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad object id %q", args[0])
	}
	x, err := strconv.Atoi(args[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad x %q", args[1])
	}
	y, err := strconv.Atoi(args[2])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad y %q", args[2])
	}
	return id, x, y, nil
}

func printView(v document.View) {
	if v.Outcome == nil {
		fmt.Println("  (no presentation yet)")
		return
	}
	keys := make([]string, 0, len(v.Outcome))
	for k := range v.Outcome {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("current presentation:")
	for _, k := range keys {
		vis := ""
		if shown, ok := v.Visible[k]; ok && !shown {
			vis = "  [not visible]"
		}
		fmt.Printf("  %-24s %s%s\n", k, v.Outcome[k], vis)
	}
}

func printTree(c *document.Component, depth int) {
	indent := strings.Repeat("  ", depth)
	if c.Composite() {
		fmt.Printf("%s%s/ (%s)\n", indent, c.Name, c.Label)
		for _, ch := range c.Children {
			printTree(ch, depth+1)
		}
		return
	}
	var alts []string
	for _, p := range c.Presentations {
		alts = append(alts, p.Name)
	}
	fmt.Printf("%s%s (%s) — %s\n", indent, c.Name, c.Label, strings.Join(alts, " | "))
}

func printEvent(self string, ev room.Event) {
	switch ev.Kind {
	case room.EvPresentation:
		if ev.Actor == self {
			fmt.Printf("[%d] presentation updated\n", ev.Seq)
		}
	case room.EvChoice:
		fmt.Printf("[%d] %s chose %s = %s\n", ev.Seq, ev.Actor, ev.Variable, ev.Value)
	case room.EvOperation:
		scope := "shared"
		if ev.Private {
			scope = "private"
		}
		fmt.Printf("[%d] %s applied %s on %s (%s) -> %s\n",
			ev.Seq, ev.Actor, ev.Op, ev.Component, scope, ev.DerivedVar)
	case room.EvAnnotate:
		fmt.Printf("[%d] %s annotated object %d: %s\n", ev.Seq, ev.Actor, ev.ObjectID, ev.Annotation.Text)
	case room.EvDeleteAnnotation:
		fmt.Printf("[%d] %s deleted annotation %d on object %d\n", ev.Seq, ev.Actor, ev.AnnotationID, ev.ObjectID)
	case room.EvFreeze:
		fmt.Printf("[%d] %s froze object %d\n", ev.Seq, ev.Actor, ev.ObjectID)
	case room.EvRelease:
		fmt.Printf("[%d] %s released object %d\n", ev.Seq, ev.Actor, ev.ObjectID)
	case room.EvWordSearch, room.EvSpeakerSearch:
		fmt.Printf("[%d] %s searched %q: %d hit(s)\n", ev.Seq, ev.Actor, ev.Keyword, len(ev.Hits))
	case room.EvChat:
		fmt.Printf("[%d] <%s> %s\n", ev.Seq, ev.Actor, ev.Text)
	case room.EvBroadcastStart:
		fmt.Printf("[%d] %s is now presenting; the floor is theirs\n", ev.Seq, ev.Actor)
	case room.EvBroadcastStop:
		fmt.Printf("[%d] broadcast ended\n", ev.Seq)
	case room.EvJoin:
		fmt.Printf("[%d] %s joined\n", ev.Seq, ev.Actor)
	case room.EvLeave:
		fmt.Printf("[%d] %s left\n", ev.Seq, ev.Actor)
	case room.EvShutdown:
		fmt.Printf("[%d] server announced shutdown\n", ev.Seq)
	}
}
