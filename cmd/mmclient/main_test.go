package main

import (
	"context"
	"fmt"
	"net"
	"testing"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// session boots an in-process system and returns a joined session.
func session(t *testing.T) (*client.Client, *client.Session, *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(m)
	t.Cleanup(func() { srv.Close() })
	sc, cc := net.Pipe()
	go srv.ServeConn(sc)
	c, err := client.NewOverConn(cc, "tester")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s, _, err := c.Join("t", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, rec
}

func TestExecuteCommands(t *testing.T) {
	c, s, rec := session(t)
	obj := rec.CTID
	commands := []string{
		"docs",
		"view",
		"tree",
		"choice ct segmented",
		"choice ct",
		"op ct zoom full",
		"opp ct segmentation segmented",
		fmt.Sprintf("text %d 5 5 note here", obj),
		fmt.Sprintf("line %d 0 0 9 9", obj),
		fmt.Sprintf("freeze %d", obj),
		fmt.Sprintf("release %d", obj),
		"bcast start",
		"bcast stop",
		"chat hello room",
		"save",
		"history",
	}
	for _, cmd := range commands {
		if err := execute(context.Background(), c, s, cmd); err != nil {
			t.Errorf("execute(%q): %v", cmd, err)
		}
	}
}

func TestExecuteDeleteAnnotation(t *testing.T) {
	c, s, rec := session(t)
	annID, err := s.AnnotateText(rec.CTID, 1, 1, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := execute(context.Background(), c, s, fmt.Sprintf("del %d %d", rec.CTID, annID)); err != nil {
		t.Errorf("del: %v", err)
	}
}

func TestExecuteErrors(t *testing.T) {
	c, s, _ := session(t)
	bad := []string{
		"unknowncmd",
		"choice",
		"op ct zoom",
		"text 1 2",
		"text x 1 1 t",
		"line 1 2 3",
		"line x 0 0 1 1",
		"del 1",
		"del x y",
		"freeze",
		"freeze notanumber",
		"bcast",
		"bcast sideways",
		"choice nosuchvar value",
	}
	for _, cmd := range bad {
		if err := execute(context.Background(), c, s, cmd); err == nil {
			t.Errorf("execute(%q) accepted", cmd)
		}
	}
}
