package main

import (
	"testing"

	"mmconf/internal/mediadb"
	"mmconf/internal/server"
	"mmconf/internal/store"
)

func TestRunRejectsBadSyncMode(t *testing.T) {
	if err := run("127.0.0.1:0", t.TempDir(), 0, "sometimes", "", server.Options{}); err == nil {
		t.Fatal("bad sync mode accepted")
	}
}

func TestRunRejectsBadDebugAddr(t *testing.T) {
	// The main listener binds fine; the debug listener's bad address must
	// fail the run before serving starts.
	if err := run("127.0.0.1:0", t.TempDir(), 0, "never", "999.999.999.999:99999", server.Options{}); err == nil {
		t.Fatal("bad debug address accepted")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	// Flag values flow into server.Options; nonsense must fail run with
	// the validation error, not start a misconfigured server.
	if err := run("127.0.0.1:0", t.TempDir(), 0, "never", "", server.Options{PerPeerRate: -1}); err == nil {
		t.Fatal("negative per-peer rate accepted")
	}
}

func TestRunPopulatesEmptyDatabase(t *testing.T) {
	dir := t.TempDir()
	// An unlistenable address makes run return right after the populate
	// phase, leaving the seeded database behind for inspection.
	err := run("999.999.999.999:99999", dir, 2, "never", "", server.Options{})
	if err == nil {
		t.Fatal("invalid listen address accepted")
	}
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := m.ListDocuments()
	if err != nil || len(ids) != 2 {
		t.Fatalf("seeded documents = %v, %v; want 2", ids, err)
	}
	// A second run against the same data dir must not duplicate records
	// (it only seeds when empty).
	if err := run("999.999.999.999:99999", dir, 2, "never", "", server.Options{}); err == nil {
		t.Fatal("invalid listen address accepted on rerun")
	}
	db2, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	m2, err := mediadb.Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := m2.ListDocuments()
	if err != nil || len(ids2) != 2 {
		t.Fatalf("documents after rerun = %v, %v; want 2 (no reseeding)", ids2, err)
	}
}
