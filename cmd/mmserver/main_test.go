package main

import (
	"testing"

	"mmconf/internal/mediadb"
	"mmconf/internal/server"
	"mmconf/internal/store"
)

func TestRunRejectsBadSyncMode(t *testing.T) {
	if err := run("127.0.0.1:0", t.TempDir(), 0, "sometimes", "", server.Options{}, clusterConfig{}); err == nil {
		t.Fatal("bad sync mode accepted")
	}
}

func TestRunRejectsBadDebugAddr(t *testing.T) {
	// The main listener binds fine; the debug listener's bad address must
	// fail the run before serving starts.
	if err := run("127.0.0.1:0", t.TempDir(), 0, "never", "999.999.999.999:99999", server.Options{}, clusterConfig{}); err == nil {
		t.Fatal("bad debug address accepted")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	// Flag values flow into server.Options; nonsense must fail run with
	// the validation error, not start a misconfigured server.
	if err := run("127.0.0.1:0", t.TempDir(), 0, "never", "", server.Options{PerPeerRate: -1}, clusterConfig{}); err == nil {
		t.Fatal("negative per-peer rate accepted")
	}
}

func TestRunPopulatesEmptyDatabase(t *testing.T) {
	dir := t.TempDir()
	// An unlistenable address makes run return right after the populate
	// phase, leaving the seeded database behind for inspection.
	err := run("999.999.999.999:99999", dir, 2, "never", "", server.Options{}, clusterConfig{})
	if err == nil {
		t.Fatal("invalid listen address accepted")
	}
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := m.ListDocuments()
	if err != nil || len(ids) != 2 {
		t.Fatalf("seeded documents = %v, %v; want 2", ids, err)
	}
	// A second run against the same data dir must not duplicate records
	// (it only seeds when empty).
	if err := run("999.999.999.999:99999", dir, 2, "never", "", server.Options{}, clusterConfig{}); err == nil {
		t.Fatal("invalid listen address accepted on rerun")
	}
	db2, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	m2, err := mediadb.Open(db2)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := m2.ListDocuments()
	if err != nil || len(ids2) != 2 {
		t.Fatalf("documents after rerun = %v, %v; want 2 (no reseeding)", ids2, err)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n2=host2:7070, n3=host3:7070")
	if err != nil || len(peers) != 2 || peers["n2"] != "host2:7070" || peers["n3"] != "host3:7070" {
		t.Fatalf("parsePeers = %v, %v", peers, err)
	}
	for _, bad := range []string{"n2", "n2=", "=addr", "n2=a,n2=b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestRunClusterNode(t *testing.T) {
	// A single-node "cluster" (no peers) must come up through the cluster
	// construction path; a bad sync mode must still fail first.
	cl := clusterConfig{id: "n1", peers: map[string]string{}}
	if err := run("127.0.0.1:0", t.TempDir(), 0, "sometimes", "", server.Options{}, cl); err == nil {
		t.Fatal("bad sync mode accepted on cluster path")
	}
	if err := run("999.999.999.999:99999", t.TempDir(), 0, "never", "", server.Options{}, cl); err == nil {
		t.Fatal("invalid listen address accepted on cluster path")
	}
}
