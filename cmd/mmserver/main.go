// Command mmserver runs the interaction server of the conferencing
// system: it opens (or initializes) the multimedia database and serves
// clients over TCP.
//
// Usage:
//
//	mmserver -addr :7070 -data ./mmdata -seed 3 -debug-addr 127.0.0.1:7071
//
// -seed N populates the database with N synthetic medical records when it
// is empty, so a fresh deployment has material to conference over.
// -node-id and -peers run the server as one member of a room-sharded
// cluster (see DESIGN.md §12):
//
//	mmserver -addr host1:7070 -node-id n1 -peers n2=host2:7070,n3=host3:7070
//
// Every node needs the same -peers view of the others and (for exact
// failover replay) an equivalently seeded database. -forward relays
// wrong-node requests to the room's owner instead of redirecting.
// -debug-addr starts an HTTP listener serving /debug/metrics (JSON
// snapshot of per-method latency percentiles, counters and gauges),
// /debug/traces (recent slow/errored request traces, ?id= filters) and
// /debug/pprof. Leave it empty (the default) to disable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mmconf/internal/cluster"
	"mmconf/internal/mediadb"
	"mmconf/internal/obs"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	data := flag.String("data", "./mmdata", "database directory")
	seed := flag.Int("seed", 2, "synthetic records to create if the database is empty")
	sync := flag.String("sync", "group", "WAL durability: always | group | never")
	debugAddr := flag.String("debug-addr", "", "debug HTTP listen address (metrics, traces, pprof); empty disables")
	maxInflight := flag.Int("max-inflight", 0, "admission control: concurrent request cap (0: default 1024, negative: disabled)")
	queueDepth := flag.Int("queue-depth", 0, "admission control: wait-queue bound once the cap is reached (0: default 128)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: max time a request waits for a slot before being shed (0: default 1s, negative: wait as long as the request allows)")
	shedPolicy := flag.String("shed-policy", "priority", "admission control: queue-full shedding policy: priority | fifo")
	peerRate := flag.Float64("peer-rate", 0, "per-connection sustained request rate limit in req/s (0: unlimited)")
	peerBurst := flag.Int("peer-burst", 0, "per-connection burst allowance on top of -peer-rate (0: derived from the rate)")
	pushBudget := flag.Int64("push-budget", 0, "per-member event-queue byte budget; slow consumers over it get a Resync hint (0: default 1MiB, negative: unbounded)")
	qosInterval := flag.Duration("qos-interval", 0, "adaptive QoS control period: per-member bandwidth estimation, CP-net tuning and push-prefetch (0: default 500ms, negative: disabled)")
	prefetchBudget := flag.Int64("prefetch-budget", 0, "per-session byte allowance for QoS push-prefetch (0: default 256KiB, negative: disabled)")
	nodeID := flag.String("node-id", "", "cluster node id; empty runs a standalone server")
	peers := flag.String("peers", "", "cluster peers as id=addr,id=addr (requires -node-id); -addr must be reachable by peers and clients, it is advertised in redirects")
	forward := flag.Bool("forward", false, "cluster: relay wrong-node requests to the owner instead of redirecting (protocol-v2 clients)")
	flag.Parse()

	var policy wire.ShedPolicy
	switch *shedPolicy {
	case "priority":
		policy = wire.ShedByPriority
	case "fifo":
		policy = wire.ShedFIFO
	default:
		log.Fatalf("mmserver: unknown -shed-policy %q (want priority or fifo)", *shedPolicy)
	}
	opts := server.Options{
		MaxInflight:      *maxInflight,
		QueueDepth:       *queueDepth,
		QueueTimeout:     *queueTimeout,
		ShedPolicy:       policy,
		PerPeerRate:      *peerRate,
		PerPeerBurst:     *peerBurst,
		MemberPushBudget: *pushBudget,
		QoSInterval:      *qosInterval,
		PrefetchBudget:   *prefetchBudget,
	}
	cl := clusterConfig{id: *nodeID, forward: *forward}
	if *nodeID != "" {
		var err error
		if cl.peers, err = parsePeers(*peers); err != nil {
			log.Fatalf("mmserver: %v", err)
		}
	} else if *peers != "" {
		log.Fatalf("mmserver: -peers requires -node-id")
	}
	if err := run(*addr, *data, *seed, *sync, *debugAddr, opts, cl); err != nil {
		log.Fatalf("mmserver: %v", err)
	}
}

// clusterConfig is the parsed cluster flag set; a zero id means
// standalone.
type clusterConfig struct {
	id      string
	peers   map[string]string
	forward bool
}

// parsePeers parses "id=addr,id=addr".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=addr)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q in -peers", id)
		}
		peers[id] = addr
	}
	return peers, nil
}

func run(addr, data string, seed int, syncMode, debugAddr string, opts server.Options, cl clusterConfig) error {
	var mode store.SyncMode
	switch syncMode {
	case "always":
		mode = store.SyncAlways
	case "group":
		mode = store.SyncGroup
	case "never":
		mode = store.SyncNever
	default:
		return fmt.Errorf("unknown sync mode %q", syncMode)
	}
	db, err := store.Open(data, store.Options{Sync: mode})
	if err != nil {
		return err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return err
	}
	ids, _, err := m.ListDocuments()
	if err != nil {
		return err
	}
	if len(ids) == 0 && seed > 0 {
		log.Printf("empty database: populating %d synthetic medical records", seed)
		for i := 0; i < seed; i++ {
			id := fmt.Sprintf("patient-%03d", i+1)
			if _, err := workload.Populate(m, id, int64(i+1)); err != nil {
				return fmt.Errorf("populating %s: %w", id, err)
			}
			log.Printf("  stored %s", id)
		}
		if err := db.Checkpoint(); err != nil {
			return err
		}
	}

	var srv *server.Server
	var node *cluster.Node
	if cl.id != "" {
		node, err = cluster.New(m, opts, cluster.Config{
			ID:      cl.id,
			Addr:    addr,
			Peers:   cl.peers,
			Forward: cl.forward,
		})
		if err != nil {
			return err
		}
		srv = node.Server()
	} else {
		srv, err = server.NewWith(m, opts)
		if err != nil {
			return err
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if node != nil {
		log.Printf("cluster node %s listening on %s (peers: %d, forward: %v, data: %s)",
			cl.id, l.Addr(), len(cl.peers), cl.forward, data)
	} else {
		log.Printf("interaction server listening on %s (data: %s)", l.Addr(), data)
	}

	if debugAddr != "" {
		dl, err := net.Listen("tcp", debugAddr)
		if err != nil {
			l.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dl.Close()
		mux := obs.NewDebugMux(func() any { return srv.MetricsSnapshot() }, srv.Tracer())
		go func() {
			if err := http.Serve(dl, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("debug server stopped: %v", err)
			}
		}()
		log.Printf("debug server listening on http://%s/debug/metrics (traces, pprof)", dl.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if node != nil {
			// Cluster drain: rooms hand off to their post-drain owners
			// first, so members reconnect and resume elsewhere.
			log.Printf("signal received: draining (handing rooms off to peers, 10s budget)")
			if err := node.Drain(sctx); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
		} else {
			log.Printf("signal received: draining (announcing shutdown to rooms, 10s budget)")
			if err := srv.Shutdown(sctx); err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
		}
		return <-errCh // Serve returns once its listener closed
	}
}
