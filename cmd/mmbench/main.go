// Command mmbench regenerates every experiment table of EXPERIMENTS.md:
// one experiment per figure of the paper (see DESIGN.md §4 for the map).
//
// Usage:
//
//	mmbench                       # run everything
//	mmbench -only E2,E8           # run a subset
//	mmbench -list                 # show the experiment index
//	mmbench -json -o BENCH.json   # machine-readable results (CI baseline)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mmconf/internal/experiments"
)

type experiment struct {
	id    string
	title string
	run   func(workdir string) (*experiments.Table, error)
}

// jsonResult is one experiment's machine-readable record.
type jsonResult struct {
	*experiments.Table
	Seconds float64 `json:"seconds"`
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	asJSON := flag.Bool("json", false, "emit results as a JSON array instead of rendered tables")
	out := flag.String("o", "", "write output to this file instead of stdout")
	flag.Parse()

	all := []experiment{
		{"E1", "end-to-end document retrieval (Fig. 1, 3, 4)",
			experiments.E1Retrieve},
		{"E2", "CP-net optimal configuration (Fig. 2)",
			func(string) (*experiments.Table, error) { return experiments.E2OptimalOutcome() }},
		{"E3", "dynamic reconfiguration latency (Fig. 5)",
			func(string) (*experiments.Table, error) { return experiments.E3Reconfig() }},
		{"E4", "object store throughput and durability (Fig. 6, 7)",
			experiments.E4Store},
		{"E5", "room change propagation (Fig. 8)",
			func(string) (*experiments.Table, error) { return experiments.E5Propagation() }},
		{"E6", "multi-resolution image transfer (Fig. 9)",
			func(string) (*experiments.Table, error) { return experiments.E6MultiRes() }},
		{"E7", "voice processing accuracy (Fig. 10)",
			func(string) (*experiments.Table, error) { return experiments.E7Voice() }},
		{"E8", "preference-based pre-fetching (§4.4)",
			func(string) (*experiments.Table, error) { return experiments.E8Prefetch() }},
		{"E9", "online CP-net update cost (§4.2)",
			func(string) (*experiments.Table, error) { return experiments.E9Update() }},
		{"E11", "tail latency under concurrent conferencing",
			experiments.E11TailLatency},
		{"E12", "goodput under overload: admission control vs unprotected",
			experiments.E12Overload},
		{"E13", "content-addressed blob store: dedup, hole reuse, compaction",
			experiments.E13Blob},
		{"E14", "wire protocol v2 vs gob: codec cost on the RPC hot path",
			experiments.E14Wire},
		{"E15", "adaptive QoS: bandwidth-tuned degradation vs static-high (§4.4)",
			func(string) (*experiments.Table, error) { return experiments.E15QoS() }},
		{"E16", "cluster routing: cross-node forward overhead vs direct serve",
			experiments.E16Cluster},
		{"E17", "digest-driven replication: chunk transfer vs full copy",
			experiments.E17Replication},
	}

	if *list {
		for _, e := range all {
			fmt.Printf("%-3s %s\n", e.id, e.title)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	workdir, err := os.MkdirTemp("", "mmbench-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmbench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(workdir)

	var results []jsonResult
	failed := false
	for _, e := range all {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		start := time.Now()
		table, err := e.run(workdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: %s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		elapsed := time.Since(start)
		if *asJSON {
			results = append(results, jsonResult{Table: table, Seconds: elapsed.Seconds()})
			fmt.Fprintf(os.Stderr, "mmbench: %s completed in %v\n", e.id, elapsed.Round(time.Millisecond))
			continue
		}
		fmt.Fprintln(dst, table)
		fmt.Fprintf(dst, "(%s completed in %v)\n\n", e.id, elapsed.Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(dst)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
