// Package mmconf_bench holds the testing.B counterparts of the experiment
// tables in EXPERIMENTS.md — one benchmark family per figure of the paper
// (see DESIGN.md §4 for the experiment ↔ figure map). cmd/mmbench prints
// the full tables; these benchmarks make the same code paths measurable
// with `go test -bench`.
package mmconf_bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mmconf/internal/blob"
	"mmconf/internal/client"
	"mmconf/internal/core"
	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/media/audio"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/mediadb"
	"mmconf/internal/netsim"
	"mmconf/internal/prefetch"
	"mmconf/internal/proto"
	"mmconf/internal/qos"
	"mmconf/internal/room"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// --- E1: end-to-end retrieval (Fig. 1, 3, 4) ---

type systemFixture struct {
	srv  *server.Server
	addr string
	rec  *workload.PopulatedRecord
	cli  *client.Client
}

var (
	sysOnce sync.Once
	sysFix  *systemFixture
	sysErr  error
)

// system boots one shared server+client pair for the E1 benchmarks.
func system(b *testing.B) *systemFixture {
	b.Helper()
	sysOnce.Do(func() {
		dir := b.TempDir()
		db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
		if err != nil {
			sysErr = err
			return
		}
		m, err := mediadb.Open(db)
		if err != nil {
			sysErr = err
			return
		}
		rec, err := workload.Populate(m, "p1", 1)
		if err != nil {
			sysErr = err
			return
		}
		srv := server.New(m)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sysErr = err
			return
		}
		go srv.Serve(l)
		cli, err := client.Dial(l.Addr().String(), "bench")
		if err != nil {
			sysErr = err
			return
		}
		sysFix = &systemFixture{srv: srv, addr: l.Addr().String(), rec: rec, cli: cli}
	})
	if sysErr != nil {
		b.Fatal(sysErr)
	}
	return sysFix
}

func BenchmarkE1RetrieveDocument(b *testing.B) {
	fix := system(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fix.cli.GetDocument("p1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1RetrieveImage(b *testing.B) {
	fix := system(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fix.cli.GetImage(fix.rec.CTID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1RetrieveBaseLayer(b *testing.B) {
	fix := system(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fix.cli.GetCmp(fix.rec.CmpID, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: optimal configuration (Fig. 2) ---

func BenchmarkE2OptimalOutcome(b *testing.B) {
	for _, n := range []int{5, 20, 100, 400} {
		doc, err := workload.WideRecord(fmt.Sprintf("w%d", n), n, int64(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars=%d", n+1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := doc.Prefs.OptimalOutcome(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: dynamic reconfiguration (Fig. 5) ---

func BenchmarkE3Reconfig(b *testing.B) {
	for _, n := range []int{5, 20, 100} {
		doc, err := workload.WideRecord(fmt.Sprintf("w%d", n), n, int64(n))
		if err != nil {
			b.Fatal(err)
		}
		choices := cpnet.Outcome{"img000": "icon"}
		b.Run(fmt.Sprintf("components=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := doc.ReconfigPresentation(choices); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: object store (Fig. 6, 7) ---

func BenchmarkE4StoreInsert(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts store.Options
	}{
		{"sync-always", store.Options{Sync: store.SyncAlways}},
		{"sync-group", store.Options{Sync: store.SyncGroup}},
		{"sync-never", store.Options{Sync: store.SyncNever}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := store.Open(b.TempDir(), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			m, err := mediadb.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 64<<10)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.PutImage(int64(i), "", 1.0, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4StoreFetch(b *testing.B) {
	db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	ids := make([]uint64, 100)
	for i := range ids {
		id, err := m.PutImage(int64(i), "", 1.0, payload)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.GetImage(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: room propagation (Fig. 8) ---

func BenchmarkE5Propagation(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			doc, err := workload.MedicalRecord("e5", 1)
			if err != nil {
				b.Fatal(err)
			}
			r, err := room.New("bench", doc)
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				m, _, _, err := r.Join(context.Background(), fmt.Sprintf("m%02d", i))
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func(m *room.Member) {
					defer wg.Done()
					for range m.Events() {
					}
				}(m)
			}
			b.ReportAllocs()
			b.ResetTimer()
			values := []string{"segmented", "full", "lowres"}
			for i := 0; i < b.N; i++ {
				if err := r.Choice(context.Background(), "m00", "ct", values[i%len(values)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			r.Close()
			wg.Wait()
		})
	}
}

// BenchmarkE5MultiRoom measures cross-room choice throughput through the
// whole pipeline (client → wire → typed handler → room → push fan-out)
// with one concurrent session per room. The shards axis re-runs the same
// load against a single-shard registry — the pre-sharding shape, where
// every room lookup met the same lock — versus the shipped 32-shard
// table; the isolated lock cost is in BenchmarkRegistryLookup
// (internal/server).
func BenchmarkE5MultiRoom(b *testing.B) {
	const roomN = 8
	for _, shards := range []int{1, 32} {
		b.Run(fmt.Sprintf("rooms=%d/shards=%d", roomN, shards), func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			m, err := mediadb.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := workload.Populate(m, "p1", 1); err != nil {
				b.Fatal(err)
			}
			srv, err := server.NewWith(m, server.Options{RegistryShards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			sessions := make([]*client.Session, roomN)
			for i := range sessions {
				cli, err := client.Dial(l.Addr().String(), fmt.Sprintf("bench%02d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer cli.Close()
				s, _, err := cli.Join(fmt.Sprintf("ward-%d", i), "p1", 0)
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
			}
			values := []string{"segmented", "full", "lowres"}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i, s := range sessions {
				n := b.N / roomN
				if i == 0 {
					n += b.N % roomN
				}
				wg.Add(1)
				go func(s *client.Session, n int) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						if err := s.Choice("ct", values[j%len(values)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(s, n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkE5FanOut measures push fan-out through the propagation/
// delivery path (room broadcast → event forwarders → wire writers →
// TCP) as room size grows: one member issues b.N chats from enough
// concurrent senders to keep the path saturated (a single synchronous
// caller would measure its own RPC round-trip, not fan-out), and every
// member receives at the wire layer — envelopes only, no per-member
// payload decode, so the metric isolates the server's delivery cost
// rather than n in-process clients' unmarshal work. events/s counts
// event pushes actually received across all members per second.
func BenchmarkE5FanOut(b *testing.B) {
	for _, n := range []int{2, 8, 16, 32} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			m, err := mediadb.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := workload.Populate(m, "p1", 1); err != nil {
				b.Fatal(err)
			}
			srv := server.New(m)
			defer srv.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			var delivered atomic.Int64
			conns := make([]*wire.Client, n)
			for i := 0; i < n; i++ {
				c, err := wire.Dial(l.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				c.OnPush(func(method string, body wire.Body) {
					if method == proto.MEvent {
						delivered.Add(1)
					}
				})
				if err := c.Call(proto.MJoinRoom, proto.JoinRoomReq{
					Room: "fanout", DocID: "p1", User: fmt.Sprintf("m%02d", i),
				}, nil); err != nil {
					b.Fatal(err)
				}
				conns[i] = c
			}
			b.ReportAllocs()
			b.ResetTimer()
			const senders = 16
			var swg sync.WaitGroup
			for w := 0; w < senders; w++ {
				iters := b.N / senders
				if w == 0 {
					iters += b.N % senders
				}
				swg.Add(1)
				go func(iters int) {
					defer swg.Done()
					req := proto.ChatReq{Room: "fanout", User: "m00", Text: "x"}
					for j := 0; j < iters; j++ {
						if err := conns[0].Call(proto.MChat, req, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}(iters)
			}
			swg.Wait()
			// Every chat was broadcast before its response; drain the
			// delivery tail until the received count goes quiet.
			for last, stable := delivered.Load(), 0; stable < 10; {
				time.Sleep(2 * time.Millisecond)
				if cur := delivered.Load(); cur == last {
					stable++
				} else {
					last, stable = cur, 0
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// --- E6: multi-layer compression (Fig. 9) ---

func BenchmarkE6Encode(b *testing.B) {
	img, err := image.Phantom(256, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(img.W * img.H))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compress.Encode(img, compress.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6DecodeLayers(b *testing.B) {
	img, err := image.Phantom(256, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := compress.Encode(img, compress.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for k := 1; k <= len(stream.Layers); k++ {
		b.Run(fmt.Sprintf("layers=%d", k), func(b *testing.B) {
			b.SetBytes(int64(stream.PrefixBytes(k)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stream.Decode(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6GetCmpCached measures the server's object cache on the
// layer-retrieval path: nocache re-runs the store fetch + header parse
// + prefix computation per request (the pre-cache shape, selected with
// a negative CacheBytes); cached serves repeats from the byte-bounded
// LRU. Requests go over raw wire calls — the client-side layer
// decompression (measured by BenchmarkE6DecodeLayers) would otherwise
// dominate and mask the server-side difference.
func BenchmarkE6GetCmpCached(b *testing.B) {
	for _, mode := range []struct {
		name       string
		cacheBytes int64
	}{
		{"nocache", -1},
		{"cached", 0}, // 0 selects the default cache size
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			m, err := mediadb.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := workload.Populate(m, "p1", 1)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := server.NewWith(m, server.Options{CacheBytes: mode.cacheBytes})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			c, err := wire.Dial(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			req := proto.GetCmpReq{ID: rec.CmpID, MaxLayers: 1}
			var resp proto.GetCmpResp
			if err := c.Call(proto.MGetCmp, req, &resp); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(resp.Data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var resp proto.GetCmpResp
				if err := c.Call(proto.MGetCmp, req, &resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: voice processing (Fig. 10) ---

var (
	voiceOnce    sync.Once
	voiceErr     error
	voiceSeg     *voice.Segmenter
	voiceSpeaker *voice.SpeakerSpotter
	voiceWords   *voice.WordSpotter
	voiceSignal  []float64
	voiceSegs    []audio.Segment
)

func voiceFixtures(b *testing.B) {
	b.Helper()
	voiceOnce.Do(func() {
		speakers := audio.DefaultSpeakers()
		synth := audio.NewSynthesizer(1)
		script := []audio.ScriptItem{
			{Type: audio.Silence, Dur: 0.5},
			{Type: audio.Speech, Speaker: speakers[0], Words: []string{"patient", "urgent"}},
			{Type: audio.Music, Dur: 1.0},
			{Type: audio.Speech, Speaker: speakers[1], Words: []string{"tumor", "biopsy"}},
			{Type: audio.Artifact, Dur: 0.5},
			{Type: audio.Speech, Speaker: speakers[2], Words: []string{"negative", "normal"}},
		}
		var signals [][]float64
		var truths [][]audio.Segment
		for i := 0; i < 2; i++ {
			sig, segs, err := synth.Compose(script)
			if err != nil {
				voiceErr = err
				return
			}
			signals = append(signals, sig)
			truths = append(truths, segs)
		}
		voiceSeg, voiceErr = voice.TrainSegmenter(signals, truths)
		if voiceErr != nil {
			return
		}
		voiceSignal, voiceSegs, voiceErr = synth.Compose(script)
		if voiceErr != nil {
			return
		}
		enroll := make(map[string][][]float64)
		for _, sp := range speakers {
			w, _, err := synth.Utterance(sp, []string{"patient", "tumor", "normal", "urgent", "biopsy"})
			if err != nil {
				voiceErr = err
				return
			}
			enroll[sp.Name] = [][]float64{w}
		}
		voiceSpeaker, voiceErr = voice.TrainSpeakerSpotter(enroll, 4, 7)
		if voiceErr != nil {
			return
		}
		examples := map[string][][]float64{}
		var garbage [][]float64
		for _, sp := range speakers[:3] {
			w, _, err := synth.Utterance(sp, []string{"urgent"})
			if err != nil {
				voiceErr = err
				return
			}
			examples["urgent"] = append(examples["urgent"], w)
			g, _, err := synth.Utterance(sp, []string{"patient", "normal"})
			if err != nil {
				voiceErr = err
				return
			}
			garbage = append(garbage, g)
		}
		voiceWords, voiceErr = voice.TrainWordSpotter(examples, garbage, 42)
	})
	if voiceErr != nil {
		b.Fatal(voiceErr)
	}
}

func BenchmarkE7Segment(b *testing.B) {
	voiceFixtures(b)
	b.SetBytes(int64(len(voiceSignal) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := voiceSeg.Segment(voiceSignal); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7SpeakerSpot(b *testing.B) {
	voiceFixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := voiceSpeaker.Spot(voiceSignal, voiceSegs, -1e9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7WordSpot(b *testing.B) {
	voiceFixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := voiceWords.Spot(voiceSignal, []string{"urgent"}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: preference-based prefetch (§4.4) ---

func BenchmarkE8Prefetch(b *testing.B) {
	doc, err := workload.MedicalRecord("e8", 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := map[string]map[string]uint64{
		"ct":    {"full": 11, "segmented": 15, "lowres": 13},
		"xray":  {"full": 12, "icon": 16},
		"voice": {"audio": 14},
	}
	for comp, vals := range ids {
		c, err := doc.Component(comp)
		if err != nil {
			b.Fatal(err)
		}
		for i := range c.Presentations {
			if id, ok := vals[c.Presentations[i].Name]; ok {
				c.Presentations[i].ObjectID = id
			}
		}
	}
	script := workload.Session(doc, []string{"a", "b"}, 100, 5)
	link, err := netsim.NewLink(256<<10, 30*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []prefetch.Policy{prefetch.PolicyNone, prefetch.PolicyLRU, prefetch.PolicyPreference} {
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				link.Reset()
				if _, err := prefetch.Simulate(doc, script, pol, 1<<20, 512<<10, link); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Rank isolates the candidate-ranking step a client runs after
// every choice.
func BenchmarkE8Rank(b *testing.B) {
	doc, err := workload.MedicalRecord("e8rank", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prefetch.Rank(doc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: online update (§4.2) ---

func BenchmarkE9AddOperationVariable(b *testing.B) {
	doc, err := workload.WideRecord("e9", 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Rebuild periodically so the network does not grow with b.N and
		// skew the per-op cost.
		if i%64 == 0 && i > 0 {
			b.StopTimer()
			doc, err = workload.WideRecord("e9", 50, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		name := fmt.Sprintf("op%d", i%64)
		if _, err := doc.Prefs.AddOperationVariable("img000", name, "full"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9OverlayCompletion(b *testing.B) {
	doc, err := workload.WideRecord("e9b", 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	ov := doc.NewOverlay()
	if _, err := doc.ApplyOperationPrivate(ov, "img000", "zoom", "full"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := doc.ReconfigPresentationFor(ov, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: admission control / overload protection ---

// BenchmarkE12LimiterAcquire measures the uncontended admission hot
// path: the slot take/release every admitted request pays on top of
// its handler.
func BenchmarkE12LimiterAcquire(b *testing.B) {
	l := wire.NewLimiter(64, 128, wire.ShedByPriority)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Acquire(ctx, wire.PriorityInteractive, time.Second); err != nil {
			b.Fatal(err)
		}
		l.Release(time.Microsecond)
	}
}

// BenchmarkE12LimiterShed measures the fail-fast rejection path — the
// cost of turning an excess request away, which under overload is paid
// instead of the handler's full decode/fetch/encode cost.
func BenchmarkE12LimiterShed(b *testing.B) {
	l := wire.NewLimiter(1, 0, wire.ShedByPriority)
	ctx := context.Background()
	if err := l.Acquire(ctx, wire.PriorityBulk, 0); err != nil {
		b.Fatal(err) // hold the only slot so every arrival sheds
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Acquire(ctx, wire.PriorityBulk, 0); !errors.Is(err, wire.ErrOverloaded) {
			b.Fatalf("Acquire = %v, want overload", err)
		}
	}
}

// BenchmarkE12TokenBucket measures the per-peer rate-limit charge
// every non-control request pays when PerPeerRate is configured.
func BenchmarkE12TokenBucket(b *testing.B) {
	tb := wire.NewTokenBucket(1e9, 1<<30)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Microsecond)
		if ok, _ := tb.Take(now); !ok {
			b.Fatal("bucket ran dry")
		}
	}
}

// BenchmarkE12AdmissionRPC measures what the admission interceptor adds
// to a cheap end-to-end RPC: disabled is the pre-admission pipeline,
// enabled charges the per-peer bucket and takes a limiter slot on an
// otherwise idle server.
func BenchmarkE12AdmissionRPC(b *testing.B) {
	for _, mode := range []struct {
		name        string
		maxInflight int
		rate        float64
	}{
		{"disabled", -1, 0},
		{"enabled", 1024, 1e9},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			m, err := mediadb.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := workload.Populate(m, "p1", 1); err != nil {
				b.Fatal(err)
			}
			srv, err := server.NewWith(m, server.Options{
				MaxInflight: mode.maxInflight,
				PerPeerRate: mode.rate,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			c, err := wire.Dial(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var resp proto.ListDocumentsResp
				if err := c.CallCtx(ctx, proto.MListDocuments, proto.ListDocumentsReq{}, &resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E14: wire protocol v2 (binary codec vs gob) ---

// BenchmarkE14WireRPC measures the wire codec's share of the
// admission-path RPC from E12: the same ListDocuments call against the
// same admission-enabled server, once over the legacy gob protocol and
// once over wire v2 binary framing. The per-op bytes and allocs gap
// between the two sub-benchmarks is the tentpole win; both are gated in
// BENCH_7.json so neither codec regresses.
func BenchmarkE14WireRPC(b *testing.B) {
	for _, mode := range []struct {
		name string
		ver  uint8
	}{
		{"proto=gob", wire.ProtoGob},
		{"proto=v2", wire.ProtoV2},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			m, err := mediadb.Open(db)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := workload.Populate(m, "p1", 1); err != nil {
				b.Fatal(err)
			}
			srv, err := server.NewWith(m, server.Options{
				MaxInflight: 1024,
				PerPeerRate: 1e9,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			c := wire.NewClientVersion(conn, mode.ver)
			defer c.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var resp proto.ListDocumentsResp
				if err := c.CallCtx(ctx, proto.MListDocuments, &proto.ListDocumentsReq{}, &resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: content-addressed blob store ---

// benchPayload fills a 64 KiB buffer with content unique to n, so
// successive puts never dedup against each other.
func benchPayload(p []byte, n int) {
	for i := range p {
		p[i] = byte(i) ^ byte(i>>8) ^ byte(n) ^ byte(n>>8) ^ byte(n>>16)
	}
}

// BenchmarkE13PutDistinct measures cold puts: every payload is new, so
// each one is chunked, hashed, and appended.
func BenchmarkE13PutDistinct(b *testing.B) {
	bs, err := blob.Open(b.TempDir(), blob.Options{CompactRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPayload(payload, i)
		if _, err := bs.Put(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13PutDedupHit measures warm puts: the payload is already
// stored, so the put costs one SHA-256 pass and a refcount bump — no
// disk writes. The gap to PutDistinct is the dedup win.
func BenchmarkE13PutDedupHit(b *testing.B) {
	bs, err := blob.Open(b.TempDir(), blob.Options{CompactRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	payload := make([]byte, 64<<10)
	benchPayload(payload, 0)
	if _, err := bs.Put(payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.Put(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Get measures reading a multi-chunk object back, including
// per-chunk CRC and whole-object digest verification.
func BenchmarkE13Get(b *testing.B) {
	bs, err := blob.Open(b.TempDir(), blob.Options{CompactRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	payload := make([]byte, 256<<10)
	benchPayload(payload, 0)
	h, err := bs.Put(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.Get(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Churn measures the put+release cycle that dominates
// overwrite-heavy workloads: every release feeds the free lists and
// every put is served from a reclaimed hole.
func BenchmarkE13Churn(b *testing.B) {
	bs, err := blob.Open(b.TempDir(), blob.Options{CompactRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer bs.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPayload(payload, i)
		h, err := bs.Put(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := bs.Release(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Compact measures migrating the live remainder out of
// sparse segments: per iteration, 8 objects fill several small
// segments, 6 are deleted, and Compact moves the survivors.
func BenchmarkE13Compact(b *testing.B) {
	payload := make([]byte, 32<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bs, err := blob.Open(b.TempDir(), blob.Options{SegmentSize: 64 << 10, CompactRatio: -1})
		if err != nil {
			b.Fatal(err)
		}
		var handles []blob.Handle
		for j := 0; j < 8; j++ {
			benchPayload(payload, i*8+j)
			h, err := bs.Put(payload)
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles[2:] {
			if err := bs.Release(h); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := bs.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		bs.Close()
		b.StartTimer()
	}
}

// --- Substrate micro-benchmarks used across experiments ---

func BenchmarkBlobPut(b *testing.B) {
	db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.PutBlob(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDocumentMarshal(b *testing.B) {
	doc, err := workload.MedicalRecord("m", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := doc.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDocumentUnmarshal(b *testing.B) {
	doc, err := workload.MedicalRecord("m", 1)
	if err != nil {
		b.Fatal(err)
	}
	data, err := doc.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := document.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E15: adaptive QoS loop (§4.4) ---

// BenchmarkE15Simulate measures the scripted-consultation replay behind
// the E15 table on the dialup profile: static-high (the solver left
// optimistic) vs adaptive (the bandwidth tuning variable pinned to the
// level the estimator converges to on that link). The simulated link
// waits are modeled, not slept, so the benchmark measures solver +
// buffer work per replay.
func BenchmarkE15Simulate(b *testing.B) {
	doc, err := workload.MedicalRecord("e15", 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := map[string]map[string]uint64{
		"ct":    {"full": 11, "segmented": 15, "lowres": 13},
		"xray":  {"full": 12, "icon": 16},
		"voice": {"audio": 14},
	}
	for comp, vals := range ids {
		c, err := doc.Component(comp)
		if err != nil {
			b.Fatal(err)
		}
		for i := range c.Presentations {
			if id, ok := vals[c.Presentations[i].Name]; ok {
				c.Presentations[i].ObjectID = id
			}
		}
	}
	if err := core.AddBandwidthTuning(doc, core.AutoBandwidthTemplates(doc, 0)); err != nil {
		b.Fatal(err)
	}
	script := workload.Session(doc, []string{"a", "b"}, 100, 15)
	link, err := netsim.Dialup.Link()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		initial cpnet.Outcome
	}{
		{"static-high", nil},
		{"adaptive", cpnet.Outcome{core.BandwidthVariable: core.BandwidthLow}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				link.Reset()
				if _, err := prefetch.SimulateWith(doc, script, prefetch.PolicyPreference,
					1<<20, 512<<10, link, mode.initial); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15ControllerUpdate isolates the per-tick classification the
// server's QoS loop pays per member: one hysteresis-banded level
// decision from a measured rate.
func BenchmarkE15ControllerUpdate(b *testing.B) {
	ctrl, err := qos.NewController(qos.DefaultBands())
	if err != nil {
		b.Fatal(err)
	}
	rates := []float64{5e3, 5e4, 5e6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctrl.Update(rates[i%len(rates)], 16, 0)
	}
}

// BenchmarkE15MeterObserve isolates the per-write EWMA sample the wire
// layer charges every timed socket write.
func BenchmarkE15MeterObserve(b *testing.B) {
	m := qos.NewMeter(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe(32<<10, 5*time.Millisecond)
	}
}

// BenchmarkE15TuningExtension measures the one-time CP-net model
// extension the server applies per document when QoS is enabled —
// author CPT rows captured and re-ranked per bandwidth level.
func BenchmarkE15TuningExtension(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc, err := workload.MedicalRecord("e15t", 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.AddBandwidthTuning(doc, core.AutoBandwidthTemplates(doc, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E17: digest-driven replication ---

// replBenchStores builds a sender holding nObjects multi-chunk objects
// and an empty receiver, returning the sender's handles.
func replBenchStores(b *testing.B, nObjects int) (src, dst *blob.Store, handles []blob.Handle) {
	b.Helper()
	var err error
	src, err = blob.Open(b.TempDir(), blob.Options{CompactRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { src.Close() })
	dst, err = blob.Open(b.TempDir(), blob.Options{CompactRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dst.Close() })
	payload := make([]byte, 256<<10)
	for i := 0; i < nObjects; i++ {
		benchPayload(payload, i)
		h, err := src.Put(payload)
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, h)
	}
	return src, dst, handles
}

// replicateBlob runs the full digest protocol for one object: manifest
// from the sender, diff on the receiver, chunk pulls for the missing
// set, verified materialization.
func replicateBlob(src, dst *blob.Store, h blob.Handle) error {
	manifest, err := src.Manifest(h)
	if err != nil {
		return err
	}
	data := make(map[blob.Digest][]byte)
	for _, cd := range dst.MissingChunks(manifest) {
		chunk, err := src.GetChunk(cd)
		if err != nil {
			return err
		}
		data[cd] = chunk
	}
	_, err = dst.PutFromChunks(h.Digest, h.Length, manifest, data)
	return err
}

// BenchmarkE17ManifestDiff isolates the receiver-side diff: one
// MissingChunks pass over a 64-chunk manifest against a store holding
// half of it.
func BenchmarkE17ManifestDiff(b *testing.B) {
	src, dst, _ := replBenchStores(b, 0)
	payload := make([]byte, 32<<10)
	var manifest []blob.Digest
	for i := 0; i < 64; i++ {
		benchPayload(payload, i)
		h, err := src.Put(payload)
		if err != nil {
			b.Fatal(err)
		}
		m, err := src.Manifest(h)
		if err != nil {
			b.Fatal(err)
		}
		manifest = append(manifest, m...)
		if i%2 == 0 {
			if err := replicateBlob(src, dst, h); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if missing := dst.MissingChunks(manifest); len(missing) == 0 {
			b.Fatal("diff found nothing missing")
		}
	}
}

// BenchmarkE17SyncDelta measures replicating a cold multi-chunk object
// end to end — manifest, diff, chunk reads, digest-verified install —
// then releasing it so every iteration transfers the full delta.
func BenchmarkE17SyncDelta(b *testing.B) {
	src, dst, handles := replBenchStores(b, 1)
	h := handles[0]
	b.SetBytes(int64(h.Length))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := replicateBlob(src, dst, h); err != nil {
			b.Fatal(err)
		}
		if err := dst.Release(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17RepeatSync measures the protocol when the receiver
// already converged: the diff comes back empty and the install dedups —
// zero chunk bytes move, the steady-state heartbeat cost.
func BenchmarkE17RepeatSync(b *testing.B) {
	src, dst, handles := replBenchStores(b, 1)
	h := handles[0]
	if err := replicateBlob(src, dst, h); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(h.Length))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := replicateBlob(src, dst, h); err != nil {
			b.Fatal(err)
		}
		if err := dst.Release(h); err != nil {
			b.Fatal(err)
		}
	}
}
