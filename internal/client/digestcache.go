package client

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// The client-side digest cache (§4.4 extended): media payloads keyed by
// their content digest. On a repeat fetch the client sends the digest
// it holds in IfDigestAbsent; a server whose object still has that
// digest answers NotModified with no payload, and the client serves the
// cached bytes — an unchanged image costs a round trip, not a transfer.
// Because the key is the content itself, two object ids with identical
// bytes share one entry, and an object whose payload reverts to one
// seen earlier is a hit too.

// digestCache is a byte-bounded LRU over payloads keyed by digest, with
// an object-id index on top ("img:5" → last seen digest).
type digestCache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	lru     *list.List               // *digestEntry; front = most recent
	entries map[string]*list.Element // digest → element
	byID    map[string]string        // object key → digest

	hits, misses atomic.Uint64
}

type digestEntry struct {
	digest string
	data   []byte
	ids    map[string]struct{} // object keys mapping here, for eviction
}

func newDigestCache(maxBytes int64) *digestCache {
	return &digestCache{
		max:     maxBytes,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		byID:    make(map[string]string),
	}
}

// lookup returns the digest and payload last seen for the object key.
// Returning both together keeps the conditional round trip race-free:
// the bytes backing a NotModified answer are already in hand.
func (dc *digestCache) lookup(id string) (digest, data []byte, ok bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	key, ok := dc.byID[id]
	if !ok {
		return nil, nil, false
	}
	el := dc.entries[key]
	if el == nil {
		delete(dc.byID, id)
		return nil, nil, false
	}
	dc.lru.MoveToFront(el)
	e := el.Value.(*digestEntry)
	return []byte(e.digest), e.data, true
}

// store records the payload the server just returned for the object.
func (dc *digestCache) store(id string, digest, data []byte) {
	if len(digest) == 0 || int64(len(data)) > dc.max {
		return
	}
	key := string(digest)
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if old, ok := dc.byID[id]; ok && old != key {
		if el := dc.entries[old]; el != nil {
			delete(el.Value.(*digestEntry).ids, id)
		}
	}
	dc.byID[id] = key
	if el := dc.entries[key]; el != nil {
		el.Value.(*digestEntry).ids[id] = struct{}{}
		dc.lru.MoveToFront(el)
		return
	}
	e := &digestEntry{digest: key, data: data, ids: map[string]struct{}{id: {}}}
	dc.entries[key] = dc.lru.PushFront(e)
	dc.size += int64(len(data))
	for dc.size > dc.max {
		back := dc.lru.Back()
		if back == nil {
			break
		}
		dc.lru.Remove(back)
		ev := back.Value.(*digestEntry)
		delete(dc.entries, ev.digest)
		dc.size -= int64(len(ev.data))
		for oid := range ev.ids {
			if dc.byID[oid] == ev.digest {
				delete(dc.byID, oid)
			}
		}
	}
}

// DigestCacheStats counts the client's conditional-fetch outcomes.
type DigestCacheStats struct {
	// Hits counts fetches answered NotModified and served from the
	// cache; Misses counts fetches that transferred the payload (cold,
	// changed object, or cache disabled mid-race).
	Hits, Misses uint64
	// Bytes is the payload total currently cached.
	Bytes int64
}

// DigestCacheStats reports the digest cache's counters (zero when the
// cache is disabled).
func (c *Client) DigestCacheStats() DigestCacheStats {
	if c.digests == nil {
		return DigestCacheStats{}
	}
	c.digests.mu.Lock()
	bytes := c.digests.size
	c.digests.mu.Unlock()
	return DigestCacheStats{
		Hits:   c.digests.hits.Load(),
		Misses: c.digests.misses.Load(),
		Bytes:  bytes,
	}
}
