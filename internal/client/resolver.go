package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"mmconf/internal/proto"
	"mmconf/internal/wire"
)

// This file is the client's cluster awareness: a resolver that dials
// across a set of node endpoints, and the redirect-following that moves
// the connection to a room's owning node when the routing tier answers
// with wire.RedirectError. Together with the reconnect supervisor this
// closes the failover loop: owner dies → redial (rotating endpoints) →
// resume is redirected to the new owner → sessions replay there.

// AddrDialFunc dials a specific address — the shape a cluster resolver
// needs (netsim's Faults.DialContext satisfies it in tests).
type AddrDialFunc func(ctx context.Context, addr string) (net.Conn, error)

// NetDial is the plain TCP AddrDialFunc.
func NetDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// resolver picks which endpoint the next dial attempt goes to: the
// redirect-preferred address when the routing tier named one, otherwise
// a rotation over the configured endpoints (advanced on dial failure
// and on cluster-unavailable rejections).
type resolver struct {
	dialAddr AddrDialFunc

	mu        sync.Mutex
	addrs     []string
	next      int
	preferred string
}

// prefer pins the next dials to addr (a redirect target).
func (r *resolver) prefer(addr string) {
	r.mu.Lock()
	r.preferred = addr
	r.mu.Unlock()
}

// rotate abandons the current endpoint choice (the node refused or
// cannot be reached): clear any preference and move to the next
// configured endpoint.
func (r *resolver) rotate() {
	r.mu.Lock()
	r.preferred = ""
	r.next++
	r.mu.Unlock()
}

// dial is the resolver's DialFunc: preferred endpoint first, rotation
// otherwise, advancing past endpoints that fail.
func (r *resolver) dial(ctx context.Context) (net.Conn, error) {
	r.mu.Lock()
	addr := r.preferred
	if addr == "" && len(r.addrs) > 0 {
		addr = r.addrs[r.next%len(r.addrs)]
	}
	r.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("client: resolver has no endpoints")
	}
	conn, err := r.dialAddr(ctx, addr)
	if err != nil {
		r.mu.Lock()
		if r.preferred == addr {
			r.preferred = ""
		} else {
			r.next++
		}
		r.mu.Unlock()
		return nil, err
	}
	return conn, nil
}

// NewOverResolver builds a cluster-aware client: dial connects to
// specific addresses, addrs lists the cluster's node endpoints, and
// redirects from the routing tier are followed transparently — the
// client migrates its connection to the owning node (resuming any
// sessions it already holds) and retries the redirected call there.
// The initial connect tries endpoints in order until one answers.
func NewOverResolver(dial AddrDialFunc, addrs []string, user string, opts Options) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user name")
	}
	if dial == nil {
		dial = NetDial
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: resolver needs at least one endpoint")
	}
	opts.normalize()
	r := &resolver{dialAddr: dial, addrs: append([]string(nil), addrs...)}
	c := newClient(user, r.dial, opts)
	c.resolver = r
	var lastErr error
	for range addrs {
		ctx, cancel := context.WithTimeout(context.Background(), opts.ConnectTimeout)
		conn, err := r.dial(ctx)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		c.attach(opts.newWireClient(conn))
		return c, nil
	}
	return nil, fmt.Errorf("client: no endpoint reachable: %w", lastErr)
}

// maxRedirectHops bounds how many times one call chases ownership
// moves before surfacing the redirect to the caller.
const maxRedirectHops = 3

// followRedirect moves the client's connection to the redirect target
// and resumes its sessions there. genBefore is the connection
// generation the redirected call ran on: if the connection has already
// changed (another call migrated first, or the supervisor reconnected),
// the migration is assumed done and the caller just retries. Returns
// nil when the caller should retry the call.
func (c *Client) followRedirect(ctx context.Context, genBefore uint64, addr string) error {
	c.resolver.prefer(addr)
	c.migrateMu.Lock()
	defer c.migrateMu.Unlock()
	c.mu.Lock()
	switch {
	case c.state == stateClosed:
		c.mu.Unlock()
		return ErrClosed
	case c.state == stateReconnecting:
		c.mu.Unlock()
		return ErrReconnecting
	case c.gen != genBefore:
		// Someone already moved the connection; retry where it is now.
		c.mu.Unlock()
		return nil
	}
	old := c.rpc
	sessions := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, c.opts.ConnectTimeout)
	conn, err := c.dial(dctx)
	cancel()
	if err != nil {
		return err
	}
	rpc := c.opts.newWireClient(conn)
	rpc.OnPush(c.onPush)
	if c.opts.CallTimeout > 0 {
		rpc.SetCallTimeout(c.opts.CallTimeout)
	}
	if err := c.resumeSessions(rpc, sessions); err != nil {
		rpc.Close()
		for _, s := range sessions {
			s.abortResume()
		}
		return err
	}
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		rpc.Close()
		return ErrClosed
	}
	c.rpc = rpc
	c.state = stateActive
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	c.redirectsFollowed.Add(1)
	go c.supervise(rpc, gen)
	// The old connection's supervisor sees a stale generation and
	// stands down.
	if old != nil {
		old.Close()
	}
	return nil
}

// handleRouting reacts to a routing error from a call: follow redirects
// by migrating the connection, surface everything else. retry reports
// whether the caller should re-issue the call.
func (c *Client) handleRouting(ctx context.Context, genBefore uint64, err error, hops *int) (retry bool) {
	if c.resolver == nil || err == nil {
		return false
	}
	var re *wire.RedirectError
	if !errors.As(err, &re) || *hops >= maxRedirectHops {
		return false
	}
	*hops++
	return c.followRedirect(ctx, genBefore, re.Addr) == nil
}

// Resume asks the server to re-admit this client's detached sessions —
// exposed for tests that drive resumes explicitly; normal resumes run
// inside the reconnect supervisor.
func (c *Client) ResumeSession(ctx context.Context, s *Session) error {
	since := s.beginResume()
	var resp proto.JoinRoomResp
	err := c.call(ctx, proto.MJoinRoom, &proto.JoinRoomReq{
		Room: s.Room, DocID: s.docID, User: c.user,
		Resume: true, SinceSeq: since,
	}, &resp)
	if err != nil {
		s.abortResume()
		return err
	}
	s.finishResume(&resp)
	return nil
}
