package client

import (
	"net"
	"testing"
	"time"

	"mmconf/internal/cpnet"
	"mmconf/internal/mediadb"
	"mmconf/internal/room"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// pipeSystem boots a server over net.Pipe and returns a connected client
// — no TCP, so these tests isolate the client-library logic.
func pipeSystem(t *testing.T) (*Client, *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(m)
	t.Cleanup(func() { srv.Close() })
	sc, cc := net.Pipe()
	go srv.ServeConn(sc)
	c, err := NewOverConn(cc, "alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, rec
}

func TestNewOverConnValidation(t *testing.T) {
	_, cc := net.Pipe()
	defer cc.Close()
	if _, err := NewOverConn(cc, ""); err == nil {
		t.Error("empty user accepted")
	}
	if _, err := Dial("127.0.0.1:1", ""); err == nil {
		t.Error("empty user accepted by Dial")
	}
	if _, err := Dial("256.0.0.1:x", "u"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestClientAccessors(t *testing.T) {
	c, _ := pipeSystem(t)
	if c.User() != "alice" {
		t.Errorf("User = %s", c.User())
	}
	ids, titles, err := c.ListDocuments()
	if err != nil || len(ids) != 1 || len(titles) != 1 {
		t.Fatalf("ListDocuments: %v %v %v", ids, titles, err)
	}
}

func TestGetters(t *testing.T) {
	c, rec := pipeSystem(t)
	doc, err := c.GetDocument("p1")
	if err != nil || doc.ID != "p1" {
		t.Fatalf("GetDocument: %v %v", doc, err)
	}
	img, texts, err := c.GetImage(rec.CTID)
	if err != nil || img.W != 256 {
		t.Fatalf("GetImage: %v %q %v", img, texts, err)
	}
	raw, err := c.GetImageBytes(rec.CTID)
	if err != nil || len(raw) == 0 {
		t.Fatalf("GetImageBytes: %d %v", len(raw), err)
	}
	pcm, sectors, name, err := c.GetAudio(rec.VoiceID)
	if err != nil || len(pcm) == 0 || len(sectors) == 0 || name == "" {
		t.Fatalf("GetAudio: %v", err)
	}
	full, fullN, err := c.GetCmp(rec.CmpID, 0)
	if err != nil || full.W != 256 {
		t.Fatalf("GetCmp: %v %v", full, err)
	}
	low, lowN, err := c.GetCmp(rec.CmpID, 1)
	if err != nil || low.W != 256 || lowN >= fullN {
		t.Fatalf("GetCmp(1): %v bytes=%d/%d %v", low, lowN, fullN, err)
	}
}

func TestSessionViewAndApplyEvent(t *testing.T) {
	c, _ := pipeSystem(t)
	s, _, err := c.Join("r", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v.Outcome["ct"] != "full" {
		t.Errorf("initial view: %v", v.Outcome)
	}
	// A presentation event for this room updates the view.
	s.ApplyEvent(room.Event{
		Kind: room.EvPresentation, Room: "r",
		Outcome: cpnet.Outcome{"ct": "hidden"},
		Visible: map[string]bool{"ct": false},
	})
	if s.View().Outcome["ct"] != "hidden" {
		t.Error("presentation event not applied")
	}
	// Events for other rooms or other kinds are ignored.
	s.ApplyEvent(room.Event{Kind: room.EvPresentation, Room: "other",
		Outcome: cpnet.Outcome{"ct": "full"}})
	if s.View().Outcome["ct"] != "hidden" {
		t.Error("foreign room event applied")
	}
	s.ApplyEvent(room.Event{Kind: room.EvChat, Room: "r", Text: "x"})
	if s.View().Outcome["ct"] != "hidden" {
		t.Error("chat event mutated the view")
	}
}

func TestSessionRoundTripOverPipe(t *testing.T) {
	c, rec := pipeSystem(t)
	s, _, err := c.Join("r", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Choice("ct", "segmented"); err != nil {
		t.Fatalf("Choice: %v", err)
	}
	// Our own presentation push arrives too.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-c.Events():
			s.ApplyEvent(ev)
			if ev.Kind == room.EvPresentation && ev.Outcome["ct"] == "segmented" {
				goto updated
			}
		case <-deadline:
			t.Fatal("presentation push never arrived")
		}
	}
updated:
	if s.View().Outcome["xray"] != "hidden" {
		t.Errorf("view after choice: %v", s.View().Outcome)
	}
	// Operation + annotation + history over the pipe.
	derived, err := s.Operation("ct", "zoom", "segmented", false)
	if err != nil || derived == "" {
		t.Fatalf("Operation: %q %v", derived, err)
	}
	annID, err := s.AnnotateText(rec.CTID, 4, 4, "note", 1)
	if err != nil {
		t.Fatalf("AnnotateText: %v", err)
	}
	if _, err := s.AnnotateLine(rec.CTID, 0, 0, 9, 9, 1); err != nil {
		t.Fatalf("AnnotateLine: %v", err)
	}
	if err := s.DeleteAnnotation(rec.CTID, annID); err != nil {
		t.Fatalf("DeleteAnnotation: %v", err)
	}
	if err := s.Freeze(rec.CTID); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if err := s.Release(rec.CTID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.ShareSearch(false, "urgent", nil); err != nil {
		t.Fatalf("ShareSearch: %v", err)
	}
	if err := s.Chat("hello"); err != nil {
		t.Fatalf("Chat: %v", err)
	}
	evs, err := s.History(0)
	if err != nil || len(evs) == 0 {
		t.Fatalf("History: %d %v", len(evs), err)
	}
	if err := s.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
}

func TestSessionBuffer(t *testing.T) {
	c, rec := pipeSystem(t)
	s, _, err := c.Join("r", "p1", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if s.Buffer == nil {
		t.Fatal("buffer not created")
	}
	n, err := s.WarmBuffer(nil, 1<<22)
	if err != nil || n == 0 {
		t.Fatalf("WarmBuffer: %d %v", n, err)
	}
	if _, err := s.Buffer.Demand(rec.CTID); err != nil {
		t.Fatal(err)
	}
	hits, _, _ := s.Buffer.Cache.Stats()
	if hits == 0 {
		t.Error("warm did not produce a hit")
	}
}

func TestEventOverflowShedsOldest(t *testing.T) {
	// Fill the local event queue directly through the push path.
	_, cc := net.Pipe()
	defer cc.Close()
	c, err := NewOverConn(cc, "u")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Bypass the wire: feed events into the internal channel by invoking
	// the push handler logic via a session apply loop is not possible
	// from outside; instead verify capacity behaviour on the channel.
	for i := 0; i < eventQueueSize+10; i++ {
		ev := room.Event{Seq: uint64(i + 1), Kind: room.EvChat}
		select {
		case c.events <- ev:
		default:
			select {
			case <-c.events:
			default:
			}
			c.events <- ev
		}
	}
	if len(c.events) != eventQueueSize {
		t.Fatalf("queue length = %d", len(c.events))
	}
	first := <-c.events
	if first.Seq == 1 {
		t.Error("oldest event not shed")
	}
}
