// Package client implements the client module of the paper (§3): it
// presents documents, forwards the viewer's interactions to the
// interaction server, and receives both direct responses and pushed room
// events. It also hosts the §4.4 client-side buffer: a prefetch cache the
// session warms after every presentation change.
package client

import (
	"context"
	"fmt"
	"net"
	"sync"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/prefetch"
	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/wire"
)

// Client is one user's connection to the interaction server.
type Client struct {
	rpc  *wire.Client
	user string

	mu     sync.Mutex
	events chan room.Event
}

// eventQueueSize bounds the locally buffered pushed events.
const eventQueueSize = 1024

// Dial connects to the interaction server at addr as the given user.
func Dial(addr, user string) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user name")
	}
	rpc, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return wrap(rpc, user), nil
}

// NewOverConn wraps an established connection (in-process tests, or a
// netsim-throttled conn).
func NewOverConn(conn net.Conn, user string) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user name")
	}
	return wrap(wire.NewClient(conn), user), nil
}

func wrap(rpc *wire.Client, user string) *Client {
	c := &Client{rpc: rpc, user: user, events: make(chan room.Event, eventQueueSize)}
	rpc.OnPush(func(method string, payload []byte) {
		if method != proto.MEvent {
			return
		}
		var ev room.Event
		if err := wire.Unmarshal(payload, &ev); err != nil {
			return
		}
		select {
		case c.events <- ev:
		default:
			// Shed the oldest local event; History resynchronizes.
			select {
			case <-c.events:
			default:
			}
			select {
			case c.events <- ev:
			default:
			}
		}
	})
	return c
}

// User returns the client's user name.
func (c *Client) User() string { return c.user }

// Events returns the pushed room-event stream.
func (c *Client) Events() <-chan room.Event { return c.events }

// Close drops the connection (the server evicts the user from rooms).
func (c *Client) Close() error { return c.rpc.Close() }

// ListDocuments returns stored document ids and titles.
func (c *Client) ListDocuments() (ids, titles []string, err error) {
	return c.ListDocumentsCtx(context.Background())
}

// ListDocumentsCtx is ListDocuments bounded by ctx.
func (c *Client) ListDocumentsCtx(ctx context.Context) (ids, titles []string, err error) {
	var resp proto.ListDocumentsResp
	if err := c.rpc.CallCtx(ctx, proto.MListDocuments, proto.ListDocumentsReq{}, &resp); err != nil {
		return nil, nil, err
	}
	return resp.IDs, resp.Titles, nil
}

// GetDocument fetches and decodes a document.
func (c *Client) GetDocument(docID string) (*document.Document, error) {
	return c.GetDocumentCtx(context.Background(), docID)
}

// GetDocumentCtx is GetDocument bounded by ctx.
func (c *Client) GetDocumentCtx(ctx context.Context, docID string) (*document.Document, error) {
	var resp proto.GetDocumentResp
	if err := c.rpc.CallCtx(ctx, proto.MGetDocument, proto.GetDocumentReq{DocID: docID}, &resp); err != nil {
		return nil, err
	}
	return document.Unmarshal(resp.DocData)
}

// GetImage fetches an image object and decodes its raster.
func (c *Client) GetImage(id uint64) (*image.Gray, string, error) {
	var resp proto.GetImageResp
	if err := c.rpc.Call(proto.MGetImage, proto.GetImageReq{ID: id}, &resp); err != nil {
		return nil, "", err
	}
	g, err := image.Decode(resp.Data)
	if err != nil {
		return nil, "", err
	}
	return g, resp.Texts, nil
}

// GetImageBytes fetches an image object's raw payload (for the prefetch
// cache, which stores bytes).
func (c *Client) GetImageBytes(id uint64) ([]byte, error) {
	var resp proto.GetImageResp
	if err := c.rpc.Call(proto.MGetImage, proto.GetImageReq{ID: id}, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// GetAudio fetches an audio object: PCM bytes plus segmentation metadata.
func (c *Client) GetAudio(id uint64) (pcm, sectors []byte, filename string, err error) {
	var resp proto.GetAudioResp
	if err := c.rpc.Call(proto.MGetAudio, proto.GetAudioReq{ID: id}, &resp); err != nil {
		return nil, nil, "", err
	}
	return resp.Data, resp.Sectors, resp.Filename, nil
}

// GetCmp fetches a multi-layer stream truncated to maxLayers (0 = all)
// and decodes it at that fidelity.
func (c *Client) GetCmp(id uint64, maxLayers int) (*image.Gray, int, error) {
	var resp proto.GetCmpResp
	if err := c.rpc.Call(proto.MGetCmp, proto.GetCmpReq{ID: id, MaxLayers: maxLayers}, &resp); err != nil {
		return nil, 0, err
	}
	stream, err := compress.Unmarshal(resp.Header, resp.Data)
	if err != nil {
		return nil, 0, err
	}
	g, err := stream.Decode(0)
	if err != nil {
		return nil, 0, err
	}
	return g, len(resp.Data), nil
}

// Session is the client's presence in one shared room.
type Session struct {
	client *Client
	Room   string
	// Doc is the session's local copy of the document.
	Doc *document.Document
	// View is the latest presentation pushed or computed for this user.
	mu   sync.Mutex
	view document.View
	// resync is set when a pushed event carries the server's queue-
	// overflow hint (events were dropped; replay from History).
	resync bool
	// Buffer is the §4.4 prefetch cache (nil if disabled).
	Buffer *prefetch.Prefetcher
}

// Join enters a room around a document. bufferBytes > 0 enables the
// client-side prefetch cache of that size.
func (c *Client) Join(roomName, docID string, bufferBytes int64) (*Session, []room.Event, error) {
	return c.JoinCtx(context.Background(), roomName, docID, bufferBytes)
}

// JoinCtx is Join bounded by ctx.
func (c *Client) JoinCtx(ctx context.Context, roomName, docID string, bufferBytes int64) (*Session, []room.Event, error) {
	var resp proto.JoinRoomResp
	err := c.rpc.CallCtx(ctx, proto.MJoinRoom, proto.JoinRoomReq{
		Room: roomName, DocID: docID, User: c.user,
	}, &resp)
	if err != nil {
		return nil, nil, err
	}
	doc, err := document.Unmarshal(resp.DocData)
	if err != nil {
		return nil, nil, err
	}
	s := &Session{
		client: c,
		Room:   roomName,
		Doc:    doc,
		view:   document.View{Outcome: resp.Outcome, Visible: resp.Visible},
	}
	if bufferBytes > 0 {
		cache, err := prefetch.NewCache(bufferBytes)
		if err != nil {
			return nil, nil, err
		}
		s.Buffer, err = prefetch.NewPrefetcher(cache, c.GetImageBytes)
		if err != nil {
			return nil, nil, err
		}
	}
	return s, resp.History, nil
}

// User returns the user this session belongs to.
func (s *Session) User() string { return s.client.user }

// View returns the latest presentation for this user.
func (s *Session) View() document.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// ApplyEvent folds a pushed event into the session (clients call this for
// each event from Events()); EvPresentation events update the view, and
// an event carrying the Resync hint flags the session (NeedsResync) —
// the server dropped older events from this member's queue, so the
// local stream has a gap to fill from History.
func (s *Session) ApplyEvent(ev room.Event) {
	if ev.Room != s.Room {
		return
	}
	s.mu.Lock()
	if ev.Kind == room.EvPresentation {
		s.view = document.View{Outcome: ev.Outcome, Visible: ev.Visible}
	}
	if ev.Resync {
		s.resync = true
	}
	s.mu.Unlock()
}

// NeedsResync reports whether the server signalled that this session's
// event stream has a gap (its member queue overflowed and events were
// dropped). Replaying History clears the flag.
func (s *Session) NeedsResync() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resync
}

// Choice sends a presentation selection for this user.
func (s *Session) Choice(variable, value string) error {
	return s.ChoiceCtx(context.Background(), variable, value)
}

// ChoiceCtx is Choice bounded by ctx.
func (s *Session) ChoiceCtx(ctx context.Context, variable, value string) error {
	return s.client.rpc.CallCtx(ctx, proto.MChoice, proto.ChoiceReq{
		Room: s.Room, User: s.client.user, Variable: variable, Value: value,
	}, nil)
}

// Operation applies a media operation (§4.2) and returns the derived
// variable name.
func (s *Session) Operation(component, op, activeWhen string, private bool) (string, error) {
	return s.OperationCtx(context.Background(), component, op, activeWhen, private)
}

// OperationCtx is Operation bounded by ctx.
func (s *Session) OperationCtx(ctx context.Context, component, op, activeWhen string, private bool) (string, error) {
	var resp proto.OperationResp
	err := s.client.rpc.CallCtx(ctx, proto.MOperation, proto.OperationReq{
		Room: s.Room, User: s.client.user,
		Component: component, Op: op, ActiveWhen: activeWhen, Private: private,
	}, &resp)
	return resp.DerivedVar, err
}

// AnnotateText writes a text element on an image object.
func (s *Session) AnnotateText(objectID uint64, x, y int, text string, intensity float64) (int, error) {
	var resp proto.AnnotateResp
	err := s.client.rpc.Call(proto.MAnnotate, proto.AnnotateReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
		Kind: int(image.TextElement), X1: x, Y1: y, Text: text, Intensity: intensity,
	}, &resp)
	return resp.AnnotationID, err
}

// AnnotateLine writes a line element on an image object.
func (s *Session) AnnotateLine(objectID uint64, x1, y1, x2, y2 int, intensity float64) (int, error) {
	var resp proto.AnnotateResp
	err := s.client.rpc.Call(proto.MAnnotate, proto.AnnotateReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
		Kind: int(image.LineElement), X1: x1, Y1: y1, X2: x2, Y2: y2, Intensity: intensity,
	}, &resp)
	return resp.AnnotationID, err
}

// DeleteAnnotation removes an overlay element.
func (s *Session) DeleteAnnotation(objectID uint64, annotationID int) error {
	return s.client.rpc.Call(proto.MDeleteAnnotation, proto.DeleteAnnotationReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID, AnnotationID: annotationID,
	}, nil)
}

// Freeze locks an object against edits by other partners.
func (s *Session) Freeze(objectID uint64) error {
	return s.client.rpc.Call(proto.MFreeze, proto.FreezeReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
	}, nil)
}

// Release lifts a freeze this user holds.
func (s *Session) Release(objectID uint64) error {
	return s.client.rpc.Call(proto.MRelease, proto.ReleaseReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
	}, nil)
}

// ShareSearch publishes voice-search results to the room.
func (s *Session) ShareSearch(speaker bool, keyword string, hits []voice.Hit) error {
	return s.client.rpc.Call(proto.MShareSearch, proto.ShareSearchReq{
		Room: s.Room, User: s.client.user, Speaker: speaker, Keyword: keyword, Hits: hits,
	}, nil)
}

// Chat sends a free-text message to the room.
func (s *Session) Chat(text string) error {
	return s.ChatCtx(context.Background(), text)
}

// ChatCtx is Chat bounded by ctx.
func (s *Session) ChatCtx(ctx context.Context, text string) error {
	return s.client.rpc.CallCtx(ctx, proto.MChat, proto.ChatReq{
		Room: s.Room, User: s.client.user, Text: text,
	}, nil)
}

// StartBroadcast takes the floor: every member mirrors this user's
// presentation until StopBroadcast.
func (s *Session) StartBroadcast() error {
	return s.client.rpc.Call(proto.MBroadcastStart, proto.BroadcastReq{
		Room: s.Room, User: s.client.user,
	}, nil)
}

// StopBroadcast releases the floor (presenter only).
func (s *Session) StopBroadcast() error {
	return s.client.rpc.Call(proto.MBroadcastStop, proto.BroadcastReq{
		Room: s.Room, User: s.client.user,
	}, nil)
}

// SaveMinutes persists the room's discussion results (transcript into the
// document, annotation overlays into the image objects) and returns the
// new minutes component's name.
func (s *Session) SaveMinutes() (string, error) {
	var resp proto.SaveMinutesResp
	err := s.client.rpc.Call(proto.MSaveMinutes, proto.SaveMinutesReq{
		Room: s.Room, User: s.client.user,
	}, &resp)
	return resp.Component, err
}

// History replays room events newer than since.
func (s *Session) History(since uint64) ([]room.Event, error) {
	return s.HistoryCtx(context.Background(), since)
}

// HistoryCtx is History bounded by ctx. A successful replay clears the
// session's resync flag: the returned events cover any gap the server's
// queue overflow opened.
func (s *Session) HistoryCtx(ctx context.Context, since uint64) ([]room.Event, error) {
	var resp proto.HistoryResp
	if err := s.client.rpc.CallCtx(ctx, proto.MHistory, proto.HistoryReq{Room: s.Room, Since: since}, &resp); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.resync = false
	s.mu.Unlock()
	return resp.Events, nil
}

// Leave exits the room.
func (s *Session) Leave() error {
	return s.LeaveCtx(context.Background())
}

// LeaveCtx is Leave bounded by ctx.
func (s *Session) LeaveCtx(ctx context.Context) error {
	return s.client.rpc.CallCtx(ctx, proto.MLeaveRoom, proto.LeaveRoomReq{
		Room: s.Room, User: s.client.user,
	}, nil)
}

// WarmBuffer prefetches likely payloads into the session buffer (§4.4),
// given the current view's choices, up to budget bytes.
func (s *Session) WarmBuffer(choices cpnet.Outcome, budget int64) (int, error) {
	if s.Buffer == nil {
		return 0, fmt.Errorf("client: session has no buffer")
	}
	return s.Buffer.Warm(s.Doc, choices, budget)
}
