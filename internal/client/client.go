// Package client implements the client module of the paper (§3): it
// presents documents, forwards the viewer's interactions to the
// interaction server, and receives both direct responses and pushed room
// events. It also hosts the §4.4 client-side buffer: a prefetch cache the
// session warms after every presentation change.
package client

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/prefetch"
	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/wire"
)

// connState tracks the client's connection lifecycle.
type connState int

const (
	stateActive connState = iota
	stateReconnecting
	stateClosed
)

// Client is one user's connection to the interaction server. With
// reconnection enabled (Options.Reconnect via DialWith/NewOverDialer) a
// dropped connection is redialed with exponential backoff and every
// joined room is resumed from its last seen event sequence.
type Client struct {
	user string
	dial DialFunc // nil: connection loss is terminal
	opts Options

	mu       sync.Mutex
	rpc      *wire.Client
	state    connState
	gen      uint64 // bumped per (re)connect; stale supervisors stand down
	sessions map[string]*Session
	events   chan room.Event
	// Prefetch pushes that raced a Join: the server's QoS loop can push
	// before the Join response is processed and the session installed.
	// Stashed (bounded) until JoinCtx drains them into the new session's
	// buffer — dropping them would lose the payload for good, since the
	// server marks each object as pushed exactly once.
	pendingPrefetch      map[string][]proto.PrefetchPush
	pendingPrefetchBytes int64

	closeCh   chan struct{}
	closeOnce sync.Once

	// resolver is the cluster-endpoint picker (nil outside
	// NewOverResolver); migrateMu serializes redirect-following
	// connection migrations.
	resolver  *resolver
	migrateMu sync.Mutex

	attempts, successes, failures, gaveUp atomic.Uint64
	redirectsFollowed                     atomic.Uint64

	// digests is the digest-keyed media cache (nil unless
	// Options.DigestCacheBytes is set).
	digests *digestCache
}

// eventQueueSize bounds the locally buffered pushed events.
const eventQueueSize = 1024

// maxPendingPrefetch bounds the bytes stashed for prefetch pushes whose
// Join is still in flight; pushes beyond it are dropped.
const maxPendingPrefetch = 8 << 20

// Dial connects to the interaction server at addr as the given user.
// The connection does not auto-reconnect; use DialWith for that.
func Dial(addr, user string) (*Client, error) {
	return DialWith(addr, user, Options{})
}

// DialWith connects to addr with explicit fault-tolerance options.
func DialWith(addr, user string, opts Options) (*Client, error) {
	return NewOverDialer(netDialer(addr), user, opts)
}

// NewOverDialer builds a client over a custom dial function (a
// netsim-faulted dialer in tests, or any tunneled transport). The
// initial connect happens synchronously; with opts.Reconnect, later
// drops redial through the same function.
func NewOverDialer(dial DialFunc, user string, opts Options) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user name")
	}
	if dial == nil {
		return nil, fmt.Errorf("client: nil dial function")
	}
	opts.normalize()
	c := newClient(user, dial, opts)
	ctx, cancel := context.WithTimeout(context.Background(), opts.ConnectTimeout)
	defer cancel()
	conn, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	c.attach(opts.newWireClient(conn))
	return c, nil
}

// NewOverConn wraps an established connection (in-process tests, or a
// netsim-throttled conn). Connection loss is terminal: there is nothing
// to redial.
func NewOverConn(conn net.Conn, user string) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("client: empty user name")
	}
	opts := Options{}
	opts.normalize()
	c := newClient(user, nil, opts)
	c.attach(opts.newWireClient(conn))
	return c, nil
}

func newClient(user string, dial DialFunc, opts Options) *Client {
	c := &Client{
		user:     user,
		dial:     dial,
		opts:     opts,
		sessions: make(map[string]*Session),
		events:   make(chan room.Event, eventQueueSize),
		closeCh:  make(chan struct{}),
	}
	if opts.DigestCacheBytes > 0 {
		c.digests = newDigestCache(opts.DigestCacheBytes)
	}
	return c
}

// attach installs rpc as the live connection: push handler, per-call
// deadline, and the supervisor that watches for connection death.
// Callers must not hold c.mu.
func (c *Client) attach(rpc *wire.Client) {
	rpc.OnPush(c.onPush)
	if c.opts.CallTimeout > 0 {
		rpc.SetCallTimeout(c.opts.CallTimeout)
	}
	c.mu.Lock()
	c.rpc = rpc
	c.state = stateActive
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	go c.supervise(rpc, gen)
}

// onPush routes a pushed room event: events for a joined room pass the
// session's delivery gate (exactly-once across reconnects), everything
// else flows straight through. Prefetch pushes land in the session's
// buffer without surfacing on the event stream.
func (c *Client) onPush(method string, body wire.Body) {
	if method == proto.MPrefetchPush {
		var pp proto.PrefetchPush
		if err := body.Decode(&pp); err != nil {
			return
		}
		c.mu.Lock()
		s := c.sessions[pp.Room]
		if s == nil {
			// The Join for this room may still be in flight; stash the
			// payload for JoinCtx to drain into the session buffer.
			if c.pendingPrefetchBytes+int64(len(pp.Data)) <= maxPendingPrefetch {
				if c.pendingPrefetch == nil {
					c.pendingPrefetch = make(map[string][]proto.PrefetchPush)
				}
				c.pendingPrefetch[pp.Room] = append(c.pendingPrefetch[pp.Room], pp)
				c.pendingPrefetchBytes += int64(len(pp.Data))
			}
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		if s.Buffer != nil {
			s.Buffer.Inject(pp.ObjectID, string(pp.Digest), pp.Data)
		}
		return
	}
	if method != proto.MEvent {
		return
	}
	var ev room.Event
	if err := body.Decode(&ev); err != nil {
		return
	}
	c.mu.Lock()
	s := c.sessions[ev.Room]
	c.mu.Unlock()
	if s != nil && !s.admit(ev) {
		return
	}
	c.emit(ev)
}

// emit hands an event to the local stream, shedding the oldest buffered
// event when full; History resynchronizes.
func (c *Client) emit(ev room.Event) {
	select {
	case c.events <- ev:
	default:
		select {
		case <-c.events:
		default:
		}
		select {
		case c.events <- ev:
		default:
		}
	}
}

// User returns the client's user name.
func (c *Client) User() string { return c.user }

// Events returns the pushed room-event stream.
func (c *Client) Events() <-chan room.Event { return c.events }

// Close drops the connection and stops any reconnection. Server-side,
// the user's sessions detach and expire after the grace period.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil
	}
	c.state = stateClosed
	rpc := c.rpc
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.closeCh) })
	if rpc != nil {
		return rpc.Close()
	}
	return nil
}

// ListDocuments returns stored document ids and titles.
func (c *Client) ListDocuments() (ids, titles []string, err error) {
	return c.ListDocumentsCtx(context.Background())
}

// ListDocumentsCtx is ListDocuments bounded by ctx.
func (c *Client) ListDocumentsCtx(ctx context.Context) (ids, titles []string, err error) {
	var resp proto.ListDocumentsResp
	if err := c.call(ctx, proto.MListDocuments, &proto.ListDocumentsReq{}, &resp); err != nil {
		return nil, nil, err
	}
	return resp.IDs, resp.Titles, nil
}

// Stats fetches the server's live metrics snapshot: per-method latency
// percentiles, named counters, gauges, and per-room status.
func (c *Client) Stats() (*proto.StatsResp, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats bounded by ctx.
func (c *Client) StatsCtx(ctx context.Context) (*proto.StatsResp, error) {
	var resp proto.StatsResp
	if err := c.call(ctx, proto.MStats, proto.StatsReq{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Traces fetches recent slow/errored request traces from the server's
// ring, newest first. A non-zero id filters to that trace; limit <= 0
// returns all retained.
func (c *Client) Traces(id uint64, limit int) ([]proto.TraceInfo, error) {
	return c.TracesCtx(context.Background(), id, limit)
}

// TracesCtx is Traces bounded by ctx.
func (c *Client) TracesCtx(ctx context.Context, id uint64, limit int) ([]proto.TraceInfo, error) {
	var resp proto.TracesResp
	if err := c.call(ctx, proto.MTraces, proto.TracesReq{ID: id, Limit: limit}, &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// GetDocument fetches and decodes a document.
func (c *Client) GetDocument(docID string) (*document.Document, error) {
	return c.GetDocumentCtx(context.Background(), docID)
}

// GetDocumentCtx is GetDocument bounded by ctx.
func (c *Client) GetDocumentCtx(ctx context.Context, docID string) (*document.Document, error) {
	var resp proto.GetDocumentResp
	if err := c.call(ctx, proto.MGetDocument, &proto.GetDocumentReq{DocID: docID}, &resp); err != nil {
		return nil, err
	}
	return document.Unmarshal(resp.DocData)
}

// GetImage fetches an image object and decodes its raster.
func (c *Client) GetImage(id uint64) (*image.Gray, string, error) {
	resp, err := c.getImageResp(id)
	if err != nil {
		return nil, "", err
	}
	g, err := image.Decode(resp.Data)
	if err != nil {
		return nil, "", err
	}
	return g, resp.Texts, nil
}

// GetImageBytes fetches an image object's raw payload (for the prefetch
// cache, which stores bytes).
func (c *Client) GetImageBytes(id uint64) ([]byte, error) {
	resp, err := c.getImageResp(id)
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// getImageResp is the shared image fetch, conditional when the digest
// cache knows the object.
func (c *Client) getImageResp(id uint64) (*proto.GetImageResp, error) {
	key := fmt.Sprintf("img:%d", id)
	known, cached, _ := c.cacheLookup(key)
	var resp proto.GetImageResp
	if err := c.call(context.Background(), proto.MGetImage, &proto.GetImageReq{ID: id, IfDigestAbsent: known}, &resp); err != nil {
		return nil, err
	}
	if resp.NotModified {
		if known == nil {
			return nil, fmt.Errorf("client: server elided image %d without a conditional request", id)
		}
		c.digests.hits.Add(1)
		resp.Data = cached
		return &resp, nil
	}
	c.cacheStore(key, resp.Digest, resp.Data)
	return &resp, nil
}

// GetAudio fetches an audio object: PCM bytes plus segmentation metadata.
func (c *Client) GetAudio(id uint64) (pcm, sectors []byte, filename string, err error) {
	key := fmt.Sprintf("aud:%d", id)
	known, cached, _ := c.cacheLookup(key)
	var resp proto.GetAudioResp
	if err := c.call(context.Background(), proto.MGetAudio, &proto.GetAudioReq{ID: id, IfDigestAbsent: known}, &resp); err != nil {
		return nil, nil, "", err
	}
	if resp.NotModified {
		if known == nil {
			return nil, nil, "", fmt.Errorf("client: server elided audio %d without a conditional request", id)
		}
		c.digests.hits.Add(1)
		return cached, resp.Sectors, resp.Filename, nil
	}
	c.cacheStore(key, resp.Digest, resp.Data)
	return resp.Data, resp.Sectors, resp.Filename, nil
}

// GetCmp fetches a multi-layer stream truncated to maxLayers (0 = all)
// and decodes it at that fidelity. Only the untruncated fetch can be
// conditional — the digest addresses the full stream.
func (c *Client) GetCmp(id uint64, maxLayers int) (*image.Gray, int, error) {
	var known, cached []byte
	var key string
	if maxLayers == 0 {
		key = fmt.Sprintf("cmp:%d", id)
		known, cached, _ = c.cacheLookup(key)
	}
	var resp proto.GetCmpResp
	if err := c.call(context.Background(), proto.MGetCmp, &proto.GetCmpReq{ID: id, MaxLayers: maxLayers, IfDigestAbsent: known}, &resp); err != nil {
		return nil, 0, err
	}
	if resp.NotModified {
		if known == nil {
			return nil, 0, fmt.Errorf("client: server elided stream %d without a conditional request", id)
		}
		c.digests.hits.Add(1)
		resp.Data = cached
	} else if key != "" {
		c.cacheStore(key, resp.Digest, resp.Data)
	}
	stream, err := compress.Unmarshal(resp.Header, resp.Data)
	if err != nil {
		return nil, 0, err
	}
	g, err := stream.Decode(0)
	if err != nil {
		return nil, 0, err
	}
	return g, len(resp.Data), nil
}

// cacheLookup consults the digest cache when enabled.
func (c *Client) cacheLookup(key string) (digest, data []byte, ok bool) {
	if c.digests == nil {
		return nil, nil, false
	}
	return c.digests.lookup(key)
}

// cacheStore records a fetched payload in the digest cache (a miss, by
// definition — the payload crossed the wire).
func (c *Client) cacheStore(key string, digest, data []byte) {
	if c.digests == nil {
		return
	}
	c.digests.misses.Add(1)
	c.digests.store(key, digest, data)
}

// Session is the client's presence in one shared room.
type Session struct {
	client *Client
	Room   string
	docID  string // for resume: rebind the room if it must be recreated
	// Doc is the session's local copy of the document.
	Doc *document.Document
	// View is the latest presentation pushed or computed for this user.
	mu   sync.Mutex
	view document.View
	// resync is set when a pushed event carries the server's queue-
	// overflow hint (events were dropped; replay from History), and when
	// a reconnect could not replay the outage exactly.
	resync bool
	// lastSeq gates pushed-event delivery: events at or below it already
	// reached the stream, so replays across reconnects drop out. resuming
	// parks live pushes in pending while a reconnect replays the outage,
	// preserving order.
	lastSeq  uint64
	resuming bool
	pending  []room.Event
	// Buffer is the §4.4 prefetch cache (nil if disabled).
	Buffer *prefetch.Prefetcher
}

// admit decides whether a pushed event reaches the client's stream.
// During a resume the event parks in pending (delivered, gated, after
// the replay); otherwise duplicates at or below lastSeq drop out.
func (s *Session) admit(ev room.Event) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resuming {
		if len(s.pending) < eventQueueSize {
			s.pending = append(s.pending, ev)
		}
		return false
	}
	return s.admitLocked(ev)
}

func (s *Session) admitLocked(ev room.Event) bool {
	if ev.Seq != 0 && ev.Seq <= s.lastSeq {
		return false
	}
	if ev.Seq != 0 {
		s.lastSeq = ev.Seq
	}
	return true
}

// beginResume parks the session for replay: live pushes buffer in
// pending until finishResume, and the returned sequence is the replay
// cursor for the Resume request.
func (s *Session) beginResume() (since uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resuming = true
	s.pending = nil
	return s.lastSeq
}

// abortResume re-opens the delivery gate after a failed resume (budget
// exhausted or client closed), flushing parked events so the stream
// does not silently stall.
func (s *Session) abortResume() {
	s.mu.Lock()
	pending := s.pending
	s.pending = nil
	s.resuming = false
	// Emit under the lock: a racing push must not overtake the flush
	// (emit is non-blocking, so holding s.mu here cannot deadlock).
	for _, ev := range pending {
		if s.admitLocked(ev) {
			s.client.emit(ev)
		}
	}
	s.mu.Unlock()
}

// finishResume folds a reconnect's JoinRoom response into the session:
// refresh view/document, emit the replayed outage events then any
// pushes that raced in, all through the sequence gate so nothing is
// delivered twice.
func (s *Session) finishResume(resp *proto.JoinRoomResp) {
	s.mu.Lock()
	if !resp.Resumed || !resp.Complete {
		// The outage cannot be replayed exactly (session expired into a
		// fresh join, or the change buffer was trimmed): local state is
		// suspect, make the gap visible exactly like a queue overflow.
		s.resync = true
	}
	if !resp.Resumed && resp.LastSeq < s.lastSeq {
		// Fresh join into a room younger than our gate: the room was
		// recreated and sequences restarted. Reset or we would swallow
		// every new event.
		s.lastSeq = 0
	}
	if len(resp.DocData) > 0 {
		if doc, err := document.Unmarshal(resp.DocData); err == nil {
			s.Doc = doc
		}
	}
	s.view = document.View{Outcome: resp.Outcome, Visible: resp.Visible}
	// Emit under the lock: once resuming clears, a racing push may pass
	// admit and emit — it must not overtake the replay (emit is
	// non-blocking, so holding s.mu here cannot deadlock).
	for _, ev := range resp.History {
		if s.admitLocked(ev) {
			s.client.emit(ev)
		}
	}
	for _, ev := range s.pending {
		if s.admitLocked(ev) {
			s.client.emit(ev)
		}
	}
	s.pending = nil
	s.resuming = false
	s.mu.Unlock()
}

// LastSeq reports the highest event sequence delivered to this session's
// stream — the resume cursor a reconnect replays from.
func (s *Session) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Join enters a room around a document. bufferBytes > 0 enables the
// client-side prefetch cache of that size.
func (c *Client) Join(roomName, docID string, bufferBytes int64) (*Session, []room.Event, error) {
	return c.JoinCtx(context.Background(), roomName, docID, bufferBytes)
}

// JoinCtx is Join bounded by ctx.
func (c *Client) JoinCtx(ctx context.Context, roomName, docID string, bufferBytes int64) (*Session, []room.Event, error) {
	var resp proto.JoinRoomResp
	err := c.call(ctx, proto.MJoinRoom, &proto.JoinRoomReq{
		Room: roomName, DocID: docID, User: c.user,
	}, &resp)
	if err != nil {
		return nil, nil, err
	}
	doc, err := document.Unmarshal(resp.DocData)
	if err != nil {
		return nil, nil, err
	}
	s := &Session{
		client: c,
		Room:   roomName,
		docID:  docID,
		Doc:    doc,
		view:   document.View{Outcome: resp.Outcome, Visible: resp.Visible},
	}
	// Seed the delivery gate from the catch-up history: everything in it
	// is already known, while our own join announcement (and all later
	// events) carries a higher sequence and must still flow through.
	for _, ev := range resp.History {
		if ev.Seq > s.lastSeq {
			s.lastSeq = ev.Seq
		}
	}
	if bufferBytes > 0 {
		cache, err := prefetch.NewCache(bufferBytes)
		if err != nil {
			return nil, nil, err
		}
		s.Buffer, err = prefetch.NewPrefetcher(cache, c.GetImageBytes)
		if err != nil {
			return nil, nil, err
		}
	}
	c.mu.Lock()
	c.sessions[roomName] = s
	pending := c.pendingPrefetch[roomName]
	delete(c.pendingPrefetch, roomName)
	for _, pp := range pending {
		c.pendingPrefetchBytes -= int64(len(pp.Data))
	}
	c.mu.Unlock()
	// Prefetch pushes that raced this join land in the buffer now (or are
	// discarded if this session runs without one).
	if s.Buffer != nil {
		for _, pp := range pending {
			s.Buffer.Inject(pp.ObjectID, string(pp.Digest), pp.Data)
		}
	}
	return s, resp.History, nil
}

// User returns the user this session belongs to.
func (s *Session) User() string { return s.client.user }

// View returns the latest presentation for this user.
func (s *Session) View() document.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// ApplyEvent folds a pushed event into the session (clients call this for
// each event from Events()); EvPresentation events update the view, and
// an event carrying the Resync hint flags the session (NeedsResync) —
// the server dropped older events from this member's queue, so the
// local stream has a gap to fill from History.
func (s *Session) ApplyEvent(ev room.Event) {
	if ev.Room != s.Room {
		return
	}
	s.mu.Lock()
	if ev.Kind == room.EvPresentation {
		s.view = document.View{Outcome: ev.Outcome, Visible: ev.Visible}
	}
	if ev.Resync {
		s.resync = true
	}
	s.mu.Unlock()
}

// NeedsResync reports whether the server signalled that this session's
// event stream has a gap (its member queue overflowed and events were
// dropped). Replaying History clears the flag.
func (s *Session) NeedsResync() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resync
}

// Choice sends a presentation selection for this user.
func (s *Session) Choice(variable, value string) error {
	return s.ChoiceCtx(context.Background(), variable, value)
}

// ChoiceCtx is Choice bounded by ctx.
func (s *Session) ChoiceCtx(ctx context.Context, variable, value string) error {
	return s.client.call(ctx, proto.MChoice, &proto.ChoiceReq{
		Room: s.Room, User: s.client.user, Variable: variable, Value: value,
	}, nil)
}

// Operation applies a media operation (§4.2) and returns the derived
// variable name.
func (s *Session) Operation(component, op, activeWhen string, private bool) (string, error) {
	return s.OperationCtx(context.Background(), component, op, activeWhen, private)
}

// OperationCtx is Operation bounded by ctx.
func (s *Session) OperationCtx(ctx context.Context, component, op, activeWhen string, private bool) (string, error) {
	var resp proto.OperationResp
	err := s.client.call(ctx, proto.MOperation, proto.OperationReq{
		Room: s.Room, User: s.client.user,
		Component: component, Op: op, ActiveWhen: activeWhen, Private: private,
	}, &resp)
	return resp.DerivedVar, err
}

// AnnotateText writes a text element on an image object.
func (s *Session) AnnotateText(objectID uint64, x, y int, text string, intensity float64) (int, error) {
	var resp proto.AnnotateResp
	err := s.client.call(context.Background(), proto.MAnnotate, proto.AnnotateReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
		Kind: int(image.TextElement), X1: x, Y1: y, Text: text, Intensity: intensity,
	}, &resp)
	return resp.AnnotationID, err
}

// AnnotateLine writes a line element on an image object.
func (s *Session) AnnotateLine(objectID uint64, x1, y1, x2, y2 int, intensity float64) (int, error) {
	var resp proto.AnnotateResp
	err := s.client.call(context.Background(), proto.MAnnotate, proto.AnnotateReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
		Kind: int(image.LineElement), X1: x1, Y1: y1, X2: x2, Y2: y2, Intensity: intensity,
	}, &resp)
	return resp.AnnotationID, err
}

// DeleteAnnotation removes an overlay element.
func (s *Session) DeleteAnnotation(objectID uint64, annotationID int) error {
	return s.client.call(context.Background(), proto.MDeleteAnnotation, proto.DeleteAnnotationReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID, AnnotationID: annotationID,
	}, nil)
}

// Freeze locks an object against edits by other partners.
func (s *Session) Freeze(objectID uint64) error {
	return s.client.call(context.Background(), proto.MFreeze, proto.FreezeReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
	}, nil)
}

// Release lifts a freeze this user holds.
func (s *Session) Release(objectID uint64) error {
	return s.client.call(context.Background(), proto.MRelease, proto.ReleaseReq{
		Room: s.Room, User: s.client.user, ObjectID: objectID,
	}, nil)
}

// ShareSearch publishes voice-search results to the room.
func (s *Session) ShareSearch(speaker bool, keyword string, hits []voice.Hit) error {
	return s.client.call(context.Background(), proto.MShareSearch, proto.ShareSearchReq{
		Room: s.Room, User: s.client.user, Speaker: speaker, Keyword: keyword, Hits: hits,
	}, nil)
}

// Chat sends a free-text message to the room.
func (s *Session) Chat(text string) error {
	return s.ChatCtx(context.Background(), text)
}

// ChatCtx is Chat bounded by ctx.
func (s *Session) ChatCtx(ctx context.Context, text string) error {
	return s.client.call(ctx, proto.MChat, &proto.ChatReq{
		Room: s.Room, User: s.client.user, Text: text,
	}, nil)
}

// StartBroadcast takes the floor: every member mirrors this user's
// presentation until StopBroadcast.
func (s *Session) StartBroadcast() error {
	return s.client.call(context.Background(), proto.MBroadcastStart, proto.BroadcastReq{
		Room: s.Room, User: s.client.user,
	}, nil)
}

// StopBroadcast releases the floor (presenter only).
func (s *Session) StopBroadcast() error {
	return s.client.call(context.Background(), proto.MBroadcastStop, proto.BroadcastReq{
		Room: s.Room, User: s.client.user,
	}, nil)
}

// SaveMinutes persists the room's discussion results (transcript into the
// document, annotation overlays into the image objects) and returns the
// new minutes component's name.
func (s *Session) SaveMinutes() (string, error) {
	var resp proto.SaveMinutesResp
	err := s.client.call(context.Background(), proto.MSaveMinutes, proto.SaveMinutesReq{
		Room: s.Room, User: s.client.user,
	}, &resp)
	return resp.Component, err
}

// History replays room events newer than since.
func (s *Session) History(since uint64) ([]room.Event, error) {
	return s.HistoryCtx(context.Background(), since)
}

// HistoryCtx is History bounded by ctx. A successful replay clears the
// session's resync flag: the returned events cover any gap the server's
// queue overflow opened.
func (s *Session) HistoryCtx(ctx context.Context, since uint64) ([]room.Event, error) {
	var resp proto.HistoryResp
	if err := s.client.call(ctx, proto.MHistory, &proto.HistoryReq{Room: s.Room, Since: since}, &resp); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.resync = false
	s.mu.Unlock()
	return resp.Events, nil
}

// Leave exits the room.
func (s *Session) Leave() error {
	return s.LeaveCtx(context.Background())
}

// LeaveCtx is Leave bounded by ctx. The session stops being resumed on
// reconnect whether or not the server acknowledged the leave.
func (s *Session) LeaveCtx(ctx context.Context) error {
	c := s.client
	c.mu.Lock()
	if c.sessions[s.Room] == s {
		delete(c.sessions, s.Room)
	}
	c.mu.Unlock()
	return c.call(ctx, proto.MLeaveRoom, &proto.LeaveRoomReq{
		Room: s.Room, User: s.client.user,
	}, nil)
}

// WarmBuffer prefetches likely payloads into the session buffer (§4.4),
// given the current view's choices, up to budget bytes.
func (s *Session) WarmBuffer(choices cpnet.Outcome, budget int64) (int, error) {
	if s.Buffer == nil {
		return 0, fmt.Errorf("client: session has no buffer")
	}
	return s.Buffer.Warm(s.Doc, choices, budget)
}
