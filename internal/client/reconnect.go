package client

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"time"

	"mmconf/internal/proto"
	"mmconf/internal/wire"
)

// This file is the client half of the fault-tolerant session layer: a
// supervisor watches the wire connection, and when it dies redials with
// exponential backoff, then resumes every joined room from its last seen
// event sequence (the server holds dropped sessions for a grace period —
// see room.Detach/Resume). In-flight and new calls during an outage fail
// fast with ErrReconnecting instead of hanging.

// ErrReconnecting reports a call attempted while the connection is down
// and being redialed. The call was not sent; retry after the stream
// resumes (or treat it as failed).
var ErrReconnecting = errors.New("client: reconnecting")

// ErrClosed reports a call on a client that is closed — by Close, or
// because the reconnect budget ran out.
var ErrClosed = errors.New("client: closed")

// DialFunc establishes the client's transport. ctx bounds the attempt.
type DialFunc func(ctx context.Context) (net.Conn, error)

// netDialer is the default TCP DialFunc for an address.
func netDialer(addr string) DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

// Backoff shapes the redial schedule: attempt n sleeps
// Base·Factor^(n-1), capped at Max, with ±Jitter fraction of noise so a
// fleet of dropped clients does not redial in lockstep. Jitter 0 takes
// the 0.2 default; pass a negative Jitter for a deterministic schedule.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64
}

// delay computes the sleep before the nth redial attempt (1-based).
func (b Backoff) delay(attempt int) time.Duration {
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt-1))
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rand.Float64()-1)
	}
	return time.Duration(d)
}

// Options tunes the client's fault tolerance. The zero value keeps the
// historical behavior: no reconnection, 5s connect timeout, unbounded
// calls.
type Options struct {
	// Reconnect enables automatic redial + session resume after the
	// connection drops.
	Reconnect bool
	// MaxAttempts bounds one outage's redial budget (default 8;
	// negative: unlimited). Exhausting it closes the client.
	MaxAttempts int
	// Backoff shapes the redial schedule (default 50ms base, 2s max,
	// factor 2, jitter 0.2).
	Backoff Backoff
	// ConnectTimeout bounds each dial attempt (default 5s).
	ConnectTimeout time.Duration
	// CallTimeout bounds every call that has no caller deadline
	// (default 0: unbounded) — without it a silent partition hangs
	// calls forever.
	CallTimeout time.Duration
	// RetryOverloaded retries a call shed by the server's admission
	// control up to this many times, sleeping the server's retry-after
	// hint between attempts (default 0: overload errors surface to the
	// caller immediately; negative is treated as 0).
	RetryOverloaded int
	// GobOnly skips wire-protocol negotiation and speaks the legacy gob
	// protocol, byte-for-byte what a pre-v2 client sends — the
	// mixed-version interop knob (and an escape hatch against a codec
	// bug in production).
	GobOnly bool
	// DigestCacheBytes bounds the client's digest-keyed media cache
	// (default 0: disabled). With it on, repeat fetches of an unchanged
	// object send its known digest and the server elides the payload —
	// see digestcache.go.
	DigestCacheBytes int64
}

// newWireClient wraps conn honoring the negotiation knob.
func (o *Options) newWireClient(conn net.Conn) *wire.Client {
	if o.GobOnly {
		return wire.NewClientVersion(conn, wire.ProtoGob)
	}
	return wire.NewClient(conn)
}

// normalize fills defaulted fields in place.
func (o *Options) normalize() {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	if o.Backoff.Base <= 0 {
		o.Backoff.Base = 50 * time.Millisecond
	}
	if o.Backoff.Max <= 0 {
		o.Backoff.Max = 2 * time.Second
	}
	if o.Backoff.Factor < 1 {
		o.Backoff.Factor = 2
	}
	if o.Backoff.Jitter == 0 {
		o.Backoff.Jitter = 0.2
	}
	if o.Backoff.Jitter < 0 || o.Backoff.Jitter >= 1 {
		o.Backoff.Jitter = 0
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 5 * time.Second
	}
	if o.RetryOverloaded < 0 {
		o.RetryOverloaded = 0
	}
}

// ReconnectStats counts the client's redial activity.
type ReconnectStats struct {
	// Attempts counts dial attempts made by the reconnect loop;
	// Successes counts restored connections (sessions resumed);
	// Failures counts attempts that failed to dial or to resume.
	Attempts, Successes, Failures uint64
	// GaveUp counts outages that exhausted MaxAttempts and closed the
	// client.
	GaveUp uint64
	// Redirects counts cluster redirects followed: connection
	// migrations to a room's owning node (resolver clients only).
	Redirects uint64
}

// ReconnectStats reports the client's cumulative redial counters.
func (c *Client) ReconnectStats() ReconnectStats {
	return ReconnectStats{
		Attempts:  c.attempts.Load(),
		Successes: c.successes.Load(),
		Failures:  c.failures.Load(),
		GaveUp:    c.gaveUp.Load(),
		Redirects: c.redirectsFollowed.Load(),
	}
}

// call is the single RPC entry point for every client method: it fails
// fast while the connection is down, maps transport death to the typed
// reconnect errors, follows cluster redirects by migrating the
// connection to the owning node, and (with Options.RetryOverloaded)
// backs off per the server's retry-after hint when a request is shed
// by admission control, then retries.
func (c *Client) call(ctx context.Context, method string, req, resp any) error {
	hops := 0
	for retried := 0; ; {
		c.mu.Lock()
		gen := c.gen
		c.mu.Unlock()
		err := c.callOnce(ctx, method, req, resp)
		if err == nil {
			return nil
		}
		if c.handleRouting(ctx, gen, err, &hops) {
			continue
		}
		var oe *wire.OverloadError
		if !errors.As(err, &oe) || retried >= c.opts.RetryOverloaded {
			return err
		}
		retried++
		if werr := c.waitRetry(ctx, oe.RetryAfter); werr != nil {
			return fmt.Errorf("client: call %s: %w (while backing off from %v)", method, werr, err)
		}
	}
}

// waitRetry sleeps an overload backoff, aborting early when the caller
// gives up or the client closes.
func (c *Client) waitRetry(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.closeCh:
		return ErrClosed
	}
}

// callOnce issues one RPC attempt against the current connection.
func (c *Client) callOnce(ctx context.Context, method string, req, resp any) error {
	c.mu.Lock()
	rpc := c.rpc
	state := c.state
	c.mu.Unlock()
	switch state {
	case stateClosed:
		return fmt.Errorf("client: call %s: %w", method, ErrClosed)
	case stateReconnecting:
		return fmt.Errorf("client: call %s: %w", method, ErrReconnecting)
	}
	err := rpc.CallCtx(ctx, method, req, resp)
	if err != nil && errors.Is(err, wire.ErrClosed) && c.opts.Reconnect && c.dial != nil {
		// The transport died under the call; the supervisor is (or will
		// shortly be) redialing. Surface the typed state, not the raw
		// wire error.
		return fmt.Errorf("client: call %s: %w", method, ErrReconnecting)
	}
	return err
}

// supervise waits for the given connection to die and, if it is still
// the client's current one, starts the reconnect loop (or stands down:
// closed client, superseded connection, or reconnection disabled).
func (c *Client) supervise(rpc *wire.Client, gen uint64) {
	select {
	case <-rpc.Done():
	case <-c.closeCh:
		return
	}
	c.mu.Lock()
	if c.state != stateActive || c.gen != gen {
		c.mu.Unlock()
		return
	}
	if !c.opts.Reconnect || c.dial == nil {
		// Historical behavior: the drop is terminal, calls surface wire
		// errors directly.
		c.mu.Unlock()
		return
	}
	c.state = stateReconnecting
	sessions := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	for _, s := range sessions {
		s.beginResume()
	}
	c.reconnectLoop(sessions)
}

// reconnectLoop redials with backoff until the connection and every
// session are restored, the budget runs out, or the client closes.
func (c *Client) reconnectLoop(sessions []*Session) {
	// hint carries the server's retry-after from an overloaded resume
	// attempt: the next redial waits at least that long, so a fleet of
	// reconnecting clients does not re-stampede a saturated server.
	var hint time.Duration
	for attempt := 1; c.opts.MaxAttempts < 0 || attempt <= c.opts.MaxAttempts; attempt++ {
		delay := c.opts.Backoff.delay(attempt)
		if hint > delay {
			delay = hint
		}
		hint = 0
		select {
		case <-time.After(delay):
		case <-c.closeCh:
			for _, s := range sessions {
				s.abortResume()
			}
			return
		}
		c.attempts.Add(1)
		dctx, cancel := context.WithTimeout(context.Background(), c.opts.ConnectTimeout)
		conn, err := c.dial(dctx)
		cancel()
		if err != nil {
			c.failures.Add(1)
			continue
		}
		rpc := c.opts.newWireClient(conn)
		rpc.OnPush(c.onPush)
		if c.opts.CallTimeout > 0 {
			rpc.SetCallTimeout(c.opts.CallTimeout)
		}
		if err := c.resumeSessions(rpc, sessions); err != nil {
			// The fresh connection died during resume (or the server shed
			// the resume under overload); close it and pay another
			// attempt, honoring the server's retry-after if it sent one.
			var oe *wire.OverloadError
			if errors.As(err, &oe) {
				hint = oe.RetryAfter
			}
			rpc.Close()
			c.failures.Add(1)
			continue
		}
		c.mu.Lock()
		if c.state == stateClosed {
			c.mu.Unlock()
			rpc.Close()
			return
		}
		c.rpc = rpc
		c.state = stateActive
		c.gen++
		gen := c.gen
		c.mu.Unlock()
		c.successes.Add(1)
		go c.supervise(rpc, gen)
		return
	}
	// Budget exhausted: the outage is terminal.
	c.gaveUp.Add(1)
	c.mu.Lock()
	if c.state == stateReconnecting {
		c.state = stateClosed
	}
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.closeCh) })
	for _, s := range sessions {
		s.abortResume()
	}
}

// resumeSessions re-enters every joined room over a fresh connection,
// asking the server to resume the detached (user, room) session and
// replay from the last sequence this client delivered. A transport
// error aborts (the whole attempt retries); a server-side refusal marks
// just that session out of sync and moves on.
func (c *Client) resumeSessions(rpc *wire.Client, sessions []*Session) error {
	timeout := c.opts.CallTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	for _, s := range sessions {
		// Re-park the session for this attempt: a session restored by a
		// previous attempt whose connection then died mid-resume must
		// gate pushes again while its replay is re-fetched.
		since := s.beginResume()
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		var resp proto.JoinRoomResp
		err := rpc.CallCtx(ctx, proto.MJoinRoom, &proto.JoinRoomReq{
			Room: s.Room, DocID: s.docID, User: c.user,
			Resume: true, SinceSeq: since,
		}, &resp)
		cancel()
		var re *wire.RedirectError
		switch {
		case err == nil:
			s.finishResume(&resp)
		case errors.Is(err, wire.ErrClosed), errors.Is(err, context.DeadlineExceeded):
			// With a resolver, a resume that timed out silently is a
			// black-holed endpoint (partitioned node): rotate so the next
			// attempt tries somewhere else instead of pinning the loop.
			if c.resolver != nil && errors.Is(err, context.DeadlineExceeded) {
				c.resolver.rotate()
			}
			return err
		case errors.Is(err, wire.ErrOverloaded):
			// The server shed the resume: the session is still parked
			// server-side; retry the whole attempt after the hint rather
			// than marking this session out of sync.
			return err
		case errors.As(err, &re) && c.resolver != nil:
			// This node no longer owns the session's room: point the
			// resolver at the owner and retry the whole attempt there.
			c.resolver.prefer(re.Addr)
			return err
		case errors.Is(err, wire.ErrUnavailable) && c.resolver != nil:
			// The node cannot serve safely (minority side of a partition,
			// draining): rotate to the next endpoint and retry.
			c.resolver.rotate()
			return err
		default:
			// The server refused (room gone and not recreatable, doc
			// binding changed): this session cannot continue, but the
			// client and its other rooms still can.
			s.mu.Lock()
			s.resync = true
			s.mu.Unlock()
			s.abortResume()
		}
	}
	return nil
}
