package client

import (
	"testing"
	"time"
)

func TestBackoffDeterministicSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped at Max
		800 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterStaysBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for attempt := 1; attempt <= 4; attempt++ {
		base := Backoff{Base: b.Base, Max: b.Max, Factor: b.Factor}.delay(attempt)
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		for i := 0; i < 100; i++ {
			if d := b.delay(attempt); d < lo || d > hi {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

func TestOptionsNormalizeDefaults(t *testing.T) {
	var o Options
	o.normalize()
	if o.MaxAttempts != 8 {
		t.Errorf("MaxAttempts = %d", o.MaxAttempts)
	}
	if o.Backoff.Base != 50*time.Millisecond || o.Backoff.Max != 2*time.Second || o.Backoff.Factor != 2 {
		t.Errorf("Backoff = %+v", o.Backoff)
	}
	if o.Backoff.Jitter != 0.2 {
		t.Errorf("Jitter = %v, want default 0.2", o.Backoff.Jitter)
	}
	if o.ConnectTimeout != 5*time.Second {
		t.Errorf("ConnectTimeout = %v", o.ConnectTimeout)
	}
	// Negative jitter means an explicitly deterministic schedule.
	o = Options{Backoff: Backoff{Jitter: -1}}
	o.normalize()
	if o.Backoff.Jitter != 0 {
		t.Errorf("negative Jitter normalized to %v, want 0", o.Backoff.Jitter)
	}
	// Unlimited retries survive normalization.
	o = Options{MaxAttempts: -1}
	o.normalize()
	if o.MaxAttempts != -1 {
		t.Errorf("MaxAttempts = %d, want -1 preserved", o.MaxAttempts)
	}
}
