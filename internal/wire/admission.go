package wire

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"mmconf/internal/obs"
)

// This file is the overload-protection layer of the dispatch pipeline:
// a global concurrency limiter with a bounded, priority-aware wait queue
// (Limiter), a per-peer token-bucket rate limit (TokenBucket), and the
// Admission interceptor that threads both through every request. Past
// saturation the server sheds excess work quickly — with a typed
// OverloadError carrying a retry-after hint — instead of queueing
// unboundedly until every request misses its deadline.

// Priority classes order requests for admission: when the server is
// saturated, higher classes (lower values) are admitted first and shed
// last. Control traffic (join/resume/leave, metrics) keeps sessions
// alive and must survive overload; bulk media fetches are the first to
// go — they are retryable and each one is expensive.
type Priority int

const (
	// PriorityControl is session-control traffic: shed last.
	PriorityControl Priority = iota
	// PriorityInteractive is the conference hot path (choices, chat,
	// annotations): shed after bulk.
	PriorityInteractive
	// PriorityBulk is heavy object traffic (media fetches): shed first.
	PriorityBulk

	numPriorities = 3
)

// String names the class.
func (p Priority) String() string {
	switch p {
	case PriorityControl:
		return "control"
	case PriorityInteractive:
		return "interactive"
	case PriorityBulk:
		return "bulk"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// ShedPolicy selects how the limiter picks victims when its wait queue
// is full.
type ShedPolicy int

const (
	// ShedByPriority (the default) keeps per-class queues: freed slots go
	// to the highest-priority waiter, and an arriving higher-priority
	// request displaces the newest lower-priority waiter when the queue
	// is full.
	ShedByPriority ShedPolicy = iota
	// ShedFIFO ignores classes: one queue, arrivals beyond QueueDepth
	// are shed regardless of priority.
	ShedFIFO
)

// Shed reasons carried by OverloadError.Reason.
const (
	ShedReasonQueueFull = "queue full"
	ShedReasonDeadline  = "queue deadline exceeded"
	ShedReasonDisplaced = "displaced by higher priority"
	ShedReasonRate      = "per-peer rate limit"
)

// ErrOverloaded is the sentinel every admission-control rejection
// matches (errors.Is). The concrete error is *OverloadError, which
// carries the retry-after hint.
var ErrOverloaded = errors.New("wire: overloaded")

// OverloadError reports a request shed by admission control, with a
// server-computed hint for when a retry is likely to be admitted.
// Clients honor the hint instead of hammering a saturated server.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

// overloadSep joins reason and hint in the wire string form.
const (
	overloadPrefix = "wire: overloaded: "
	overloadSep    = "; retry after "
)

// Error renders the deterministic wire form ParseOverload inverts.
func (e *OverloadError) Error() string {
	return overloadPrefix + e.Reason + overloadSep + e.RetryAfter.String()
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ParseOverload recovers a typed overload error from its string form —
// the shape a response error takes after crossing the wire as a plain
// message. The client side uses it to hand callers back the typed
// *OverloadError with the server's retry-after hint intact.
func ParseOverload(msg string) (*OverloadError, bool) {
	rest, ok := strings.CutPrefix(msg, overloadPrefix)
	if !ok {
		return nil, false
	}
	i := strings.LastIndex(rest, overloadSep)
	if i < 0 {
		return nil, false
	}
	d, err := time.ParseDuration(rest[i+len(overloadSep):])
	if err != nil {
		return nil, false
	}
	return &OverloadError{Reason: rest[:i], RetryAfter: d}, true
}

// waiter is one queued request waiting for an execution slot. Exactly
// one value is ever delivered on ch: nil (slot granted) or an
// *OverloadError (displaced).
type waiter struct {
	ch chan error
}

// Limiter is a global concurrency limiter with a bounded wait queue:
// at most maxInflight requests execute at once, at most maxQueue wait,
// and everything beyond that is shed immediately. Under ShedByPriority
// the queue is segmented by class — freed slots go to control traffic
// first, and when the queue is full an arriving control request
// displaces the newest bulk waiter rather than being shed itself. A
// small reserve above maxInflight is held for control traffic so a
// join or stats call never waits behind a full complement of bulk
// transfers (the reserve is meaningful because control handlers are
// orders of magnitude cheaper than the bulk work the cap is sized for).
type Limiter struct {
	mu          sync.Mutex
	maxInflight int
	maxQueue    int
	reserve     int // extra slots only PriorityControl may occupy
	policy      ShedPolicy
	inflight    int
	queued      int
	queues      [numPriorities][]*waiter
	// svcEWMA tracks recent handler service time (ns); the retry-after
	// hint is the estimated queue drain time derived from it.
	svcEWMA float64
}

// NewLimiter builds a limiter admitting maxInflight concurrent requests
// with a wait queue of queueDepth. maxInflight < 1 is clamped to 1;
// queueDepth < 0 to 0 (no queue: saturation sheds immediately).
func NewLimiter(maxInflight, queueDepth int, policy ShedPolicy) *Limiter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Limiter{
		maxInflight: maxInflight,
		maxQueue:    queueDepth,
		reserve:     max(1, maxInflight/4),
		policy:      policy,
	}
}

// capFor is the inflight ceiling an arrival of the given class sees:
// control traffic may spill into the reserved lane.
func (l *Limiter) capFor(class Priority) int {
	if class == PriorityControl {
		return l.maxInflight + l.reserve
	}
	return l.maxInflight
}

// capForIndex is capFor keyed by wait-queue index. Under ShedFIFO the
// single shared queue mixes classes, so the reserve is not extended to
// queued waiters (Acquire's fast path still honors it per-class).
func (l *Limiter) capForIndex(i int) int {
	if l.policy != ShedFIFO && i == int(PriorityControl) {
		return l.maxInflight + l.reserve
	}
	return l.maxInflight
}

// classIndex maps a priority to its wait queue (one shared queue under
// ShedFIFO).
func (l *Limiter) classIndex(class Priority) int {
	if l.policy == ShedFIFO {
		return 0
	}
	if class < 0 || class >= numPriorities {
		return int(PriorityInteractive)
	}
	return int(class)
}

// Acquire takes an execution slot, waiting in the bounded queue up to
// queueTimeout (<= 0: as long as ctx allows). It returns nil with the
// slot held (pair with Release), an *OverloadError when shed, or
// ctx.Err() when the caller gave up first.
func (l *Limiter) Acquire(ctx context.Context, class Priority, queueTimeout time.Duration) error {
	l.mu.Lock()
	if l.inflight < l.capFor(class) {
		l.inflight++
		l.mu.Unlock()
		return nil
	}
	ci := l.classIndex(class)
	if l.queued >= l.maxQueue {
		// Full queue: a higher-priority arrival displaces the newest
		// waiter of the lowest queued class; everything else is shed.
		if !l.displaceLocked(ci) {
			err := l.overloadLocked(ShedReasonQueueFull)
			l.mu.Unlock()
			return err
		}
	}
	w := &waiter{ch: make(chan error, 1)}
	l.queues[ci] = append(l.queues[ci], w)
	l.queued++
	l.mu.Unlock()

	var deadline <-chan time.Time
	if queueTimeout > 0 {
		t := time.NewTimer(queueTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case err := <-w.ch:
		return err
	case <-deadline:
		// A concurrent grant wins (err nil): the caller runs and Releases.
		err, _ := l.abandon(w, ci, ShedReasonDeadline)
		return err
	case <-ctx.Done():
		err, granted := l.abandon(w, ci, "")
		if granted {
			// A concurrent Release granted the slot after the caller gave
			// up. The caller won't run, so hand the slot straight back —
			// otherwise it would leak and ratchet capacity down.
			l.Release(0)
		} else if err != nil {
			return err // displaced concurrently
		}
		return ctx.Err()
	}
}

// abandon removes w from its queue after a timeout or cancellation.
// If the slot was granted (or the waiter displaced) concurrently, that
// outcome wins: granted reports the slot-granted case — the caller now
// owns a slot it must either use (return err nil, run, Release) or
// return via Release. When w was still queued, err is the shed error
// for shedReason ("": nil, so the caller can surface its context error
// instead).
func (l *Limiter) abandon(w *waiter, ci int, shedReason string) (err error, granted bool) {
	l.mu.Lock()
	for i, q := range l.queues[ci] {
		if q == w {
			l.queues[ci] = append(l.queues[ci][:i], l.queues[ci][i+1:]...)
			l.queued--
			if shedReason != "" {
				err = l.overloadLocked(shedReason)
			}
			l.mu.Unlock()
			return err, false
		}
	}
	l.mu.Unlock()
	// Resolved concurrently: honor whatever was delivered — nil means a
	// Release granted the slot to w.
	err = <-w.ch
	return err, err == nil
}

// displaceLocked evicts the newest waiter of the lowest-priority
// nonempty class strictly below ci, making queue room for a
// higher-priority arrival. Callers hold l.mu.
func (l *Limiter) displaceLocked(ci int) bool {
	if l.policy != ShedByPriority {
		return false
	}
	for j := numPriorities - 1; j > ci; j-- {
		q := l.queues[j]
		if len(q) == 0 {
			continue
		}
		victim := q[len(q)-1]
		l.queues[j] = q[:len(q)-1]
		l.queued--
		victim.ch <- l.overloadLocked(ShedReasonDisplaced)
		return true
	}
	return false
}

// Release returns a slot after a request ran for d, handing freed
// capacity to the highest-priority waiters whose class ceiling admits
// them — a release out of the control reserve does not promote a bulk
// waiter past the main cap. d <= 0 records no service-time sample
// (a slot returned unused, e.g. granted to an already-cancelled
// waiter).
func (l *Limiter) Release(d time.Duration) {
	l.mu.Lock()
	if d > 0 {
		ns := float64(d)
		if l.svcEWMA == 0 {
			l.svcEWMA = ns
		} else {
			l.svcEWMA += 0.1 * (ns - l.svcEWMA)
		}
	}
	l.inflight--
	var grants []*waiter
	for i := range l.queues {
		for len(l.queues[i]) > 0 && l.inflight < l.capForIndex(i) {
			w := l.queues[i][0]
			l.queues[i] = l.queues[i][1:]
			l.queued--
			l.inflight++
			grants = append(grants, w)
		}
	}
	l.mu.Unlock()
	for _, w := range grants {
		w.ch <- nil
	}
}

// overloadLocked builds the shed error with the current retry-after
// estimate. Callers hold l.mu.
func (l *Limiter) overloadLocked(reason string) *OverloadError {
	return &OverloadError{Reason: reason, RetryAfter: l.retryAfterLocked()}
}

// retryAfterLocked estimates when a retry is likely to be admitted: the
// time for the current queue (plus the retry itself) to drain at the
// observed service rate, clamped to a sane band. Callers hold l.mu.
func (l *Limiter) retryAfterLocked() time.Duration {
	svc := l.svcEWMA
	if svc <= 0 {
		svc = float64(2 * time.Millisecond)
	}
	ra := time.Duration(svc * float64(l.queued+1) / float64(l.maxInflight))
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	if ra > 5*time.Second {
		ra = 5 * time.Second
	}
	return ra
}

// Inflight reports how many admitted requests are currently executing.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Queued reports how many requests are waiting for a slot — the
// queue-depth gauge of the metrics surface.
func (l *Limiter) Queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queued
}

// TokenBucket is a standard rate limiter: capacity burst, refilled at
// rate tokens per second. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a full bucket. burst < 1 defaults to the rate
// rounded up (minimum 1), so a 0.5/s limiter still admits single
// requests.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// Take spends one token. When the bucket is empty it reports false and
// how long until a token will be available — the retry-after hint.
func (b *TokenBucket) Take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	} else if now.After(b.last) {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// Refund returns one token to the bucket, clamped to burst — used when
// a charged request was subsequently shed before any work ran, so the
// peer's rate budget is only spent on requests the server attempted.
func (b *TokenBucket) Refund() {
	b.mu.Lock()
	b.tokens = math.Min(b.burst, b.tokens+1)
	b.mu.Unlock()
}

// Tokens reports the current token balance (tests and gauges).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Admission counter names recorded into the configured Stats sink.
const (
	// CounterAdmitted counts requests that passed admission control.
	CounterAdmitted = "admission.admitted"
	// CounterShedQueueFull / Deadline / Displaced / Rate split shed
	// requests by cause: arrival at a full queue, queue-deadline expiry,
	// displacement by a higher-priority arrival, per-peer rate limit.
	CounterShedQueueFull = "admission.shed.queue_full"
	CounterShedDeadline  = "admission.shed.deadline"
	CounterShedDisplaced = "admission.shed.displaced"
	CounterShedRate      = "admission.shed.rate"
)

// shedCounter maps an OverloadError reason to its counter name.
func shedCounter(reason string) string {
	switch reason {
	case ShedReasonQueueFull:
		return CounterShedQueueFull
	case ShedReasonDeadline:
		return CounterShedDeadline
	case ShedReasonDisplaced:
		return CounterShedDisplaced
	case ShedReasonRate:
		return CounterShedRate
	}
	return "admission.shed.other"
}

// peerBucketKey stores the per-connection token bucket in peer meta.
const peerBucketKey = "admission.bucket"

// AdmissionConfig tunes the Admission interceptor.
type AdmissionConfig struct {
	// Limiter is the shared concurrency limiter (nil: no concurrency
	// limiting, only per-peer rate limits apply).
	Limiter *Limiter
	// QueueTimeout sheds a queued request that cannot get a slot in
	// time (<= 0: wait as long as the request context allows).
	QueueTimeout time.Duration
	// Classes maps method names to priority classes; unmapped methods
	// are PriorityInteractive.
	Classes map[string]Priority
	// PerPeerRate admits a sustained per-connection request rate in
	// requests/second (<= 0: unlimited); PerPeerBurst is the bucket's
	// burst allowance.
	PerPeerRate  float64
	PerPeerBurst int
	// Stats receives the admission.* counters (nil: uncounted).
	Stats *Stats
}

// count records one admission counter into the configured sink.
func (cfg *AdmissionConfig) count(name string) {
	if cfg.Stats != nil {
		cfg.Stats.Add(name, 1)
	}
}

// Admission is the overload-protection interceptor: it charges the
// peer's token bucket, then takes a slot from the shared limiter —
// queueing (bounded, priority-aware, deadline-shed) when the server is
// saturated. Shed requests fail fast with an *OverloadError carrying a
// retry-after hint; the wait for a slot is recorded as an "admission"
// span on the request trace.
func Admission(cfg AdmissionConfig) Interceptor {
	return func(next Handler) Handler {
		if cfg.Limiter == nil && cfg.PerPeerRate <= 0 {
			return next
		}
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			class := PriorityInteractive
			if method, ok := ContextMethod(ctx); ok {
				if c, ok := cfg.Classes[method]; ok {
					class = c
				}
			}
			// Control traffic is exempt from the per-peer bucket: rate
			// limits exist to stop one peer flooding bulk work, and a
			// rate-limited peer must still be able to leave cleanly, poll
			// stats, and keep its session alive.
			var bucket *TokenBucket
			if cfg.PerPeerRate > 0 && p != nil && class != PriorityControl {
				bucket = p.MetaSetDefault(peerBucketKey, NewTokenBucket(cfg.PerPeerRate, cfg.PerPeerBurst)).(*TokenBucket)
				if ok, ra := bucket.Take(time.Now()); !ok {
					cfg.count(CounterShedRate)
					return nil, &OverloadError{Reason: ShedReasonRate, RetryAfter: ra}
				}
			}
			if cfg.Limiter != nil {
				endWait := obs.StartSpan(ctx, "admission")
				err := cfg.Limiter.Acquire(ctx, class, cfg.QueueTimeout)
				endWait()
				if err != nil {
					// The charged token bought no work: refund it so a shed
					// request doesn't also burn the peer's rate budget and
					// rate-shed the very retry the hint asks for.
					if bucket != nil {
						bucket.Refund()
					}
					var oe *OverloadError
					if errors.As(err, &oe) {
						cfg.count(shedCounter(oe.Reason))
					}
					return nil, err
				}
				cfg.count(CounterAdmitted)
				start := time.Now()
				defer func() { cfg.Limiter.Release(time.Since(start)) }()
			}
			return next(ctx, p, payload)
		}
	}
}
