package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTokenBucketRefill(t *testing.T) {
	b := NewTokenBucket(10, 2) // 10 tokens/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(now); !ok {
			t.Fatalf("take %d of burst refused", i)
		}
	}
	ok, ra := b.Take(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if ra <= 0 || ra > 100*time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 100ms] for a 10/s bucket", ra)
	}
	// 100ms refills exactly one token.
	now = now.Add(100 * time.Millisecond)
	if ok, _ := b.Take(now); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := b.Take(now); ok {
		t.Fatal("second take admitted after a one-token refill")
	}
	// A long idle period caps at burst, not at idle × rate.
	now = now.Add(time.Hour)
	if got := func() int {
		n := 0
		for {
			ok, _ := b.Take(now)
			if !ok {
				return n
			}
			n++
		}
	}(); got != 2 {
		t.Fatalf("after long idle admitted %d, want burst (2)", got)
	}
}

func TestTokenBucketBurstDefault(t *testing.T) {
	if b := NewTokenBucket(7.2, 0); b.burst != 8 {
		t.Fatalf("derived burst %v, want ceil(rate) = 8", b.burst)
	}
	if b := NewTokenBucket(0.5, 0); b.burst != 1 {
		t.Fatalf("derived burst %v, want minimum 1", b.burst)
	}
}

func TestTokenBucketBackwardsClock(t *testing.T) {
	b := NewTokenBucket(10, 1)
	now := time.Unix(1000, 0)
	b.Take(now)
	// A clock step backwards must not refill or go negative.
	if ok, _ := b.Take(now.Add(-time.Hour)); ok {
		t.Fatal("backwards clock refilled the bucket")
	}
	if ok, _ := b.Take(now.Add(100 * time.Millisecond)); !ok {
		t.Fatal("forward progress after backwards step refused")
	}
}

func TestTokenBucketRefund(t *testing.T) {
	b := NewTokenBucket(10, 2)
	now := time.Unix(1000, 0)
	b.Take(now)
	b.Take(now)
	b.Refund()
	if got := b.Tokens(); got != 1 {
		t.Fatalf("tokens %v after refund, want 1", got)
	}
	// Refunds clamp at burst, never over-fill.
	b.Refund()
	b.Refund()
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens %v after over-refund, want clamp at burst 2", got)
	}
}

func TestTokenBucketConcurrent(t *testing.T) {
	b := NewTokenBucket(1000, 100)
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for j := 0; j < 50; j++ {
				if ok, _ := b.Take(time.Now()); ok {
					n++
				}
			}
			mu.Lock()
			admitted += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	// 400 takes against burst 100 + a few ms of refill: the exact count
	// is timing-dependent, but it can never exceed takes nor fall to 0.
	if admitted < 100 || admitted > 400 {
		t.Fatalf("admitted %d of 400, want within [100, 400]", admitted)
	}
}

func TestLimiterFastPath(t *testing.T) {
	l := NewLimiter(2, 4, ShedByPriority)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := l.Acquire(ctx, PriorityBulk, 0); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}
	l.Release(time.Millisecond)
	l.Release(time.Millisecond)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after release %d, want 0", got)
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := NewLimiter(1, 1, ShedByPriority)
	ctx := context.Background()
	if err := l.Acquire(ctx, PriorityBulk, 0); err != nil {
		t.Fatal(err)
	}
	// Fill the queue with a waiter.
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, PriorityBulk, time.Second) }()
	waitFor(t, func() bool { return l.Queued() == 1 })
	// Same-priority arrival at a full queue is shed immediately.
	err := l.Acquire(ctx, PriorityBulk, time.Second)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedReasonQueueFull {
		t.Fatalf("err = %v, want queue-full overload", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("overload error does not match ErrOverloaded")
	}
	l.Release(time.Millisecond) // hands the slot to the waiter
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	l.Release(time.Millisecond)
}

func TestLimiterQueueDeadline(t *testing.T) {
	l := NewLimiter(1, 4, ShedByPriority)
	ctx := context.Background()
	if err := l.Acquire(ctx, PriorityBulk, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := l.Acquire(ctx, PriorityBulk, 20*time.Millisecond)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedReasonDeadline {
		t.Fatalf("err = %v, want deadline overload", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("shed before the queue deadline")
	}
	if got := l.Queued(); got != 0 {
		t.Fatalf("queued %d after deadline shed, want 0", got)
	}
	l.Release(time.Millisecond)
}

func TestLimiterContextCancel(t *testing.T) {
	l := NewLimiter(1, 4, ShedByPriority)
	if err := l.Acquire(context.Background(), PriorityBulk, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, PriorityBulk, 0) }()
	waitFor(t, func() bool { return l.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := l.Queued(); got != 0 {
		t.Fatalf("queued %d after cancel, want 0", got)
	}
	l.Release(time.Millisecond)
}

// TestLimiterCancelConcurrentGrantNoLeak pins the race between a
// waiter's context cancellation and a concurrent Release granting it a
// slot: whichever way the select resolves, the granted slot must end up
// back in the limiter instead of leaking (a leak here ratchets capacity
// down permanently under overload with client cancellations).
func TestLimiterCancelConcurrentGrantNoLeak(t *testing.T) {
	l := NewLimiter(1, 4, ShedByPriority)
	if err := l.Acquire(context.Background(), PriorityBulk, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, PriorityBulk, 0) }()
	waitFor(t, func() bool { return l.Queued() == 1 })
	// Force the race: cancel the waiter and, while holding the lock so
	// abandon cannot observe the queue yet, grant it a slot exactly the
	// way a concurrent Release would.
	l.mu.Lock()
	cancel()
	w := l.queues[int(PriorityBulk)][0]
	l.queues[int(PriorityBulk)] = nil
	l.queued--
	l.inflight++
	w.ch <- nil
	l.mu.Unlock()
	switch err := <-done; {
	case err == nil:
		// The select won via the grant channel: the caller owns the slot
		// and is responsible for returning it.
		l.Release(0)
	case errors.Is(err, context.Canceled):
		// The abandon path must have returned the granted slot itself.
	default:
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if got := l.Inflight(); got != 1 {
		t.Fatalf("inflight %d after cancelled grant, want 1 (slot leaked)", got)
	}
	l.Release(time.Millisecond)
	// The returned slot is immediately reusable.
	if err := l.Acquire(context.Background(), PriorityBulk, 0); err != nil {
		t.Fatalf("reacquire after cancel: %v", err)
	}
	l.Release(time.Millisecond)
}

func TestLimiterPriorityDisplacement(t *testing.T) {
	l := NewLimiter(1, 1, ShedByPriority)
	ctx := context.Background()
	if err := l.Acquire(ctx, PriorityControl, 0); err != nil {
		t.Fatal(err)
	}
	// One control acquire in the reserve lane keeps the main slot busy
	// without touching the queue.
	bulkDone := make(chan error, 1)
	go func() { bulkDone <- l.Acquire(ctx, PriorityBulk, time.Second) }()
	waitFor(t, func() bool { return l.Queued() == 1 })
	// A control arrival past the reserve displaces the queued bulk
	// waiter instead of being shed.
	if err := l.Acquire(ctx, PriorityControl, 0); err != nil {
		t.Fatalf("control acquire into reserve: %v", err)
	}
	ctrlDone := make(chan error, 1)
	go func() { ctrlDone <- l.Acquire(ctx, PriorityControl, time.Second) }()
	err := <-bulkDone
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedReasonDisplaced {
		t.Fatalf("bulk waiter err = %v, want displaced overload", err)
	}
	l.Release(time.Millisecond)
	if err := <-ctrlDone; err != nil {
		t.Fatalf("queued control acquire: %v", err)
	}
	l.Release(time.Millisecond)
	l.Release(time.Millisecond)
}

func TestLimiterShedFIFONoDisplacement(t *testing.T) {
	l := NewLimiter(1, 1, ShedFIFO)
	ctx := context.Background()
	if err := l.Acquire(ctx, PriorityBulk, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, PriorityBulk, time.Second) }()
	waitFor(t, func() bool { return l.Queued() == 1 })
	// Under FIFO, control past its reserve sheds rather than displacing.
	if err := l.Acquire(ctx, PriorityControl, 0); err != nil {
		t.Fatalf("control acquire into reserve: %v", err)
	}
	err := l.Acquire(ctx, PriorityControl, 0)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedReasonQueueFull {
		t.Fatalf("err = %v, want queue-full overload", err)
	}
	// Both holders (the bulk slot and the control reserve) must release
	// before inflight drops below the main cap and the waiter is granted.
	l.Release(time.Millisecond)
	l.Release(time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	l.Release(time.Millisecond)
}

func TestLimiterControlReserve(t *testing.T) {
	l := NewLimiter(4, 8, ShedByPriority) // reserve = 1
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := l.Acquire(ctx, PriorityBulk, 0); err != nil {
			t.Fatalf("bulk acquire %d: %v", i, err)
		}
	}
	// The cap is exhausted for bulk but control still enters instantly.
	if err := l.Acquire(ctx, PriorityControl, 0); err != nil {
		t.Fatalf("control acquire at full cap: %v", err)
	}
	if got := l.Inflight(); got != 5 {
		t.Fatalf("inflight %d, want maxInflight+reserve = 5", got)
	}
	// A bulk release above the main cap must not promote a bulk waiter.
	bulkDone := make(chan error, 1)
	go func() { bulkDone <- l.Acquire(ctx, PriorityBulk, time.Second) }()
	waitFor(t, func() bool { return l.Queued() == 1 })
	l.Release(time.Millisecond) // inflight 5 -> 4: still at the bulk cap
	select {
	case err := <-bulkDone:
		t.Fatalf("bulk waiter granted above the main cap (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	l.Release(time.Millisecond) // inflight 4 -> 3: bulk waiter admitted
	if err := <-bulkDone; err != nil {
		t.Fatalf("queued bulk acquire: %v", err)
	}
	for i := 0; i < 4; i++ {
		l.Release(time.Millisecond)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight %d after draining, want 0", got)
	}
}

func TestLimiterConcurrent(t *testing.T) {
	l := NewLimiter(4, 16, ShedByPriority)
	var wg sync.WaitGroup
	var held sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := Priority(i % int(numPriorities))
			err := l.Acquire(context.Background(), class, 50*time.Millisecond)
			if err != nil {
				var oe *OverloadError
				if !errors.As(err, &oe) {
					held.Store(i, fmt.Errorf("unexpected error: %w", err))
				}
				return
			}
			if n := l.Inflight(); n > 4+1 { // maxInflight + control reserve
				held.Store(i, fmt.Errorf("inflight %d above cap", n))
			}
			time.Sleep(time.Millisecond)
			l.Release(time.Millisecond)
		}(i)
	}
	wg.Wait()
	held.Range(func(_, v any) bool { t.Error(v); return true })
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight %d after all released, want 0", got)
	}
	if got := l.Queued(); got != 0 {
		t.Fatalf("queued %d after all released, want 0", got)
	}
}

func TestParseOverloadRoundTrip(t *testing.T) {
	for _, reason := range []string{ShedReasonQueueFull, ShedReasonDeadline, ShedReasonDisplaced, ShedReasonRate} {
		in := &OverloadError{Reason: reason, RetryAfter: 1250 * time.Millisecond}
		out, ok := ParseOverload(in.Error())
		if !ok {
			t.Fatalf("ParseOverload(%q) failed", in.Error())
		}
		if out.Reason != in.Reason || out.RetryAfter != in.RetryAfter {
			t.Fatalf("round trip %+v -> %+v", in, out)
		}
	}
	for _, bad := range []string{"", "wire: overloaded", "some other error", "wire: overloaded: x", "wire: overloaded: x; retry after soon"} {
		if _, ok := ParseOverload(bad); ok {
			t.Fatalf("ParseOverload(%q) accepted", bad)
		}
	}
}

// admitCtx builds a dispatch-shaped context carrying a method name.
func admitCtx(method string) context.Context {
	return context.WithValue(context.Background(), reqInfoKey, &reqInfo{method: method})
}

func TestAdmissionInterceptorPassthrough(t *testing.T) {
	called := false
	h := Admission(AdmissionConfig{})(func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		called = true
		return "ok", nil
	})
	if _, err := h(context.Background(), nil, nil); err != nil || !called {
		t.Fatalf("no-limits admission must pass through (err=%v, called=%v)", err, called)
	}
}

func TestAdmissionInterceptorRateLimit(t *testing.T) {
	st := NewStats()
	cfg := AdmissionConfig{
		Classes:      map[string]Priority{"db.get": PriorityBulk, "sys.stats": PriorityControl},
		PerPeerRate:  1,
		PerPeerBurst: 2,
		Stats:        st,
	}
	h := Admission(cfg)(func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		return "ok", nil
	})
	peer := &Peer{meta: map[string]any{}}
	for i := 0; i < 2; i++ {
		if _, err := h(admitCtx("db.get"), peer, nil); err != nil {
			t.Fatalf("burst call %d: %v", i, err)
		}
	}
	_, err := h(admitCtx("db.get"), peer, nil)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedReasonRate {
		t.Fatalf("err = %v, want rate overload", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after %v, want positive", oe.RetryAfter)
	}
	if got := st.Counter(CounterShedRate); got != 1 {
		t.Fatalf("shed.rate counter %d, want 1", got)
	}
	// Control traffic bypasses the bucket even when it is empty.
	for i := 0; i < 5; i++ {
		if _, err := h(admitCtx("sys.stats"), peer, nil); err != nil {
			t.Fatalf("control call %d through empty bucket: %v", i, err)
		}
	}
	// A second peer has its own bucket.
	if _, err := h(admitCtx("db.get"), &Peer{meta: map[string]any{}}, nil); err != nil {
		t.Fatalf("fresh peer sheds: %v", err)
	}
}

func TestAdmissionInterceptorLimiterCounters(t *testing.T) {
	st := NewStats()
	cfg := AdmissionConfig{
		Limiter:      NewLimiter(1, 0, ShedByPriority),
		QueueTimeout: 10 * time.Millisecond,
		Classes:      map[string]Priority{"db.get": PriorityBulk},
		Stats:        st,
	}
	block := make(chan struct{})
	h := Admission(cfg)(func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		<-block
		return "ok", nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := h(admitCtx("db.get"), nil, nil); err != nil {
			t.Errorf("admitted call: %v", err)
		}
	}()
	waitFor(t, func() bool { return cfg.Limiter.Inflight() == 1 })
	// Bulk reserve does not apply: the second call sheds (queue depth 0).
	_, err := h(admitCtx("db.get"), nil, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want overload", err)
	}
	close(block)
	<-done
	if got := st.Counter(CounterAdmitted); got != 1 {
		t.Fatalf("admitted counter %d, want 1", got)
	}
	if got := st.Counter(CounterShedQueueFull); got != 1 {
		t.Fatalf("shed.queue_full counter %d, want 1", got)
	}
	if got := cfg.Limiter.Inflight(); got != 0 {
		t.Fatalf("inflight %d after handler returned, want 0", got)
	}
}

func TestAdmissionInterceptorShedRefundsToken(t *testing.T) {
	cfg := AdmissionConfig{
		Limiter:      NewLimiter(1, 0, ShedByPriority),
		QueueTimeout: 10 * time.Millisecond,
		Classes:      map[string]Priority{"db.get": PriorityBulk},
		PerPeerRate:  0.001, // negligible refill over the test's lifetime
		PerPeerBurst: 2,
	}
	block := make(chan struct{})
	h := Admission(cfg)(func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		<-block
		return "ok", nil
	})
	peer := &Peer{meta: map[string]any{}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := h(admitCtx("db.get"), peer, nil); err != nil {
			t.Errorf("admitted call: %v", err)
		}
	}()
	waitFor(t, func() bool { return cfg.Limiter.Inflight() == 1 })
	// Queue depth 0: the second call is charged a token, then shed by the
	// limiter. The token must come back — otherwise a shed peer is
	// double-penalized and its hinted retry may be rate-shed in turn.
	if _, err := h(admitCtx("db.get"), peer, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want overload", err)
	}
	v, ok := peer.Meta(peerBucketKey)
	if !ok {
		t.Fatal("peer bucket not created")
	}
	if got := v.(*TokenBucket).Tokens(); got < 1 {
		t.Fatalf("tokens %v after limiter shed, want charged token refunded", got)
	}
	close(block)
	<-done
}

// waitFor polls cond for up to a second — cheap synchronization with
// goroutines that enter a queue at an unknown moment.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(time.Millisecond)
	}
}
