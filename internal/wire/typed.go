package wire

import (
	"context"
	"fmt"

	"mmconf/internal/obs"
)

// None is the response type of methods that return no body. A typed
// handler with Resp = None returns nil and the client sees an empty
// payload (gob cannot encode a fieldless struct, so None values are
// never marshaled — the adapter drops nil responses).
type None struct{}

// Typed adapts a strongly-typed handler to the wire Handler shape,
// owning the gob unmarshal of the request and the marshal of the
// response. A nil *Resp (the only option when Resp is None) produces an
// empty response payload. When the request carries a live trace (the
// Tracing interceptor), the adapter times the decode and the handler
// body as "decode" and "handle" spans.
//
// This is the seam every interaction-server method registers through:
//
//	s.Register(proto.MChat, wire.Typed(func(ctx context.Context, p *wire.Peer, req *proto.ChatReq) (*wire.None, error) {
//		...
//	}))
func Typed[Req any, Resp any](h func(ctx context.Context, p *Peer, req *Req) (*Resp, error)) Handler {
	return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		req := new(Req)
		endDecode := obs.StartSpan(ctx, "decode")
		var err error
		if ContextPayloadEnc(ctx) == EncBinary {
			// A binary payload only arrives for bodies with a codec; a
			// request whose type lost its codec is a protocol error.
			if bd, okDec := any(req).(BodyDecoder); okDec {
				err = DecodeBodyBytes(payload, bd)
			} else {
				err = fmt.Errorf("wire: binary request but %T implements no BodyDecoder", req)
			}
		} else {
			err = Unmarshal(payload, req)
		}
		endDecode()
		if err != nil {
			return nil, err
		}
		endHandle := obs.StartSpan(ctx, "handle")
		resp, err := h(ctx, p, req)
		endHandle()
		if err != nil || resp == nil {
			return nil, err
		}
		return resp, nil
	}
}
