package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestDialContextCanceled(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := DialContext(ctx, l.Addr().String()); err == nil {
		t.Fatal("DialContext succeeded with a canceled context")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("canceled dial took %v, want immediate", d)
	}
}

// TestClientDoneSignalsTransportDeath checks the Done channel — the
// reconnect supervisor's wake-up — fires when the connection dies, and
// that calls afterwards fail with the typed ErrClosed.
func TestClientDoneSignalsTransportDeath(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
		t.Fatal("Done fired on a healthy connection")
	default:
	}
	c.Close()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done never fired after Close")
	}
	if err := c.Call("echo", echoArgs{Text: "x"}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after death = %v, want ErrClosed", err)
	}
}

// TestDefaultCallTimeout checks SetCallTimeout bounds calls that carry
// no deadline of their own — the guard against a silently partitioned
// server hanging every RPC forever.
func TestDefaultCallTimeout(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	s.Register("hang", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { close(release); s.Close() })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(150 * time.Millisecond)
	start := time.Now()
	err = c.Call("hang", echoArgs{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung call returned %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("call timed out after %v, want ~150ms", d)
	}
	// An explicit caller deadline wins over the default.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	if err := c.CallCtx(ctx, "hang", echoArgs{}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call with caller deadline = %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("caller deadline took %v", d)
	}
}
