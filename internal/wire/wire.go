// Package wire is the remote-invocation layer of the system — the role
// Java RMI and JDBC play in the paper (§5.3): clients invoke interaction-
// server methods across the network with language-native serialization,
// and the server pushes room events back over the same connection. The
// protocol is length-free gob framing over any net.Conn: every message is
// a gob-encoded envelope carrying a method name, a correlation id, and an
// opaque gob payload.
//
// Requests dispatch through a typed pipeline: a per-request
// context.Context (carrying the peer, the method name, and any deadline
// installed by the Timeout interceptor) flows through the interceptor
// chain (see interceptor.go) into the handler. The context is cancelled
// when the peer's connection drops, so a dead client aborts its own
// in-flight work instead of leaving it running.
package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mmconf/internal/obs"
	"mmconf/internal/qos"
)

// msgKind distinguishes envelope roles.
type msgKind uint8

const (
	kindRequest msgKind = iota
	kindResponse
	kindPush
)

// envelope is the on-wire message. On a gob connection the exported
// fields gob-encode exactly as before (Enc is always zero there, so gob
// omits it); on a v2 connection the same fields map onto the binary
// frame layout in codec2.go.
type envelope struct {
	Kind    msgKind
	ID      uint64 // request/response correlation
	Method  string
	Payload []byte // encoded body (gob, or binary per Enc)
	Err     string // response only
	// Trace carries the request's trace id (requests only; minted by the
	// client, or at ingress when a foreign client sends none), so one id
	// follows the call from client log to server trace ring.
	Trace uint64
	// Enc names Payload's encoding (EncGob or EncBinary). Gob peers only
	// ever see EncGob.
	Enc uint8

	// body is the segmented zero-copy form of a binary payload (v2
	// connections only, exclusive with Payload); unexported so gob never
	// sees it. Consumed — and returned to the pool — by the frame writer.
	body *BodyEnc
}

// gobBufPool recycles the scratch buffers behind Marshal so the gob
// fallback path stops allocating a fresh bytes.Buffer (and its grown
// backing array) per message. The gob.Encoder itself must stay
// per-call: it writes each type's descriptor once per encoder, so a
// reused encoder would emit payloads a fresh decoder cannot read.
var gobBufPool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return new(bytes.Buffer)
}}

// gobReaderPool recycles the bytes.Reader fronting Unmarshal.
var gobReaderPool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return bytes.NewReader(nil)
}}

// Marshal gob-encodes a body for use as an envelope payload.
func Marshal(v any) ([]byte, error) {
	poolGets.Add(1)
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		gobBufPool.Put(buf)
		return nil, fmt.Errorf("wire: marshal %T: %w", v, err)
	}
	out := append([]byte(nil), buf.Bytes()...)
	if buf.Cap() <= 1<<20 { // one huge body must not pin pool memory
		gobBufPool.Put(buf)
	}
	return out, nil
}

// Unmarshal decodes an envelope payload into v (a pointer).
func Unmarshal(data []byte, v any) error {
	poolGets.Add(1)
	r := gobReaderPool.Get().(*bytes.Reader)
	r.Reset(data)
	err := gob.NewDecoder(r).Decode(v)
	r.Reset(nil)
	gobReaderPool.Put(r)
	if err != nil {
		return fmt.Errorf("wire: unmarshal %T: %w", v, err)
	}
	return nil
}

// Handler processes one request on the server; the returned value is gob-
// encoded as the response payload. Most handlers are built with Typed,
// which owns the unmarshal/marshal boilerplate.
type Handler func(ctx context.Context, p *Peer, payload []byte) (any, error)

// ctxKey keys the request-scoped values the dispatcher installs.
type ctxKey int

const reqInfoKey ctxKey = iota

// reqInfo bundles the per-request values the dispatcher installs — one
// context allocation per request instead of one per value.
type reqInfo struct {
	peer   *Peer
	method string
	trace  uint64
	enc    uint8 // request payload encoding
}

func contextReq(ctx context.Context) (*reqInfo, bool) {
	ri, ok := ctx.Value(reqInfoKey).(*reqInfo)
	return ri, ok
}

// ContextPeer returns the peer whose request the context belongs to.
func ContextPeer(ctx context.Context) (*Peer, bool) {
	ri, ok := contextReq(ctx)
	if !ok {
		return nil, false
	}
	return ri.peer, true
}

// ContextMethod returns the method name of the request the context
// belongs to.
func ContextMethod(ctx context.Context) (string, bool) {
	ri, ok := contextReq(ctx)
	if !ok {
		return "", false
	}
	return ri.method, true
}

// ContextTraceID returns the request's trace id (0 outside a dispatch).
func ContextTraceID(ctx context.Context) uint64 {
	ri, ok := contextReq(ctx)
	if !ok {
		return 0
	}
	return ri.trace
}

// ContextPayloadEnc returns the encoding of the request payload the
// context belongs to (EncGob outside a dispatch).
func ContextPayloadEnc(ctx context.Context) uint8 {
	ri, ok := contextReq(ctx)
	if !ok {
		return EncGob
	}
	return ri.enc
}

// WithTraceID pins the trace id an outgoing call will carry (an alias
// for obs.ContextWithID, re-exported so callers of the wire client need
// not import obs directly).
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return obs.ContextWithID(ctx, id)
}

// ErrDraining is returned to clients whose request arrives after the
// server began a graceful shutdown.
var ErrDraining = errors.New("wire: server draining")

// Server dispatches requests to registered handlers.
type Server struct {
	mu           sync.RWMutex
	handlers     map[string]Handler
	interceptors []Interceptor
	onClose      func(*Peer)
	nextPeer     uint64
	listeners    []net.Listener
	peers        map[uint64]*Peer
	draining     bool
	stats        *Stats // optional counter sink handed to every peer writer
	maxProto     uint8  // highest protocol version offered (default ProtoV2)

	inflight sync.WaitGroup
	baseCtx  context.Context
	cancel   context.CancelFunc
}

// NewServer returns an empty server.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handlers: make(map[string]Handler),
		peers:    make(map[uint64]*Peer),
		baseCtx:  ctx,
		cancel:   cancel,
		maxProto: ProtoV2,
	}
}

// SetMaxProtoVersion caps the protocol version the server offers during
// negotiation: ProtoV2 (the default) serves binary framing to capable
// clients, ProtoGob forces every connection — even one that asks for v2
// — down to the gob fallback. Install before serving.
func (s *Server) SetMaxProtoVersion(v uint8) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxProto = v
}

// MaxProtoVersion reports the highest protocol version this server
// offers during negotiation.
func (s *Server) MaxProtoVersion() uint8 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxProto
}

// PeerVersions counts live peers by negotiated protocol — the
// observability split behind the wire.peers_v2/wire.peers_gob gauges.
func (s *Server) PeerVersions() (v2, gob int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.peers {
		if p.proto >= ProtoV2 {
			v2++
		} else {
			gob++
		}
	}
	return v2, gob
}

// Register installs a handler for a method name.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Use appends interceptors to the dispatch chain. The first interceptor
// installed is the outermost wrapper. Install interceptors before
// serving; installation is not synchronized with in-flight dispatches
// beyond the registration lock.
func (s *Server) Use(ics ...Interceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptors = append(s.interceptors, ics...)
}

// OnPeerClose installs a callback invoked when a peer's connection ends
// (used by the interaction server to evict the member from its rooms).
func (s *Server) OnPeerClose(fn func(*Peer)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose = fn
}

// SetStats installs the counter sink peer writers record into (writer
// flushes, bytes, messages). Install before serving.
func (s *Server) SetStats(st *Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = st
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		go s.ServeConn(conn)
	}
}

// Drain stops accepting new connections and begins rejecting new
// requests with ErrDraining. In-flight handlers keep running; wait for
// them with AwaitIdle.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	ls := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
}

// AwaitIdle blocks until every in-flight handler has returned or ctx
// expires, whichever is first.
func (s *Server) AwaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown drains the server gracefully: stop accepting, wait for
// in-flight handlers up to ctx's deadline, flush every peer's queued
// writes, then cancel any stragglers and tear down every connection.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	err := s.AwaitIdle(ctx)
	_ = s.FlushPeers(ctx)
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}

// FlushPeers blocks (bounded by ctx) until every live peer's queued
// writes have been handed to the operating system — the graceful-drain
// step that keeps batched pushes from dying in a buffer when the
// connections close. Per-peer flush errors are ignored (a broken peer
// is already lost); only ctx expiry is reported.
func (s *Server) FlushPeers(ctx context.Context) error {
	s.mu.RLock()
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.RUnlock()
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for _, p := range peers {
			wg.Add(1)
			go func(p *Peer) {
				defer wg.Done()
				_ = p.Flush()
			}(p)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WriteBacklog reports the live peer count and how many envelopes are
// queued across their batched writers — the flush-backlog gauge of the
// metrics surface (a growing backlog means clients are not draining as
// fast as rooms produce).
func (s *Server) WriteBacklog() (peers, queued int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.peers {
		queued += len(p.writeQ)
	}
	return len(s.peers), queued
}

// Close tears everything down immediately: listeners stop, every
// in-flight request context is cancelled, and peer connections close.
// For a graceful stop use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	var first error
	for _, l := range s.listeners {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.listeners = nil
	s.draining = true
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	s.cancel()
	for _, p := range peers {
		p.Close()
	}
	return first
}

// Writer tuning: writeBufferSize is the bufio buffer in front of the
// socket; writeQueueSize bounds the envelopes waiting for the writer
// goroutine (senders block beyond it — natural backpressure);
// writeBatchMax caps how many envelopes one batch encodes before the
// coalesced flush, bounding the latency of the batch's first message.
const (
	writeBufferSize = 32 << 10
	writeQueueSize  = 256
	writeBatchMax   = 256
)

// Counter names the peer writer records into the server's Stats sink.
const (
	// CounterWriterMessages counts envelopes encoded onto connections.
	CounterWriterMessages = "wire.writer_messages"
	// CounterWriterFlushes counts explicit buffer flushes (a burst of
	// messages coalesces into one flush, so flushes ≪ messages under
	// load).
	CounterWriterFlushes = "wire.writer_flushes"
	// CounterWriterWrites counts actual socket writes (flushes plus
	// bufio spills of oversized batches).
	CounterWriterWrites = "wire.writer_writes"
	// CounterWriterBytes totals bytes written to sockets.
	CounterWriterBytes = "wire.writer_bytes"
	// CounterFramesV2 / CounterFramesGob count messages written by
	// encoding — the negotiated mix, observable in production.
	CounterFramesV2  = "wire.frames_v2"
	CounterFramesGob = "wire.frames_gob"
	// CounterConnsV2 / CounterConnsGob count accepted connections by
	// negotiated protocol version.
	CounterConnsV2  = "wire.conns_v2"
	CounterConnsGob = "wire.conns_gob"
)

// errPeerClosed reports a send on a peer whose connection ended.
var errPeerClosed = errors.New("wire: peer connection closed")

// Peer is the server-side view of one client connection. Its Push and
// PushRaw methods are how the interaction server propagates room events.
//
// Writes are batched: senders enqueue envelopes to a per-peer writer
// goroutine that gob-encodes them through a bufio.Writer and flushes
// when the queue goes momentarily idle (or after writeBatchMax
// envelopes). A burst of pushes and responses therefore costs one
// syscall instead of one per envelope, while a lone message still
// flushes immediately — the added latency is one channel hop. Per-peer
// FIFO order is preserved: envelopes reach the socket in the order
// send accepted them. Flush is the explicit barrier the drain path
// uses to guarantee queued pushes hit the OS before close.
type Peer struct {
	ID    uint64
	conn  net.Conn
	proto uint8 // negotiated protocol version (ProtoGob or ProtoV2)

	writeQ chan writeItem
	stop   chan struct{} // closed by ServeConn teardown
	dead   chan struct{} // closed when the writer exits; werr is valid after
	werr   error
	stats  *Stats     // optional counter sink
	qmeter *qos.Meter // per-connection write-throughput estimator

	mu   sync.Mutex
	meta map[string]any // per-connection session state (user, rooms)
}

// ProtoVersion reports the connection's negotiated protocol version —
// what the interaction server's fan-out consults to pick the shared
// push encoding.
func (p *Peer) ProtoVersion() uint8 { return p.proto }

// Meter exposes the connection's write-throughput estimator: every
// socket write the writer goroutine performs feeds it (bytes, duration)
// observations, so under backpressure its rate tracks the client's
// effective downlink. The QoS control loop reads it.
func (p *Peer) Meter() *qos.Meter { return p.qmeter }

// QueueDepth reports how many envelopes are waiting for the writer
// goroutine right now — the drain-rate pressure companion to Meter.
func (p *Peer) QueueDepth() int { return len(p.writeQ) }

// QueueCapacity reports the writer queue bound (senders block beyond it).
func (p *Peer) QueueCapacity() int { return cap(p.writeQ) }

// writeItem is one unit of writer work: an envelope to encode, or (when
// flush is non-nil) a flush barrier to acknowledge.
type writeItem struct {
	env   envelope
	flush chan error
}

// SetMeta stores per-connection session state.
func (p *Peer) SetMeta(key string, v any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[key] = v
}

// MetaSetDefault stores v under key only if the key is unset and
// returns the stored value (existing or v) — an atomic get-or-create,
// safe against concurrent requests on the same connection.
func (p *Peer) MetaSetDefault(key string, v any) any {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.meta[key]; ok {
		return cur
	}
	p.meta[key] = v
	return v
}

// Meta retrieves per-connection session state.
func (p *Peer) Meta(key string) (any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.meta[key]
	return v, ok
}

// Push sends an unsolicited message to the client, marshaling body with
// the connection's best encoding (binary when the peer speaks v2 and
// the body has a codec, gob otherwise). For room fan-out prefer PushRaw
// with a shared pre-encoded payload.
func (p *Peer) Push(method string, body any) error {
	if p.proto >= ProtoV2 {
		if be, ok := body.(BodyEncoder); ok {
			e := getBodyEnc()
			be.AppendBody(e)
			return p.send(envelope{Kind: kindPush, Method: method, Enc: EncBinary, body: e})
		}
	}
	payload, err := Marshal(body)
	if err != nil {
		return err
	}
	return p.send(envelope{Kind: kindPush, Method: method, Payload: payload})
}

// PushRaw sends an unsolicited message whose payload is already encoded
// with enc — the encode-once fan-out path: the interaction server
// encodes one room event once per format and hands every member's peer
// the same bytes. On a v2 connection the shared payload rides the
// frame's writev batch by reference, so the fan-out never copies it.
// The caller must not modify payload afterwards.
func (p *Peer) PushRaw(method string, enc uint8, payload []byte) error {
	return p.send(envelope{Kind: kindPush, Method: method, Enc: enc, Payload: payload})
}

// Flush blocks until every message enqueued before the call has been
// handed to the operating system — the drain path's ordering guarantee.
func (p *Peer) Flush() error {
	ch := make(chan error, 1)
	select {
	case p.writeQ <- writeItem{flush: ch}:
	case <-p.dead:
		return p.deadErr()
	case <-p.stop:
		return errPeerClosed
	}
	select {
	case err := <-ch:
		return err
	case <-p.dead:
		return p.deadErr()
	}
}

// Close tears the connection down.
func (p *Peer) Close() error { return p.conn.Close() }

// send enqueues one envelope for the writer goroutine. A nil return
// means the message is queued in FIFO order, not yet on the wire; a
// peer whose writer has died (broken connection) fails fast.
func (p *Peer) send(env envelope) error {
	select {
	case p.writeQ <- writeItem{env: env}:
		return nil
	case <-p.dead:
		return p.deadErr()
	case <-p.stop:
		return errPeerClosed
	}
}

// deadErr returns the writer's terminal error; call only after p.dead
// is closed (the close is the happens-before edge that publishes werr).
func (p *Peer) deadErr() error {
	if p.werr != nil {
		return p.werr
	}
	return errPeerClosed
}

// meteredWriter counts socket writes and bytes into a Stats sink and
// feeds the peer's QoS throughput meter.
type meteredWriter struct {
	w     io.Writer
	stats *Stats
	meter *qos.Meter
}

func (m meteredWriter) Write(b []byte) (int, error) {
	start := time.Now()
	n, err := m.w.Write(b)
	if m.meter != nil && err == nil {
		m.meter.Observe(n, time.Since(start))
	}
	if m.stats != nil {
		m.stats.Add(CounterWriterWrites, 1)
		m.stats.Add(CounterWriterBytes, uint64(n))
	}
	return n, err
}

// writeLoop is the peer's single writer goroutine: it drains writeQ,
// gob-encoding envelopes into a buffered writer, and flushes when the
// queue goes idle or a batch reaches writeBatchMax — so bursts coalesce
// into few syscalls while a lone message flushes immediately.
func (p *Peer) writeLoop() {
	defer close(p.dead)
	bw := bufio.NewWriterSize(meteredWriter{w: p.conn, stats: p.stats, meter: p.qmeter}, writeBufferSize)
	enc := gob.NewEncoder(bw)
	fail := func(err error) {
		p.werr = fmt.Errorf("wire: send: %w", err)
		// A connection we cannot write is useless: close it so the read
		// loop ends and the peer is evicted.
		p.conn.Close()
	}
	flush := func() error {
		if bw.Buffered() == 0 {
			return nil
		}
		if p.stats != nil {
			p.stats.Add(CounterWriterFlushes, 1)
		}
		return bw.Flush()
	}
	for {
		var it writeItem
		select {
		case <-p.stop:
			_ = flush() // best effort on teardown
			return
		case it = <-p.writeQ:
		}
		for n := 0; ; n++ {
			if it.flush != nil {
				err := flush()
				it.flush <- err
				if err != nil {
					fail(err)
					return
				}
			} else {
				if it.env.body != nil {
					// Defensive: a segmented binary payload on a gob
					// connection (dispatch never builds one) flattens.
					it.env.Payload = it.env.body.Flatten()
					putBodyEnc(it.env.body)
					it.env.body = nil
				}
				if err := enc.Encode(it.env); err != nil {
					fail(err)
					return
				}
				if p.stats != nil {
					p.stats.Add(CounterWriterMessages, 1)
					p.stats.Add(CounterFramesGob, 1)
				}
			}
			if n >= writeBatchMax {
				break
			}
			// Coalesce whatever is queued right now; stop at idle.
			select {
			case it = <-p.writeQ:
				continue
			default:
			}
			break
		}
		if err := flush(); err != nil {
			fail(err)
			return
		}
	}
}

// writeLoopV2 is the peer writer for v2 connections: the same
// drain/batch/flush-on-idle discipline as writeLoop, but frames are
// assembled as scratch + zero-copy segments and each flush is one
// net.Buffers write (writev on TCP). Oversized batches flush early by
// byte count so a run of media frames cannot pin unbounded payload
// memory behind the segment list.
func (p *Peer) writeLoopV2() {
	defer close(p.dead)
	w := newVecWriter(p.conn, p.stats)
	w.meter = p.qmeter
	fail := func(err error) {
		p.werr = fmt.Errorf("wire: send: %w", err)
		p.conn.Close()
	}
	for {
		var it writeItem
		select {
		case <-p.stop:
			_ = w.flush() // best effort on teardown
			return
		case it = <-p.writeQ:
		}
		for n := 0; ; n++ {
			if it.flush != nil {
				err := w.flush()
				it.flush <- err
				if err != nil {
					fail(err)
					return
				}
			} else {
				w.encodeFrame(&it.env)
				if p.stats != nil {
					p.stats.Add(CounterWriterMessages, 1)
					p.stats.Add(CounterFramesV2, 1)
				}
				if w.pending() >= writeFlushBytes {
					if err := w.flush(); err != nil {
						fail(err)
						return
					}
				}
			}
			if n >= writeBatchMax {
				break
			}
			// Coalesce whatever is queued right now; stop at idle.
			select {
			case it = <-p.writeQ:
				continue
			default:
			}
			break
		}
		if err := w.flush(); err != nil {
			fail(err)
			return
		}
	}
}

// ServeConn runs the request loop for one connection (exported so tests
// and in-process setups can serve a net.Pipe end directly).
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	st := s.stats
	maxProto := s.maxProto
	s.mu.Unlock()
	// Version negotiation: a v2 client opens with a preamble whose first
	// byte is 0x00 — unambiguous against gob, whose stream starts with a
	// nonzero uvarint byte count. Legacy clients are served untouched.
	br := bufio.NewReaderSize(conn, writeBufferSize)
	proto := uint8(ProtoGob)
	first, err := br.Peek(1)
	if err != nil {
		conn.Close()
		return
	}
	if first[0] == 0x00 {
		var pre [preambleLen]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			conn.Close()
			return
		}
		clientMax, ok := parsePreamble(pre[:])
		if !ok {
			conn.Close() // a zero first byte that is not our preamble is garbage
			return
		}
		proto = negotiate(clientMax, maxProto)
		// Reply before the writer goroutine exists: nothing else can be
		// writing this connection yet.
		if _, err := conn.Write(appendPreamble(nil, proto)); err != nil {
			conn.Close()
			return
		}
	}
	if st != nil {
		if proto >= ProtoV2 {
			st.Add(CounterConnsV2, 1)
		} else {
			st.Add(CounterConnsGob, 1)
		}
	}
	peer := &Peer{
		ID:     atomic.AddUint64(&s.nextPeer, 1),
		conn:   conn,
		proto:  proto,
		writeQ: make(chan writeItem, writeQueueSize),
		stop:   make(chan struct{}),
		dead:   make(chan struct{}),
		stats:  st,
		qmeter: qos.NewMeter(0),
		meta:   make(map[string]any),
	}
	if proto >= ProtoV2 {
		go peer.writeLoopV2()
	} else {
		go peer.writeLoop()
	}
	// connCtx is the parent of every request context on this connection;
	// it dies with the connection, so a dead client cancels its own
	// in-flight handlers.
	connCtx, connCancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.peers[peer.ID] = peer
	s.mu.Unlock()
	next := func() (envelope, error) { return readFrame(br) }
	if proto < ProtoV2 {
		dec := gob.NewDecoder(br)
		next = func() (envelope, error) {
			var env envelope
			err := dec.Decode(&env)
			return env, err
		}
	}
	defer func() {
		connCancel()
		close(peer.stop) // stop the writer (it flushes best-effort first)
		conn.Close()
		s.mu.Lock()
		delete(s.peers, peer.ID)
		onClose := s.onClose
		s.mu.Unlock()
		if onClose != nil {
			onClose(peer)
		}
	}()
	for {
		env, err := next()
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		if env.Kind != kindRequest {
			continue // clients must not send responses/pushes
		}
		s.mu.RLock()
		h, ok := s.handlers[env.Method]
		ics := s.interceptors
		draining := s.draining
		if !draining {
			// Count in-flight work while holding the read lock: Drain sets
			// the flag under the write lock, so it cannot observe a zero
			// WaitGroup between our check and our Add.
			s.inflight.Add(1)
		}
		s.mu.RUnlock()
		if draining {
			_ = peer.send(envelope{Kind: kindResponse, ID: env.ID, Method: env.Method, Err: ErrDraining.Error()})
			continue
		}
		go func(env envelope) {
			defer s.inflight.Done()
			resp := envelope{Kind: kindResponse, ID: env.ID, Method: env.Method}
			if !ok {
				resp.Err = fmt.Sprintf("wire: unknown method %q", env.Method)
			} else {
				tid := env.Trace
				if tid == 0 {
					tid = obs.MintID() // foreign client sent no id: mint at ingress
				}
				ctx := context.WithValue(connCtx, reqInfoKey,
					&reqInfo{peer: peer, method: env.Method, trace: tid, enc: env.Enc})
				result, err := Chain(h, ics...)(ctx, peer, env.Payload)
				if err != nil {
					resp.Err = err.Error()
				} else if result != nil {
					// A relay hands back pre-encoded bytes: pass them
					// through with their encoding flag untouched.
					if raw, isRaw := result.(RawResult); isRaw {
						resp.Enc = raw.Enc
						resp.Payload = raw.Payload
					} else
					// A v2 peer gets the binary codec when the body has
					// one; everything else falls back to gob (inside a v2
					// frame for v2 peers — enc byte EncGob).
					if be, isBin := result.(BodyEncoder); isBin && peer.proto >= ProtoV2 {
						e := getBodyEnc()
						be.AppendBody(e)
						resp.Enc = EncBinary
						resp.body = e
					} else {
						payload, err := Marshal(result)
						if err != nil {
							resp.Err = err.Error()
						} else {
							resp.Payload = payload
						}
					}
				}
			}
			_ = peer.send(resp)
		}(env)
	}
}

// PushHandler receives server pushes on the client. The body carries
// the payload bytes plus their encoding; Body.Decode dispatches to the
// right unmarshal.
type PushHandler func(method string, body Body)

// ErrClosed reports an operation on a client whose connection has ended.
// Callers needing to distinguish a dead connection (redialable) from an
// application error test with errors.Is.
var ErrClosed = errors.New("wire: connection closed")

// DefaultDialTimeout bounds Dial's TCP connect so a black-holed address
// fails instead of hanging indefinitely.
const DefaultDialTimeout = 10 * time.Second

// Client is the caller side of the protocol.
type Client struct {
	conn   net.Conn
	wmu    sync.Mutex // guards enc/fw and the negotiated write path
	enc    *gob.Encoder
	fw     *vecWriter
	nextID uint64

	maxVer uint8
	ver    uint8         // negotiated version; valid once ready is closed
	ready  chan struct{} // closed when the handshake settles
	done   chan struct{} // closed when the read loop exits

	mu          sync.Mutex
	pending     map[uint64]chan envelope
	onPush      PushHandler
	closed      bool
	readErr     error
	callTimeout time.Duration // default per-call deadline (0 = none)
}

// Dial connects to a server address over TCP, bounded by
// DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultDialTimeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext connects to a server address over TCP; the connect attempt
// is abandoned when ctx ends (the redial path's building block — a
// reconnecting client bounds each attempt instead of hanging on a
// partitioned network).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. a net.Pipe end or a
// netsim.ThrottledConn), negotiating protocol v2 with a gob fallback.
func NewClient(conn net.Conn) *Client {
	return NewClientVersion(conn, ProtoV2)
}

// NewClientVersion wraps an established connection offering at most
// maxVer during negotiation. maxVer below ProtoV2 skips the handshake
// entirely and speaks the legacy gob protocol — byte-for-byte what a
// pre-v2 client sends, which is what the mixed-version interop tests
// exercise. The handshake (when any) runs asynchronously in the read
// loop so wrapping a synchronous transport like net.Pipe cannot
// deadlock; calls block until it settles.
func NewClientVersion(conn net.Conn, maxVer uint8) *Client {
	c := &Client{
		conn:    conn,
		maxVer:  maxVer,
		pending: make(map[uint64]chan envelope),
		ready:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	if maxVer < ProtoV2 {
		c.enc = gob.NewEncoder(conn)
		close(c.ready)
	}
	go c.readLoop()
	return c
}

// ProtoVersion reports the negotiated protocol version, blocking until
// the handshake settles (0 both for legacy mode and for a connection
// that died mid-handshake).
func (c *Client) ProtoVersion() uint8 {
	select {
	case <-c.ready:
		return c.ver
	case <-c.done:
		return 0
	}
}

// Done returns a channel closed when the connection ends (EOF, reset, or
// Close). A reconnecting wrapper watches it to trigger redial.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err reports why the connection ended (nil for a clean EOF or before it
// ended). Valid once Done is closed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// SetCallTimeout installs a default per-call deadline applied to every
// Call/CallCtx whose context carries no deadline of its own — so a hung
// server or a silent partition fails the call instead of wedging the
// caller forever. Zero disables the default.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.callTimeout = d
}

// OnPush installs the push handler. Install it before triggering any
// server activity that may push.
func (c *Client) OnPush(h PushHandler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPush = h
}

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, writeBufferSize)
	fail := func(err error) {
		c.mu.Lock()
		c.closed = true
		if err != nil && err != io.EOF {
			c.readErr = err
		}
		for id, ch := range c.pending {
			close(ch)
			delete(c.pending, id)
		}
		c.mu.Unlock()
	}
	if c.maxVer >= ProtoV2 {
		// The negotiation handshake runs here, not in NewClientVersion, so
		// wrapping a synchronous transport (net.Pipe) cannot deadlock the
		// constructor; CallCtx blocks on c.ready until it settles. No
		// other goroutine writes before ready closes, so the preamble
		// write needs no lock.
		if _, err := c.conn.Write(appendPreamble(nil, c.maxVer)); err != nil {
			fail(err)
			return
		}
		var rep [preambleLen]byte
		if _, err := io.ReadFull(br, rep[:]); err != nil {
			fail(err)
			return
		}
		server, okPre := parsePreamble(rep[:])
		if !okPre {
			fail(errors.New("wire: bad negotiation reply"))
			return
		}
		c.wmu.Lock()
		if v := negotiate(c.maxVer, server); v >= ProtoV2 {
			c.ver = v
			c.fw = newVecWriter(c.conn, nil)
		} else {
			c.ver = ProtoGob
			c.enc = gob.NewEncoder(c.conn)
		}
		c.wmu.Unlock()
		close(c.ready)
	}
	next := func() (envelope, error) { return readFrame(br) }
	if c.ver < ProtoV2 {
		dec := gob.NewDecoder(br)
		next = func() (envelope, error) {
			var env envelope
			err := dec.Decode(&env)
			return env, err
		}
	}
	for {
		env, err := next()
		if err != nil {
			fail(err)
			return
		}
		switch env.Kind {
		case kindResponse:
			c.mu.Lock()
			ch := c.pending[env.ID]
			delete(c.pending, env.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- env
			}
		case kindPush:
			c.mu.Lock()
			h := c.onPush
			c.mu.Unlock()
			if h != nil {
				h(env.Method, Body{Enc: env.Enc, Data: env.Payload})
			}
		}
	}
}

// Call invokes a server method, decoding the response into reply (pass
// nil to discard the result).
func (c *Client) Call(method string, args, reply any) error {
	return c.CallCtx(context.Background(), method, args, reply)
}

// CallCtx invokes a server method, abandoning the wait when ctx ends.
// An abandoned call's response is discarded if it arrives later; the
// server side may still run to completion unless its own timeout or the
// connection's death cancels it.
func (c *Client) CallCtx(ctx context.Context, method string, args, reply any) error {
	// The handshake settles before the first byte of any call goes out.
	select {
	case <-c.ready:
	case <-c.done:
		return fmt.Errorf("wire: call %s: %w", method, ErrClosed)
	case <-ctx.Done():
		return fmt.Errorf("wire: call %s: %w", method, ctx.Err())
	}
	var payload []byte
	var body *BodyEnc
	var encFlag uint8
	var err error
	if c.ver >= ProtoV2 {
		if be, ok := args.(BodyEncoder); ok {
			body = getBodyEnc()
			be.AppendBody(body)
			encFlag = EncBinary
		}
	}
	if body == nil {
		payload, err = Marshal(args)
		if err != nil {
			return err
		}
	}
	id := atomic.AddUint64(&c.nextID, 1)
	ch := make(chan envelope, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putBodyEnc(body)
		return fmt.Errorf("wire: call %s: %w", method, ErrClosed)
	}
	if c.callTimeout > 0 {
		if _, bounded := ctx.Deadline(); !bounded {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
			defer cancel()
		}
	}
	c.pending[id] = ch
	c.mu.Unlock()

	// Every call carries a trace id: the caller's (WithTraceID) when it
	// wants to correlate, a fresh mint otherwise.
	tid, hasTID := obs.IDFrom(ctx)
	if !hasTID {
		tid = obs.MintID()
	}
	env := envelope{Kind: kindRequest, ID: id, Method: method, Payload: payload, Trace: tid, Enc: encFlag, body: body}
	c.wmu.Lock()
	if c.ver >= ProtoV2 {
		c.fw.encodeFrame(&env)
		err = c.fw.flush()
	} else {
		err = c.enc.Encode(env)
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		closed := c.closed
		delete(c.pending, id)
		c.mu.Unlock()
		if closed {
			return fmt.Errorf("wire: call %s: %w: %v", method, ErrClosed, err)
		}
		return fmt.Errorf("wire: call %s: %w", method, err)
	}
	var resp envelope
	var ok bool
	select {
	case resp, ok = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("wire: call %s: %w", method, ctx.Err())
	}
	if !ok {
		return fmt.Errorf("wire: %w during %s", ErrClosed, method)
	}
	if resp.Err != "" {
		// Errors cross the wire as strings; re-type the ones callers
		// dispatch on: overload rejections come back as *OverloadError
		// (retry-after hint intact), routing redirects as *RedirectError
		// (target node intact), quorum refusals as *UnavailableError.
		return retypeError(resp.Err)
	}
	if reply != nil {
		if resp.Enc == EncBinary {
			bd, okDec := reply.(BodyDecoder)
			if !okDec {
				return fmt.Errorf("wire: call %s: binary response but %T implements no BodyDecoder", method, reply)
			}
			return DecodeBodyBytes(resp.Payload, bd)
		}
		return Unmarshal(resp.Payload, reply)
	}
	return nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// CallTimeout is a convenience CallCtx with a fresh deadline.
func (c *Client) CallTimeout(d time.Duration, method string, args, reply any) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.CallCtx(ctx, method, args, reply)
}
