package wire

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type echoArgs struct {
	Text string
	N    int
}
type echoReply struct {
	Text string
	N    int
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Register("echo", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		var a echoArgs
		if err := Unmarshal(payload, &a); err != nil {
			return nil, err
		}
		return echoReply{Text: a.Text, N: a.N * 2}, nil
	})
	s.Register("fail", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	s.Register("void", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply echoReply
	if err := c.Call("echo", echoArgs{Text: "hi", N: 21}, &reply); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Text != "hi" || reply.N != 42 {
		t.Errorf("reply = %+v", reply)
	}
	// nil reply discards.
	if err := c.Call("echo", echoArgs{Text: "x"}, nil); err != nil {
		t.Fatalf("Call with nil reply: %v", err)
	}
	// void handler.
	if err := c.Call("void", echoArgs{}, nil); err != nil {
		t.Fatalf("void: %v", err)
	}
}

func TestCallErrors(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", echoArgs{}, nil); err == nil || err.Error() != "deliberate failure" {
		t.Errorf("fail call: %v", err)
	}
	if err := c.Call("nosuch", echoArgs{}, nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply echoReply
			if err := c.Call("echo", echoArgs{N: i}, &reply); err != nil {
				errs <- err
				return
			}
			if reply.N != i*2 {
				errs <- fmt.Errorf("reply %d for input %d", reply.N, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerPush(t *testing.T) {
	s := NewServer()
	s.Register("subscribe", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		go func() {
			for i := 0; i < 3; i++ {
				p.Push("tick", echoReply{N: i})
			}
		}()
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan int, 8)
	c.OnPush(func(method string, body Body) {
		if method != "tick" {
			t.Errorf("push method %s", method)
			return
		}
		var r echoReply
		if err := body.Decode(&r); err != nil {
			t.Error(err)
			return
		}
		got <- r.N
	})
	if err := c.Call("subscribe", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		select {
		case n := <-got:
			seen[n] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("push %d never arrived", i)
		}
	}
	if len(seen) != 3 {
		t.Errorf("pushes = %v", seen)
	}
}

func TestPeerMetaAndCloseCallback(t *testing.T) {
	s := NewServer()
	s.Register("login", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		var a echoArgs
		if err := Unmarshal(payload, &a); err != nil {
			return nil, err
		}
		p.SetMeta("user", a.Text)
		return nil, nil
	})
	s.Register("whoami", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		u, ok := p.Meta("user")
		if !ok {
			return nil, fmt.Errorf("not logged in")
		}
		return echoReply{Text: u.(string)}, nil
	})
	var closedUser atomic.Value
	done := make(chan struct{})
	s.OnPeerClose(func(p *Peer) {
		if u, ok := p.Meta("user"); ok {
			closedUser.Store(u.(string))
		}
		close(done)
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var r echoReply
	if err := c.Call("whoami", echoArgs{}, &r); err == nil {
		t.Error("whoami before login succeeded")
	}
	if err := c.Call("login", echoArgs{Text: "dr-adams"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("whoami", echoArgs{}, &r); err != nil || r.Text != "dr-adams" {
		t.Errorf("whoami = %+v, %v", r, err)
	}
	c.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("close callback never fired")
	}
	if closedUser.Load() != "dr-adams" {
		t.Errorf("closed user = %v", closedUser.Load())
	}
}

func TestCallAfterClose(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	time.Sleep(50 * time.Millisecond) // let the read loop observe the close
	if err := c.Call("echo", echoArgs{}, nil); err == nil {
		t.Error("call on closed connection succeeded")
	}
}

func TestInProcessPipe(t *testing.T) {
	// ServeConn + NewClient work over net.Pipe — no TCP needed.
	s := NewServer()
	s.Register("echo", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		var a echoArgs
		if err := Unmarshal(payload, &a); err != nil {
			return nil, err
		}
		return echoReply{Text: a.Text}, nil
	})
	sc, cc := net.Pipe()
	go s.ServeConn(sc)
	c := NewClient(cc)
	defer c.Close()
	var r echoReply
	if err := c.Call("echo", echoArgs{Text: "pipe"}, &r); err != nil || r.Text != "pipe" {
		t.Fatalf("pipe call: %+v, %v", r, err)
	}
}

func TestMarshalUnmarshalErrors(t *testing.T) {
	if _, err := Marshal(make(chan int)); err == nil {
		t.Error("channel marshaled")
	}
	var x echoArgs
	if err := Unmarshal([]byte("junk"), &x); err == nil {
		t.Error("garbage unmarshaled")
	}
}
