package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTyped boots a server whose handlers exercise the typed pipeline.
func startTyped(t *testing.T, ics ...Interceptor) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Use(ics...)
	s.Register("double", Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*echoReply, error) {
		return &echoReply{Text: req.Text, N: req.N * 2}, nil
	}))
	s.Register("void", Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*None, error) {
		return nil, nil
	}))
	s.Register("boom", Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*None, error) {
		panic("kaboom")
	}))
	s.Register("slow", Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*echoReply, error) {
		select {
		case <-time.After(time.Duration(req.N) * time.Millisecond):
			return &echoReply{Text: "finished"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

func TestTypedHandlerRoundTrip(t *testing.T) {
	_, addr := startTyped(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply echoReply
	if err := c.Call("double", echoArgs{Text: "hi", N: 21}, &reply); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Text != "hi" || reply.N != 42 {
		t.Errorf("reply = %+v", reply)
	}
	if err := c.Call("void", echoArgs{}, nil); err != nil {
		t.Fatalf("void: %v", err)
	}
	// Garbage payload fails cleanly in the adapter.
	s := NewServer()
	h := Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*None, error) { return nil, nil })
	if _, err := h(context.Background(), nil, []byte("junk")); err == nil {
		t.Error("typed handler accepted garbage payload")
	}
	_ = s
}

func TestRecoveryInterceptorCatchesPanic(t *testing.T) {
	_, addr := startTyped(t, Recovery())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("boom", echoArgs{}, nil)
	if err == nil || !strings.Contains(err.Error(), "internal error in boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// The connection survives the panic.
	var reply echoReply
	if err := c.Call("double", echoArgs{N: 1}, &reply); err != nil || reply.N != 2 {
		t.Fatalf("connection dead after panic: %+v, %v", reply, err)
	}
}

func TestTimeoutInterceptorAbortsSlowHandler(t *testing.T) {
	_, addr := startTyped(t, Timeout(20*time.Millisecond, nil))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Call("slow", echoArgs{N: 5000}, nil)
	if err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("slow handler not cancelled: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v", d)
	}
	// Per-method override: "slow" gets a long budget and completes.
	_, addr2 := startTyped(t, Timeout(20*time.Millisecond, map[string]time.Duration{"slow": 5 * time.Second}))
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var reply echoReply
	if err := c2.Call("slow", echoArgs{N: 40}, &reply); err != nil || reply.Text != "finished" {
		t.Fatalf("per-method override: %+v, %v", reply, err)
	}
}

func TestCallCtxCancellationAbandonsWait(t *testing.T) {
	_, addr := startTyped(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = c.CallCtx(ctx, "slow", echoArgs{N: 5000}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled call blocked for %v", d)
	}
	// The connection is still usable for new calls.
	var reply echoReply
	if err := c.Call("double", echoArgs{N: 3}, &reply); err != nil || reply.N != 6 {
		t.Fatalf("connection unusable after abandoned call: %+v, %v", reply, err)
	}
}

func TestPeerDisconnectCancelsHandlerContext(t *testing.T) {
	s := NewServer()
	handlerDone := make(chan error, 1)
	s.Register("hang", Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*None, error) {
		select {
		case <-ctx.Done():
			handlerDone <- ctx.Err()
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			handlerDone <- nil
			return nil, nil
		}
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go c.Call("hang", echoArgs{}, nil) // will fail when we close the conn
	time.Sleep(50 * time.Millisecond)  // let the request reach the handler
	c.Close()
	select {
	case err := <-handlerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("handler saw %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler context never cancelled after disconnect")
	}
}

func TestStatsCountersObservable(t *testing.T) {
	st := NewStats()
	// Stats outermost so even recovered panics are counted as errors.
	_, addr := startTyped(t, WithStats(st), Recovery())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Call("double", echoArgs{N: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Call("boom", echoArgs{}, nil) // recovered panic counts as an error
	ms := st.Method("double")
	if ms.Requests != 5 || ms.Errors != 0 {
		t.Errorf("double stats = %+v", ms)
	}
	if ms.TotalLatency <= 0 || ms.MaxLatency <= 0 {
		t.Errorf("latency not recorded: %+v", ms)
	}
	if bs := st.Method("boom"); bs.Requests != 1 || bs.Errors != 1 {
		t.Errorf("boom stats = %+v", bs)
	}
	snap := st.Snapshot()
	if len(snap) != 2 {
		t.Errorf("snapshot methods = %d", len(snap))
	}
}

func TestContextCarriesPeerAndMethod(t *testing.T) {
	s := NewServer()
	s.Register("who", Typed(func(ctx context.Context, p *Peer, req *echoArgs) (*echoReply, error) {
		cp, ok := ContextPeer(ctx)
		if !ok || cp != p {
			return nil, errors.New("peer missing from context")
		}
		m, ok := ContextMethod(ctx)
		if !ok {
			return nil, errors.New("method missing from context")
		}
		return &echoReply{Text: m}, nil
	}))
	sc, cc := net.Pipe()
	go s.ServeConn(sc)
	defer s.Close()
	c := NewClient(cc)
	defer c.Close()
	var reply echoReply
	if err := c.Call("who", echoArgs{}, &reply); err != nil || reply.Text != "who" {
		t.Fatalf("context introspection: %+v, %v", reply, err)
	}
}

func TestSlowLogReportsOverThreshold(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
	}
	_, addr := startTyped(t, SlowLog(time.Millisecond, logf))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("slow", echoArgs{N: 20}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(lines)
	mu.Unlock()
	if n == 0 {
		t.Error("slow request not logged")
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	s, addr := startTyped(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Start a request that takes ~80ms, then shut down: the drain must
	// wait for it and the client must still receive the real response.
	result := make(chan error, 1)
	go func() {
		var reply echoReply
		err := c.Call("slow", echoArgs{N: 80}, &reply)
		if err == nil && reply.Text != "finished" {
			err = errors.New("wrong reply: " + reply.Text)
		}
		result <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request get in flight
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("in-flight call during drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call never completed")
	}
	// New requests are rejected after drain.
	if err := c.Call("double", echoArgs{}, nil); err == nil {
		t.Error("call accepted after shutdown")
	}
}

func TestDrainRejectsNewRequests(t *testing.T) {
	s, addr := startTyped(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("double", echoArgs{N: 1}, nil); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	err = c.Call("double", echoArgs{N: 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("request during drain: %v", err)
	}
	if err := s.AwaitIdle(context.Background()); err != nil {
		t.Fatalf("AwaitIdle on idle server: %v", err)
	}
}
