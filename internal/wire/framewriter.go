package wire

import (
	"encoding/binary"
	"net"
	"time"

	"mmconf/internal/qos"
)

// writeFlushBytes bounds how many bytes a v2 write batch accumulates
// before an intermediate flush: a batch of media frames flushes by size
// long before it hits writeBatchMax envelopes, keeping the segment list
// (and the window during which zero-copy payloads must stay immutable)
// bounded.
const writeFlushBytes = 1 << 20

// vecWriter assembles v2 frames as a scratch buffer plus a segment
// list, and flushes the whole batch through net.Buffers — a writev on
// TCP, so one syscall carries many frames and large payload slices flow
// from their owner (blob cache, shared push encoding) to the socket
// without an intermediate copy.
//
// Not safe for concurrent use: the server wraps it in the per-peer
// writer goroutine, the client guards it with its write mutex.
type vecWriter struct {
	conn  net.Conn
	stats *Stats
	meter *qos.Meter // optional per-peer throughput estimator
	buf   []byte
	spans []span
	vec   net.Buffers // reusable backing for flush
	total int
}

func newVecWriter(conn net.Conn, stats *Stats) *vecWriter {
	return &vecWriter{conn: conn, stats: stats, buf: make([]byte, 0, 4096)}
}

// addScratch records [off,off+n) of w.buf as frame bytes, merging with
// a preceding scratch span. Offsets (not sub-slices) survive scratch
// reallocation.
func (w *vecWriter) addScratch(off, n int) {
	if n == 0 {
		return
	}
	w.total += n
	if k := len(w.spans); k > 0 && w.spans[k-1].ext == nil && w.spans[k-1].off+w.spans[k-1].n == off {
		w.spans[k-1].n += n
		return
	}
	w.spans = append(w.spans, span{off: off, n: n})
}

// addExt records a zero-copy reference to caller-owned bytes.
func (w *vecWriter) addExt(b []byte) {
	if len(b) == 0 {
		return
	}
	w.total += len(b)
	w.spans = append(w.spans, span{ext: b})
}

// encodeFrame appends one frame for env to the pending batch. A
// segmented body (env.body) is consumed: its small scratch spans are
// copied into the batch buffer, its external payload slices pass
// through by reference, and the encoder returns to the pool — so by the
// time encodeFrame returns, only caller-owned payload bytes are
// referenced.
func (w *vecWriter) encodeFrame(env *envelope) {
	hdrOff := len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0) // length hole, patched below
	w.buf = appendFrameHeader(w.buf, env)
	bodyLen := len(w.buf) - hdrOff - 4
	w.addScratch(hdrOff, len(w.buf)-hdrOff)
	w.total -= 4 // the length prefix does not count toward the body
	if env.body != nil {
		for _, s := range env.body.spans {
			if s.ext != nil {
				bodyLen += len(s.ext)
				w.addExt(s.ext)
				continue
			}
			bodyLen += s.n
			off := len(w.buf)
			w.buf = append(w.buf, env.body.buf[s.off:s.off+s.n]...)
			w.addScratch(off, s.n)
		}
		putBodyEnc(env.body)
		env.body = nil
	} else if len(env.Payload) >= externThreshold {
		bodyLen += len(env.Payload)
		w.addExt(env.Payload)
	} else if len(env.Payload) > 0 {
		bodyLen += len(env.Payload)
		off := len(w.buf)
		w.buf = append(w.buf, env.Payload...)
		w.addScratch(off, len(env.Payload))
	}
	binary.BigEndian.PutUint32(w.buf[hdrOff:], uint32(bodyLen))
	w.total += 4
}

// pending reports the batched byte count awaiting flush.
func (w *vecWriter) pending() int { return w.total }

// flush writes the batch in one net.Buffers call (writev where the
// connection supports it) and resets the batch state.
func (w *vecWriter) flush() error {
	if w.total == 0 {
		return nil
	}
	w.vec = w.vec[:0]
	for _, s := range w.spans {
		if s.ext != nil {
			w.vec = append(w.vec, s.ext)
		} else {
			w.vec = append(w.vec, w.buf[s.off:s.off+s.n])
		}
	}
	v := w.vec
	start := time.Now()
	n, err := v.WriteTo(w.conn)
	if w.meter != nil && err == nil {
		// A writev that blocked did so for the time the bottleneck link
		// (kernel buffer, throttled shim) needed to absorb n bytes — the
		// QoS estimator's raw signal.
		w.meter.Observe(int(n), time.Since(start))
	}
	if w.stats != nil {
		w.stats.Add(CounterWriterFlushes, 1)
		w.stats.Add(CounterWriterWrites, 1)
		w.stats.Add(CounterWriterBytes, uint64(n))
	}
	w.spans = w.spans[:0]
	w.total = 0
	if cap(w.buf) > 1<<20 {
		w.buf = make([]byte, 0, 4096) // one huge batch must not pin memory
	} else {
		w.buf = w.buf[:0]
	}
	return err
}
