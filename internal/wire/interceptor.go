package wire

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Interceptor wraps a Handler with cross-cutting behavior — the
// middleware seam of the dispatch pipeline. Interceptors read the
// request's method and peer from the context (ContextMethod,
// ContextPeer) rather than taking extra parameters, so they compose
// like plain decorators.
type Interceptor func(next Handler) Handler

// Chain wraps h with ics so that ics[0] is the outermost interceptor
// (first to see the request, last to see the response).
func Chain(h Handler, ics ...Interceptor) Handler {
	for i := len(ics) - 1; i >= 0; i-- {
		h = ics[i](h)
	}
	return h
}

// Recovery converts a handler panic into an error response, so one bad
// request cannot take the whole server process down.
func Recovery() Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (result any, err error) {
			defer func() {
				if r := recover(); r != nil {
					method, _ := ContextMethod(ctx)
					result = nil
					err = fmt.Errorf("wire: internal error in %s: %v\n%s", method, r, debug.Stack())
				}
			}()
			return next(ctx, p, payload)
		}
	}
}

// Timeout attaches a deadline to every request context: perMethod
// overrides win, otherwise def applies (def <= 0 leaves the context
// unbounded). The deadline only takes effect in handlers that honor
// their context — which is the contract of the request path (server →
// room all check for cancellation).
func Timeout(def time.Duration, perMethod map[string]time.Duration) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			d := def
			if method, ok := ContextMethod(ctx); ok {
				if md, ok := perMethod[method]; ok {
					d = md
				}
			}
			if d <= 0 {
				return next(ctx, p, payload)
			}
			ctx, cancel := context.WithTimeout(ctx, d)
			defer cancel()
			return next(ctx, p, payload)
		}
	}
}

// SlowLog reports requests that take longer than threshold to logf
// (log.Printf-shaped). A nil logf disables the interceptor.
func SlowLog(threshold time.Duration, logf func(format string, args ...any)) Interceptor {
	return func(next Handler) Handler {
		if logf == nil {
			return next
		}
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			start := time.Now()
			result, err := next(ctx, p, payload)
			if d := time.Since(start); d > threshold {
				method, _ := ContextMethod(ctx)
				logf("wire: slow request %s from peer %d: %v (err=%v)", method, p.ID, d, err)
			}
			return result, err
		}
	}
}

// MethodStats aggregates the observed requests of one method.
type MethodStats struct {
	Requests uint64
	Errors   uint64
	// TotalLatency accumulates handler wall time; divide by Requests
	// for the mean.
	TotalLatency time.Duration
	MaxLatency   time.Duration
}

// Stats counts requests, errors and latency per method — the pluggable
// observability hook of the dispatch pipeline — plus named monotonic
// counters for everything that is not a request (push fan-out, writer
// flushes, cache hits). A single Stats may be shared across servers;
// all methods are safe for concurrent use.
type Stats struct {
	mu      sync.Mutex
	methods map[string]*MethodStats
	// counters maps name -> *atomic.Uint64; sync.Map keeps Add
	// lock-free on the push/write hot paths.
	counters sync.Map
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{methods: make(map[string]*MethodStats)} }

// Add increments the named monotonic counter by delta, creating it on
// first use. Safe for concurrent use; hot paths pay one sync.Map load.
func (st *Stats) Add(name string, delta uint64) {
	c, ok := st.counters.Load(name)
	if !ok {
		c, _ = st.counters.LoadOrStore(name, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(delta)
}

// Counter returns the named counter's value (0 if never incremented).
func (st *Stats) Counter(name string) uint64 {
	if c, ok := st.counters.Load(name); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// Counters snapshots every named counter.
func (st *Stats) Counters() map[string]uint64 {
	out := make(map[string]uint64)
	st.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

func (st *Stats) observe(method string, d time.Duration, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ms := st.methods[method]
	if ms == nil {
		ms = &MethodStats{}
		st.methods[method] = ms
	}
	ms.Requests++
	if err != nil {
		ms.Errors++
	}
	ms.TotalLatency += d
	if d > ms.MaxLatency {
		ms.MaxLatency = d
	}
}

// Method returns a copy of one method's counters (zero value if the
// method has never been called).
func (st *Stats) Method(name string) MethodStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ms := st.methods[name]; ms != nil {
		return *ms
	}
	return MethodStats{}
}

// Snapshot copies every method's counters.
func (st *Stats) Snapshot() map[string]MethodStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]MethodStats, len(st.methods))
	for name, ms := range st.methods {
		out[name] = *ms
	}
	return out
}

// WithStats records every dispatched request into st.
func WithStats(st *Stats) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			start := time.Now()
			result, err := next(ctx, p, payload)
			if method, ok := ContextMethod(ctx); ok {
				st.observe(method, time.Since(start), err)
			}
			return result, err
		}
	}
}
