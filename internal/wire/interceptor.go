package wire

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mmconf/internal/obs"
)

// Interceptor wraps a Handler with cross-cutting behavior — the
// middleware seam of the dispatch pipeline. Interceptors read the
// request's method and peer from the context (ContextMethod,
// ContextPeer) rather than taking extra parameters, so they compose
// like plain decorators.
type Interceptor func(next Handler) Handler

// Chain wraps h with ics so that ics[0] is the outermost interceptor
// (first to see the request, last to see the response).
func Chain(h Handler, ics ...Interceptor) Handler {
	for i := len(ics) - 1; i >= 0; i-- {
		h = ics[i](h)
	}
	return h
}

// Recovery converts a handler panic into an error response, so one bad
// request cannot take the whole server process down.
func Recovery() Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (result any, err error) {
			defer func() {
				if r := recover(); r != nil {
					method, _ := ContextMethod(ctx)
					result = nil
					err = fmt.Errorf("wire: internal error in %s: %v\n%s", method, r, debug.Stack())
				}
			}()
			return next(ctx, p, payload)
		}
	}
}

// Timeout attaches a deadline to every request context: perMethod
// overrides win, otherwise def applies (def <= 0 leaves the context
// unbounded). The deadline only takes effect in handlers that honor
// their context — which is the contract of the request path (server →
// room all check for cancellation).
func Timeout(def time.Duration, perMethod map[string]time.Duration) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			d := def
			if method, ok := ContextMethod(ctx); ok {
				if md, ok := perMethod[method]; ok {
					d = md
				}
			}
			if d <= 0 {
				return next(ctx, p, payload)
			}
			ctx, cancel := context.WithTimeout(ctx, d)
			defer cancel()
			return next(ctx, p, payload)
		}
	}
}

// SlowLog reports requests that take longer than threshold to logf
// (log.Printf-shaped). A nil logf disables the interceptor.
func SlowLog(threshold time.Duration, logf func(format string, args ...any)) Interceptor {
	return func(next Handler) Handler {
		if logf == nil {
			return next
		}
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			start := time.Now()
			result, err := next(ctx, p, payload)
			if d := time.Since(start); d > threshold {
				method, _ := ContextMethod(ctx)
				logf("wire: slow request %s from peer %d: %v (err=%v)", method, p.ID, d, err)
			}
			return result, err
		}
	}
}

// MethodStats is the snapshot of one method's observed requests: flat
// counters plus the tail percentiles derived from the method's
// log-bucketed histogram (p50/p90/p99 within ~6% of true rank values).
type MethodStats struct {
	Requests uint64
	Errors   uint64
	// TotalLatency accumulates handler wall time; divide by Requests
	// for the mean (or use Mean).
	TotalLatency  time.Duration
	MaxLatency    time.Duration
	P50, P90, P99 time.Duration
}

// Mean returns the average handler latency (0 with no requests).
func (ms MethodStats) Mean() time.Duration {
	if ms.Requests == 0 {
		return 0
	}
	return ms.TotalLatency / time.Duration(ms.Requests)
}

// methodRec is the live per-method accumulator behind MethodStats.
type methodRec struct {
	requests uint64
	errors   uint64
	total    time.Duration
	hist     *obs.Histogram
}

// snapshot derives the exported view, percentiles included.
func (r *methodRec) snapshot() MethodStats {
	hs := r.hist.Snapshot()
	return MethodStats{
		Requests:     r.requests,
		Errors:       r.errors,
		TotalLatency: r.total,
		MaxLatency:   hs.Max,
		P50:          hs.Quantile(0.50),
		P90:          hs.Quantile(0.90),
		P99:          hs.Quantile(0.99),
	}
}

// Stats counts requests, errors and latency per method — the pluggable
// observability hook of the dispatch pipeline — plus named monotonic
// counters for everything that is not a request (push fan-out, writer
// flushes, cache hits). Latencies feed per-method log-bucketed
// histograms, so snapshots report tail percentiles, not just means. A
// single Stats may be shared across servers; all methods are safe for
// concurrent use.
type Stats struct {
	mu      sync.Mutex
	methods map[string]*methodRec
	// counters maps name -> *atomic.Uint64; sync.Map keeps Add
	// lock-free on the push/write hot paths.
	counters sync.Map
}

// NewStats returns an empty collector.
func NewStats() *Stats { return &Stats{methods: make(map[string]*methodRec)} }

// Add increments the named monotonic counter by delta, creating it on
// first use. Safe for concurrent use; hot paths pay one sync.Map load.
func (st *Stats) Add(name string, delta uint64) {
	c, ok := st.counters.Load(name)
	if !ok {
		c, _ = st.counters.LoadOrStore(name, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(delta)
}

// Counter returns the named counter's value (0 if never incremented).
func (st *Stats) Counter(name string) uint64 {
	if c, ok := st.counters.Load(name); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// Counters snapshots every named counter.
func (st *Stats) Counters() map[string]uint64 {
	out := make(map[string]uint64)
	st.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

func (st *Stats) observe(method string, d time.Duration, err error) {
	st.mu.Lock()
	rec := st.methods[method]
	if rec == nil {
		rec = &methodRec{hist: obs.NewHistogram()}
		st.methods[method] = rec
	}
	rec.requests++
	if err != nil {
		rec.errors++
	}
	rec.total += d
	st.mu.Unlock()
	// The histogram is internally atomic; keep it off the map lock.
	rec.hist.Observe(d)
}

// Method returns a snapshot of one method's counters and percentiles
// (zero value if the method has never been called).
func (st *Stats) Method(name string) MethodStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec := st.methods[name]; rec != nil {
		return rec.snapshot()
	}
	return MethodStats{}
}

// Histogram returns the named method's live latency histogram (nil if
// the method has never been called) for callers needing quantiles
// beyond the snapshot's p50/p90/p99.
func (st *Stats) Histogram(name string) *obs.Histogram {
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec := st.methods[name]; rec != nil {
		return rec.hist
	}
	return nil
}

// Snapshot copies every method's counters and derives percentiles.
func (st *Stats) Snapshot() map[string]MethodStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]MethodStats, len(st.methods))
	for name, rec := range st.methods {
		out[name] = rec.snapshot()
	}
	return out
}

// WithStats records every dispatched request into st.
func WithStats(st *Stats) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			start := time.Now()
			result, err := next(ctx, p, payload)
			if method, ok := ContextMethod(ctx); ok {
				st.observe(method, time.Since(start), err)
			}
			return result, err
		}
	}
}

// Tracing attaches a live obs.Trace to every request context (inner
// layers add spans: the typed adapter times decode/handle, the room
// times the push fan-out) and hands the completed trace to rec, which
// keeps the slow and errored ones. The trace id comes off the wire
// frame — the same id the client minted or pinned — so one id follows a
// request across machines.
func Tracing(rec *obs.Recorder) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, p *Peer, payload []byte) (any, error) {
			method, _ := ContextMethod(ctx)
			var peerID uint64
			if p != nil {
				peerID = p.ID
			}
			tr := obs.NewTrace(ContextTraceID(ctx), method, peerID)
			ctx = obs.ContextWithTrace(ctx, tr)
			result, err := next(ctx, p, payload)
			rec.Observe(tr, time.Since(tr.Begin), err)
			return result, err
		}
	}
}
