package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"mmconf/internal/obs"
)

// coverBody is a minimal BodyEncoder/BodyDecoder pair for exercising
// the pooled body codec entry points directly (the real codecs live in
// internal/proto and don't count toward this package's coverage).
type coverBody struct {
	A uint64
	B int64
	S string
	P []byte
}

func (b *coverBody) AppendBody(e *BodyEnc) {
	e.Uvarint(b.A)
	e.Varint(b.B)
	e.String(b.S)
	e.Bytes(b.P)
}

func (b *coverBody) DecodeBody(d *Dec) error {
	b.A = d.Uvarint()
	b.B = d.Varint()
	b.S = d.String()
	b.P = d.Bytes()
	return d.Err()
}

func TestMarshalBodyRoundTrip(t *testing.T) {
	in := &coverBody{A: 1 << 40, B: -77, S: "hello", P: []byte{9, 8, 7}}
	data := MarshalBody(in)
	var out coverBody
	if err := DecodeBodyBytes(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || out.S != in.S || string(out.P) != string(in.P) {
		t.Errorf("round trip: got %+v want %+v", out, *in)
	}
	// Trailing bytes must be rejected.
	if err := DecodeBodyBytes(append(data, 0), &out); err == nil {
		t.Error("trailing byte accepted")
	}
	// Truncation must be rejected.
	if err := DecodeBodyBytes(data[:len(data)-1], &out); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestPoolStatsCounts(t *testing.T) {
	g0, m0 := PoolStats()
	for i := 0; i < 8; i++ {
		MarshalBody(&coverBody{S: "x"})
	}
	g1, m1 := PoolStats()
	if g1 < g0+8 {
		t.Errorf("gets %d -> %d, want +8 at least", g0, g1)
	}
	if m1 < m0 || m1 > g1 {
		t.Errorf("misses %d out of range (gets %d, was %d)", m1, g1, m0)
	}
}

func TestBodyDecodeBothEncodings(t *testing.T) {
	bin := Body{Enc: EncBinary, Data: MarshalBody(&coverBody{A: 5, S: "b"})}
	var out coverBody
	if err := bin.Decode(&out); err != nil || out.A != 5 || out.S != "b" {
		t.Errorf("binary decode: %v %+v", err, out)
	}
	// A binary payload into a type with no BodyDecoder is a typed error.
	var plain struct{ X int }
	if err := bin.Decode(&plain); err == nil {
		t.Error("binary payload into gob-only type accepted")
	}
	// Gob payloads dispatch through Unmarshal.
	gobData, err := Marshal(echoArgs{Text: "g", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ga echoArgs
	if err := (Body{Enc: EncGob, Data: gobData}).Decode(&ga); err != nil || ga.N != 3 {
		t.Errorf("gob decode: %v %+v", err, ga)
	}
}

func TestServerVersionSurface(t *testing.T) {
	s, addr := startServer(t)
	if got := s.MaxProtoVersion(); got != ProtoV2 {
		t.Fatalf("MaxProtoVersion = %d, want %d", got, ProtoV2)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	v2c := NewClient(conn)
	defer v2c.Close()
	if got := v2c.ProtoVersion(); got != ProtoV2 {
		t.Fatalf("client ProtoVersion = %d, want %d", got, ProtoV2)
	}
	if err := v2c.Err(); err != nil {
		t.Fatalf("live client Err = %v", err)
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	gobc := NewClientVersion(conn2, ProtoGob)
	defer gobc.Close()
	if got := gobc.ProtoVersion(); got != ProtoGob {
		t.Fatalf("gob client ProtoVersion = %d, want %d", got, ProtoGob)
	}
	// A gob client announces itself only with its first request bytes.
	var rep echoReply
	if err := gobc.CallTimeout(5*time.Second, "echo", echoArgs{Text: "t", N: 2}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 4 {
		t.Fatalf("echo reply N = %d", rep.N)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		v2, gob := s.PeerVersions()
		if v2 == 1 && gob == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("PeerVersions = %d/%d, want 1/1", v2, gob)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if peers, queued := s.WriteBacklog(); peers != 2 || queued != 0 {
		t.Errorf("WriteBacklog = %d peers, %d queued", peers, queued)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	s := NewServer()
	s.Register("trace", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		return echoReply{N: int(ContextTraceID(ctx))}, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := WithTraceID(context.Background(), 424242)
	var rep echoReply
	if err := c.CallCtx(ctx, "trace", echoArgs{}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 424242 {
		t.Errorf("handler saw trace id %d, want 424242", rep.N)
	}
	// Outside a dispatch the accessor reports zero.
	if id := ContextTraceID(context.Background()); id != 0 {
		t.Errorf("ContextTraceID outside dispatch = %d", id)
	}
}

func TestDecTruncatedPrimitives(t *testing.T) {
	// A lone continuation byte is an unterminated varint.
	d := NewDec([]byte{0x80})
	if d.Varint(); d.Err() == nil {
		t.Error("truncated varint accepted")
	}
	// Err latches: subsequent reads keep failing and return zeros.
	if v := d.Varint(); v != 0 || d.Err() == nil {
		t.Errorf("latched Varint = %d, err %v", v, d.Err())
	}
	d = NewDec([]byte{1, 2, 3})
	if d.F64(); d.Err() == nil {
		t.Error("truncated float accepted")
	}
}

func TestRegisterMethodCodePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	RegisterMethodCode(910, "covertest.a")
	RegisterMethodCode(910, "covertest.a") // same binding again is fine
	expectPanic("reserved code", func() { RegisterMethodCode(0xFFFF, "covertest.r") })
	expectPanic("code collision", func() { RegisterMethodCode(910, "covertest.b") })
	expectPanic("name collision", func() { RegisterMethodCode(911, "covertest.a") })
}

func TestPutBodyEncDropsOversized(t *testing.T) {
	e := getBodyEnc()
	// Grow scratch past the pool's 1 MiB retention cap; the small
	// RawBytes path copies into scratch (no external spans).
	chunk := make([]byte, externThreshold-1)
	for i := 0; i < (1<<20)/len(chunk)+2; i++ {
		e.RawBytes(chunk)
	}
	if cap(e.buf) <= 1<<20 {
		t.Fatalf("scratch cap %d not oversized", cap(e.buf))
	}
	putBodyEnc(e) // must drop, not pin: nothing to assert beyond not panicking
	putBodyEnc(nil)
}

func TestClientProtoVersionDeadConn(t *testing.T) {
	server, client := net.Pipe()
	server.Close() // handshake can never complete
	c := NewClient(client)
	defer c.Close()
	if got := c.ProtoVersion(); got != 0 {
		t.Errorf("ProtoVersion on dead conn = %d, want 0", got)
	}
}

func TestStatsSurface(t *testing.T) {
	st := NewStats()
	st.observe("m", 10*time.Millisecond, nil)
	st.observe("m", 30*time.Millisecond, ErrDraining)
	ms := st.Method("m")
	if ms.Requests != 2 || ms.Errors != 1 {
		t.Fatalf("Method = %+v", ms)
	}
	if got := ms.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if (MethodStats{}).Mean() != 0 {
		t.Error("zero-value Mean != 0")
	}
	if st.Histogram("m") == nil || st.Histogram("absent") != nil {
		t.Error("Histogram lookup wrong")
	}
	st.Add("c", 2)
	st.Add("c", 3)
	if all := st.Counters(); all["c"] != 5 {
		t.Errorf("Counters = %v", all)
	}
}

func TestTracingInterceptor(t *testing.T) {
	rec := obs.NewRecorder(4, -1)
	var sawTrace bool
	h := Tracing(rec)(func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		tr, ok := obs.TraceFrom(ctx)
		sawTrace = ok && tr != nil
		return nil, nil
	})
	ctx := context.WithValue(context.Background(), reqInfoKey, &reqInfo{method: "m", trace: 7})
	if _, err := h(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !sawTrace {
		t.Error("handler saw no trace in context")
	}
}

func TestPriorityString(t *testing.T) {
	names := map[Priority]string{PriorityControl: "control", PriorityInteractive: "interactive", PriorityBulk: "bulk"}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("Priority(%d).String() = %q, want %q", p, got, want)
		}
	}
	if got := Priority(99).String(); got == "" {
		t.Error("unknown priority stringified to empty")
	}
}
