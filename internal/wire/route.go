package wire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"mmconf/internal/obs"
)

// This file is the cluster-routing surface of the wire layer: the typed
// errors a routing tier answers with when a request belongs on another
// node (RedirectError) or cannot be served safely at all
// (UnavailableError), plus the raw relay primitives — RawResult and
// Client.CallRaw — a forwarding node uses to shuttle request and
// response payloads between connections byte-for-byte, without decoding
// them. Like OverloadError, the routing errors render a deterministic
// wire string that the client side parses back into the typed form, so
// redirect targets survive the round trip (and survive being relayed
// across an intermediate node, since relays carry error strings
// verbatim).

// ErrRedirect is the sentinel every routing redirect matches
// (errors.Is). The concrete error is *RedirectError, which carries the
// target node.
var ErrRedirect = errors.New("wire: redirected")

// RedirectError tells the caller its request is owned by another node:
// redial Addr and retry there. The reconnect supervisor follows it.
type RedirectError struct {
	Node string // owning node id
	Addr string // owning node's client address
}

const (
	redirectPrefix = "wire: redirect to node "
	redirectSep    = " at "
)

// Error renders the deterministic wire form ParseRedirect inverts.
func (e *RedirectError) Error() string {
	return redirectPrefix + e.Node + redirectSep + e.Addr
}

// Is makes errors.Is(err, ErrRedirect) match.
func (e *RedirectError) Is(target error) bool { return target == ErrRedirect }

// ParseRedirect recovers a typed redirect from its string form — the
// shape a response error takes after crossing the wire (possibly twice,
// through a forwarding node) as a plain message.
func ParseRedirect(msg string) (*RedirectError, bool) {
	rest, ok := strings.CutPrefix(msg, redirectPrefix)
	if !ok {
		return nil, false
	}
	i := strings.LastIndex(rest, redirectSep)
	if i < 0 {
		return nil, false
	}
	node, addr := rest[:i], rest[i+len(redirectSep):]
	if node == "" || addr == "" {
		return nil, false
	}
	return &RedirectError{Node: node, Addr: addr}, true
}

// ErrUnavailable is the sentinel every routing-unavailable rejection
// matches (errors.Is): the node cannot serve or forward the request
// safely right now (it is partitioned away from the cluster majority,
// or mid-handoff). The caller should try another node.
var ErrUnavailable = errors.New("wire: cluster unavailable")

// UnavailableError reports a request refused by cluster routing. Unlike
// a redirect it names no better node — the client's resolver should
// rotate to its next endpoint and retry.
type UnavailableError struct {
	Node   string
	Reason string
}

const (
	unavailablePrefix = "wire: cluster unavailable at node "
	unavailableSep    = ": "
)

// Error renders the deterministic wire form ParseUnavailable inverts.
func (e *UnavailableError) Error() string {
	return unavailablePrefix + e.Node + unavailableSep + e.Reason
}

// Is makes errors.Is(err, ErrUnavailable) match.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// ParseUnavailable recovers a typed unavailable error from its string
// form.
func ParseUnavailable(msg string) (*UnavailableError, bool) {
	rest, ok := strings.CutPrefix(msg, unavailablePrefix)
	if !ok {
		return nil, false
	}
	i := strings.Index(rest, unavailableSep)
	if i < 0 {
		return nil, false
	}
	return &UnavailableError{Node: rest[:i], Reason: rest[i+len(unavailableSep):]}, true
}

// retypeError re-types the error strings callers dispatch on after they
// cross the wire as plain messages: overload (with its retry-after
// hint), redirect (with its target), and cluster-unavailable.
func retypeError(msg string) error {
	if oe, ok := ParseOverload(msg); ok {
		return oe
	}
	if re, ok := ParseRedirect(msg); ok {
		return re
	}
	if ue, ok := ParseUnavailable(msg); ok {
		return ue
	}
	return errors.New(msg)
}

// RawResult is a handler result whose payload is already encoded: the
// dispatch loop writes Payload with the Enc flag as the response body,
// bypassing the marshal step. It is how a forwarding node relays an
// owner node's response to the origin client byte-for-byte — the bytes
// were encoded once, on the owner, for the client's negotiated
// encoding.
type RawResult struct {
	Enc     uint8
	Payload []byte
}

// RemoteError is a call failure reported by the far server (as opposed
// to a transport failure). Its message is the server's error string
// verbatim, which a relay returns unmodified so typed errors
// (redirect, overload) survive two hops.
type RemoteError struct{ Msg string }

// Error returns the far server's error string verbatim.
func (e *RemoteError) Error() string { return e.Msg }

// CallRaw invokes a server method with a pre-encoded payload and
// returns the raw response body — the relay path of a routing tier: no
// decode, no re-encode, the owner's bytes reach the origin client
// untouched. A non-nil error is either a *RemoteError (the far
// handler failed; relay its Msg verbatim) or a transport error
// (errors.Is ErrClosed / context errors — the relay link itself died).
func (c *Client) CallRaw(ctx context.Context, method string, enc uint8, payload []byte) (Body, error) {
	select {
	case <-c.ready:
	case <-c.done:
		return Body{}, fmt.Errorf("wire: call %s: %w", method, ErrClosed)
	case <-ctx.Done():
		return Body{}, fmt.Errorf("wire: call %s: %w", method, ctx.Err())
	}
	id := atomic.AddUint64(&c.nextID, 1)
	ch := make(chan envelope, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Body{}, fmt.Errorf("wire: call %s: %w", method, ErrClosed)
	}
	if c.callTimeout > 0 {
		if _, bounded := ctx.Deadline(); !bounded {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
			defer cancel()
		}
	}
	c.pending[id] = ch
	c.mu.Unlock()

	tid, hasTID := obs.IDFrom(ctx)
	if !hasTID {
		tid = obs.MintID()
	}
	env := envelope{Kind: kindRequest, ID: id, Method: method, Payload: payload, Trace: tid, Enc: enc}
	c.wmu.Lock()
	var err error
	if c.ver >= ProtoV2 {
		c.fw.encodeFrame(&env)
		err = c.fw.flush()
	} else {
		err = c.enc.Encode(env)
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Body{}, fmt.Errorf("wire: call %s: %w", method, err)
	}
	var resp envelope
	var ok bool
	select {
	case resp, ok = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Body{}, fmt.Errorf("wire: call %s: %w", method, ctx.Err())
	}
	if !ok {
		return Body{}, fmt.Errorf("wire: %w during %s", ErrClosed, method)
	}
	if resp.Err != "" {
		return Body{}, &RemoteError{Msg: resp.Err}
	}
	return Body{Enc: resp.Enc, Data: resp.Payload}, nil
}
