// Wire protocol v2: a hand-rolled length-prefixed binary framing that
// replaces gob on the hot path. Every frame is
//
//	u32be body length | body
//	body := kind u8 | enc u8 | id uvarint | trace uvarint
//	        | method u16be code (0xFFFF → uvarint len + name bytes)
//	        | err uvarint len + bytes | payload (rest of frame)
//
// enc names the payload encoding: EncGob (the fallback — any body
// without a binary codec still travels as gob bytes inside a v2 frame)
// or EncBinary (a BodyEncoder/BodyDecoder codec from internal/proto).
//
// Version negotiation rides a connection preamble: a v2 client opens
// with [0x00 'M' 'M' '2' maxVer]. The leading zero byte is unambiguous
// against gob — a gob stream starts with a nonzero uvarint byte count —
// so a server peeking one byte routes legacy clients to the gob loops
// untouched. The server replies with the same shape carrying the chosen
// version (min of the two maxima; below 2 means "speak gob").
//
// Zero-copy: the encoder builds frames as segments — pooled scratch
// ranges for headers and small fields, plus direct references to large
// payload byte slices (media chunks out of the CAS, shared push
// encodings) that are never copied into an intermediate buffer. The
// batched writer hands the segment list to net.Buffers, which becomes a
// writev on TCP: one syscall flushes a batch of frames whose media
// bytes flowed straight from the blob store to the socket.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Protocol versions. Version 0 is the legacy length-free gob stream;
// version 2 is the binary framing above. (1 was never shipped.)
const (
	ProtoGob = 0
	ProtoV2  = 2
)

// Payload encodings carried in a frame's enc byte.
const (
	EncGob    uint8 = 0
	EncBinary uint8 = 1
)

// preambleLen is the size of the negotiation preamble and its reply.
const preambleLen = 5

// preambleMagic are bytes 1..3 of the preamble ('M' 'M' '2').
var preambleMagic = [3]byte{'M', 'M', '2'}

// maxFrameSize bounds a frame body so a malformed or hostile length
// prefix cannot make the reader allocate unbounded memory. 64 MiB
// comfortably exceeds the largest media payload the store accepts.
const maxFrameSize = 64 << 20

// externThreshold is the payload size above which the encoder records a
// reference to the caller's bytes instead of copying them into frame
// scratch. Below it, one memcpy is cheaper than growing the writev
// vector.
const externThreshold = 512

// methodNoCode marks a method with no registered code: the name travels
// inline (uvarint length + bytes).
const methodNoCode = 0xFFFF

// ErrFrameTooLarge reports a length prefix past maxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// errFrameTruncated reports a frame body shorter than its fields claim.
var errFrameTruncated = errors.New("wire: truncated frame")

// --- method-code registry -------------------------------------------------

var (
	methodMu     sync.RWMutex
	codeByMethod = make(map[string]uint16)
	methodByCode = make(map[uint16]string)
)

// RegisterMethodCode assigns a stable u16 code to a method name so v2
// frames carry 2 bytes instead of the string. Both sides of a
// connection share the table (it is populated by package init in
// internal/proto). Codes 0xFFFF and duplicates panic: the table is
// program-wide protocol surface, and a collision is a build bug.
func RegisterMethodCode(code uint16, method string) {
	if code == methodNoCode {
		panic("wire: method code 0xFFFF is reserved")
	}
	methodMu.Lock()
	defer methodMu.Unlock()
	if prev, ok := methodByCode[code]; ok && prev != method {
		panic(fmt.Sprintf("wire: method code %d already bound to %q", code, prev))
	}
	if prev, ok := codeByMethod[method]; ok && prev != code {
		panic(fmt.Sprintf("wire: method %q already bound to code %d", method, prev))
	}
	methodByCode[code] = method
	codeByMethod[method] = code
}

func methodCode(method string) (uint16, bool) {
	methodMu.RLock()
	c, ok := codeByMethod[method]
	methodMu.RUnlock()
	return c, ok
}

func methodName(code uint16) (string, bool) {
	methodMu.RLock()
	m, ok := methodByCode[code]
	methodMu.RUnlock()
	return m, ok
}

// --- negotiation ----------------------------------------------------------

// appendPreamble renders the negotiation preamble (or its reply)
// carrying ver.
func appendPreamble(dst []byte, ver uint8) []byte {
	return append(dst, 0x00, preambleMagic[0], preambleMagic[1], preambleMagic[2], ver)
}

// parsePreamble validates a preamble (or reply) and extracts the
// version it carries.
func parsePreamble(b []byte) (ver uint8, ok bool) {
	if len(b) != preambleLen || b[0] != 0x00 ||
		b[1] != preambleMagic[0] || b[2] != preambleMagic[1] || b[3] != preambleMagic[2] {
		return 0, false
	}
	return b[4], true
}

// negotiate picks the connection version from the two maxima: the
// highest version both sides speak, with anything below ProtoV2
// collapsing to the gob fallback (there is no protocol 1 to fall into).
func negotiate(clientMax, serverMax uint8) uint8 {
	v := clientMax
	if serverMax < v {
		v = serverMax
	}
	if v < ProtoV2 {
		return ProtoGob
	}
	// Future versions degrade to the highest we implement.
	if v > ProtoV2 {
		return ProtoV2
	}
	return v
}

// --- pooled-buffer metrics ------------------------------------------------

// Pool telemetry: gets count pool fetches, misses count fetches the
// pool could not serve (a fresh allocation). Hit rate =
// (gets-misses)/gets. Package-global because sync.Pool is; surfaced
// through sys.stats as wire.pool_gets / wire.pool_misses.
var poolGets, poolMisses atomic.Uint64

// PoolStats reports the scratch-buffer pool counters (total fetches,
// fetches that allocated).
func PoolStats() (gets, misses uint64) {
	return poolGets.Load(), poolMisses.Load()
}

// --- binary body codec primitives -----------------------------------------

// span is one segment of an encoded frame or body: a range of the
// owning encoder's scratch when ext is nil, a reference to external
// bytes otherwise.
type span struct {
	off, n int
	ext    []byte
}

// BodyEnc builds the binary encoding of one request/response body as
// scratch bytes plus zero-copy references to large payload slices.
// Encoders come from a pool; the writer returns them after the frame is
// on the wire. Callers must not mutate a slice passed to RawBytes until
// the message has been written (the same contract PushRaw already
// imposes).
type BodyEnc struct {
	buf   []byte
	spans []span
}

var bodyEncPool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return &BodyEnc{buf: make([]byte, 0, 1024)}
}}

// getBodyEnc fetches a reset encoder from the pool.
func getBodyEnc() *BodyEnc {
	poolGets.Add(1)
	e := bodyEncPool.Get().(*BodyEnc)
	e.buf = e.buf[:0]
	e.spans = e.spans[:0]
	return e
}

// putBodyEnc returns an encoder to the pool. Oversized scratch is
// dropped so one huge body does not pin memory forever.
func putBodyEnc(e *BodyEnc) {
	if e == nil || cap(e.buf) > 1<<20 {
		return
	}
	bodyEncPool.Put(e)
}

// grow extends scratch by n bytes and returns the slice to fill,
// keeping the span list pointed at scratch offsets (offsets survive the
// realloc that invalidates sub-slices).
func (e *BodyEnc) grow(n int) []byte {
	off := len(e.buf)
	if off+n <= cap(e.buf) {
		e.buf = e.buf[:off+n]
	} else {
		e.buf = append(e.buf, make([]byte, n)...)
	}
	if k := len(e.spans); k > 0 && e.spans[k-1].ext == nil && e.spans[k-1].off+e.spans[k-1].n == off {
		e.spans[k-1].n += n
	} else {
		e.spans = append(e.spans, span{off: off, n: n})
	}
	return e.buf[off : off+n]
}

// Byte appends one byte.
func (e *BodyEnc) Byte(b byte) { e.grow(1)[0] = b }

// Uvarint appends an unsigned varint.
func (e *BodyEnc) Uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	copy(e.grow(n), tmp[:n])
}

// Varint appends a zigzag signed varint.
func (e *BodyEnc) Varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	copy(e.grow(n), tmp[:n])
}

// Bool appends a bool as one byte.
func (e *BodyEnc) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// F64 appends a float64 as its IEEE-754 bits.
func (e *BodyEnc) F64(v float64) {
	binary.BigEndian.PutUint64(e.grow(8), math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *BodyEnc) String(s string) {
	e.Uvarint(uint64(len(s)))
	copy(e.grow(len(s)), s)
}

// Bytes appends a length-prefixed byte slice, copying it into scratch.
// Use RawBytes for payloads large enough to ship zero-copy.
func (e *BodyEnc) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	copy(e.grow(len(b)), b)
}

// RawBytes appends a length-prefixed byte slice without copying when it
// is large: the frame records a reference and the writev flush reads
// the caller's bytes directly — the zero-copy media path. The caller
// must not mutate b until the message is written.
func (e *BodyEnc) RawBytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	if len(b) == 0 {
		return
	}
	if len(b) < externThreshold {
		copy(e.grow(len(b)), b)
		return
	}
	e.spans = append(e.spans, span{ext: b})
}

// size sums the encoded length across spans.
func (e *BodyEnc) size() int {
	n := 0
	for _, s := range e.spans {
		if s.ext != nil {
			n += len(s.ext)
		} else {
			n += s.n
		}
	}
	return n
}

// segments materializes the span list against the (now final) scratch
// buffer. The returned slices alias e.buf — valid until the encoder is
// pooled again.
func (e *BodyEnc) segments() [][]byte {
	out := make([][]byte, 0, len(e.spans))
	for _, s := range e.spans {
		if s.ext != nil {
			out = append(out, s.ext)
		} else {
			out = append(out, e.buf[s.off:s.off+s.n])
		}
	}
	return out
}

// Flatten copies the encoding into one newly-owned []byte — the shape a
// shared push encoding needs (long-lived, fanned out to N peers) — and
// is also the gob-connection fallback for a body encoded before the
// peer's version was known.
func (e *BodyEnc) Flatten() []byte {
	out := make([]byte, 0, e.size())
	for _, s := range e.spans {
		if s.ext != nil {
			out = append(out, s.ext...)
		} else {
			out = append(out, e.buf[s.off:s.off+s.n]...)
		}
	}
	return out
}

// BodyEncoder is implemented by request/response bodies with a binary
// codec. AppendBody writes the body's fields in declaration order.
type BodyEncoder interface {
	AppendBody(e *BodyEnc)
}

// MarshalBody binary-encodes v into one newly-owned byte slice through
// a pooled encoder — the shape a shared fan-out payload needs (flat,
// long-lived, handed to many peers by reference).
func MarshalBody(v BodyEncoder) []byte {
	e := getBodyEnc()
	v.AppendBody(e)
	out := e.Flatten()
	putBodyEnc(e)
	return out
}

// Dec is the binary decoder over one frame payload. Errors latch: after
// the first failure every read returns zero values and Err reports the
// failure, so codecs chain reads without per-field checks. Byte-slice
// reads alias the input buffer (each received frame owns a fresh
// exact-size buffer, so aliasing is safe and saves the copy).
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{b: data} }

// Err reports the first decode failure, if any.
func (d *Dec) Err() error { return d.err }

// Len reports the unread byte count.
func (d *Dec) Len() int { return len(d.b) - d.off }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = errFrameTruncated
	}
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Bool reads a bool.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// F64 reads a float64.
func (d *Dec) F64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// Bytes reads a length-prefixed byte slice, aliasing the input buffer.
// A nil slice comes back for zero length.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := d.b[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// String reads a length-prefixed string (a copy, by string semantics).
func (d *Dec) String() string { return string(d.Bytes()) }

// BodyDecoder is implemented by bodies with a binary codec. DecodeBody
// reads the fields AppendBody wrote, in the same order, and returns
// d.Err() (plus any semantic validation of its own).
type BodyDecoder interface {
	DecodeBody(d *Dec) error
}

// DecodeBodyBytes decodes a binary-encoded payload into v and verifies
// the payload was consumed exactly.
func DecodeBodyBytes(data []byte, v BodyDecoder) error {
	d := NewDec(data)
	if err := v.DecodeBody(d); err != nil {
		return fmt.Errorf("wire: decode body %T: %w", v, err)
	}
	if d.Len() != 0 {
		return fmt.Errorf("wire: decode body %T: %d trailing bytes", v, d.Len())
	}
	return nil
}

// Body is one received push payload with its encoding — what a
// PushHandler gets. Decode dispatches on the encoding: binary payloads
// need v to implement BodyDecoder, gob payloads take any gob-decodable
// pointer.
type Body struct {
	Enc  uint8
	Data []byte
}

// Decode unmarshals the payload into v (a pointer).
func (b Body) Decode(v any) error {
	if b.Enc == EncBinary {
		bd, ok := v.(BodyDecoder)
		if !ok {
			return fmt.Errorf("wire: binary payload but %T implements no BodyDecoder", v)
		}
		return DecodeBodyBytes(b.Data, bd)
	}
	return Unmarshal(b.Data, v)
}

// --- frame encode/parse ---------------------------------------------------

// appendFrameHeader renders the frame body header (everything before
// the payload) for env into dst.
func appendFrameHeader(dst []byte, env *envelope) []byte {
	dst = append(dst, byte(env.Kind), env.Enc)
	dst = binary.AppendUvarint(dst, env.ID)
	dst = binary.AppendUvarint(dst, env.Trace)
	if code, ok := methodCode(env.Method); ok {
		dst = binary.BigEndian.AppendUint16(dst, code)
	} else {
		dst = binary.BigEndian.AppendUint16(dst, methodNoCode)
		dst = binary.AppendUvarint(dst, uint64(len(env.Method)))
		dst = append(dst, env.Method...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(env.Err)))
	dst = append(dst, env.Err...)
	return dst
}

// parseFrame decodes one frame body (the bytes after the length prefix)
// into env. The payload aliases buf — the caller must hand over
// ownership (the read loops allocate one exact-size buffer per frame).
func parseFrame(buf []byte) (envelope, error) {
	var env envelope
	d := NewDec(buf)
	env.Kind = msgKind(d.Byte())
	env.Enc = d.Byte()
	env.ID = d.Uvarint()
	env.Trace = d.Uvarint()
	hi, lo := d.Byte(), d.Byte()
	code := uint16(hi)<<8 | uint16(lo)
	if code == methodNoCode {
		env.Method = d.String()
	} else {
		m, ok := methodName(code)
		if d.err == nil && !ok {
			return env, fmt.Errorf("wire: unknown method code %d", code)
		}
		env.Method = m
	}
	env.Err = d.String()
	if err := d.Err(); err != nil {
		return env, err
	}
	if env.Kind > kindPush {
		return env, fmt.Errorf("wire: bad frame kind %d", env.Kind)
	}
	if env.Enc > EncBinary {
		return env, fmt.Errorf("wire: bad payload encoding %d", env.Enc)
	}
	env.Payload = buf[len(buf)-d.Len():]
	return env, nil
}

// readFrame reads one length-prefixed frame, allocating an exact-size
// buffer the decoded envelope's payload aliases.
func readFrame(r io.Reader) (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return envelope{}, ErrFrameTooLarge
	}
	if n < 2 {
		return envelope{}, errFrameTruncated
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return envelope{}, err
	}
	return parseFrame(buf)
}
