package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParseFrame throws arbitrary frame bodies at the v2 frame parser.
// The parser must never panic, and an accepted frame must satisfy its
// structural invariants (valid kind/encoding, payload inside the input).
func FuzzParseFrame(f *testing.F) {
	RegisterMethodCode(901, "fuzz.coded")
	// Seed with well-formed frames of each shape plus truncations.
	for _, env := range []envelope{
		{Kind: kindRequest, ID: 1, Method: "fuzz.coded", Payload: []byte("hi")},
		{Kind: kindResponse, ID: 9, Trace: 4, Method: "fuzz.coded", Err: "nope"},
		{Kind: kindPush, Method: "inline.name", Enc: EncBinary, Payload: bytes.Repeat([]byte{3}, 600)},
	} {
		buf := appendFrameHeader(nil, &env)
		buf = append(buf, env.Payload...)
		f.Add(buf)
		if len(buf) > 3 {
			f.Add(buf[:3])
			f.Add(buf[:len(buf)-1])
		}
	}
	f.Add([]byte{0, 0, 0xEE, 0xEE}) // unknown method code
	f.Add([]byte{200, 0, 0, 0})     // bad kind
	f.Add([]byte{0, 9, 0, 0})       // bad encoding
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := parseFrame(data)
		if err != nil {
			return
		}
		if env.Kind > kindPush {
			t.Fatalf("accepted frame with kind %d", env.Kind)
		}
		if env.Enc > EncBinary {
			t.Fatalf("accepted frame with encoding %d", env.Enc)
		}
		if len(env.Payload) > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte frame", len(env.Payload), len(data))
		}
	})
}

// FuzzReadFrame drives the full framed reader — length prefix included
// — with arbitrary streams: malformed lengths, truncated bodies, and
// mutations of valid frames. It must never panic and must reject any
// length prefix past maxFrameSize before allocating.
func FuzzReadFrame(f *testing.F) {
	env := envelope{Kind: kindRequest, ID: 5, Method: "inline.name", Payload: []byte("payload")}
	body := appendFrameHeader(nil, &env)
	body = append(body, env.Payload...)
	valid := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	valid = append(valid, body...)
	f.Add(valid)
	f.Add(valid[:5])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0}) // hostile length
	f.Add([]byte{0, 0, 0, 0})                // zero length
	f.Add(appendPreamble(nil, ProtoV2))      // a preamble is not a frame
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got := len(env.Payload); got > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte stream", got, len(data))
		}
	})
}

// FuzzHandshake exercises the negotiation preamble parser and version
// pick under arbitrary bytes and version skew: parsing must never
// panic, and any negotiated version must be one the server implements.
func FuzzHandshake(f *testing.F) {
	f.Add(appendPreamble(nil, ProtoV2), uint8(ProtoV2))
	f.Add(appendPreamble(nil, ProtoGob), uint8(ProtoV2))
	f.Add(appendPreamble(nil, 9), uint8(ProtoGob))
	f.Add([]byte{0x00, 'M', 'M', '3', 2}, uint8(ProtoV2))
	f.Add([]byte("gob..."), uint8(ProtoV2))
	f.Fuzz(func(t *testing.T, preamble []byte, serverMax uint8) {
		clientMax, ok := parsePreamble(preamble)
		if !ok {
			return
		}
		got := negotiate(clientMax, serverMax)
		if got != ProtoGob && got != ProtoV2 {
			t.Fatalf("negotiate(%d, %d) = %d: not a version we implement", clientMax, serverMax, got)
		}
		if got > clientMax || got > serverMax {
			t.Fatalf("negotiate(%d, %d) = %d: above a side's maximum", clientMax, serverMax, got)
		}
		// The reply must parse back to the chosen version.
		rv, ok := parsePreamble(appendPreamble(nil, got))
		if !ok || rv != got {
			t.Fatalf("reply preamble round trip: %d, %v", rv, ok)
		}
	})
}
