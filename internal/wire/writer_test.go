package wire

import (
	"bytes"
	"context"
	"encoding/gob"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestPushRawRoundTrip checks a pre-marshaled payload pushed with
// PushRaw arrives byte-identical to a regular Push of the same body.
func TestPushRawRoundTrip(t *testing.T) {
	payload, err := Marshal(echoReply{Text: "shared", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Register("kick", func(ctx context.Context, p *Peer, payload_ []byte) (any, error) {
		if err := p.PushRaw("raw", EncGob, payload); err != nil {
			return nil, err
		}
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan []byte, 1)
	c.OnPush(func(method string, body Body) {
		if method == "raw" {
			got <- body.Data
		}
	})
	if err := c.Call("kick", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, payload) {
			t.Error("PushRaw payload bytes differ from the pre-marshaled input")
		}
		var r echoReply
		if err := Unmarshal(p, &r); err != nil || r.Text != "shared" || r.N != 7 {
			t.Errorf("decoded %+v, %v", r, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("raw push never arrived")
	}
}

// TestPushResponseFIFO checks the batched writer preserves per-peer
// order: a handler that pushes K messages before returning must have
// all K on the client before the response is delivered — the client's
// read loop dispatches pushes synchronously, so by the time Call
// returns every earlier push has been handled.
func TestPushResponseFIFO(t *testing.T) {
	const k = 32
	s := NewServer()
	s.Register("burst", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		for i := 0; i < k; i++ {
			if err := p.Push("seq", echoReply{N: i}); err != nil {
				return nil, err
			}
		}
		return echoReply{Text: "done"}, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var seen atomic.Int64
	var outOfOrder atomic.Bool
	c.OnPush(func(method string, body Body) {
		var r echoReply
		if err := body.Decode(&r); err != nil {
			t.Error(err)
			return
		}
		if int64(r.N) != seen.Load() {
			outOfOrder.Store(true)
		}
		seen.Add(1)
	})
	for round := 0; round < 8; round++ {
		seen.Store(0)
		var r echoReply
		if err := c.Call("burst", echoArgs{}, &r); err != nil {
			t.Fatal(err)
		}
		if got := seen.Load(); got != k {
			t.Fatalf("round %d: response arrived with %d/%d pushes delivered", round, got, k)
		}
		if outOfOrder.Load() {
			t.Fatal("pushes arrived out of order")
		}
	}
}

// TestFlushDrainsQueuedPushes checks the drain barrier: after a burst
// of pushes, Peer.Flush must not return before the queued envelopes
// have been handed to the socket, so a Shutdown immediately after the
// burst loses nothing.
func TestFlushDrainsQueuedPushes(t *testing.T) {
	const k = 50
	peerCh := make(chan *Peer, 1)
	s := NewServer()
	s.Register("hello", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		peerCh <- p
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got atomic.Int64
	c.OnPush(func(method string, body Body) { got.Add(1) })
	if err := c.Call("hello", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	peer := <-peerCh
	for i := 0; i < k; i++ {
		if err := peer.Push("tick", echoReply{N: i}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// Shutdown flushes every peer before closing connections; all k
	// pushes must survive the immediate teardown.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < k && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != k {
		t.Errorf("received %d/%d pushes after drain", got.Load(), k)
	}
}

// TestWriterCounters checks the writer's observability: messages are
// counted per envelope, and a burst coalesces so flushes come out well
// under one per message.
func TestWriterCounters(t *testing.T) {
	const k = 64
	st := NewStats()
	s := NewServer()
	s.SetStats(st)
	s.Register("burst", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		for i := 0; i < k; i++ {
			if err := p.Push("seq", echoReply{N: i}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got atomic.Int64
	c.OnPush(func(method string, body Body) { got.Add(1) })
	if err := c.Call("burst", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	// k pushes + 1 response.
	if msgs := st.Counter(CounterWriterMessages); msgs < k+1 {
		t.Errorf("writer messages = %d, want >= %d", msgs, k+1)
	}
	if st.Counter(CounterWriterFlushes) == 0 {
		t.Error("no writer flushes counted")
	}
	if st.Counter(CounterWriterWrites) == 0 {
		t.Error("no socket writes counted")
	}
	if st.Counter(CounterWriterBytes) == 0 {
		t.Error("no socket bytes counted")
	}
}

// TestWriterCoalescesBursts stalls the writer deterministically — a
// net.Pipe write blocks until the far end reads — so a burst enqueued
// while the writer is wedged must coalesce into a handful of flushes
// once the reader resumes, instead of one flush per message.
func TestWriterCoalescesBursts(t *testing.T) {
	const k = 48
	st := NewStats()
	s := NewServer()
	s.SetStats(st)
	peerCh := make(chan *Peer, 1)
	s.Register("hello", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
		peerCh <- p
		return nil, nil
	})
	sc, cc := net.Pipe()
	go s.ServeConn(sc)
	defer s.Close()
	defer cc.Close()

	// Drive the client end by hand so reads can be withheld.
	enc := gob.NewEncoder(cc)
	dec := gob.NewDecoder(cc)
	if err := enc.Encode(envelope{Kind: kindRequest, ID: 1, Method: "hello"}); err != nil {
		t.Fatal(err)
	}
	var resp envelope
	if err := dec.Decode(&resp); err != nil || resp.Err != "" {
		t.Fatalf("hello response: %+v, %v", resp, err)
	}
	peer := <-peerCh

	// With no reader, the writer's first flush wedges on the pipe while
	// every subsequent push queues behind it (queue cap 256 > k).
	payload, err := Marshal(echoReply{Text: "burst"})
	if err != nil {
		t.Fatal(err)
	}
	base := st.Counter(CounterWriterFlushes)
	for i := 0; i < k; i++ {
		if err := peer.PushRaw("tick", EncGob, payload); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// Resume reading: the queued burst must drain in few flushes.
	for got := 0; got < k; {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("after %d pushes: %v", got, err)
		}
		if env.Kind == kindPush {
			got++
		}
	}
	if flushes := st.Counter(CounterWriterFlushes) - base; flushes > k/4 {
		t.Errorf("burst of %d messages took %d flushes, want coalescing", k, flushes)
	}
}
