package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// fakeConn is a net.Conn whose writes land in a buffer — enough for the
// vecWriter, which only ever writes.
type fakeConn struct {
	bytes.Buffer
}

func (*fakeConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (*fakeConn) Close() error                     { return nil }
func (*fakeConn) LocalAddr() net.Addr              { return nil }
func (*fakeConn) RemoteAddr() net.Addr             { return nil }
func (*fakeConn) SetDeadline(time.Time) error      { return nil }
func (*fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (*fakeConn) SetWriteDeadline(time.Time) error { return nil }

func TestPreambleRoundTrip(t *testing.T) {
	for _, ver := range []uint8{ProtoGob, ProtoV2, 7} {
		b := appendPreamble(nil, ver)
		if len(b) != preambleLen {
			t.Fatalf("preamble length %d, want %d", len(b), preambleLen)
		}
		if b[0] != 0 {
			t.Fatal("preamble must open with 0x00 to stay unambiguous against gob")
		}
		got, ok := parsePreamble(b)
		if !ok || got != ver {
			t.Errorf("parsePreamble(appendPreamble(%d)) = %d, %v", ver, got, ok)
		}
	}
	for _, bad := range [][]byte{
		nil,
		{0x00},
		{0x00, 'M', 'M', '2'},
		{0x01, 'M', 'M', '2', 2},
		{0x00, 'M', 'M', '3', 2},
		{0x00, 'X', 'M', '2', 2},
		{0x00, 'M', 'M', '2', 2, 0},
	} {
		if _, ok := parsePreamble(bad); ok {
			t.Errorf("parsePreamble(%v) accepted", bad)
		}
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct{ client, server, want uint8 }{
		{ProtoV2, ProtoV2, ProtoV2},
		{ProtoGob, ProtoV2, ProtoGob},
		{ProtoV2, ProtoGob, ProtoGob},
		{1, ProtoV2, ProtoGob}, // 1 never shipped: below v2 means gob
		{ProtoV2, 1, ProtoGob},
		{3, ProtoV2, ProtoV2}, // future client degrades to our best
		{ProtoV2, 3, ProtoV2}, // future server offers, we cap at v2
		{9, 7, ProtoV2},       // both from the future: still v2
	}
	for _, c := range cases {
		if got := negotiate(c.client, c.server); got != c.want {
			t.Errorf("negotiate(%d, %d) = %d, want %d", c.client, c.server, got, c.want)
		}
	}
}

func TestBodyEncRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte{0xAB}, externThreshold*3)
	e := getBodyEnc()
	e.Byte(0x42)
	e.Uvarint(0)
	e.Uvarint(1<<63 + 17)
	e.Varint(-40000)
	e.Varint(12345)
	e.Bool(true)
	e.Bool(false)
	e.F64(-2.718281828)
	e.String("")
	e.String("hello, 世界")
	e.Bytes(nil)
	e.Bytes([]byte{1, 2, 3})
	e.RawBytes([]byte("small")) // under threshold: copied to scratch
	e.RawBytes(big)             // over threshold: external reference
	flat := e.Flatten()
	putBodyEnc(e)

	d := NewDec(flat)
	if v := d.Byte(); v != 0x42 {
		t.Errorf("Byte = %#x", v)
	}
	if v := d.Uvarint(); v != 0 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<63+17 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -40000 {
		t.Errorf("Varint = %d", v)
	}
	if v := d.Varint(); v != 12345 {
		t.Errorf("Varint = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip")
	}
	if v := d.F64(); v != -2.718281828 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("String = %q", v)
	}
	if v := d.String(); v != "hello, 世界" {
		t.Errorf("String = %q", v)
	}
	if v := d.Bytes(); v != nil {
		t.Errorf("nil Bytes = %v", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := d.Bytes(); string(v) != "small" {
		t.Errorf("small RawBytes = %q", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, big) {
		t.Errorf("big RawBytes: %d bytes", len(v))
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("%d trailing bytes", d.Len())
	}
}

// TestBodyEncZeroCopy checks a large RawBytes payload is recorded as a
// reference to the caller's array, not copied into encoder scratch.
func TestBodyEncZeroCopy(t *testing.T) {
	big := bytes.Repeat([]byte{7}, externThreshold)
	e := getBodyEnc()
	e.String("header")
	e.RawBytes(big)
	defer putBodyEnc(e)
	var ext [][]byte
	for _, s := range e.spans {
		if s.ext != nil {
			ext = append(ext, s.ext)
		}
	}
	if len(ext) != 1 {
		t.Fatalf("%d external spans, want 1", len(ext))
	}
	if &ext[0][0] != &big[0] {
		t.Error("external span does not alias the caller's payload")
	}
	// And the segment list the writer flushes exposes the same aliasing.
	found := false
	for _, seg := range e.segments() {
		if len(seg) == len(big) && &seg[0] == &big[0] {
			found = true
		}
	}
	if !found {
		t.Error("segments() copied the large payload")
	}
}

// TestDecErrorLatch checks a truncated read poisons the decoder instead
// of panicking or returning garbage on later reads.
func TestDecErrorLatch(t *testing.T) {
	d := NewDec([]byte{0x05, 'a'}) // claims 5 bytes, has 1
	if v := d.Bytes(); v != nil {
		t.Errorf("truncated Bytes = %v", v)
	}
	if d.Err() == nil {
		t.Fatal("no latched error")
	}
	if v := d.Uvarint(); v != 0 {
		t.Errorf("post-error Uvarint = %d", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("post-error String = %q", v)
	}
}

// roundTripFrame pushes env through the batched v2 writer and reads the
// frame back.
func roundTripFrame(t *testing.T, env envelope) envelope {
	t.Helper()
	var conn fakeConn
	w := newVecWriter(&conn, nil)
	w.encodeFrame(&env)
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&conn.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	RegisterMethodCode(900, "codec2test.coded")
	big := bytes.Repeat([]byte{0xCD}, externThreshold*2)
	cases := []envelope{
		{Kind: kindRequest, ID: 1, Method: "codec2test.coded", Enc: EncGob, Payload: []byte("small")},
		{Kind: kindResponse, ID: 1 << 40, Trace: 77, Method: "codec2test.coded", Err: "boom", Payload: nil},
		{Kind: kindPush, Method: "no.such.code", Enc: EncBinary, Payload: big},
		{Kind: kindRequest, ID: 3, Method: "", Payload: []byte{0}},
	}
	for i, env := range cases {
		got := roundTripFrame(t, env)
		if got.Kind != env.Kind || got.ID != env.ID || got.Trace != env.Trace ||
			got.Method != env.Method || got.Err != env.Err || got.Enc != env.Enc {
			t.Errorf("case %d: %+v -> %+v", i, env, got)
		}
		if !bytes.Equal(got.Payload, env.Payload) {
			t.Errorf("case %d: payload %d bytes -> %d bytes", i, len(env.Payload), len(got.Payload))
		}
	}
}

// TestFrameBatchCoalesces checks several frames written before one
// flush land in a single writev-style write and all parse back.
func TestFrameBatchCoalesces(t *testing.T) {
	st := NewStats()
	var conn fakeConn
	w := newVecWriter(&conn, st)
	const k = 10
	payload := bytes.Repeat([]byte{9}, externThreshold+1)
	for i := 0; i < k; i++ {
		env := envelope{Kind: kindPush, ID: uint64(i), Method: "batch.test", Payload: payload}
		w.encodeFrame(&env)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	if flushes := st.Counter(CounterWriterFlushes); flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}
	for i := 0; i < k; i++ {
		env, err := readFrame(&conn.Buffer)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.ID != uint64(i) || !bytes.Equal(env.Payload, payload) {
			t.Fatalf("frame %d corrupted: id=%d payload=%d bytes", i, env.ID, len(env.Payload))
		}
	}
	if conn.Buffer.Len() != 0 {
		t.Errorf("%d trailing bytes after %d frames", conn.Buffer.Len(), k)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Oversized length prefix must fail before allocating the body.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame: %v", err)
	}
	// A frame too short to hold kind+enc.
	tiny := []byte{0, 0, 0, 1, 0}
	if _, err := readFrame(bytes.NewReader(tiny)); err == nil {
		t.Error("1-byte frame accepted")
	}
	// Truncated body: length prefix promises more than the stream holds.
	trunc := []byte{0, 0, 0, 50, 0, 0, 1}
	if _, err := readFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestParseFrameRejectsGarbage(t *testing.T) {
	if _, err := parseFrame([]byte{200, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := parseFrame([]byte{0, 9, 0, 0, 0, 0}); err == nil {
		t.Error("bad encoding accepted")
	}
	// Unknown method code.
	if _, err := parseFrame([]byte{0, 0, 0, 0, 0xEE, 0xEE, 0}); err == nil {
		t.Error("unknown method code accepted")
	}
}

// TestVersionNegotiationEndToEnd covers the live handshake matrix over
// real connections: both v2 (binary framing), a capped server (falls
// back to gob), and a legacy gob client against a v2 server.
func TestVersionNegotiationEndToEnd(t *testing.T) {
	cases := []struct {
		name      string
		serverMax uint8
		clientMax uint8
		want      uint8
	}{
		{"v2-v2", ProtoV2, ProtoV2, ProtoV2},
		{"gob-server", ProtoGob, ProtoV2, ProtoGob},
		{"gob-client", ProtoV2, ProtoGob, ProtoGob},
		{"future-client", ProtoV2, 9, ProtoV2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewServer()
			s.SetMaxProtoVersion(tc.serverMax)
			s.Register("echo", func(ctx context.Context, p *Peer, payload []byte) (any, error) {
				var a echoArgs
				if err := Unmarshal(payload, &a); err != nil {
					return nil, err
				}
				return echoReply{Text: a.Text, N: a.N}, nil
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go s.Serve(l)
			defer s.Close()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			c := NewClientVersion(conn, tc.clientMax)
			defer c.Close()
			if got := c.ProtoVersion(); got != tc.want {
				t.Fatalf("negotiated version = %d, want %d", got, tc.want)
			}
			var r echoReply
			if err := c.Call("echo", echoArgs{Text: "ping", N: 3}, &r); err != nil {
				t.Fatal(err)
			}
			if r.Text != "ping" || r.N != 3 {
				t.Errorf("echo = %+v", r)
			}
		})
	}
}
