package room

import (
	"context"
	"testing"
	"time"

	"mmconf/internal/cpnet"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/workload"
)

func newRoom(t *testing.T) *Room {
	t.Helper()
	doc, err := workload.MedicalRecord("rec", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Give the CT presentations a stored object id so freeze has a target.
	ct, _ := doc.Component("ct")
	for i := range ct.Presentations {
		if ct.Presentations[i].Name != "hidden" {
			ct.Presentations[i].ObjectID = 11
		}
	}
	r, err := New("consult-1", doc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// drain collects events until the channel is momentarily empty.
func drain(m *Member) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-m.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-time.After(50 * time.Millisecond):
			return out
		}
	}
}

func kinds(evs []Event) map[EventKind]int {
	out := map[EventKind]int{}
	for _, ev := range evs {
		out[ev.Kind]++
	}
	return out
}

func TestJoinLeaveAndPropagation(t *testing.T) {
	r := newRoom(t)
	alice, hist, view, err := r.Join(context.Background(), "alice")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if len(hist) != 0 {
		t.Errorf("first joiner got %d history events", len(hist))
	}
	if view.Outcome["ct"] != "full" {
		t.Errorf("initial view: %v", view.Outcome)
	}
	if _, _, _, err := r.Join(context.Background(), "alice"); err == nil {
		t.Error("duplicate join accepted")
	}
	bob, hist2, _, err := r.Join(context.Background(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist2) == 0 {
		t.Error("second joiner got no catch-up history")
	}
	// Alice sees bob's join (plus her own join broadcast earlier).
	evs := drain(alice)
	if kinds(evs)[EvJoin] < 2 {
		t.Errorf("alice events: %v", kinds(evs))
	}
	if err := r.Leave("bob"); err != nil {
		t.Fatal(err)
	}
	evs = drain(alice)
	if kinds(evs)[EvLeave] != 1 {
		t.Errorf("alice did not see bob leave: %v", kinds(evs))
	}
	// Bob's channel drains its buffered tail, then closes.
	closed := false
	deadline := time.After(time.Second)
	for !closed {
		select {
		case _, ok := <-bob.Events():
			if !ok {
				closed = true
			}
		case <-deadline:
			t.Fatal("bob channel never closed")
		}
	}
	if err := r.Leave("bob"); err == nil {
		t.Error("double leave accepted")
	}
	if got := r.Members(); len(got) != 1 || got[0] != "alice" {
		t.Errorf("Members = %v", got)
	}
}

func TestChoicePropagatesPresentation(t *testing.T) {
	r := newRoom(t)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(alice)
	drain(bob)
	if err := r.Choice(context.Background(), "alice", "ct", "segmented"); err != nil {
		t.Fatalf("Choice: %v", err)
	}
	bobEvs := drain(bob)
	k := kinds(bobEvs)
	if k[EvChoice] != 1 || k[EvPresentation] != 1 {
		t.Fatalf("bob events = %v", k)
	}
	for _, ev := range bobEvs {
		if ev.Kind == EvPresentation {
			if ev.Outcome["ct"] != "segmented" || ev.Outcome["xray"] != "hidden" {
				t.Errorf("bob presentation = %v", ev.Outcome)
			}
			if ev.Visible["xray"] {
				t.Error("hidden xray still visible")
			}
		}
	}
	if err := r.Choice(context.Background(), "ghost", "ct", "full"); err == nil {
		t.Error("non-member choice accepted")
	}
	if err := r.Choice(context.Background(), "alice", "ct", "nosuch"); err == nil {
		t.Error("invalid choice accepted")
	}
}

func TestOperationSharedAndPrivate(t *testing.T) {
	r := newRoom(t)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(alice)
	drain(bob)
	name, err := r.Operation(context.Background(), "alice", "ct", "segmentation", "full", false)
	if err != nil {
		t.Fatalf("Operation: %v", err)
	}
	bobEvs := drain(bob)
	sawOp := false
	for _, ev := range bobEvs {
		if ev.Kind == EvOperation {
			sawOp = true
			if ev.DerivedVar != name || ev.Private {
				t.Errorf("operation event = %+v", ev)
			}
		}
		if ev.Kind == EvPresentation {
			if ev.Outcome[name] != cpnet.OpApplied {
				t.Errorf("bob's presentation lacks the shared operation: %v", ev.Outcome[name])
			}
		}
	}
	if !sawOp {
		t.Fatal("operation not propagated")
	}
	// Private operation: announced, but bob's presentation has no such var.
	pname, err := r.Operation(context.Background(), "alice", "xray", "zoom", "icon", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range drain(bob) {
		if ev.Kind == EvPresentation {
			if _, leaked := ev.Outcome[pname]; leaked {
				t.Error("private operation leaked into bob's outcome")
			}
		}
	}
	if _, err := r.Operation(context.Background(), "ghost", "ct", "zoom", "full", false); err == nil {
		t.Error("non-member operation accepted")
	}
}

func TestAnnotationsPropagate(t *testing.T) {
	r := newRoom(t)
	base, _ := image.Phantom(64, 64, 1)
	r.RegisterRaster(11, base)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(alice)
	drain(bob)

	id, err := r.Annotate("alice", 11, image.TextElement, 5, 5, 0, 0, "lesion?", 1.0)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	bobEvs := drain(bob)
	found := false
	for _, ev := range bobEvs {
		if ev.Kind == EvAnnotate && ev.ObjectID == 11 && ev.Annotation.Text == "lesion?" {
			found = true
		}
	}
	if !found {
		t.Error("annotation not propagated to bob")
	}
	if len(r.Annotations(11)) != 1 {
		t.Errorf("annotations = %d", len(r.Annotations(11)))
	}
	rendered, err := r.Rendered(11)
	if err != nil {
		t.Fatal(err)
	}
	if rendered.W != 64 {
		t.Error("render size wrong")
	}
	if err := r.DeleteAnnotation("bob", 11, id); err != nil {
		t.Fatalf("DeleteAnnotation by partner: %v", err)
	}
	if len(r.Annotations(11)) != 0 {
		t.Error("annotation survived delete")
	}
	if err := r.DeleteAnnotation("bob", 11, id); err == nil {
		t.Error("double delete accepted")
	}
	if err := r.DeleteAnnotation("bob", 99, 1); err == nil {
		t.Error("delete on unannotated object accepted")
	}
	if _, err := r.Annotate("ghost", 11, image.TextElement, 0, 0, 0, 0, "x", 1); err == nil {
		t.Error("non-member annotate accepted")
	}
	if _, err := r.Annotate("alice", 11, image.AnnotationKind(9), 0, 0, 0, 0, "", 1); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := r.Rendered(12345); err == nil {
		t.Error("render of unregistered raster accepted")
	}
}

func TestFreezeDiscipline(t *testing.T) {
	r := newRoom(t)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(alice)
	drain(bob)
	if err := r.Freeze("alice", 11); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if r.FrozenBy(11) != "alice" {
		t.Error("FrozenBy wrong")
	}
	if err := r.Freeze("bob", 11); err == nil {
		t.Error("double freeze accepted")
	}
	// Bob cannot annotate or operate on the frozen object's component.
	if _, err := r.Annotate("bob", 11, image.LineElement, 0, 0, 5, 5, "", 1); err == nil {
		t.Error("annotate on frozen object accepted")
	}
	if _, err := r.Operation(context.Background(), "bob", "ct", "zoom", "full", false); err == nil {
		t.Error("operation on frozen component accepted")
	}
	// The holder still can.
	if _, err := r.Annotate("alice", 11, image.LineElement, 0, 0, 5, 5, "", 1); err != nil {
		t.Errorf("holder blocked: %v", err)
	}
	// Only the holder releases.
	if err := r.Release("bob", 11); err == nil {
		t.Error("non-holder release accepted")
	}
	if err := r.Release("alice", 11); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := r.Release("alice", 11); err == nil {
		t.Error("double release accepted")
	}
	// After release bob can operate again.
	if _, err := r.Operation(context.Background(), "bob", "ct", "zoom", "full", false); err != nil {
		t.Errorf("post-release operation failed: %v", err)
	}
	// Freeze auto-releases when the holder leaves.
	if err := r.Freeze("alice", 11); err != nil {
		t.Fatal(err)
	}
	r.Leave("alice")
	if r.FrozenBy(11) != "" {
		t.Error("freeze survived holder's departure")
	}
}

func TestCooperativeSearchAndChat(t *testing.T) {
	r := newRoom(t)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(alice)
	drain(bob)
	hits := []voice.Hit{{Word: "urgent", Start: 100, End: 200, Score: 2.5}}
	if err := r.ShareSearch("alice", EvWordSearch, "urgent", hits); err != nil {
		t.Fatalf("ShareSearch: %v", err)
	}
	if err := r.ShareSearch("alice", EvChoice, "x", nil); err == nil {
		t.Error("non-search kind accepted")
	}
	if err := r.ShareSearch("ghost", EvWordSearch, "x", nil); err == nil {
		t.Error("non-member search accepted")
	}
	if err := r.Chat("bob", "I agree with the finding"); err != nil {
		t.Fatalf("Chat: %v", err)
	}
	if err := r.Chat("ghost", "hi"); err == nil {
		t.Error("non-member chat accepted")
	}
	bobEvs := drain(bob)
	var gotSearch, gotChat bool
	for _, ev := range bobEvs {
		if ev.Kind == EvWordSearch && ev.Keyword == "urgent" && len(ev.Hits) == 1 {
			gotSearch = true
		}
		if ev.Kind == EvChat && ev.Text != "" {
			gotChat = true
		}
	}
	if !gotSearch {
		t.Error("search results not propagated")
	}
	if !gotChat {
		t.Error("chat not propagated")
	}
}

func TestHistoryCatchUp(t *testing.T) {
	r := newRoom(t)
	r.Join(context.Background(), "alice")
	r.Choice(context.Background(), "alice", "ct", "segmented")
	r.Chat("alice", "first")
	// A late joiner replays everything.
	_, hist, _, err := r.Join(context.Background(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	k := kinds(hist)
	if k[EvChoice] != 1 || k[EvChat] != 1 {
		t.Errorf("history kinds = %v", k)
	}
	// Seq increases monotonically; History(since) filters.
	var last uint64
	for _, ev := range hist {
		if ev.Seq <= last {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
	}
	tail := r.History(last)
	for _, ev := range tail {
		if ev.Seq <= last {
			t.Errorf("History(since) returned old event %d", ev.Seq)
		}
	}
}

func TestSlowMemberLosesOldestEvents(t *testing.T) {
	r := newRoom(t)
	sloth, _, _, _ := r.Join(context.Background(), "sloth") // never drains during the flood
	active, _, _, _ := r.Join(context.Background(), "active")
	go func() {
		for range active.Events() {
		}
	}()
	// Flood more events than the sloth's queue can hold.
	const flood = memberQueueSize + 50
	for i := 0; i < flood; i++ {
		if err := r.Chat("active", "spam"); err != nil {
			t.Fatalf("chat %d: %v", i, err)
		}
	}
	// The sloth is still a member; its queue holds the newest events,
	// having shed the oldest.
	found := false
	for _, m := range r.Members() {
		if m == "sloth" {
			found = true
		}
	}
	if !found {
		t.Fatal("stalled member was evicted")
	}
	evs := drain(sloth)
	if len(evs) == 0 || len(evs) > memberQueueSize {
		t.Fatalf("sloth drained %d events", len(evs))
	}
	// The newest chat must be present; the earliest must have been shed.
	last := evs[len(evs)-1]
	first := evs[0]
	if last.Seq <= first.Seq {
		t.Error("queue order broken")
	}
	if first.Seq == 1 {
		t.Error("oldest event was not shed")
	}
}

func TestRoomValidation(t *testing.T) {
	doc, _ := workload.MedicalRecord("rec", 2)
	if _, err := New("", doc); err == nil {
		t.Error("empty room name accepted")
	}
	r, err := New("x", doc)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, _, _, err := r.Join(context.Background(), "alice"); err == nil {
		t.Error("join on closed room accepted")
	}
	if r.Engine() == nil {
		t.Error("Engine accessor nil")
	}
	if EvJoin.String() != "join" || EventKind(99).String() == "" {
		t.Error("EventKind names broken")
	}
}
