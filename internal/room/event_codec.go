package room

import (
	"mmconf/internal/cpnet"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/wire"
)

// Binary codec for Event — the single hottest payload on the wire: every
// propagated room change crosses as one of these, fanned out to every
// member. Fields encode in declaration order; zero-length maps and
// slices decode as nil, matching gob's zero-value omission so either
// encoding round-trips to the same value.

// Format indexes for EncodeShared's per-connection-protocol slots.
const (
	// FormatGob is the gob encoding slot (legacy and fallback peers).
	FormatGob = iota
	// FormatBinary is the wire-v2 binary codec slot.
	FormatBinary
	formatCount
)

// MarshalEventBinary is the marshal func for the FormatBinary slot of
// EncodeShared (mirrors wire.Marshal's signature for the gob slot).
func MarshalEventBinary(v any) ([]byte, error) {
	ev, ok := v.(Event)
	if !ok {
		return nil, &wrongTypeError{}
	}
	return wire.MarshalBody(&ev), nil
}

type wrongTypeError struct{}

func (*wrongTypeError) Error() string { return "room: MarshalEventBinary wants a room.Event" }

// AppendBody implements wire.BodyEncoder.
func (ev *Event) AppendBody(e *wire.BodyEnc) {
	e.Uvarint(ev.Seq)
	e.String(ev.Room)
	e.String(ev.Actor)
	e.Uvarint(uint64(ev.Kind))
	e.String(ev.Variable)
	e.String(ev.Value)
	e.String(ev.Component)
	e.String(ev.Op)
	e.String(ev.ActiveWhen)
	e.String(ev.DerivedVar)
	e.Bool(ev.Private)
	e.Uvarint(ev.ObjectID)
	appendAnnotation(e, &ev.Annotation)
	e.Varint(int64(ev.AnnotationID))
	e.Uvarint(uint64(len(ev.Outcome)))
	for k, v := range ev.Outcome {
		e.String(k)
		e.String(v)
	}
	e.Uvarint(uint64(len(ev.Visible)))
	for k, v := range ev.Visible {
		e.String(k)
		e.Bool(v)
	}
	e.String(ev.Keyword)
	e.Uvarint(uint64(len(ev.Hits)))
	for i := range ev.Hits {
		h := &ev.Hits[i]
		e.String(h.Word)
		e.Varint(int64(h.Start))
		e.Varint(int64(h.End))
		e.F64(h.Score)
	}
	e.String(ev.Text)
	e.Bool(ev.Resync)
}

// DecodeBody implements wire.BodyDecoder.
func (ev *Event) DecodeBody(d *wire.Dec) error {
	ev.Seq = d.Uvarint()
	ev.Room = d.String()
	ev.Actor = d.String()
	ev.Kind = EventKind(d.Uvarint())
	ev.Variable = d.String()
	ev.Value = d.String()
	ev.Component = d.String()
	ev.Op = d.String()
	ev.ActiveWhen = d.String()
	ev.DerivedVar = d.String()
	ev.Private = d.Bool()
	ev.ObjectID = d.Uvarint()
	decodeAnnotation(d, &ev.Annotation)
	ev.AnnotationID = int(d.Varint())
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		ev.Outcome = make(cpnet.Outcome, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			k := d.String()
			ev.Outcome[k] = d.String()
		}
	} else {
		ev.Outcome = nil
	}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		ev.Visible = make(map[string]bool, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			k := d.String()
			ev.Visible[k] = d.Bool()
		}
	} else {
		ev.Visible = nil
	}
	ev.Keyword = d.String()
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		ev.Hits = make([]voice.Hit, 0, int(min(n, 4096)))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			var h voice.Hit
			h.Word = d.String()
			h.Start = int(d.Varint())
			h.End = int(d.Varint())
			h.Score = d.F64()
			ev.Hits = append(ev.Hits, h)
		}
	} else {
		ev.Hits = nil
	}
	ev.Text = d.String()
	ev.Resync = d.Bool()
	ev.shared = nil
	return d.Err()
}

func appendAnnotation(e *wire.BodyEnc, a *image.Annotation) {
	e.Varint(int64(a.ID))
	e.Uvarint(uint64(a.Kind))
	e.Varint(int64(a.X1))
	e.Varint(int64(a.Y1))
	e.Varint(int64(a.X2))
	e.Varint(int64(a.Y2))
	e.String(a.Text)
	e.F64(a.Intensity)
}

func decodeAnnotation(d *wire.Dec, a *image.Annotation) {
	a.ID = int(d.Varint())
	a.Kind = image.AnnotationKind(d.Uvarint())
	a.X1 = int(d.Varint())
	a.Y1 = int(d.Varint())
	a.X2 = int(d.Varint())
	a.Y2 = int(d.Varint())
	a.Text = d.String()
	a.Intensity = d.F64()
}
