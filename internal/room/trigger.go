package room

import (
	"fmt"
	"sync/atomic"
)

// This file implements the "dynamic event triggers" the paper lists as
// future work (§6): a room can carry rules that fire automatically when a
// matching event occurs — e.g. "when any partner's keyword search hits,
// switch the voice component to its audio form for everyone", or "when a
// partner freezes an object, post a chat notice". Trigger actions run
// through the same room operations as human actions, so they propagate
// and appear in the change buffer like everything else.

// TriggerFunc decides whether and how to react to an event. It runs
// without the room lock held; it may call any room method. Returning an
// error deactivates the trigger (a misbehaving rule must not wedge the
// room forever).
type TriggerFunc func(r *Room, ev Event) error

// Trigger is one installed rule.
type Trigger struct {
	ID   uint64
	Name string
	// Kinds filters which event kinds the trigger sees (nil = all).
	Kinds []EventKind
	fn    TriggerFunc
	// fired counts activations.
	fired atomic.Int64
	// active is cleared when the function errors.
	active atomic.Bool
}

// Fired returns how many times the trigger has run.
func (t *Trigger) Fired() int64 { return t.fired.Load() }

// Active reports whether the trigger is still enabled.
func (t *Trigger) Active() bool { return t.active.Load() }

// triggerActor is the synthetic actor name trigger-initiated events carry.
const triggerActor = "system/trigger"

// AddTrigger installs a rule. Trigger functions are invoked sequentially,
// in installation order, after the originating event has been broadcast;
// events produced *by* triggers do not re-enter trigger evaluation
// (no cascades, by design — a cascade of rules editing the document could
// never be debugged from a screenshot).
func (r *Room) AddTrigger(name string, kinds []EventKind, fn TriggerFunc) (*Trigger, error) {
	if name == "" {
		return nil, fmt.Errorf("room %s: empty trigger name", r.Name)
	}
	if fn == nil {
		return nil, fmt.Errorf("room %s: nil trigger function", r.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.triggerSeq++
	t := &Trigger{ID: r.triggerSeq, Name: name, Kinds: append([]EventKind(nil), kinds...), fn: fn}
	t.active.Store(true)
	r.triggers = append(r.triggers, t)
	return t, nil
}

// RemoveTrigger uninstalls a rule by id.
func (r *Room) RemoveTrigger(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, t := range r.triggers {
		if t.ID == id {
			r.triggers = append(r.triggers[:i], r.triggers[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("room %s: no trigger %d", r.Name, id)
}

// Triggers lists installed triggers in installation order.
func (r *Room) Triggers() []*Trigger {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trigger(nil), r.triggers...)
}

// runTriggers evaluates rules against an event. Called WITHOUT the room
// lock (trigger bodies call back into room methods). Events whose actor
// is the trigger system are skipped to prevent cascades.
func (r *Room) runTriggers(ev Event) {
	if ev.Actor == triggerActor || ev.Kind == EvPresentation {
		return
	}
	r.mu.Lock()
	rules := append([]*Trigger(nil), r.triggers...)
	r.mu.Unlock()
	for _, t := range rules {
		if !t.active.Load() {
			continue
		}
		if len(t.Kinds) > 0 {
			match := false
			for _, k := range t.Kinds {
				if k == ev.Kind {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		t.fired.Add(1)
		if err := t.fn(r, ev); err != nil {
			t.active.Store(false)
		}
	}
}

// SystemChoice records a presentation choice on behalf of the trigger
// system (triggers are not room members). It is also the hook the
// interaction server can use for measured environment changes.
func (r *Room) SystemChoice(variable, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.members) == 0 {
		return fmt.Errorf("room %s: no members to present to", r.Name)
	}
	// Apply through the engine as an environment pin so no member "owns"
	// the choice.
	if err := r.engine.SetEnvironment(variable, value); err != nil {
		return err
	}
	r.broadcastLocked(Event{Actor: triggerActor, Kind: EvChoice, Variable: variable, Value: value}, true)
	return nil
}

// SystemChat posts a notice on behalf of the trigger system.
func (r *Room) SystemChat(text string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.broadcastLocked(Event{Actor: triggerActor, Kind: EvChat, Text: text}, false)
	return nil
}
