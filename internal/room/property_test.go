package room

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mmconf/internal/workload"
)

// TestQuickRoomInvariants drives a room with random member action
// sequences and checks structural invariants after every step:
//
//   - the engine's member set matches the room's member set,
//   - every frozen object is held by a current member,
//   - at most one broadcaster, and the broadcaster is a member,
//   - event sequence numbers in the change buffer strictly increase,
//   - every member can always compute a valid view.
func TestQuickRoomInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc, err := workload.MedicalRecord("prop", seed)
		if err != nil {
			t.Log(err)
			return false
		}
		ct, _ := doc.Component("ct")
		for i := range ct.Presentations {
			if ct.Presentations[i].Name != "hidden" {
				ct.Presentations[i].ObjectID = 11
			}
		}
		r, err := New("prop", doc)
		if err != nil {
			t.Log(err)
			return false
		}
		defer r.Close()

		users := []string{"u0", "u1", "u2", "u3"}
		present := map[string]bool{}
		drainers := map[string]chan struct{}{}
		join := func(u string) {
			if present[u] {
				return
			}
			m, _, _, err := r.Join(context.Background(), u)
			if err != nil {
				t.Logf("join: %v", err)
				return
			}
			present[u] = true
			done := make(chan struct{})
			drainers[u] = done
			go func() {
				for range m.Events() {
				}
				close(done)
			}()
		}
		join("u0")

		vars := doc.Prefs.Variables()
		ops := 60 + rng.Intn(100)
		for i := 0; i < ops; i++ {
			u := users[rng.Intn(len(users))]
			switch rng.Intn(10) {
			case 0:
				join(u)
			case 1:
				if present[u] && len(present) > 1 {
					if err := r.Leave(u); err != nil {
						t.Logf("leave: %v", err)
						return false
					}
					delete(present, u)
					delete(drainers, u)
				}
			case 2, 3, 4:
				if present[u] {
					v := vars[rng.Intn(len(vars))]
					val := v.Domain[rng.Intn(len(v.Domain))]
					// May legitimately fail during a broadcast.
					_ = r.Choice(context.Background(), u, v.Name, val)
				}
			case 5:
				if present[u] {
					_ = r.Freeze(u, 11)
				}
			case 6:
				if present[u] {
					_ = r.Release(u, 11)
				}
			case 7:
				if present[u] {
					_ = r.StartBroadcast(u)
				}
			case 8:
				if present[u] {
					_ = r.StopBroadcast(u)
				}
			case 9:
				if present[u] {
					_ = r.Chat(u, fmt.Sprintf("m%d", i))
				}
			}

			// --- Invariants ---
			members := r.Members()
			if len(members) != len(present) {
				t.Logf("step %d: members %v vs present %v", i, members, present)
				return false
			}
			engineViewers := r.Engine().Viewers()
			if len(engineViewers) != len(members) {
				t.Logf("step %d: engine viewers %v vs members %v", i, engineViewers, members)
				return false
			}
			if holder := r.FrozenBy(11); holder != "" && !present[holder] {
				t.Logf("step %d: freeze held by departed %q", i, holder)
				return false
			}
			if b := r.Broadcaster(); b != "" && !present[b] {
				t.Logf("step %d: broadcaster %q not present", i, b)
				return false
			}
			var last uint64
			for _, ev := range r.History(0) {
				if ev.Seq <= last {
					t.Logf("step %d: seq not increasing", i)
					return false
				}
				last = ev.Seq
			}
			for m := range present {
				if _, err := r.Engine().ViewFor(m); err != nil {
					t.Logf("step %d: view for %s: %v", i, m, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
