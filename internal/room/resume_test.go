package room

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDetachResumeReplaysMissedEvents detaches a member, generates
// traffic while it is away, and checks Resume hands back exactly the
// missed events — sequence-contiguous, no duplicates, complete=true.
func TestDetachResumeReplaysMissedEvents(t *testing.T) {
	r := newRoom(t)
	r.SetGrace(time.Minute)
	ctx := context.Background()
	alice, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Join(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	drain(alice)
	seen := r.Seq()

	if !r.Detach(alice) {
		t.Fatal("Detach returned false for a live member")
	}
	if got := r.Detached(); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("Detached() = %v", got)
	}
	// Alice's channel closes on detach; she stays a member of the engine.
	if _, ok := <-alice.Events(); ok {
		t.Error("detached member channel not closed")
	}
	for i := 0; i < 3; i++ {
		if err := r.Chat("bob", fmt.Sprintf("missed %d", i)); err != nil {
			t.Fatal(err)
		}
	}

	alice2, missed, view, complete, err := r.Resume(ctx, "alice", seen)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !complete {
		t.Error("complete = false with an intact buffer")
	}
	if len(missed) != 3 {
		t.Fatalf("missed = %d events, want 3: %v", len(missed), missed)
	}
	for i, ev := range missed {
		if ev.Kind != EvChat || ev.Text != fmt.Sprintf("missed %d", i) {
			t.Errorf("missed[%d] = %v %q", i, ev.Kind, ev.Text)
		}
		if ev.Seq != seen+uint64(i)+1 {
			t.Errorf("missed[%d].Seq = %d, want %d", i, ev.Seq, seen+uint64(i)+1)
		}
	}
	if len(view.Visible) == 0 {
		t.Error("Resume returned an empty view")
	}
	if got := r.Detached(); len(got) != 0 {
		t.Errorf("still detached after resume: %v", got)
	}
	// The resumed member receives live traffic again.
	if err := r.Chat("bob", "welcome back"); err != nil {
		t.Fatal(err)
	}
	evs := drain(alice2)
	if n := kinds(evs)[EvChat]; n != 1 {
		t.Errorf("resumed member saw %d chats, want 1", n)
	}
}

// TestResumeReportsGapWhenBufferTrimmed forces the change buffer past
// capacity while detached: the resume must succeed but flag the replay
// as incomplete so the client falls back to a full resync.
func TestResumeReportsGapWhenBufferTrimmed(t *testing.T) {
	r := newRoom(t)
	r.SetGrace(time.Minute)
	ctx := context.Background()
	alice, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Join(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	drain(alice)
	seen := r.Seq()
	r.Detach(alice)
	for i := 0; i < changeBufferSize+10; i++ {
		if err := r.Chat("bob", "flood"); err != nil {
			t.Fatal(err)
		}
	}
	_, missed, _, complete, err := r.Resume(ctx, "alice", seen)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("complete = true after the buffer trimmed past the detach point")
	}
	if len(missed) != changeBufferSize {
		t.Errorf("replay = %d events, want the %d still buffered", len(missed), changeBufferSize)
	}
}

// TestGraceExpiryEvictsSession lets the grace timer fire: the detached
// session turns into a real leave (EvLeave broadcast + expire hook).
func TestGraceExpiryEvictsSession(t *testing.T) {
	r := newRoom(t)
	r.SetGrace(50 * time.Millisecond)
	expired := make(chan string, 1)
	r.OnSessionExpire(func(user string) { expired <- user })
	ctx := context.Background()
	alice, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, _, _, err := r.Join(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	drain(bob)
	r.Detach(alice)
	select {
	case user := <-expired:
		if user != "alice" {
			t.Errorf("expired user = %q", user)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("grace expiry hook never fired")
	}
	deadline := time.After(2 * time.Second)
	for {
		evs := drain(bob)
		if kinds(evs)[EvLeave] > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no EvLeave after grace expiry")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if _, _, _, _, err := r.Resume(ctx, "alice", 0); !errors.Is(err, ErrNoSession) {
		t.Errorf("Resume after expiry = %v, want ErrNoSession", err)
	}
}

// TestJoinSupersedesDetachedSession checks a fresh Join under a detached
// name cancels the pending session instead of erroring or double-joining.
func TestJoinSupersedesDetachedSession(t *testing.T) {
	r := newRoom(t)
	r.SetGrace(time.Minute)
	ctx := context.Background()
	alice, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	r.Detach(alice)
	alice2, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatalf("Join over detached session: %v", err)
	}
	if got := r.Detached(); len(got) != 0 {
		t.Errorf("detached sessions after supersede: %v", got)
	}
	if got := r.Members(); len(got) != 1 || got[0] != "alice" {
		t.Errorf("Members() = %v", got)
	}
	// The fresh member is live.
	if err := r.Chat("alice", "hi"); err != nil {
		t.Fatal(err)
	}
	if n := kinds(drain(alice2))[EvChat]; n != 1 {
		t.Errorf("superseding member saw %d chats, want 1", n)
	}
}

// TestResumeTakesOverLiveMember covers the reconnect-races-the-server
// case: the client resumes before the room noticed the old transport
// died. Resume must hand the session to the new member and the stale
// handle's eventual Detach must be a no-op.
func TestResumeTakesOverLiveMember(t *testing.T) {
	r := newRoom(t)
	r.SetGrace(time.Minute)
	ctx := context.Background()
	alice, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	drain(alice) // clear the buffered join broadcast
	seen := r.Seq()
	alice2, _, _, complete, err := r.Resume(ctx, "alice", seen)
	if err != nil {
		t.Fatalf("Resume over live member: %v", err)
	}
	if !complete {
		t.Error("takeover resume incomplete with intact buffer")
	}
	// The old handle's channel closed; the old forwarder's late Detach
	// must not touch the new session.
	if _, ok := <-alice.Events(); ok {
		t.Error("old member channel still open after takeover")
	}
	if r.Detach(alice) {
		t.Error("stale Detach claimed to detach the superseding member")
	}
	if got := r.Detached(); len(got) != 0 {
		t.Errorf("stale Detach parked the new session: %v", got)
	}
	if err := r.Chat("alice", "still here"); err != nil {
		t.Fatal(err)
	}
	if n := kinds(drain(alice2))[EvChat]; n != 1 {
		t.Errorf("new member saw %d chats, want 1", n)
	}
}

// TestDetachDisabledWithoutGrace checks grace<=0 keeps the old
// semantics: a detach is an immediate leave.
func TestDetachDisabledWithoutGrace(t *testing.T) {
	r := newRoom(t)
	// No SetGrace: default zero.
	ctx := context.Background()
	alice, _, _, err := r.Join(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r.Detach(alice) {
		t.Error("Detach parked a session with grace disabled")
	}
	if got := r.Members(); len(got) != 0 {
		t.Errorf("Members() = %v, want empty", got)
	}
	if _, _, _, _, err := r.Resume(ctx, "alice", 0); !errors.Is(err, ErrNoSession) {
		t.Errorf("Resume = %v, want ErrNoSession", err)
	}
}
