// Package room implements the shared "rooms" of the interaction server
// (§3, §5.3 of the paper). Multiple clients enter a room around one
// multimedia document; every action one partner takes — a presentation
// choice, a media operation, writing text on an image, a keyword search —
// is immediately propagated to all other partners. The room also enforces
// the freeze/release discipline of the IP module ("freezing of multimedia
// objects by one partner from the rest") and keeps the change buffer the
// paper describes: "a large memory buffer which maintains the changes made
// on the changed objects", from which late joiners catch up.
package room

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mmconf/internal/core"
	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/obs"
)

// EventKind classifies room events.
type EventKind int

// Event kinds.
const (
	EvJoin EventKind = iota
	EvLeave
	EvChoice
	EvOperation
	EvAnnotate
	EvDeleteAnnotation
	EvFreeze
	EvRelease
	EvPresentation
	EvWordSearch
	EvSpeakerSearch
	EvChat
)

// String names the kind.
func (k EventKind) String() string {
	names := [...]string{"join", "leave", "choice", "operation", "annotate",
		"delete-annotation", "freeze", "release", "presentation",
		"word-search", "speaker-search", "chat",
		"broadcast-start", "broadcast-stop", "shutdown"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one propagated room change. Only the fields relevant to the
// Kind are set.
type Event struct {
	Seq   uint64
	Room  string
	Actor string
	Kind  EventKind

	// EvChoice.
	Variable, Value string
	// EvOperation.
	Component, Op, ActiveWhen, DerivedVar string
	Private                               bool
	// EvAnnotate / EvDeleteAnnotation / EvFreeze / EvRelease.
	ObjectID     uint64
	Annotation   image.Annotation
	AnnotationID int
	// EvPresentation: the receiving member's own updated view.
	Outcome cpnet.Outcome
	Visible map[string]bool
	// EvWordSearch / EvSpeakerSearch: cooperative search results.
	Keyword string
	Hits    []voice.Hit
	// EvChat.
	Text string

	// Resync hints that this member's queue overflowed since its last
	// delivered event: older events were dropped, so the client should
	// replay from History instead of trusting its local stream.
	Resync bool

	// shared memoizes the event's wire encodings across an N-member
	// fan-out (set by fanOutLocked; nil for per-member events, which
	// encode individually). Unexported, so gob never sees it.
	shared *sharedEnc
}

// sharedEnc holds the once-computed wire payloads of a fanned-out
// event, one slot per wire format (FormatGob, FormatBinary) — a room
// whose members negotiated different protocol versions encodes each
// broadcast event at most once per format, not once per member.
type sharedEnc struct {
	slots [formatCount]encSlot
}

// encSlot is one format's memoized encoding.
type encSlot struct {
	once sync.Once
	data []byte
	err  error
}

// EncodeShared returns the event's wire payload in the given format
// (FormatGob or FormatBinary) via marshal, computing it at most once
// per format across every copy of a fanned-out event. encoded reports
// whether this call ran marshal (false = a shared encoding was reused).
// Callers must not modify the returned bytes.
func (ev *Event) EncodeShared(format int, marshal func(any) ([]byte, error)) (data []byte, encoded bool, err error) {
	if ev.shared == nil {
		data, err = marshal(*ev)
		return data, true, err
	}
	s := &ev.shared.slots[format]
	s.once.Do(func() {
		encoded = true
		s.data, s.err = marshal(*ev)
	})
	return s.data, encoded, s.err
}

// memberQueueSize bounds each member's event queue; a member that stops
// draining for this many events is evicted rather than stalling the room.
const memberQueueSize = 256

// eventBaseSize is the assumed fixed overhead of one queued Event
// (struct header, scalar fields, channel slot) for push-budget
// accounting; variable-size payloads are added on top by approxSize.
const eventBaseSize = 160

// approxSize estimates the event's memory footprint for the per-member
// push budget. It is deterministic over the payload fields only —
// delivery-side mutations (Resync, shared) don't change it, so the
// enqueue-side charge and the Consumed-side refund always match.
func (ev *Event) approxSize() int64 {
	n := int64(eventBaseSize)
	n += int64(len(ev.Room) + len(ev.Actor) + len(ev.Variable) + len(ev.Value))
	n += int64(len(ev.Component) + len(ev.Op) + len(ev.ActiveWhen) + len(ev.DerivedVar))
	n += int64(len(ev.Annotation.Text) + len(ev.Keyword) + len(ev.Text))
	for i := range ev.Hits {
		n += 48 + int64(len(ev.Hits[i].Word))
	}
	for k := range ev.Visible {
		n += 24 + int64(len(k))
	}
	return n
}

// changeBufferSize bounds the room's change buffer (oldest entries are
// discarded first — "the changed objects are saved and discarded from the
// room as soon as they are not needed").
const changeBufferSize = 1024

// Member is one participant's session in a room.
type Member struct {
	Name string
	room *Room
	ch   chan Event
	// drops counts queued events discarded because this member stopped
	// draining; needResync (guarded by room.mu) flags that the next
	// delivered event must carry the Resync hint.
	drops      atomic.Uint64
	needResync bool
	// queuedBytes tracks the estimated memory held by undrained queued
	// events: charged on enqueue, refunded by Consumed (consumer side)
	// or on drop (room side). Atomic because the consumer refunds
	// outside the room lock.
	queuedBytes atomic.Int64
}

// Events returns the member's event stream. The channel closes when the
// member leaves or is evicted.
func (m *Member) Events() <-chan Event { return m.ch }

// Drops reports how many queued events were discarded for this member
// because its queue overflowed. A client seeing Event.Resync (set on
// the first event delivered after a drop) should replay from History.
func (m *Member) Drops() uint64 { return m.drops.Load() }

// Consumed refunds ev's share of the member's push budget after the
// consumer has taken it off the Events channel and no longer holds it
// queued. Consumers that never call Consumed should run with the push
// budget disabled (SetPushBudget(0)); otherwise the budget fills with
// phantom bytes and the member sheds events it could have afforded.
func (m *Member) Consumed(ev Event) { m.queuedBytes.Add(-ev.approxSize()) }

// QueuedBytes reports the estimated memory currently held by this
// member's undrained queued events.
func (m *Member) QueuedBytes() int64 { return m.queuedBytes.Load() }

// DrainRefund empties whatever events remain queued on this member's
// channel and refunds their push-budget charges, returning how many it
// drained. A forwarder that exits before draining its channel (push
// error, eviction) must call this after the channel closes: abandoned
// events would otherwise keep their queuedBytes charged forever, and
// anything reading the member's pressure — the QoS controller does —
// would see phantom load.
func (m *Member) DrainRefund() int {
	n := 0
	for {
		select {
		case ev, ok := <-m.ch:
			if !ok {
				return n
			}
			m.Consumed(ev)
			n++
		default:
			return n
		}
	}
}

// Room is one shared session around a document.
type Room struct {
	Name string

	mu      sync.Mutex
	engine  *core.Engine
	members map[string]*Member
	frozen  map[uint64]string // object id -> holder
	anns    map[uint64]*image.Annotated
	rasters map[uint64]*image.Gray // base rasters for annotation rendering
	buf     []Event
	seq     uint64
	// trimmed is the highest Seq ever discarded from the change buffer;
	// a resume from at-or-after it can be replayed exactly, one from
	// before it has an unrecoverable gap.
	trimmed uint64
	closed  bool

	// grace is how long a detached session may linger before it is
	// expired into a full leave (<= 0: detach degrades to leave).
	// detached holds the expiry timer per detached member; expireHook,
	// when set, observes expirations (called outside r.mu).
	grace      time.Duration
	detached   map[string]*time.Timer
	expireHook func(user string)

	// broadcaster is the presenting member while a broadcast runs ("").
	broadcaster string

	// dropHook, when set, observes every discarded member-queue event
	// (called under r.mu — keep it cheap; the server counts drops into
	// its stats here).
	dropHook func(member string)

	// pushBudget caps the estimated bytes queued per member (0 or
	// negative: disabled, count-bounded only). A slow consumer over
	// budget sheds its oldest queued events — and gets a Resync hint —
	// instead of buffering unboundedly.
	pushBudget int64

	// replicator, when set, observes every buffered event (ev non-nil)
	// and every sequence advance (ev nil for per-member presentation
	// bumps that consume a Seq without entering the change buffer),
	// carrying the room's current Seq high-water and trim marks. Called
	// under r.mu — it must not block or call back into the room; a
	// cluster node hands the event to an async replication queue here.
	replicator func(ev *Event, seq, trimmed uint64)

	// docVer counts shared document mutations; docSnap caches the
	// document's serialized form at docSnapVer so joins stop
	// re-marshaling an unchanged document.
	docVer     uint64
	docSnapVer uint64
	docSnap    []byte

	// Dynamic event triggers (future work of §6, implemented here).
	triggers   []*Trigger
	triggerSeq uint64
	triggerCh  chan Event
	triggerWG  chan struct{} // closed when the dispatch goroutine exits
}

// New creates a room around a document.
func New(name string, doc *document.Document) (*Room, error) {
	if name == "" {
		return nil, fmt.Errorf("room: empty room name")
	}
	engine, err := core.NewEngine(doc)
	if err != nil {
		return nil, err
	}
	r := &Room{
		Name:      name,
		engine:    engine,
		members:   make(map[string]*Member),
		frozen:    make(map[uint64]string),
		anns:      make(map[uint64]*image.Annotated),
		rasters:   make(map[uint64]*image.Gray),
		detached:  make(map[string]*time.Timer),
		triggerCh: make(chan Event, 256),
		triggerWG: make(chan struct{}),
	}
	go r.triggerLoop()
	return r, nil
}

// triggerLoop dispatches events to installed triggers asynchronously, so
// trigger bodies can call room methods without deadlocking.
func (r *Room) triggerLoop() {
	defer close(r.triggerWG)
	for ev := range r.triggerCh {
		r.runTriggers(ev)
	}
}

// Engine exposes the room's presentation engine.
func (r *Room) Engine() *core.Engine { return r.engine }

// OnQueueDrop installs a hook observing every discarded member-queue
// event. The hook runs under the room lock — keep it cheap.
func (r *Room) OnQueueDrop(fn func(member string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropHook = fn
}

// SetPushBudget caps the estimated bytes of undrained events queued per
// member (<= 0: disabled). Only enable it when the consumer refunds
// delivered events via Member.Consumed — the server's forwarder does.
func (r *Room) SetPushBudget(n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pushBudget = n
}

// SetGrace sets how long a detached session survives before expiring
// into a full leave. With d <= 0, Detach degrades to an immediate leave.
func (r *Room) SetGrace(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.grace = d
}

// OnSessionExpire installs a hook observing detached sessions that ran
// out their grace period. The hook runs outside the room lock.
func (r *Room) OnSessionExpire(fn func(user string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireHook = fn
}

// bumpDocLocked invalidates the cached document snapshot; call after
// any shared document mutation. Callers hold r.mu.
func (r *Room) bumpDocLocked() { r.docVer++ }

// DocSnapshot returns the shared document's serialized form, cached
// until the next document mutation (so an N-viewer join storm marshals
// once, not N times). hit reports whether the cache served the bytes.
// Callers must not modify the returned slice.
func (r *Room) DocSnapshot() (data []byte, hit bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.docSnap != nil && r.docSnapVer == r.docVer {
		return r.docSnap, true, nil
	}
	data, err = r.engine.Document().MarshalBinary()
	if err != nil {
		return nil, false, err
	}
	r.docSnap, r.docSnapVer = data, r.docVer
	return data, false, nil
}

// Join adds a member, replays the change buffer to them as a catch-up
// snapshot, and announces the join to everyone. A cancelled ctx aborts
// before any state changes — the request's client is already gone, so
// admitting it would strand a membership nobody drains.
func (r *Room) Join(ctx context.Context, name string) (*Member, []Event, document.View, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, nil, document.View{}, fmt.Errorf("room %s: join %s: %w", r.Name, name, err)
	}
	if r.closed {
		return nil, nil, document.View{}, fmt.Errorf("room %s: closed", r.Name)
	}
	if _, dup := r.members[name]; dup {
		return nil, nil, document.View{}, fmt.Errorf("room %s: member %q already present", r.Name, name)
	}
	// A fresh join supersedes any detached session under the same name:
	// the old session leaves for real (its engine state and freezes are
	// retracted) before the new one enters, so a client that gave up on
	// resuming is never blocked by its own ghost.
	if t, ok := r.detached[name]; ok {
		t.Stop()
		delete(r.detached, name)
		if err := r.removeLocked(name); err != nil {
			return nil, nil, document.View{}, err
		}
	}
	view, err := r.engine.Join(name)
	if err != nil {
		return nil, nil, document.View{}, err
	}
	m := &Member{Name: name, room: r, ch: make(chan Event, memberQueueSize)}
	r.members[name] = m
	history := append([]Event(nil), r.buf...)
	endPush := obs.StartSpan(ctx, "push")
	r.broadcastLocked(Event{Room: r.Name, Actor: name, Kind: EvJoin}, true)
	endPush()
	return m, history, view, nil
}

// Leave removes a member, retracts their choices, and reconfigures the
// remaining members' presentations if needed. A detached session may
// also Leave, ending its grace period early.
func (r *Room) Leave(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.detached[name]; ok {
		t.Stop()
		delete(r.detached, name)
		return r.removeLocked(name)
	}
	m, ok := r.members[name]
	if !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, name)
	}
	delete(r.members, name)
	close(m.ch)
	return r.removeLocked(name)
}

// removeLocked finishes a departure for a name already out of the member
// map (left, evicted, or expired from detachment): broadcaster handoff,
// engine retraction, freeze release, and the EvLeave announcement.
// Callers hold r.mu.
func (r *Room) removeLocked(name string) error {
	if r.broadcaster == name {
		r.broadcaster = ""
		r.broadcastLocked(Event{Room: r.Name, Actor: name, Kind: EvBroadcastStop}, false)
	}
	changed, err := r.engine.Leave(name)
	if err != nil {
		return err
	}
	// Release any freezes the departing member held.
	for id, holder := range r.frozen {
		if holder == name {
			delete(r.frozen, id)
			r.broadcastLocked(Event{Room: r.Name, Actor: name, Kind: EvRelease, ObjectID: id}, false)
		}
	}
	r.broadcastLocked(Event{Room: r.Name, Actor: name, Kind: EvLeave}, changed)
	return nil
}

// ErrNoSession reports a Resume for a (user, room) pair with no live
// detached session — it expired, never existed, or already resumed.
var ErrNoSession = errors.New("room: no detached session")

// Detach converts a live membership into a detached session: the member
// channel closes (its forwarder unblocks) but the engine membership,
// choices, and freezes stay in place for a grace period so the same user
// can Resume without the room observing a leave. The member handle
// identifies the session: if the name's live membership is a different
// handle (the user already resumed on a new connection and this is a
// stale eviction of the old one), Detach is a no-op. It reports whether
// a detached session is now pending; false means nothing was detached or
// the grace period is disabled and the membership was fully removed.
func (r *Room) Detach(m *Member) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.Name
	cur, ok := r.members[name]
	if !ok || cur != m {
		return false
	}
	delete(r.members, name)
	close(m.ch)
	if r.grace <= 0 || r.closed {
		r.removeLocked(name)
		return false
	}
	r.detached[name] = time.AfterFunc(r.grace, func() { r.expireSession(name) })
	return true
}

// expireSession runs when a detached session's grace timer fires: if the
// session is still detached (not resumed, not superseded) it becomes a
// full leave, and the expire hook is told.
func (r *Room) expireSession(name string) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if _, ok := r.detached[name]; !ok {
		r.mu.Unlock()
		return // resumed, superseded, or left while the timer fired
	}
	delete(r.detached, name)
	r.removeLocked(name)
	hook := r.expireHook
	r.mu.Unlock()
	if hook != nil {
		hook(name)
	}
}

// Resume revives a detached session: the member re-enters under its
// retained engine state (choices, freezes, broadcast role untouched) and
// receives exactly the buffered events with Seq greater than since.
// complete reports whether that replay covers everything the member
// missed — false when the change buffer was trimmed past since (or since
// is from another room incarnation), in which case the client must treat
// its local state as stale and do a full catch-up.
func (r *Room) Resume(ctx context.Context, name string, since uint64) (*Member, []Event, document.View, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, nil, document.View{}, false, fmt.Errorf("room %s: resume %s: %w", r.Name, name, err)
	}
	if r.closed {
		return nil, nil, document.View{}, false, fmt.Errorf("room %s: closed", r.Name)
	}
	t, wasDetached := r.detached[name]
	old, wasLive := r.members[name]
	if !wasDetached && !wasLive {
		return nil, nil, document.View{}, false, fmt.Errorf("room %s: resume %s: %w", r.Name, name, ErrNoSession)
	}
	view, err := r.engine.ViewFor(name)
	if err != nil {
		return nil, nil, document.View{}, false, err
	}
	if wasDetached {
		t.Stop()
		delete(r.detached, name)
	} else {
		// Take over a live membership under the same name: the old
		// connection is dying (the reconnect raced the server noticing)
		// and its stream ends here; Detach/eviction of the old handle
		// later is a no-op.
		delete(r.members, name)
		close(old.ch)
	}
	m := &Member{Name: name, room: r, ch: make(chan Event, memberQueueSize)}
	r.members[name] = m
	var missed []Event
	for _, ev := range r.buf {
		if ev.Seq > since {
			missed = append(missed, ev)
		}
	}
	complete := since >= r.trimmed && since <= r.seq
	return m, missed, view, complete, nil
}

// Detached lists the names of currently detached sessions, sorted.
func (r *Room) Detached() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.detached))
	for n := range r.detached {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Members lists current member names, sorted.
func (r *Room) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gauges is a point-in-time reading of a room's live load: how many
// members (and parked sessions) it carries, how deep their undrained
// event queues are, and how much change buffer it retains.
type Gauges struct {
	Members        int
	Detached       int
	QueuedEvents   int   // sum of undrained member-queue depths
	QueuedBytes    int64 // estimated bytes across undrained member queues
	MaxQueueDepth  int   // deepest single member queue
	BufferedEvents int   // change-buffer length (late-join catch-up)
}

// Gauges samples the room's live load for the metrics surface.
func (r *Room) Gauges() Gauges {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := Gauges{
		Members:        len(r.members),
		Detached:       len(r.detached),
		BufferedEvents: len(r.buf),
	}
	for _, m := range r.members {
		d := len(m.ch)
		g.QueuedEvents += d
		g.QueuedBytes += m.queuedBytes.Load()
		if d > g.MaxQueueDepth {
			g.MaxQueueDepth = d
		}
	}
	return g
}

// Close evicts everyone and shuts the room down.
func (r *Room) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	for name, m := range r.members {
		close(m.ch)
		delete(r.members, name)
	}
	for name, t := range r.detached {
		t.Stop()
		delete(r.detached, name)
	}
	r.closed = true
	r.mu.Unlock()
	close(r.triggerCh)
	<-r.triggerWG
}

// broadcastLocked stamps, buffers and fans an event out, then (when
// reconfigure is set) pushes each member their updated presentation.
// Callers hold r.mu.
func (r *Room) broadcastLocked(ev Event, reconfigure bool) {
	r.seq++
	ev.Seq = r.seq
	ev.Room = r.Name
	r.buf = append(r.buf, ev)
	if len(r.buf) > changeBufferSize {
		cut := len(r.buf) - changeBufferSize
		r.trimmed = r.buf[cut-1].Seq
		r.buf = r.buf[cut:]
	}
	if !r.closed {
		select {
		case r.triggerCh <- ev: // async trigger evaluation
		default: // trigger backlog full: shed rather than stall the room
		}
	}
	r.fanOutLocked(ev)
	defer func() {
		// Tap after the reconfigure loop below so the replicated Seq
		// high-water mark includes the per-member presentation bumps.
		if r.replicator != nil {
			r.replicator(&ev, r.seq, r.trimmed)
		}
	}()
	if reconfigure {
		views, err := r.engine.Views()
		if err != nil {
			return
		}
		for name, m := range r.members {
			v, ok := views[name]
			if !ok {
				continue
			}
			// During a broadcast everyone mirrors the presenter's view.
			if r.broadcaster != "" {
				if pv, ok := views[r.broadcaster]; ok {
					v = pv
				}
			}
			r.seq++
			pe := Event{
				Seq: r.seq, Room: r.Name, Actor: name, Kind: EvPresentation,
				Outcome: v.Outcome, Visible: v.Visible,
			}
			r.deliverLocked(m, pe)
		}
	}
}

// fanOutLocked delivers one event to every member. With more than one
// member the copies share a memoized wire encoding (EncodeShared), so
// the push path gob-encodes the event once for the whole room.
func (r *Room) fanOutLocked(ev Event) {
	if len(r.members) > 1 {
		ev.shared = &sharedEnc{}
	}
	for _, m := range r.members {
		r.deliverLocked(m, ev)
	}
}

// deliverLocked enqueues an event; when a member's queue is full the
// oldest queued event is discarded to make room, so a stalled client
// never blocks the room and, once it resumes draining, can resynchronize
// from History (mirroring the paper's buffer, which discards changes "as
// soon as they are not needed by the clients"). Drops are counted per
// member and reported to the drop hook, and the first event delivered
// after a drop carries the Resync hint so the client knows its stream
// has a gap.
// A byte-bounded push budget (SetPushBudget) applies the same policy to
// memory: when a member's undrained queue is over budget, its oldest
// queued events are shed first, so one slow consumer in a room pushing
// large events cannot grow the server heap without bound.
func (r *Room) deliverLocked(m *Member, ev Event) {
	sz := ev.approxSize()
	// Shed oldest while over the byte budget (but never the event being
	// delivered itself — an oversized single event still goes through,
	// alone in the queue).
	for r.pushBudget > 0 && m.queuedBytes.Load()+sz > r.pushBudget && len(m.ch) > 0 {
		r.dropOldestLocked(m)
	}
	for {
		if m.needResync {
			// This copy is member-specific now: detach it from the
			// shared encoding so the hint is not broadcast to everyone.
			ev.Resync = true
			ev.shared = nil
		}
		select {
		case m.ch <- ev:
			m.queuedBytes.Add(sz)
			m.needResync = false
			return
		default:
			r.dropOldestLocked(m)
		}
	}
}

// dropOldestLocked discards the member's oldest queued event (if any),
// refunding its budget charge and flagging the resync hint. Callers
// hold r.mu.
func (r *Room) dropOldestLocked(m *Member) {
	select {
	case old := <-m.ch:
		m.queuedBytes.Add(-old.approxSize())
		m.drops.Add(1)
		m.needResync = true
		if r.dropHook != nil {
			r.dropHook(m.Name)
		}
	default:
	}
}

// SetMemberEnvironment pins a measured per-member environment variable
// (the QoS loop's bandwidth level) and, when the pin changes the
// member's effective evidence, pushes them their re-solved presentation
// as a per-member EvPresentation event — nobody else's view or queue is
// touched. It reports whether the evidence changed.
func (r *Room) SetMemberEnvironment(name, variable, value string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[name]
	if !ok {
		return false, fmt.Errorf("room %s: no member %q", r.Name, name)
	}
	changed, err := r.engine.SetViewerEnvironment(name, variable, value)
	if err != nil || !changed {
		return changed, err
	}
	viewer := name
	if r.broadcaster != "" {
		viewer = r.broadcaster // during a broadcast everyone mirrors the presenter
	}
	v, err := r.engine.ViewFor(viewer)
	if err != nil {
		return true, err
	}
	r.seq++
	r.deliverLocked(m, Event{
		Seq: r.seq, Room: r.Name, Actor: name, Kind: EvPresentation,
		Outcome: v.Outcome, Visible: v.Visible,
	})
	if r.replicator != nil {
		r.replicator(nil, r.seq, r.trimmed) // seq-only advance: nothing buffered
	}
	return true, nil
}

// Choice records a presentation choice and propagates it. A cancelled
// ctx aborts before the engine mutates, so no propagation work runs for
// a request whose client stopped waiting.
func (r *Room) Choice(ctx context.Context, actor, variable, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("room %s: choice by %s: %w", r.Name, actor, err)
	}
	if _, ok := r.members[actor]; !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	if err := r.checkFloorLocked(actor); err != nil {
		return err
	}
	if _, err := r.engine.Choice(actor, variable, value); err != nil {
		return err
	}
	endPush := obs.StartSpan(ctx, "push")
	r.broadcastLocked(Event{Actor: actor, Kind: EvChoice, Variable: variable, Value: value}, true)
	endPush()
	return nil
}

// Operation applies a media operation (§4.2) and propagates it. Shared
// operations change everyone's network; private ones only the actor's
// overlay — but the event is still announced so partners see the action.
func (r *Room) Operation(ctx context.Context, actor, component, op, activeWhen string, private bool) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("room %s: operation by %s: %w", r.Name, actor, err)
	}
	if _, ok := r.members[actor]; !ok {
		return "", fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	if err := r.checkFloorLocked(actor); err != nil {
		return "", err
	}
	if holder := r.frozenHolderForComponentLocked(component); holder != "" && holder != actor {
		return "", fmt.Errorf("room %s: component %q is frozen by %s", r.Name, component, holder)
	}
	name, err := r.engine.Operation(actor, component, op, activeWhen, private)
	if err != nil {
		return "", err
	}
	// Shared operations extend the document's preference network;
	// invalidate the cached snapshot (private overlays are cheap to
	// over-invalidate, so bump unconditionally for safety).
	r.bumpDocLocked()
	endPush := obs.StartSpan(ctx, "push")
	r.broadcastLocked(Event{
		Actor: actor, Kind: EvOperation,
		Component: component, Op: op, ActiveWhen: activeWhen,
		DerivedVar: name, Private: private,
	}, true)
	endPush()
	return name, nil
}

// frozenHolderForComponentLocked returns who froze any object the
// component's presentations reference, or "".
func (r *Room) frozenHolderForComponentLocked(component string) string {
	c, err := r.engine.Document().Component(component)
	if err != nil {
		return ""
	}
	for _, p := range c.Presentations {
		if p.ObjectID != 0 {
			if holder, ok := r.frozen[p.ObjectID]; ok {
				return holder
			}
		}
	}
	return ""
}

// RegisterRaster provides the base raster of an image object so that
// annotation rendering (Rendered) works server-side.
func (r *Room) RegisterRaster(objectID uint64, g *image.Gray) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rasters[objectID] = g
}

// Annotate writes a text or line element on an image object and
// propagates it — "when one user writes some text on an image, the others
// can see the text".
func (r *Room) Annotate(actor string, objectID uint64, kind image.AnnotationKind,
	x1, y1, x2, y2 int, text string, intensity float64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[actor]; !ok {
		return 0, fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	if holder, ok := r.frozen[objectID]; ok && holder != actor {
		return 0, fmt.Errorf("room %s: object %d is frozen by %s", r.Name, objectID, holder)
	}
	ann := r.annotatedLocked(objectID)
	var id int
	var err error
	switch kind {
	case image.TextElement:
		id, err = ann.AddText(x1, y1, text, intensity)
	case image.LineElement:
		id = ann.AddLine(x1, y1, x2, y2, intensity)
	default:
		return 0, fmt.Errorf("room %s: unknown annotation kind %d", r.Name, kind)
	}
	if err != nil {
		return 0, err
	}
	stored := ann.Annotations[len(ann.Annotations)-1]
	r.broadcastLocked(Event{
		Actor: actor, Kind: EvAnnotate, ObjectID: objectID,
		Annotation: stored, AnnotationID: id,
	}, false)
	return id, nil
}

// annotatedLocked returns (creating if needed) the annotation overlay of
// an object.
func (r *Room) annotatedLocked(objectID uint64) *image.Annotated {
	ann, ok := r.anns[objectID]
	if !ok {
		base := r.rasters[objectID]
		if base == nil {
			base, _ = image.New(1, 1) // annotations can exist before the raster is registered
		}
		ann = image.NewAnnotated(base)
		r.anns[objectID] = ann
	}
	return ann
}

// DeleteAnnotation removes an overlay element and propagates the removal.
func (r *Room) DeleteAnnotation(actor string, objectID uint64, annotationID int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[actor]; !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	if holder, ok := r.frozen[objectID]; ok && holder != actor {
		return fmt.Errorf("room %s: object %d is frozen by %s", r.Name, objectID, holder)
	}
	ann, ok := r.anns[objectID]
	if !ok {
		return fmt.Errorf("room %s: object %d has no annotations", r.Name, objectID)
	}
	if err := ann.Delete(annotationID); err != nil {
		return err
	}
	r.broadcastLocked(Event{
		Actor: actor, Kind: EvDeleteAnnotation,
		ObjectID: objectID, AnnotationID: annotationID,
	}, false)
	return nil
}

// Annotations returns a copy of an object's current overlay.
func (r *Room) Annotations(objectID uint64) []image.Annotation {
	r.mu.Lock()
	defer r.mu.Unlock()
	ann, ok := r.anns[objectID]
	if !ok {
		return nil
	}
	return append([]image.Annotation(nil), ann.Annotations...)
}

// Rendered returns the object's raster with annotations burned in, if its
// base raster was registered.
func (r *Room) Rendered(objectID uint64) (*image.Gray, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rasters[objectID] == nil {
		return nil, fmt.Errorf("room %s: no raster registered for object %d", r.Name, objectID)
	}
	return r.annotatedLocked(objectID).Render(), nil
}

// Freeze locks an object against changes by other partners.
func (r *Room) Freeze(actor string, objectID uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[actor]; !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	if holder, ok := r.frozen[objectID]; ok {
		return fmt.Errorf("room %s: object %d already frozen by %s", r.Name, objectID, holder)
	}
	r.frozen[objectID] = actor
	r.broadcastLocked(Event{Actor: actor, Kind: EvFreeze, ObjectID: objectID}, false)
	return nil
}

// Release lifts a freeze; only the holder may release.
func (r *Room) Release(actor string, objectID uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	holder, ok := r.frozen[objectID]
	if !ok {
		return fmt.Errorf("room %s: object %d is not frozen", r.Name, objectID)
	}
	if holder != actor {
		return fmt.Errorf("room %s: object %d is frozen by %s, not %s", r.Name, objectID, holder, actor)
	}
	delete(r.frozen, objectID)
	r.broadcastLocked(Event{Actor: actor, Kind: EvRelease, ObjectID: objectID}, false)
	return nil
}

// FrozenBy reports who holds the freeze on an object ("" if unfrozen).
func (r *Room) FrozenBy(objectID uint64) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen[objectID]
}

// ShareSearch propagates the results of a voice search (word or speaker
// spotting) to all partners — the cooperative integration of §3.2: "if
// one does keyword searches, the results will be visible and usable to
// other partners in the chat room".
func (r *Room) ShareSearch(actor string, kind EventKind, keyword string, hits []voice.Hit) error {
	if kind != EvWordSearch && kind != EvSpeakerSearch {
		return fmt.Errorf("room %s: %v is not a search kind", r.Name, kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[actor]; !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	r.broadcastLocked(Event{Actor: actor, Kind: kind, Keyword: keyword, Hits: hits}, false)
	return nil
}

// Chat propagates a free-text message.
func (r *Room) Chat(actor, text string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[actor]; !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	r.broadcastLocked(Event{Actor: actor, Kind: EvChat, Text: text}, false)
	return nil
}

// SetReplicator installs the event-log tap a cluster node replicates
// from: fn observes every buffered event (ev non-nil) and every Seq
// advance (ev nil) together with the room's current Seq high-water and
// trim marks. fn runs under the room lock — it must be cheap, must not
// block, and must not call back into the room.
func (r *Room) SetReplicator(fn func(ev *Event, seq, trimmed uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicator = fn
}

// Restore seeds a freshly built room with a replicated event log: the
// change buffer, the Seq high-water mark, and the trim watermark a
// failover standby accumulated from the old owner. Resume(since) on the
// restored room then replays exactly the events the old owner would
// have — the handover substrate of the cluster tier. It refuses on a
// room that has already issued events or admitted members.
func (r *Room) Restore(events []Event, seq, trimmed uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq != 0 || len(r.buf) != 0 || len(r.members) != 0 {
		return fmt.Errorf("room %s: restore into a live room", r.Name)
	}
	for i, ev := range events {
		if ev.Seq <= trimmed || ev.Seq > seq || (i > 0 && ev.Seq <= events[i-1].Seq) {
			return fmt.Errorf("room %s: restore: event log not ascending within (%d, %d]", r.Name, trimmed, seq)
		}
	}
	r.buf = append(r.buf[:0], events...)
	if len(r.buf) > changeBufferSize {
		cut := len(r.buf) - changeBufferSize
		trimmed = r.buf[cut-1].Seq
		r.buf = r.buf[cut:]
	}
	r.seq = seq
	r.trimmed = trimmed
	return nil
}

// Seq returns the latest issued event sequence number.
func (r *Room) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Trimmed returns the highest Seq ever discarded from the change
// buffer — the replay floor: a resume from at-or-after it is exact.
func (r *Room) Trimmed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trimmed
}

// History returns buffered events with Seq greater than since.
func (r *Room) History(since uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, ev := range r.buf {
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	return out
}
