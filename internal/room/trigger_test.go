package room

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
)

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTriggerFiresOnMatchingKind(t *testing.T) {
	r := newRoom(t)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	drain(alice)

	// Rule: when any word search hits, surface the voice component as
	// audio for everyone (the natural telemedicine trigger).
	trig, err := r.AddTrigger("surface-voice", []EventKind{EvWordSearch}, func(r *Room, ev Event) error {
		if len(ev.Hits) == 0 {
			return nil
		}
		return r.SystemChoice("voice", "audio")
	})
	if err != nil {
		t.Fatalf("AddTrigger: %v", err)
	}
	// Force the voice away from audio first.
	if err := r.Choice(context.Background(), "alice", "voice", "transcript"); err != nil {
		t.Fatal(err)
	}
	hits := []voice.Hit{{Word: "urgent", Start: 0, End: 100, Score: 2}}
	if err := r.ShareSearch("alice", EvWordSearch, "urgent", hits); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trigger to fire", func() bool { return trig.Fired() >= 1 })
	// The system choice must land and flip the presentation back.
	waitFor(t, "system choice", func() bool {
		v, err := r.Engine().ViewFor("alice")
		return err == nil && v.Outcome["voice"] == "audio"
	})
	// The system event is in the change buffer with the trigger actor.
	found := false
	for _, ev := range r.History(0) {
		if ev.Kind == EvChoice && ev.Actor == triggerActor && ev.Variable == "voice" {
			found = true
		}
	}
	if !found {
		t.Error("trigger action missing from change buffer")
	}
}

func TestTriggerKindFilter(t *testing.T) {
	r := newRoom(t)
	r.Join(context.Background(), "alice")
	trig, err := r.AddTrigger("chat-only", []EventKind{EvChat}, func(r *Room, ev Event) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Choice(context.Background(), "alice", "ct", "segmented"); err != nil {
		t.Fatal(err)
	}
	if err := r.Chat("alice", "hello"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "chat trigger", func() bool { return trig.Fired() == 1 })
	// The choice must not have fired it.
	time.Sleep(50 * time.Millisecond)
	if trig.Fired() != 1 {
		t.Errorf("fired = %d, want 1 (kind filter leaked)", trig.Fired())
	}
}

func TestTriggerNoCascade(t *testing.T) {
	r := newRoom(t)
	r.Join(context.Background(), "alice")
	trig, err := r.AddTrigger("echo", []EventKind{EvChat}, func(r *Room, ev Event) error {
		return r.SystemChat("echo: " + ev.Text)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Chat("alice", "ping"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "echo trigger", func() bool { return trig.Fired() >= 1 })
	time.Sleep(100 * time.Millisecond)
	if got := trig.Fired(); got != 1 {
		t.Fatalf("trigger fired %d times — system chat re-triggered it", got)
	}
	// Exactly one echo in the buffer.
	echoes := 0
	for _, ev := range r.History(0) {
		if ev.Kind == EvChat && ev.Actor == triggerActor {
			echoes++
		}
	}
	if echoes != 1 {
		t.Errorf("echoes = %d", echoes)
	}
}

func TestTriggerDeactivatesOnError(t *testing.T) {
	r := newRoom(t)
	r.Join(context.Background(), "alice")
	trig, err := r.AddTrigger("flaky", []EventKind{EvChat}, func(r *Room, ev Event) error {
		return fmt.Errorf("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Chat("alice", "one")
	waitFor(t, "first firing", func() bool { return trig.Fired() == 1 })
	waitFor(t, "deactivation", func() bool { return !trig.Active() })
	r.Chat("alice", "two")
	time.Sleep(50 * time.Millisecond)
	if trig.Fired() != 1 {
		t.Errorf("deactivated trigger fired again: %d", trig.Fired())
	}
}

func TestTriggerManagement(t *testing.T) {
	r := newRoom(t)
	if _, err := r.AddTrigger("", nil, func(*Room, Event) error { return nil }); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.AddTrigger("x", nil, nil); err == nil {
		t.Error("nil function accepted")
	}
	t1, _ := r.AddTrigger("a", nil, func(*Room, Event) error { return nil })
	t2, _ := r.AddTrigger("b", nil, func(*Room, Event) error { return nil })
	if got := r.Triggers(); len(got) != 2 || got[0].ID != t1.ID || got[1].ID != t2.ID {
		t.Errorf("Triggers = %v", got)
	}
	if err := r.RemoveTrigger(t1.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveTrigger(t1.ID); err == nil {
		t.Error("double remove accepted")
	}
	if got := r.Triggers(); len(got) != 1 || got[0].ID != t2.ID {
		t.Errorf("Triggers after remove = %v", got)
	}
}

func TestSystemChoiceRequiresMembers(t *testing.T) {
	r := newRoom(t)
	if err := r.SystemChoice("ct", "hidden"); err == nil {
		t.Error("system choice on empty room accepted")
	}
	r.Join(context.Background(), "alice")
	if err := r.SystemChoice("nosuch", "x"); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := r.SystemChoice("ct", "hidden"); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastFloorControl(t *testing.T) {
	r := newRoom(t)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(alice)
	drain(bob)

	if err := r.StartBroadcast("ghost"); err == nil {
		t.Error("non-member presenter accepted")
	}
	if err := r.StartBroadcast("alice"); err != nil {
		t.Fatalf("StartBroadcast: %v", err)
	}
	if r.Broadcaster() != "alice" {
		t.Error("Broadcaster wrong")
	}
	if err := r.StartBroadcast("bob"); err == nil {
		t.Error("second broadcast accepted")
	}
	// Bob cannot change the presentation; alice can.
	if err := r.Choice(context.Background(), "bob", "ct", "hidden"); err == nil {
		t.Error("non-presenter choice accepted during broadcast")
	}
	if _, err := r.Operation(context.Background(), "bob", "ct", "zoom", "full", true); err == nil {
		t.Error("non-presenter operation accepted during broadcast")
	}
	if err := r.Choice(context.Background(), "alice", "ct", "segmented"); err != nil {
		t.Fatalf("presenter choice: %v", err)
	}
	// Bob's pushed presentation mirrors the presenter.
	sawMirror := false
	for _, ev := range drain(bob) {
		if ev.Kind == EvPresentation && ev.Outcome["ct"] == "segmented" {
			sawMirror = true
		}
	}
	if !sawMirror {
		t.Error("bob did not receive the presenter's view")
	}
	// Content actions stay open to everyone.
	if err := r.Chat("bob", "question: lower lobe?"); err != nil {
		t.Errorf("chat blocked during broadcast: %v", err)
	}
	// Only the presenter stops the broadcast.
	if err := r.StopBroadcast("bob"); err == nil {
		t.Error("non-presenter stop accepted")
	}
	if err := r.StopBroadcast("alice"); err != nil {
		t.Fatalf("StopBroadcast: %v", err)
	}
	if err := r.StopBroadcast("alice"); err == nil {
		t.Error("double stop accepted")
	}
	// Bob regains the floor.
	if err := r.Choice(context.Background(), "bob", "ct", "full"); err != nil {
		t.Errorf("post-broadcast choice blocked: %v", err)
	}
}

func TestBroadcastEndsWhenPresenterLeaves(t *testing.T) {
	r := newRoom(t)
	r.Join(context.Background(), "alice")
	bob, _, _, _ := r.Join(context.Background(), "bob")
	drain(bob)
	if err := r.StartBroadcast("alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.Leave("alice"); err != nil {
		t.Fatal(err)
	}
	if r.Broadcaster() != "" {
		t.Error("broadcast survived the presenter's departure")
	}
	sawStop := false
	for _, ev := range drain(bob) {
		if ev.Kind == EvBroadcastStop {
			sawStop = true
		}
	}
	if !sawStop {
		t.Error("broadcast-stop event not propagated")
	}
	if err := r.Choice(context.Background(), "bob", "ct", "hidden"); err != nil {
		t.Errorf("floor not released: %v", err)
	}
}

func TestBroadcastEventKindNames(t *testing.T) {
	if EvBroadcastStart.String() != "broadcast-start" || EvBroadcastStop.String() != "broadcast-stop" {
		t.Errorf("names: %s, %s", EvBroadcastStart, EvBroadcastStop)
	}
}

func TestMinutesSnapshotAndComponent(t *testing.T) {
	r := newRoom(t)
	base, _ := image.Phantom(32, 32, 1)
	r.RegisterRaster(11, base)
	alice, _, _, _ := r.Join(context.Background(), "alice")
	drain(alice)
	r.Chat("alice", "suspicious density upper lobe")
	r.ShareSearch("alice", EvWordSearch, "urgent", []voice.Hit{{Word: "urgent", Start: 1, End: 2, Score: 1}})
	if _, err := r.Annotate("alice", 11, image.TextElement, 5, 5, 0, 0, "lesion", 1); err != nil {
		t.Fatal(err)
	}
	m := r.Minutes()
	if len(m.Chat) != 1 || len(m.Searches) != 1 || len(m.Annotations[11]) != 1 {
		t.Fatalf("minutes = %+v", m)
	}
	tr := m.Transcript()
	for _, want := range []string{"suspicious density", "urgent", "lesion", "object 11"} {
		if !strings.Contains(tr, want) {
			t.Errorf("transcript missing %q:\n%s", want, tr)
		}
	}
	name, err := r.AddMinutesComponent("alice", tr)
	if err != nil {
		t.Fatalf("AddMinutesComponent: %v", err)
	}
	doc := r.Engine().Document()
	comp, err := doc.Component(name)
	if err != nil {
		t.Fatalf("minutes component missing: %v", err)
	}
	if string(comp.Presentations[0].Inline) != tr {
		t.Error("transcript not stored inline")
	}
	// The new component shows up in members' presentations.
	v, err := r.Engine().ViewFor("alice")
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome[name] != "text" || !v.Visible[name] {
		t.Errorf("minutes not presented: %v", v.Outcome[name])
	}
	// A second save gets a fresh name.
	name2, err := r.AddMinutesComponent("alice", "more")
	if err != nil || name2 == name {
		t.Errorf("second minutes name %q (%v)", name2, err)
	}
	if _, err := r.AddMinutesComponent("ghost", "x"); err == nil {
		t.Error("non-member save accepted")
	}
}
