package room

import (
	"context"
	"testing"

	"mmconf/internal/core"
	"mmconf/internal/workload"
)

func newTunedRoom(t *testing.T) *Room {
	t.Helper()
	doc, err := workload.MedicalRecord("rec-qos", 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.AddBandwidthTuning(doc, core.AutoBandwidthTemplates(doc, 0)); err != nil {
		t.Fatal(err)
	}
	r, err := New("consult-qos", doc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// SetMemberEnvironment re-solves one member's presentation and pushes it
// to them alone — the other member's stream carries no presentation
// event and their view keeps full fidelity.
func TestSetMemberEnvironmentPushesOnlyToThatMember(t *testing.T) {
	r := newTunedRoom(t)
	slow, _, _, err := r.Join(context.Background(), "clinic")
	if err != nil {
		t.Fatal(err)
	}
	fast, _, _, _ := r.Join(context.Background(), "hospital")
	drain(slow)
	drain(fast)

	changed, err := r.SetMemberEnvironment("clinic", core.BandwidthVariable, core.BandwidthLow)
	if err != nil || !changed {
		t.Fatalf("SetMemberEnvironment: changed=%v err=%v", changed, err)
	}
	evs := drain(slow)
	var pres *Event
	for i := range evs {
		if evs[i].Kind == EvPresentation {
			pres = &evs[i]
		}
	}
	if pres == nil {
		t.Fatal("no presentation event delivered to the degraded member")
	}
	if pres.Outcome["ct"] != "lowres" {
		t.Errorf("degraded ct = %s, want lowres", pres.Outcome["ct"])
	}
	if !pres.Visible["ct"] {
		t.Error("degradation hid the ct component instead of lowering resolution")
	}
	for _, ev := range drain(fast) {
		if ev.Kind == EvPresentation {
			t.Fatal("fast member received a presentation push for the slow member's tuning")
		}
	}
	// Re-pinning the same level is a no-op: no redundant push.
	if changed, _ := r.SetMemberEnvironment("clinic", core.BandwidthVariable, core.BandwidthLow); changed {
		t.Error("idempotent re-pin reported a change")
	}
	if evs := drain(slow); len(evs) != 0 {
		t.Errorf("idempotent re-pin delivered %d events", len(evs))
	}
	// Unknown member errors.
	if _, err := r.SetMemberEnvironment("ghost", core.BandwidthVariable, core.BandwidthLow); err == nil {
		t.Error("unknown member accepted")
	}
}

// Regression for the forwarder-refund audit: a consumer that abandons a
// member channel with undrained events (the forwarder's push-error exit)
// leaves queuedBytes charged; DrainRefund must return the budget to
// exactly zero.
func TestDrainRefundClearsAbandonedCharges(t *testing.T) {
	r := newRoom(t)
	r.SetPushBudget(1 << 20)
	m, _, _, err := r.Join(context.Background(), "abandoned")
	if err != nil {
		t.Fatal(err)
	}
	other, _, _, _ := r.Join(context.Background(), "chatty")
	go func() {
		for range other.Events() {
		}
	}()
	for i := 0; i < 20; i++ {
		if err := r.Chat("chatty", "payload payload payload"); err != nil {
			t.Fatal(err)
		}
	}
	if m.QueuedBytes() == 0 {
		t.Fatal("no budget charged — test premise broken")
	}
	// The forwarder dies without draining; the room detaches the member,
	// closing the channel with events still queued.
	if !r.Detach(m) {
		// grace disabled: detach degraded to leave; channel still closed.
		t.Log("detach degraded to leave (no grace configured)")
	}
	if m.DrainRefund() == 0 {
		t.Fatal("nothing drained from the abandoned channel")
	}
	if got := m.QueuedBytes(); got != 0 {
		t.Fatalf("queuedBytes = %d after DrainRefund, want 0 — phantom budget leak", got)
	}
	// A second call on the now-empty closed channel is a safe no-op.
	if n := m.DrainRefund(); n != 0 {
		t.Fatalf("second DrainRefund drained %d", n)
	}
}
