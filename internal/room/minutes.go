package room

import (
	"fmt"
	"sort"
	"strings"

	"mmconf/internal/document"
	"mmconf/internal/media/image"
)

// This file implements the storage of discussion results the paper's
// introduction promises: "The results of the discussions, either in forms
// of text, or marks on the images, or speech discussions may be stored in
// the file or in other locations for future search and reference." The
// room exposes a snapshot of the discussion (Minutes) and can fold a
// rendered transcript back into the document as a new component; the
// interaction server persists both (see the room.save RPC).

// Minutes is a snapshot of one room discussion's durable results.
type Minutes struct {
	Room string
	// Chat holds the chat events in order.
	Chat []Event
	// Searches holds the shared word/speaker search events.
	Searches []Event
	// Annotations maps image object ids to their current overlays.
	Annotations map[uint64][]image.Annotation
}

// Minutes snapshots the discussion's durable results from the change
// buffer and annotation state.
func (r *Room) Minutes() Minutes {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Minutes{Room: r.Name, Annotations: make(map[uint64][]image.Annotation)}
	for _, ev := range r.buf {
		switch ev.Kind {
		case EvChat:
			m.Chat = append(m.Chat, ev)
		case EvWordSearch, EvSpeakerSearch:
			m.Searches = append(m.Searches, ev)
		}
	}
	for id, ann := range r.anns {
		if len(ann.Annotations) > 0 {
			m.Annotations[id] = append([]image.Annotation(nil), ann.Annotations...)
		}
	}
	return m
}

// Transcript renders the minutes as the text stored in the document.
func (m Minutes) Transcript() string {
	var b strings.Builder
	fmt.Fprintf(&b, "discussion minutes — room %s\n", m.Room)
	for _, ev := range m.Chat {
		fmt.Fprintf(&b, "[%d] <%s> %s\n", ev.Seq, ev.Actor, ev.Text)
	}
	for _, ev := range m.Searches {
		fmt.Fprintf(&b, "[%d] %s searched %q: %d hit(s)\n", ev.Seq, ev.Actor, ev.Keyword, len(ev.Hits))
	}
	ids := make([]uint64, 0, len(m.Annotations))
	for id := range m.Annotations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, a := range m.Annotations[id] {
			if a.Kind == image.TextElement {
				fmt.Fprintf(&b, "mark on object %d at (%d,%d): %s\n", id, a.X1, a.Y1, a.Text)
			} else {
				fmt.Fprintf(&b, "line on object %d (%d,%d)-(%d,%d)\n", id, a.X1, a.Y1, a.X2, a.Y2)
			}
		}
	}
	return b.String()
}

// AddMinutesComponent folds a transcript into the shared document as a new
// text component under the root and propagates the change. The component
// name is returned; it is unique per call.
func (r *Room) AddMinutesComponent(actor, transcript string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[actor]; !ok {
		return "", fmt.Errorf("room %s: no member %q", r.Name, actor)
	}
	doc := r.engine.Document()
	// Find a free minutes-N name.
	name := ""
	for i := 1; ; i++ {
		candidate := fmt.Sprintf("minutes-%d", i)
		if _, err := doc.Component(candidate); err != nil {
			name = candidate
			break
		}
	}
	comp := &document.Component{
		Name:  name,
		Label: fmt.Sprintf("Discussion minutes (%s)", r.Name),
		Presentations: []document.Presentation{
			{Name: "text", Kind: document.KindText, Inline: []byte(transcript), Bytes: int64(len(transcript))},
			{Name: "hidden", Kind: document.KindHidden},
		},
	}
	if err := doc.AddComponent(doc.Root.Name, comp, nil, []string{"text", "hidden"}); err != nil {
		return "", err
	}
	r.bumpDocLocked() // the document grew a component: drop the cached snapshot
	r.broadcastLocked(Event{Actor: actor, Kind: EvChat,
		Text: fmt.Sprintf("discussion minutes saved as component %q", name)}, true)
	return name, nil
}
