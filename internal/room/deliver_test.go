package room

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"mmconf/internal/wire"
)

// TestQueueDropsCountedAndResyncHinted floods a stalled member past its
// queue bound and checks the loss is no longer silent: drops are
// counted per member, the drop hook fires, and the next delivered
// events carry the Resync hint telling the client to replay History.
func TestQueueDropsCountedAndResyncHinted(t *testing.T) {
	r := newRoom(t)
	// The hook runs under the room lock, so a plain map is safe; the
	// flooding "active" member may itself fall behind its drainer, so
	// count per member rather than assuming only the sloth drops.
	hooked := map[string]uint64{}
	r.OnQueueDrop(func(member string) { hooked[member]++ })
	sloth, _, _, _ := r.Join(context.Background(), "sloth") // never drains during the flood
	active, _, _, _ := r.Join(context.Background(), "active")
	go func() {
		for range active.Events() {
		}
	}()
	const flood = memberQueueSize + 50
	for i := 0; i < flood; i++ {
		if err := r.Chat("active", "spam"); err != nil {
			t.Fatalf("chat %d: %v", i, err)
		}
	}
	if sloth.Drops() == 0 {
		t.Error("drops not counted")
	}
	r.mu.Lock()
	slothHooked := hooked["sloth"]
	r.mu.Unlock()
	if slothHooked != sloth.Drops() {
		t.Errorf("hook counted %d sloth drops, member counted %d", slothHooked, sloth.Drops())
	}
	evs := drain(sloth)
	resync := 0
	for _, ev := range evs {
		if ev.Resync {
			resync++
		}
	}
	if resync == 0 {
		t.Error("no delivered event carried the resync hint after drops")
	}
}

// TestNoResyncWithoutDrops checks the hint stays off on a healthy
// stream.
func TestNoResyncWithoutDrops(t *testing.T) {
	r := newRoom(t)
	m, _, _, _ := r.Join(context.Background(), "alice")
	if err := r.Chat("alice", "hello"); err != nil {
		t.Fatal(err)
	}
	for _, ev := range drain(m) {
		if ev.Resync {
			t.Errorf("resync hint on event %v without any drop", ev.Kind)
		}
	}
	if m.Drops() != 0 {
		t.Errorf("drops = %d on a drained member", m.Drops())
	}
}

// TestEncodeSharedOncePerBroadcast fans one chat out to several members
// and checks the wire payload is computed exactly once across all
// copies — the encode-once contract of the push path.
func TestEncodeSharedOncePerBroadcast(t *testing.T) {
	r := newRoom(t)
	const n = 4
	members := make([]*Member, n)
	names := []string{"a", "b", "c", "d"}
	for i := range members {
		m, _, _, err := r.Join(context.Background(), names[i])
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	// Settle the join traffic so each member's next event is the chat.
	for _, m := range members {
		drain(m)
	}
	if err := r.Chat("a", "one encode, please"); err != nil {
		t.Fatal(err)
	}
	var encodes atomic.Uint64
	counting := func(v any) ([]byte, error) {
		encodes.Add(1)
		return wire.Marshal(v)
	}
	payloads := make([][]byte, n)
	var wg sync.WaitGroup
	for i, m := range members {
		ev := <-m.Events()
		if ev.Kind != EvChat {
			t.Fatalf("member %d got %v, want chat", i, ev.Kind)
		}
		wg.Add(1)
		go func(i int, ev Event) {
			defer wg.Done()
			data, _, err := ev.EncodeShared(FormatGob, counting)
			if err != nil {
				t.Errorf("EncodeShared: %v", err)
				return
			}
			payloads[i] = data
		}(i, ev)
	}
	wg.Wait()
	if got := encodes.Load(); got != 1 {
		t.Errorf("broadcast event encoded %d times across %d members, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Fatalf("member %d got different payload bytes", i)
		}
	}
	// The shared payload decodes back to the same event.
	var dec Event
	if err := wire.Unmarshal(payloads[0], &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Kind != EvChat || dec.Text != "one encode, please" || dec.Actor != "a" {
		t.Errorf("decoded event = %+v", dec)
	}
}

// TestEncodeSharedSingleMemberAndPresentation checks the events that
// must NOT share an encoding: a single-member fan-out and per-member
// presentation events each encode individually.
func TestEncodeSharedPerMemberEvents(t *testing.T) {
	r := newRoom(t)
	a, _, _, _ := r.Join(context.Background(), "alice")
	b, _, _, _ := r.Join(context.Background(), "bob")
	drain(a)
	drain(b)
	// A choice reconfigures: each member gets a per-member EvPresentation.
	if err := r.Choice(context.Background(), "alice", "ct", "segmented"); err != nil {
		t.Fatal(err)
	}
	sawPresentation := false
	for _, m := range []*Member{a, b} {
		for _, ev := range drain(m) {
			if ev.Kind != EvPresentation {
				continue
			}
			sawPresentation = true
			if ev.shared != nil {
				t.Error("presentation event carries a shared encoding")
			}
			if _, encoded, err := ev.EncodeShared(FormatGob, wire.Marshal); err != nil || !encoded {
				t.Errorf("presentation event encode: encoded=%v err=%v", encoded, err)
			}
		}
	}
	if !sawPresentation {
		t.Error("no presentation event observed")
	}
}

// TestDocSnapshotCaching checks joins reuse the marshaled document
// until a document mutation invalidates it.
func TestDocSnapshotCaching(t *testing.T) {
	r := newRoom(t)
	if _, _, _, err := r.Join(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}
	d1, hit, err := r.DocSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first snapshot reported a cache hit")
	}
	d2, hit, err := r.DocSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second snapshot missed the cache")
	}
	if !bytes.Equal(d1, d2) {
		t.Error("cached snapshot differs")
	}
	// A shared operation mutates the document: the snapshot must be
	// rebuilt and contain the derived variable.
	if _, err := r.Operation(context.Background(), "alice", "ct", "zoom", "full", false); err != nil {
		t.Fatal(err)
	}
	d3, hit, err := r.DocSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("snapshot after document mutation reported a cache hit")
	}
	if bytes.Equal(d2, d3) {
		t.Error("snapshot unchanged after document mutation")
	}
	if _, hit, _ := r.DocSnapshot(); !hit {
		t.Error("rebuilt snapshot not cached")
	}
}
