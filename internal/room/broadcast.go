package room

import "fmt"

// This file implements the "broadcasting" of the paper's future work
// (§6): one partner — the presenter — takes the floor, and every member's
// client mirrors the presenter's presentation instead of their own
// personalized view. Presentation choices by anyone else are rejected for
// the duration; content actions (annotations, chat, searches) remain open
// to all, as in a real case conference.

// Broadcast event kinds, appended after the base kinds. EvShutdown is
// the server-drain announcement: members receiving it know the room is
// about to close and no reconnect will find it.
const (
	EvBroadcastStart EventKind = iota + EvChat + 1
	EvBroadcastStop
	EvShutdown
)

// serverActor is the synthetic actor name server-originated events carry.
const serverActor = "system/server"

// AnnounceShutdown broadcasts the server-drain event to every member.
// It does not close the room — the drain sequence closes rooms only
// after in-flight handlers finish, so the announcement reaches clients
// while their connections are still up.
func (r *Room) AnnounceShutdown() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.broadcastLocked(Event{Actor: serverActor, Kind: EvShutdown}, false)
}

// StartBroadcast makes the named member the presenter. Fails if a
// broadcast is already running.
func (r *Room) StartBroadcast(presenter string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[presenter]; !ok {
		return fmt.Errorf("room %s: no member %q", r.Name, presenter)
	}
	if r.broadcaster != "" {
		return fmt.Errorf("room %s: %s is already broadcasting", r.Name, r.broadcaster)
	}
	r.broadcaster = presenter
	r.broadcastLocked(Event{Actor: presenter, Kind: EvBroadcastStart}, true)
	return nil
}

// StopBroadcast ends the broadcast; only the presenter may stop it. When
// the presenter leaves the room the broadcast ends automatically.
func (r *Room) StopBroadcast(presenter string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broadcaster == "" {
		return fmt.Errorf("room %s: no broadcast running", r.Name)
	}
	if r.broadcaster != presenter {
		return fmt.Errorf("room %s: %s is broadcasting, not %s", r.Name, r.broadcaster, presenter)
	}
	r.broadcaster = ""
	r.broadcastLocked(Event{Actor: presenter, Kind: EvBroadcastStop}, true)
	return nil
}

// Broadcaster returns the current presenter ("" when no broadcast runs).
func (r *Room) Broadcaster() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.broadcaster
}

// checkFloorLocked rejects presentation changes by non-presenters while a
// broadcast is running. Caller holds r.mu.
func (r *Room) checkFloorLocked(actor string) error {
	if r.broadcaster != "" && actor != r.broadcaster {
		return fmt.Errorf("room %s: %s is broadcasting; presentation changes are theirs alone", r.Name, r.broadcaster)
	}
	return nil
}
