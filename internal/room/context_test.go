package room

import (
	"context"
	"errors"
	"testing"

	"mmconf/internal/workload"
)

// TestCancelledContextAbortsEntryPoints checks that a dead request
// context stops Join/Choice/Operation before any room state mutates.
func TestCancelledContextAbortsEntryPoints(t *testing.T) {
	doc, err := workload.MedicalRecord("p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New("ward", doc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, _, err := r.Join(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := r.Join(ctx, "bob"); !errors.Is(err, context.Canceled) {
		t.Errorf("Join on dead context: %v", err)
	}
	if got := r.Members(); len(got) != 1 {
		t.Errorf("aborted join still admitted a member: %v", got)
	}
	if err := r.Choice(ctx, "alice", "ct", "segmented"); !errors.Is(err, context.Canceled) {
		t.Errorf("Choice on dead context: %v", err)
	}
	if _, err := r.Operation(ctx, "alice", "ct", "zoom", "full", false); !errors.Is(err, context.Canceled) {
		t.Errorf("Operation on dead context: %v", err)
	}
	// No event reached the change buffer beyond alice's join.
	for _, ev := range r.History(0) {
		if ev.Kind == EvChoice || ev.Kind == EvOperation {
			t.Errorf("aborted call left an event behind: %+v", ev)
		}
	}
}
