package document

import (
	"fmt"
	"strings"

	"mmconf/internal/cpnet"
)

// This file implements the online document updates of §4.2 at the document
// level: adding a component, removing a component, and performing an
// operation on a component. Each update keeps the component hierarchy and
// the CP-network in lockstep.

// AddComponent attaches a new component under the named composite parent
// and registers it in the preference network. netParents names the
// CP-net parents of the new variable (may be empty); defaultOrder is the
// initial context-independent preference ordering over its domain.
func (d *Document) AddComponent(parent string, c *Component, netParents []string, defaultOrder []string) error {
	if c == nil {
		return fmt.Errorf("document %s: nil component", d.ID)
	}
	if c.Name == "" || strings.ContainsRune(c.Name, '/') {
		return fmt.Errorf("document %s: invalid component name %q", d.ID, c.Name)
	}
	if _, err := d.Component(c.Name); err == nil {
		return fmt.Errorf("document %s: component %q already exists", d.ID, c.Name)
	}
	if c.Composite() {
		return fmt.Errorf("document %s: adding composite subtrees online is not supported; add leaves one at a time", d.ID)
	}
	if len(c.Presentations) == 0 {
		return fmt.Errorf("document %s: component %q has no presentations", d.ID, c.Name)
	}
	p, err := d.Component(parent)
	if err != nil {
		return err
	}
	if !p.Composite() {
		return fmt.Errorf("document %s: parent %q is a primitive component", d.ID, parent)
	}
	if err := d.Prefs.AddComponentVariable(c.Name, c.Domain(), netParents, defaultOrder); err != nil {
		return fmt.Errorf("document %s: %w", d.ID, err)
	}
	p.Children = append(p.Children, c)
	return nil
}

// RemoveComponent detaches the named primitive component from the
// hierarchy and removes its variable from the preference network using the
// projection policy of cpnet.RemoveComponentVariable. The root cannot be
// removed. Removing a composite removes its whole subtree, leaf-first.
func (d *Document) RemoveComponent(name string) error {
	if name == d.Root.Name {
		return fmt.Errorf("document %s: cannot remove the root component", d.ID)
	}
	c, err := d.Component(name)
	if err != nil {
		return err
	}
	// Remove children bottom-up first so the network never holds a
	// variable for a detached component.
	for len(c.Children) > 0 {
		if err := d.RemoveComponent(c.Children[0].Name); err != nil {
			return err
		}
	}
	// Drop any derived operation variables of this component.
	prefix := name + "/"
	for _, v := range d.Prefs.Variables() {
		if strings.HasPrefix(v.Name, prefix) {
			if err := d.Prefs.RemoveComponentVariable(v.Name); err != nil {
				return fmt.Errorf("document %s: removing derived %q: %w", d.ID, v.Name, err)
			}
		}
	}
	if err := d.Prefs.RemoveComponentVariable(name); err != nil {
		return fmt.Errorf("document %s: %w", d.ID, err)
	}
	p := d.parentOf(name)
	for i, ch := range p.Children {
		if ch.Name == name {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	return nil
}

// ApplyOperation records that a viewer performed media operation op (e.g.
// "segmentation", "zoom") on the named component while it was presented
// with value activeWhen, updating the shared network per §4.2. It returns
// the derived variable's name. If the viewer deems the result important
// only to herself, use ApplyOperationPrivate with her overlay instead.
func (d *Document) ApplyOperation(component, op, activeWhen string) (string, error) {
	if _, err := d.Component(component); err != nil {
		return "", err
	}
	name, err := d.Prefs.AddOperationVariable(component, op, activeWhen)
	if err != nil {
		return "", fmt.Errorf("document %s: %w", d.ID, err)
	}
	return name, nil
}

// ApplyOperationPrivate records the operation only in the given viewer's
// overlay; the shared network is not modified.
func (d *Document) ApplyOperationPrivate(ov *cpnet.Overlay, component, op, activeWhen string) (string, error) {
	if ov.Base() != d.Prefs {
		return "", fmt.Errorf("document %s: overlay does not extend this document's network", d.ID)
	}
	if _, err := d.Component(component); err != nil {
		// The component may itself be a private derived variable.
		if !strings.ContainsRune(component, '/') {
			return "", err
		}
	}
	name, err := ov.AddOperationVariable(component, op, activeWhen)
	if err != nil {
		return "", fmt.Errorf("document %s: %w", d.ID, err)
	}
	return name, nil
}

// NewOverlay returns a fresh per-viewer overlay of the document's network.
func (d *Document) NewOverlay() *cpnet.Overlay { return cpnet.NewOverlay(d.Prefs) }

// ReconfigPresentationFor computes the optimal view for one viewer,
// honoring both the shared network and the viewer's private overlay.
func (d *Document) ReconfigPresentationFor(ov *cpnet.Overlay, choices cpnet.Outcome) (View, error) {
	if ov == nil {
		return d.ReconfigPresentation(choices)
	}
	if ov.Base() != d.Prefs {
		return View{}, fmt.Errorf("document %s: overlay does not extend this document's network", d.ID)
	}
	o, err := ov.OptimalCompletion(choices)
	if err != nil {
		return View{}, fmt.Errorf("document %s: %w", d.ID, err)
	}
	return d.resolveView(o), nil
}
