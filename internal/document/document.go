// Package document implements the multimedia document model of the paper
// (§4 and §5.1, Fig. 6): a hierarchical, tree-like structure of multimedia
// components, each with a domain of optional presentations, bound to a
// CP-network that encodes the author's preferences over the document's
// configuration space.
//
// A MultimediaDocument in the paper consists of the actual hierarchically
// structured data (MultimediaComponent) and the preference specification
// (CPNetwork); components are either composite (internal nodes, restricted
// to the binary shown/hidden domain) or primitive (leaves, with arbitrary
// presentation domains such as flat image / segmented image / icon /
// hidden). Here Document, Component and cpnet.Network play those roles.
package document

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"

	"mmconf/internal/cpnet"
)

// MediaKind classifies how a presentation alternative renders. These are
// the ground specifications of the paper's abstract MMPresentation class
// (Text, JPGImage, SegmentedJPGImage, ...), extended with the resolution
// variants the image-compression module introduces.
type MediaKind int

// Presentation media kinds.
const (
	KindHidden          MediaKind = iota // component omitted from the view
	KindIcon                             // shrunk to a small icon
	KindText                             // textual rendering
	KindImage                            // full flat raster image
	KindSegmentedImage                   // image with segmentation overlay
	KindImageLowRes                      // base compression layer only
	KindImageMedRes                      // base + first residual layer
	KindImageHighRes                     // all layers
	KindAudio                            // playable audio fragment
	KindAudioTranscript                  // audio rendered as transcript text
	KindTable                            // structured test results
	KindComposite                        // internal grouping node
)

var kindNames = map[MediaKind]string{
	KindHidden:          "hidden",
	KindIcon:            "icon",
	KindText:            "text",
	KindImage:           "image",
	KindSegmentedImage:  "segmented-image",
	KindImageLowRes:     "image-lowres",
	KindImageMedRes:     "image-medres",
	KindImageHighRes:    "image-highres",
	KindAudio:           "audio",
	KindAudioTranscript: "audio-transcript",
	KindTable:           "table",
	KindComposite:       "composite",
}

// String returns the kind's stable lowercase name.
func (k MediaKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("MediaKind(%d)", int(k))
}

// Presentation is one optional way of presenting a component — one value
// of the component's CP-net variable domain.
type Presentation struct {
	// Name is the domain value name, unique within the component
	// (e.g. "full", "segmented", "icon", "hidden").
	Name string
	// Kind tells the client how to render this alternative.
	Kind MediaKind
	// ObjectID references the multimedia object in the database server
	// holding this alternative's payload; 0 means no stored payload
	// (hidden/icon forms, or inline content).
	ObjectID uint64
	// Inline carries small payloads (captions, test-result rows) directly.
	Inline []byte
	// Bytes estimates the transfer size of the payload. The pre-fetching
	// and bandwidth-tuning machinery of §4.4 rank alternatives by it.
	Bytes int64
}

// Composite-component domain values. The paper restricts composite
// components to binary domains: presented or hidden.
const (
	VisShown  = "shown"
	VisHidden = "hidden"
)

// Component is a node in the document's hierarchical structure.
type Component struct {
	// Name uniquely identifies the component within its document. Names
	// must not contain '/', which is reserved for derived operation
	// variables (cpnet.OperationVariableName).
	Name string
	// Label is the human-readable title shown in the client tree view.
	Label string
	// Presentations is the component's domain. Composite components
	// ignore it (their domain is always {shown, hidden}).
	Presentations []Presentation
	// Children are the sub-components; non-empty means composite.
	Children []*Component
}

// Composite reports whether the component is an internal node.
func (c *Component) Composite() bool { return len(c.Children) > 0 }

// Domain returns the component's CP-net value domain.
func (c *Component) Domain() []string {
	if c.Composite() {
		return []string{VisShown, VisHidden}
	}
	names := make([]string, len(c.Presentations))
	for i, p := range c.Presentations {
		names[i] = p.Name
	}
	return names
}

// Presentation returns the presentation alternative with the given name.
func (c *Component) Presentation(name string) (Presentation, error) {
	for _, p := range c.Presentations {
		if p.Name == name {
			return p, nil
		}
	}
	return Presentation{}, fmt.Errorf("document: component %q has no presentation %q", c.Name, name)
}

// Document is a multimedia document: the component hierarchy plus the
// author's preference network over its configuration space.
type Document struct {
	// ID is the document's database identity.
	ID string
	// Title is the human-readable document title.
	Title string
	// Root is the top of the component hierarchy.
	Root *Component
	// Prefs is the author's CP-network. Its variables are exactly the
	// component names (plus any derived operation variables, whose names
	// contain '/'); each variable's domain equals the component's Domain.
	Prefs *cpnet.Network
}

// New assembles a document and initializes its preference network with one
// variable per component (no parents; a neutral default ordering that
// prefers the first declared presentation). Authors then refine the
// network through Prefs — SetParents / SetPreference — or load a complete
// network with SetNetwork.
func New(id, title string, root *Component) (*Document, error) {
	if id == "" {
		return nil, fmt.Errorf("document: empty id")
	}
	if root == nil {
		return nil, fmt.Errorf("document: nil root")
	}
	d := &Document{ID: id, Title: title, Root: root, Prefs: cpnet.New()}
	seen := make(map[string]bool)
	var walk func(c *Component) error
	walk = func(c *Component) error {
		if c.Name == "" {
			return fmt.Errorf("document: component with empty name")
		}
		if strings.ContainsRune(c.Name, '/') {
			return fmt.Errorf("document: component name %q contains reserved '/'", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("document: duplicate component name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Composite() && len(c.Presentations) > 0 {
			return fmt.Errorf("document: composite component %q declares presentations", c.Name)
		}
		if !c.Composite() && len(c.Presentations) == 0 {
			return fmt.Errorf("document: primitive component %q has no presentations", c.Name)
		}
		pseen := make(map[string]bool)
		for _, p := range c.Presentations {
			if p.Name == "" {
				return fmt.Errorf("document: component %q has presentation with empty name", c.Name)
			}
			if pseen[p.Name] {
				return fmt.Errorf("document: component %q repeats presentation %q", c.Name, p.Name)
			}
			pseen[p.Name] = true
		}
		if err := d.Prefs.AddVariable(c.Name, c.Domain()); err != nil {
			return err
		}
		if err := d.Prefs.SetUnconditional(c.Name, c.Domain()); err != nil {
			return err
		}
		for _, ch := range c.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return d, nil
}

// SetNetwork replaces the document's preference network after checking
// that it matches the component structure: one variable per component with
// exactly the component's domain; extra variables are allowed only if they
// are derived operation variables (name contains '/').
func (d *Document) SetNetwork(n *cpnet.Network) error {
	if err := n.Validate(); err != nil {
		return fmt.Errorf("document %s: %w", d.ID, err)
	}
	comps := d.Components()
	for _, c := range comps {
		dom, err := n.Domain(c.Name)
		if err != nil {
			return fmt.Errorf("document %s: network lacks component %q", d.ID, c.Name)
		}
		want := c.Domain()
		if !equalStrings(dom, want) {
			return fmt.Errorf("document %s: component %q network domain %v != %v", d.ID, c.Name, dom, want)
		}
	}
	byName := make(map[string]bool, len(comps))
	for _, c := range comps {
		byName[c.Name] = true
	}
	for _, v := range n.Variables() {
		if !byName[v.Name] && !strings.ContainsRune(v.Name, '/') {
			return fmt.Errorf("document %s: network variable %q matches no component", d.ID, v.Name)
		}
	}
	d.Prefs = n
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Components returns every component in pre-order.
func (d *Document) Components() []*Component {
	var out []*Component
	var walk func(c *Component)
	walk = func(c *Component) {
		out = append(out, c)
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(d.Root)
	return out
}

// Component finds a component by name.
func (d *Document) Component(name string) (*Component, error) {
	for _, c := range d.Components() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("document %s: no component %q", d.ID, name)
}

// parentOf returns the parent component of name, or nil for the root.
func (d *Document) parentOf(name string) *Component {
	var found *Component
	var walk func(c *Component)
	walk = func(c *Component) {
		for _, ch := range c.Children {
			if ch.Name == name {
				found = c
				return
			}
			walk(ch)
		}
	}
	walk(d.Root)
	return found
}

// View is a concrete presentation configuration of a document: the chosen
// presentation value for every network variable, plus the effective
// visibility once composite hiding cascades down the hierarchy.
type View struct {
	// Outcome is the CP-net outcome the view realizes.
	Outcome cpnet.Outcome
	// Visible maps each component name to whether it is effectively
	// rendered: a component is invisible if its own value is "hidden" or
	// any ancestor composite is hidden.
	Visible map[string]bool
}

// HiddenValue is the presentation value name that, by convention, means
// the component is omitted. Primitive components that can be hidden must
// name the alternative exactly "hidden".
const HiddenValue = "hidden"

// resolveView derives effective visibility from an outcome.
func (d *Document) resolveView(o cpnet.Outcome) View {
	vis := make(map[string]bool)
	var walk func(c *Component, ancestorsVisible bool)
	walk = func(c *Component, ancestorsVisible bool) {
		own := o[c.Name] != VisHidden && o[c.Name] != HiddenValue
		v := ancestorsVisible && own
		vis[c.Name] = v
		for _, ch := range c.Children {
			walk(ch, v)
		}
	}
	walk(d.Root, true)
	return View{Outcome: o, Visible: vis}
}

// DefaultPresentation returns the optimal view given no viewer choices —
// the paper's defaultPresentation() method, delegated to the CP-network.
func (d *Document) DefaultPresentation() (View, error) {
	o, err := d.Prefs.OptimalOutcome()
	if err != nil {
		return View{}, fmt.Errorf("document %s: %w", d.ID, err)
	}
	return d.resolveView(o), nil
}

// ReconfigPresentation returns the optimal view consistent with the
// viewers' recent choices — the paper's reconfigPresentation(eventList).
// choices maps variable names (components or derived operation variables)
// to the presentation values the viewers explicitly selected.
func (d *Document) ReconfigPresentation(choices cpnet.Outcome) (View, error) {
	o, err := d.Prefs.OptimalCompletion(choices)
	if err != nil {
		return View{}, fmt.Errorf("document %s: %w", d.ID, err)
	}
	return d.resolveView(o), nil
}

// VisibleComponents lists the names of effectively visible components of a
// view, sorted for deterministic output.
func (v View) VisibleComponents() []string {
	var names []string
	for n, vis := range v.Visible {
		if vis {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// TransferBytes sums the estimated payload size of a view: for each
// effectively visible primitive component, the Bytes of its selected
// presentation. This is the quantity the §4.4 bandwidth machinery
// constrains.
func (d *Document) TransferBytes(v View) int64 {
	var total int64
	for _, c := range d.Components() {
		if c.Composite() || !v.Visible[c.Name] {
			continue
		}
		if p, err := c.Presentation(v.Outcome[c.Name]); err == nil {
			total += p.Bytes
		}
	}
	return total
}

// gobDocument is the serializable form (cpnet.Network is flattened).
type gobDocument struct {
	ID    string
	Title string
	Root  *Component
	Prefs []byte
}

// MarshalBinary encodes the document (structure + preference network).
func (d *Document) MarshalBinary() ([]byte, error) {
	prefs, err := d.Prefs.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("document %s: %w", d.ID, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobDocument{d.ID, d.Title, d.Root, prefs}); err != nil {
		return nil, fmt.Errorf("document %s: encode: %w", d.ID, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a document previously encoded with MarshalBinary.
func Unmarshal(data []byte) (*Document, error) {
	var g gobDocument
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return nil, fmt.Errorf("document: decode: %w", err)
	}
	prefs, err := cpnet.UnmarshalNetwork(g.Prefs)
	if err != nil {
		return nil, fmt.Errorf("document %s: %w", g.ID, err)
	}
	d := &Document{ID: g.ID, Title: g.Title, Root: g.Root, Prefs: cpnet.New()}
	if g.Root == nil {
		return nil, fmt.Errorf("document %s: nil root", g.ID)
	}
	d.Prefs = prefs
	// Re-run the structural checks New performs plus network agreement.
	tmp, err := New(g.ID, g.Title, g.Root)
	if err != nil {
		return nil, err
	}
	if err := tmp.SetNetwork(prefs); err != nil {
		return nil, err
	}
	return tmp, nil
}
