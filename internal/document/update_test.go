package document

import (
	"testing"

	"mmconf/internal/cpnet"
)

func TestAddComponent(t *testing.T) {
	d := medicalRecord(t)
	mri := &Component{
		Name:  "mri",
		Label: "Brain MRI",
		Presentations: []Presentation{
			{Name: "full", Kind: KindImage, ObjectID: 200, Bytes: 1 << 20},
			{Name: "hidden", Kind: KindHidden},
		},
	}
	err := d.AddComponent("imaging", mri, []string{"ct"}, []string{"hidden", "full"})
	if err != nil {
		t.Fatalf("AddComponent: %v", err)
	}
	if err := d.Prefs.Validate(); err != nil {
		t.Fatalf("network invalid after add: %v", err)
	}
	if len(d.Components()) != 7 {
		t.Errorf("component count = %d, want 7", len(d.Components()))
	}
	v, err := d.DefaultPresentation()
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome["mri"] != "hidden" || v.Visible["mri"] {
		t.Errorf("new component default = %s, visible=%v", v.Outcome["mri"], v.Visible["mri"])
	}
	// The author can refine the new component's CPT afterwards.
	mustOK(t, d.Prefs.SetPreference("mri", cpnet.Outcome{"ct": "hidden"}, []string{"full", "hidden"}))
	v, _ = d.ReconfigPresentation(cpnet.Outcome{"ct": "hidden"})
	if v.Outcome["mri"] != "full" {
		t.Errorf("refined CPT not honored: mri=%s", v.Outcome["mri"])
	}
}

func TestAddComponentErrors(t *testing.T) {
	d := medicalRecord(t)
	good := func() *Component {
		return &Component{Name: "new", Presentations: []Presentation{{Name: "p"}}}
	}
	if err := d.AddComponent("imaging", nil, nil, nil); err == nil {
		t.Error("nil component accepted")
	}
	if err := d.AddComponent("imaging", &Component{Name: "a/b", Presentations: []Presentation{{Name: "p"}}}, nil, []string{"p"}); err == nil {
		t.Error("slash name accepted")
	}
	if err := d.AddComponent("imaging", &Component{Name: "ct", Presentations: []Presentation{{Name: "p"}}}, nil, []string{"p"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := d.AddComponent("nosuch", good(), nil, []string{"p"}); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := d.AddComponent("ct", good(), nil, []string{"p"}); err == nil {
		t.Error("primitive parent accepted")
	}
	if err := d.AddComponent("imaging", &Component{Name: "new"}, nil, nil); err == nil {
		t.Error("presentation-less component accepted")
	}
	sub := &Component{Name: "new", Children: []*Component{{Name: "inner", Presentations: []Presentation{{Name: "p"}}}}}
	if err := d.AddComponent("imaging", sub, nil, nil); err == nil {
		t.Error("composite subtree accepted")
	}
	// Bad network wiring must leave both tree and network unchanged.
	before := len(d.Components())
	if err := d.AddComponent("imaging", good(), []string{"nosuch"}, []string{"p"}); err == nil {
		t.Error("unknown net parent accepted")
	}
	if len(d.Components()) != before {
		t.Error("failed add mutated the tree")
	}
	if err := d.Prefs.Validate(); err != nil {
		t.Errorf("failed add corrupted the network: %v", err)
	}
}

func TestRemoveComponent(t *testing.T) {
	d := medicalRecord(t)
	if err := d.RemoveComponent("xray"); err != nil {
		t.Fatalf("RemoveComponent: %v", err)
	}
	if _, err := d.Component("xray"); err == nil {
		t.Error("xray still in tree")
	}
	if d.Prefs.HasVariable("xray") {
		t.Error("xray still in network")
	}
	if err := d.Prefs.Validate(); err != nil {
		t.Fatalf("network invalid after removal: %v", err)
	}
	v, err := d.DefaultPresentation()
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome["ct"] != "full" {
		t.Errorf("remaining preferences disturbed: ct=%s", v.Outcome["ct"])
	}
}

func TestRemoveCompositeSubtree(t *testing.T) {
	d := medicalRecord(t)
	if err := d.RemoveComponent("imaging"); err != nil {
		t.Fatalf("RemoveComponent(imaging): %v", err)
	}
	for _, name := range []string{"imaging", "ct", "xray"} {
		if d.Prefs.HasVariable(name) {
			t.Errorf("%s survived subtree removal", name)
		}
	}
	if err := d.Prefs.Validate(); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
	if len(d.Components()) != 3 { // record, voice, labs
		t.Errorf("components = %d, want 3", len(d.Components()))
	}
}

func TestRemoveComponentErrors(t *testing.T) {
	d := medicalRecord(t)
	if err := d.RemoveComponent("record"); err == nil {
		t.Error("root removal accepted")
	}
	if err := d.RemoveComponent("nosuch"); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestRemoveComponentDropsDerivedVariables(t *testing.T) {
	d := medicalRecord(t)
	name, err := d.ApplyOperation("ct", "segmentation", "segmented")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Prefs.HasVariable(name) {
		t.Fatal("derived variable missing")
	}
	if err := d.RemoveComponent("ct"); err != nil {
		t.Fatalf("RemoveComponent: %v", err)
	}
	if d.Prefs.HasVariable(name) {
		t.Error("derived variable survived its component")
	}
	if err := d.Prefs.Validate(); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
}

func TestApplyOperationShared(t *testing.T) {
	d := medicalRecord(t)
	name, err := d.ApplyOperation("ct", "zoom", "full")
	if err != nil {
		t.Fatalf("ApplyOperation: %v", err)
	}
	v, err := d.DefaultPresentation()
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome[name] != cpnet.OpApplied {
		t.Errorf("zoom under ct=full is %q, want applied", v.Outcome[name])
	}
	v, _ = d.ReconfigPresentation(cpnet.Outcome{"ct": "hidden"})
	if v.Outcome[name] != cpnet.OpFlat {
		t.Errorf("zoom under ct=hidden is %q, want flat", v.Outcome[name])
	}
	if _, err := d.ApplyOperation("nosuch", "zoom", "full"); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestApplyOperationPrivate(t *testing.T) {
	d := medicalRecord(t)
	alice := d.NewOverlay()
	bob := d.NewOverlay()
	name, err := d.ApplyOperationPrivate(alice, "ct", "segmentation", "full")
	if err != nil {
		t.Fatalf("ApplyOperationPrivate: %v", err)
	}
	if d.Prefs.HasVariable(name) {
		t.Error("private operation leaked into the shared network")
	}
	av, err := d.ReconfigPresentationFor(alice, nil)
	if err != nil {
		t.Fatal(err)
	}
	if av.Outcome[name] != cpnet.OpApplied {
		t.Errorf("alice sees %s=%q", name, av.Outcome[name])
	}
	bv, err := d.ReconfigPresentationFor(bob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, leaked := bv.Outcome[name]; leaked {
		t.Error("bob sees alice's private operation")
	}
	// Nil overlay falls back to the shared reconfiguration.
	nv, err := d.ReconfigPresentationFor(nil, cpnet.Outcome{"ct": "hidden"})
	if err != nil {
		t.Fatal(err)
	}
	if nv.Outcome["ct"] != "hidden" {
		t.Errorf("nil-overlay reconfig ignored choices: %v", nv.Outcome)
	}
	// Overlay of a different document is rejected.
	other := medicalRecord(t)
	if _, err := d.ReconfigPresentationFor(other.NewOverlay(), nil); err == nil {
		t.Error("foreign overlay accepted")
	}
	if _, err := d.ApplyOperationPrivate(other.NewOverlay(), "ct", "zoom", "full"); err == nil {
		t.Error("foreign overlay accepted for private operation")
	}
}
