package document

import (
	"strings"
	"testing"

	"mmconf/internal/cpnet"
)

// medicalRecord builds the running example of the paper: a patient file
// with a CT image, a correlated X-ray, a voice fragment of expertise, and
// textual test results, under an imaging composite. The author's
// preferences encode the paper's motivating statement: "the author may
// prefer to present a CT image together with a voice fragment ... if a CT
// image is presented, then a correlated X-ray image is preferred to be
// hidden, or presented as a small icon".
func medicalRecord(t testing.TB) *Document {
	t.Helper()
	root := &Component{
		Name:  "record",
		Label: "Medical record 4711",
		Children: []*Component{
			{
				Name:  "imaging",
				Label: "Imaging studies",
				Children: []*Component{
					{
						Name:  "ct",
						Label: "Abdominal CT",
						Presentations: []Presentation{
							{Name: "full", Kind: KindImage, ObjectID: 101, Bytes: 512 << 10},
							{Name: "segmented", Kind: KindSegmentedImage, ObjectID: 102, Bytes: 600 << 10},
							{Name: "hidden", Kind: KindHidden},
						},
					},
					{
						Name:  "xray",
						Label: "Chest X-ray",
						Presentations: []Presentation{
							{Name: "full", Kind: KindImage, ObjectID: 103, Bytes: 256 << 10},
							{Name: "icon", Kind: KindIcon, ObjectID: 103, Bytes: 4 << 10},
							{Name: "hidden", Kind: KindHidden},
						},
					},
				},
			},
			{
				Name:  "voice",
				Label: "Radiologist commentary",
				Presentations: []Presentation{
					{Name: "audio", Kind: KindAudio, ObjectID: 104, Bytes: 300 << 10},
					{Name: "transcript", Kind: KindAudioTranscript, Inline: []byte("no acute findings"), Bytes: 64},
					{Name: "hidden", Kind: KindHidden},
				},
			},
			{
				Name:  "labs",
				Label: "Test results",
				Presentations: []Presentation{
					{Name: "table", Kind: KindTable, Inline: []byte("WBC 7.2\nHGB 13.9"), Bytes: 128},
					{Name: "hidden", Kind: KindHidden},
				},
			},
		},
	}
	d, err := New("rec-4711", "Patient 4711", root)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := d.Prefs
	// imaging shown unconditionally; CT full preferred.
	mustOK(t, n.SetUnconditional("record", []string{VisShown, VisHidden}))
	mustOK(t, n.SetUnconditional("imaging", []string{VisShown, VisHidden}))
	mustOK(t, n.SetUnconditional("ct", []string{"full", "segmented", "hidden"}))
	// X-ray depends on CT: hidden/icon when CT is presented, full otherwise.
	mustOK(t, n.SetParents("xray", []string{"ct"}))
	mustOK(t, n.SetPreference("xray", cpnet.Outcome{"ct": "full"}, []string{"icon", "hidden", "full"}))
	mustOK(t, n.SetPreference("xray", cpnet.Outcome{"ct": "segmented"}, []string{"hidden", "icon", "full"}))
	mustOK(t, n.SetPreference("xray", cpnet.Outcome{"ct": "hidden"}, []string{"full", "icon", "hidden"}))
	// Voice commentary accompanies a presented CT; transcript otherwise.
	mustOK(t, n.SetParents("voice", []string{"ct"}))
	mustOK(t, n.SetPreference("voice", cpnet.Outcome{"ct": "full"}, []string{"audio", "transcript", "hidden"}))
	mustOK(t, n.SetPreference("voice", cpnet.Outcome{"ct": "segmented"}, []string{"audio", "transcript", "hidden"}))
	mustOK(t, n.SetPreference("voice", cpnet.Outcome{"ct": "hidden"}, []string{"transcript", "audio", "hidden"}))
	mustOK(t, n.SetUnconditional("labs", []string{"table", "hidden"}))
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func mustOK(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadStructures(t *testing.T) {
	cases := []struct {
		name string
		id   string
		root *Component
	}{
		{"empty id", "", &Component{Name: "r", Presentations: []Presentation{{Name: "p"}}}},
		{"nil root", "d", nil},
		{"empty component name", "d", &Component{Name: ""}},
		{"slash in name", "d", &Component{Name: "a/b", Presentations: []Presentation{{Name: "p"}}}},
		{"primitive without presentations", "d", &Component{Name: "r"}},
		{"duplicate names", "d", &Component{Name: "r", Children: []*Component{
			{Name: "x", Presentations: []Presentation{{Name: "p"}}},
			{Name: "x", Presentations: []Presentation{{Name: "p"}}},
		}}},
		{"composite with presentations", "d", &Component{Name: "r",
			Presentations: []Presentation{{Name: "p"}},
			Children:      []*Component{{Name: "x", Presentations: []Presentation{{Name: "p"}}}}}},
		{"duplicate presentation", "d", &Component{Name: "r",
			Presentations: []Presentation{{Name: "p"}, {Name: "p"}}}},
		{"empty presentation name", "d", &Component{Name: "r",
			Presentations: []Presentation{{Name: ""}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.id, "t", c.root); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestDefaultPresentation(t *testing.T) {
	d := medicalRecord(t)
	v, err := d.DefaultPresentation()
	if err != nil {
		t.Fatalf("DefaultPresentation: %v", err)
	}
	want := cpnet.Outcome{
		"record": VisShown, "imaging": VisShown,
		"ct": "full", "xray": "icon", "voice": "audio", "labs": "table",
	}
	if v.Outcome.String() != want.String() {
		t.Fatalf("default outcome = %v, want %v", v.Outcome, want)
	}
	for _, name := range []string{"record", "imaging", "ct", "xray", "voice", "labs"} {
		if !v.Visible[name] {
			t.Errorf("%s not visible in default view", name)
		}
	}
}

func TestReconfigPresentation(t *testing.T) {
	d := medicalRecord(t)
	// Viewer hides the CT: the X-ray comes up full, commentary becomes a
	// transcript.
	v, err := d.ReconfigPresentation(cpnet.Outcome{"ct": "hidden"})
	if err != nil {
		t.Fatalf("ReconfigPresentation: %v", err)
	}
	if v.Outcome["xray"] != "full" || v.Outcome["voice"] != "transcript" {
		t.Errorf("outcome after hiding CT = %v", v.Outcome)
	}
	if v.Visible["ct"] {
		t.Error("hidden CT still visible")
	}
	// Viewer asks for the segmented CT: X-ray hides entirely.
	v, err = d.ReconfigPresentation(cpnet.Outcome{"ct": "segmented"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome["xray"] != "hidden" || v.Visible["xray"] {
		t.Errorf("xray after segmentation: value=%s visible=%v", v.Outcome["xray"], v.Visible["xray"])
	}
}

func TestCompositeHidingCascades(t *testing.T) {
	d := medicalRecord(t)
	v, err := d.ReconfigPresentation(cpnet.Outcome{"imaging": VisHidden})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"imaging", "ct", "xray"} {
		if v.Visible[name] {
			t.Errorf("%s visible although imaging group is hidden", name)
		}
	}
	// Siblings outside the hidden subtree stay visible.
	if !v.Visible["labs"] || !v.Visible["voice"] {
		t.Error("hiding imaging affected unrelated components")
	}
	// The CT variable still has a value even while invisible.
	if v.Outcome["ct"] == "" {
		t.Error("hidden subtree lost its outcome values")
	}
}

func TestVisibleComponentsAndTransferBytes(t *testing.T) {
	d := medicalRecord(t)
	v, _ := d.DefaultPresentation()
	got := strings.Join(v.VisibleComponents(), ",")
	want := "ct,imaging,labs,record,voice,xray"
	if got != want {
		t.Errorf("VisibleComponents = %s, want %s", got, want)
	}
	// full CT (512K) + icon X-ray (4K) + audio (300K) + labs (128).
	wantBytes := int64(512<<10 + 4<<10 + 300<<10 + 128)
	if b := d.TransferBytes(v); b != wantBytes {
		t.Errorf("TransferBytes = %d, want %d", b, wantBytes)
	}
	// Hiding imaging drops both image payloads.
	v, _ = d.ReconfigPresentation(cpnet.Outcome{"imaging": VisHidden})
	wantBytes = int64(300<<10 + 128)
	if b := d.TransferBytes(v); b != wantBytes {
		t.Errorf("TransferBytes without imaging = %d, want %d", b, wantBytes)
	}
}

func TestComponentAccessors(t *testing.T) {
	d := medicalRecord(t)
	if len(d.Components()) != 6 {
		t.Errorf("Components = %d, want 6", len(d.Components()))
	}
	c, err := d.Component("ct")
	if err != nil {
		t.Fatal(err)
	}
	if c.Composite() {
		t.Error("ct reported composite")
	}
	p, err := c.Presentation("segmented")
	if err != nil || p.Kind != KindSegmentedImage {
		t.Errorf("Presentation(segmented) = %+v, %v", p, err)
	}
	if _, err := c.Presentation("nosuch"); err == nil {
		t.Error("unknown presentation accepted")
	}
	if _, err := d.Component("nosuch"); err == nil {
		t.Error("unknown component accepted")
	}
	img, _ := d.Component("imaging")
	if !img.Composite() || strings.Join(img.Domain(), ",") != "shown,hidden" {
		t.Errorf("imaging domain = %v", img.Domain())
	}
}

func TestSetNetwork(t *testing.T) {
	d := medicalRecord(t)
	// A valid replacement: same variables, different preferences.
	n := d.Prefs.Clone()
	mustOK(t, n.SetUnconditional("ct", []string{"segmented", "full", "hidden"}))
	if err := d.SetNetwork(n); err != nil {
		t.Fatalf("SetNetwork: %v", err)
	}
	v, _ := d.DefaultPresentation()
	if v.Outcome["ct"] != "segmented" {
		t.Errorf("replacement network not in effect: ct=%s", v.Outcome["ct"])
	}
	// Missing component variable.
	bad := cpnet.New()
	mustOK(t, bad.AddVariable("ct", []string{"full", "segmented", "hidden"}))
	mustOK(t, bad.SetUnconditional("ct", []string{"full", "segmented", "hidden"}))
	if err := d.SetNetwork(bad); err == nil {
		t.Error("network lacking components accepted")
	}
	// Domain mismatch.
	n2 := cpnet.New()
	for _, c := range d.Components() {
		dom := c.Domain()
		if c.Name == "ct" {
			dom = []string{"full", "hidden"}
		}
		mustOK(t, n2.AddVariable(c.Name, dom))
		mustOK(t, n2.SetUnconditional(c.Name, dom))
	}
	if err := d.SetNetwork(n2); err == nil {
		t.Error("domain mismatch accepted")
	}
	// Stray non-derived variable.
	n3 := d.Prefs.Clone()
	mustOK(t, n3.AddVariable("stray", []string{"a"}))
	mustOK(t, n3.SetUnconditional("stray", []string{"a"}))
	if err := d.SetNetwork(n3); err == nil {
		t.Error("stray variable accepted")
	}
	// Invalid network.
	n4 := cpnet.New()
	mustOK(t, n4.AddVariable("x", []string{"a"}))
	if err := d.SetNetwork(n4); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	d := medicalRecord(t)
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.ID != d.ID || back.Title != d.Title {
		t.Errorf("identity drift: %s/%s", back.ID, back.Title)
	}
	if len(back.Components()) != len(d.Components()) {
		t.Errorf("component count drift")
	}
	v1, _ := d.DefaultPresentation()
	v2, err := back.DefaultPresentation()
	if err != nil {
		t.Fatal(err)
	}
	if v1.Outcome.String() != v2.Outcome.String() {
		t.Errorf("default view drift: %v vs %v", v1.Outcome, v2.Outcome)
	}
	ct, _ := back.Component("ct")
	p, _ := ct.Presentation("full")
	if p.ObjectID != 101 || p.Bytes != 512<<10 {
		t.Errorf("presentation payload drift: %+v", p)
	}
	if _, err := Unmarshal([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMediaKindString(t *testing.T) {
	if KindSegmentedImage.String() != "segmented-image" {
		t.Errorf("KindSegmentedImage = %s", KindSegmentedImage)
	}
	if !strings.HasPrefix(MediaKind(99).String(), "MediaKind(") {
		t.Errorf("unknown kind = %s", MediaKind(99))
	}
}
