package workload

import (
	"math"
	"testing"

	"mmconf/internal/document"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/mediadb"
	"mmconf/internal/store"
)

func TestMedicalRecordStructure(t *testing.T) {
	d, err := MedicalRecord("p1", 1)
	if err != nil {
		t.Fatalf("MedicalRecord: %v", err)
	}
	if len(d.Components()) != 7 {
		t.Errorf("components = %d", len(d.Components()))
	}
	v, err := d.DefaultPresentation()
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome["ct"] != "full" || v.Outcome["xray"] != "icon" || v.Outcome["voice"] != "audio" {
		t.Errorf("default = %v", v.Outcome)
	}
	// Determinism.
	d2, _ := MedicalRecord("p1", 1)
	labs1, _ := d.Component("labs")
	labs2, _ := d2.Component("labs")
	if string(labs1.Presentations[0].Inline) != string(labs2.Presentations[0].Inline) {
		t.Error("record not deterministic for equal seeds")
	}
}

func TestWideRecord(t *testing.T) {
	d, err := WideRecord("w", 20, 2)
	if err != nil {
		t.Fatalf("WideRecord: %v", err)
	}
	if len(d.Components()) != 21 {
		t.Errorf("components = %d", len(d.Components()))
	}
	if err := d.Prefs.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefaultPresentation(); err != nil {
		t.Fatal(err)
	}
	if _, err := WideRecord("w", 0, 1); err == nil {
		t.Error("zero components accepted")
	}
}

func TestPopulate(t *testing.T) {
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Populate(m, "p42", 7)
	if err != nil {
		t.Fatalf("Populate: %v", err)
	}
	// The document is stored and loadable.
	back, err := m.GetDocument("p42")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := back.Component("ct")
	if err != nil {
		t.Fatal(err)
	}
	full, _ := ct.Presentation("full")
	if full.ObjectID != rec.CTID {
		t.Errorf("ct full object id = %d, want %d", full.ObjectID, rec.CTID)
	}
	// The CT image object decodes to a raster.
	img, err := m.GetImage(rec.CTID)
	if err != nil {
		t.Fatal(err)
	}
	raster, err := image.Decode(img.Data)
	if err != nil || raster.W != 256 {
		t.Errorf("stored CT: %v, %v", raster, err)
	}
	// The compressed stream decodes progressively.
	cmp, err := m.GetCmp(rec.CmpID)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := compress.Unmarshal(cmp.Header, cmp.Data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := stream.Decode(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := image.PSNR(raster, dec)
	if err != nil {
		t.Fatal(err)
	}
	if p < 25 || math.IsNaN(p) {
		t.Errorf("base-layer PSNR vs stored CT = %v", p)
	}
	// The voice object's PCM and ground truth round-trip.
	voice, err := m.GetAudio(rec.VoiceID)
	if err != nil {
		t.Fatal(err)
	}
	wave := DecodeWave(voice.Data)
	if len(wave) < 8000 {
		t.Errorf("voice length = %d samples", len(wave))
	}
	if len(rec.Truth) != 4 {
		t.Errorf("truth segments = %d", len(rec.Truth))
	}
}

func TestWaveCodecRoundTrip(t *testing.T) {
	in := []float64{0, 0.5, -0.5, 1, -1, 0.25}
	out := DecodeWave(encodeWave(in))
	if len(out) != len(in) {
		t.Fatal("length drift")
	}
	for i := range in {
		if math.Abs(in[i]-out[i]) > 1.0/32000 {
			t.Errorf("sample %d: %v vs %v", i, in[i], out[i])
		}
	}
	// Clipping.
	clipped := DecodeWave(encodeWave([]float64{2, -2}))
	if math.Abs(clipped[0]-1) > 1e-3 || math.Abs(clipped[1]+1) > 1e-3 {
		t.Errorf("clipping: %v", clipped)
	}
}

func TestSession(t *testing.T) {
	d, _ := MedicalRecord("p1", 1)
	choices := Session(d, []string{"alice", "bob"}, 50, 3)
	if len(choices) != 50 {
		t.Fatalf("choices = %d", len(choices))
	}
	hidden := 0
	for _, c := range choices {
		if c.Viewer != "alice" && c.Viewer != "bob" {
			t.Errorf("unknown viewer %q", c.Viewer)
		}
		dom, err := d.Prefs.Domain(c.Variable)
		if err != nil {
			t.Fatalf("choice names unknown variable %q", c.Variable)
		}
		found := false
		for _, v := range dom {
			if v == c.Value {
				found = true
			}
		}
		if !found {
			t.Errorf("choice %v not in domain %v", c, dom)
		}
		if c.Value == "hidden" || c.Value == document.VisHidden {
			hidden++
		}
	}
	if hidden > 25 {
		t.Errorf("%d/50 choices hide components — weighting broken", hidden)
	}
	// Determinism.
	again := Session(d, []string{"alice", "bob"}, 50, 3)
	for i := range choices {
		if choices[i] != again[i] {
			t.Fatal("session not deterministic")
		}
	}
}
