package workload_test

import (
	"context"
	"errors"
	"net"
	"testing"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/room"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// liveSystem boots a populated database and TCP interaction server.
func liveSystem(t *testing.T) (addr string, rec *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), rec
}

func TestReplayDrivesScriptedChoices(t *testing.T) {
	addr, rec := liveSystem(t)
	c, err := client.Dial(addr, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _, err := c.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	script := workload.Session(rec.Doc, []string{"alice", "bob"}, 24, 7)
	want := 0
	for _, ch := range script {
		if ch.Viewer == "alice" {
			want++
		}
	}
	if want == 0 {
		t.Fatal("script has no choices for alice; pick another seed")
	}
	n, err := workload.Replay(context.Background(), s, script)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != want {
		t.Errorf("replay applied %d choices, script had %d for alice", n, want)
	}
	// Every applied choice reached the room's change buffer.
	hist, err := s.History(0)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, ev := range hist {
		if ev.Kind == room.EvChoice && ev.Actor == "alice" {
			got++
		}
	}
	if got != want {
		t.Errorf("room logged %d choice events, want %d", got, want)
	}
}

func TestReplayStopsOnCancelledContext(t *testing.T) {
	addr, rec := liveSystem(t)
	c, err := client.Dial(addr, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _, err := c.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	script := workload.Session(rec.Doc, []string{"alice"}, 8, 3)
	n, err := workload.Replay(ctx, s, script)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("replay on dead context: n=%d err=%v", n, err)
	}
	if n != 0 {
		t.Errorf("replay applied %d choices on a dead context", n)
	}
}
