package workload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mmconf/internal/obs"
	"mmconf/internal/wire"
)

// This file is the overload driver: an open-loop load generator whose
// offered rate is independent of how fast the server answers. Closed
// loops (like Replay) self-throttle when the server slows down and so
// can never push it past saturation; an open loop keeps offering work
// at the configured rate, which is exactly the regime admission control
// exists for (experiment E12).

// Op is one unit of offered work: issue a request, return its error.
// The op owns its own deadline (callers typically wrap a per-request
// timeout — the SLO — around the RPC).
type Op func(ctx context.Context) error

// OpenLoopOptions shapes one open-loop run.
type OpenLoopOptions struct {
	// Rate is the offered load in operations per second (required > 0).
	Rate float64
	// Duration is how long the measured window keeps offering work.
	Duration time.Duration
	// Warmup, when positive, precedes the measured window: arrivals are
	// offered at the same rate from t=0, but only ops launched after the
	// warmup mark are tallied (or observed by Hist). The system under
	// test reaches steady state — drained token buckets, settled queues
	// — with no idle gap between warming and measuring.
	Warmup time.Duration
	// MaxOutstanding bounds concurrently in-flight ops (default 4096).
	// Arrivals past the bound are dropped and counted — a real open
	// loop would let them pile up without bound, but the driver has to
	// survive its own experiment.
	MaxOutstanding int
	// Hist, when set, observes the wall time of every completed
	// (successful) op.
	Hist *obs.Histogram
}

// OpenLoopResult tallies one run. Goodput is Completed ops — work the
// server finished within the op's own deadline — per second of Elapsed.
type OpenLoopResult struct {
	// Offered counts arrivals generated at the configured rate
	// (including dropped ones); Completed counts ops that returned nil;
	// Shed counts server-side admission rejections
	// (errors.Is(wire.ErrOverloaded)); Failed counts every other error
	// (timeouts included); Dropped counts arrivals discarded because
	// MaxOutstanding was reached.
	Offered, Completed, Shed, Failed, Dropped int64
	Elapsed                                   time.Duration
}

// Goodput is the completed-work rate in ops/second.
func (r OpenLoopResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// OpenLoop offers op at a fixed rate for the configured duration,
// regardless of completion speed, and tallies the outcome of every
// arrival. It returns once every in-flight op has finished (or ctx is
// cancelled, which stops the arrival process early but still waits).
func OpenLoop(ctx context.Context, op Op, o OpenLoopOptions) OpenLoopResult {
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 4096
	}
	var res OpenLoopResult
	var completed, shed, failed atomic.Int64
	sem := make(chan struct{}, o.MaxOutstanding)
	var wg sync.WaitGroup
	start := time.Now()
	mark := start.Add(o.Warmup)
	deadline := mark.Add(o.Duration)

	// Arrival pacing in 1ms batches: at high rates a per-op timer would
	// be more scheduler than load, so each tick launches however many
	// arrivals the elapsed time owes.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	launched := int64(0)
	genEnd := deadline
pacing:
	for {
		select {
		case <-ctx.Done():
			genEnd = time.Now()
			break pacing
		case now := <-tick.C:
			if now.After(deadline) {
				genEnd = now
				break pacing
			}
			counted := !now.Before(mark)
			due := int64(now.Sub(start).Seconds() * o.Rate)
			for ; launched < due; launched++ {
				if counted {
					res.Offered++
				}
				select {
				case sem <- struct{}{}:
				default:
					if counted {
						res.Dropped++ // driver at capacity: shed at the source
					}
					continue
				}
				wg.Add(1)
				go func(counted bool) {
					defer wg.Done()
					defer func() { <-sem }()
					opStart := time.Now()
					err := op(ctx)
					if !counted {
						return
					}
					switch {
					case err == nil:
						completed.Add(1)
						if o.Hist != nil {
							o.Hist.Observe(time.Since(opStart))
						}
					case errors.Is(err, wire.ErrOverloaded):
						shed.Add(1)
					default:
						failed.Add(1)
					}
				}(counted)
			}
		}
	}
	wg.Wait()
	res.Completed = completed.Load()
	res.Shed = shed.Load()
	res.Failed = failed.Load()
	// Elapsed is the measured generation window, not the post-window
	// drain: completions of counted ops that land during the drain still
	// count, which is standard offered-window accounting.
	if d := genEnd.Sub(mark); d > 0 {
		res.Elapsed = d
	}
	return res
}
