package workload

import (
	"context"
	"time"

	"mmconf/internal/obs"
)

// ChoiceSender is the slice of a client session Replay drives: it knows
// whose session it is and can send one presentation choice. The client
// package's Session satisfies it. (An interface rather than the concrete
// type because the client depends on this package via the prefetcher.)
type ChoiceSender interface {
	User() string
	ChoiceCtx(ctx context.Context, variable, value string) error
}

// Replay drives a scripted conference (from Session) against a live room
// through the client API: every choice scripted for the session's user is
// sent as that user's presentation selection, in script order. It returns
// how many choices were applied. Replay stops at the first failed call or
// when ctx is cancelled — load generators hand it the run's deadline and
// get a clean partial count back.
func Replay(ctx context.Context, s ChoiceSender, script []Choice) (int, error) {
	return ReplayTimed(ctx, s, script, nil)
}

// ReplayTimed is Replay with per-call round-trip timing: every applied
// choice's wall time is observed into hist (nil disables timing), so a
// load generator can report client-side latency percentiles, not just
// throughput. The tail-latency experiment (E11) runs many concurrent
// replays into one shared histogram.
func ReplayTimed(ctx context.Context, s ChoiceSender, script []Choice, hist *obs.Histogram) (int, error) {
	applied := 0
	for _, ch := range script {
		if ch.Viewer != s.User() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		start := time.Now()
		if err := s.ChoiceCtx(ctx, ch.Variable, ch.Value); err != nil {
			return applied, err
		}
		if hist != nil {
			hist.Observe(time.Since(start))
		}
		applied++
	}
	return applied, nil
}
