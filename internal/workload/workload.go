// Package workload generates the synthetic material every experiment and
// example runs on: medical-record documents in the paper's motivating
// domain (CT and X-ray phantoms, radiologist voice commentary, test
// results, notes), fully populated database instances, and scripted
// viewer-choice sessions standing in for the physicians clicking the GUI.
package workload

import (
	"fmt"
	"math/rand"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/media/audio"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/mediadb"
)

// MedicalRecord builds the paper's running example document: an imaging
// group with a CT and a correlated X-ray, a voice commentary, lab results
// and a notes component, wired with the author preferences §4 describes
// (X-ray hides or shrinks when the CT is shown; commentary follows the
// CT; everything shown by default). Object ids are zero; Populate fills
// them from a real store.
func MedicalRecord(id string, seed int64) (*document.Document, error) {
	rng := rand.New(rand.NewSource(seed))
	root := &document.Component{
		Name:  "record",
		Label: fmt.Sprintf("Medical record %s", id),
		Children: []*document.Component{
			{
				Name:  "imaging",
				Label: "Imaging studies",
				Children: []*document.Component{
					{
						Name:  "ct",
						Label: "Abdominal CT",
						Presentations: []document.Presentation{
							{Name: "full", Kind: document.KindImage, Bytes: 256 << 10},
							{Name: "segmented", Kind: document.KindSegmentedImage, Bytes: 300 << 10},
							{Name: "lowres", Kind: document.KindImageLowRes, Bytes: 24 << 10},
							{Name: "hidden", Kind: document.KindHidden},
						},
					},
					{
						Name:  "xray",
						Label: "Chest X-ray",
						Presentations: []document.Presentation{
							{Name: "full", Kind: document.KindImage, Bytes: 128 << 10},
							{Name: "icon", Kind: document.KindIcon, Bytes: 4 << 10},
							{Name: "hidden", Kind: document.KindHidden},
						},
					},
				},
			},
			{
				Name:  "voice",
				Label: "Radiologist commentary",
				Presentations: []document.Presentation{
					{Name: "audio", Kind: document.KindAudio, Bytes: 200 << 10},
					{Name: "transcript", Kind: document.KindAudioTranscript, Inline: []byte("see imaging: no acute findings"), Bytes: 80},
					{Name: "hidden", Kind: document.KindHidden},
				},
			},
			{
				Name:  "labs",
				Label: "Test results",
				Presentations: []document.Presentation{
					{Name: "table", Kind: document.KindTable, Inline: []byte(labTable(rng)), Bytes: 160},
					{Name: "hidden", Kind: document.KindHidden},
				},
			},
			{
				Name:  "notes",
				Label: "Attending notes",
				Presentations: []document.Presentation{
					{Name: "text", Kind: document.KindText, Inline: []byte("stable, follow-up in 6 weeks"), Bytes: 48},
					{Name: "hidden", Kind: document.KindHidden},
				},
			},
		},
	}
	d, err := document.New(id, "Patient file "+id, root)
	if err != nil {
		return nil, err
	}
	n := d.Prefs
	steps := []error{
		n.SetUnconditional("record", []string{document.VisShown, document.VisHidden}),
		n.SetUnconditional("imaging", []string{document.VisShown, document.VisHidden}),
		n.SetUnconditional("ct", []string{"full", "segmented", "lowres", "hidden"}),
		n.SetParents("xray", []string{"ct"}),
		n.SetPreference("xray", cpnet.Outcome{"ct": "full"}, []string{"icon", "hidden", "full"}),
		n.SetPreference("xray", cpnet.Outcome{"ct": "segmented"}, []string{"hidden", "icon", "full"}),
		n.SetPreference("xray", cpnet.Outcome{"ct": "lowres"}, []string{"icon", "full", "hidden"}),
		n.SetPreference("xray", cpnet.Outcome{"ct": "hidden"}, []string{"full", "icon", "hidden"}),
		n.SetParents("voice", []string{"ct"}),
		n.SetPreference("voice", cpnet.Outcome{"ct": "full"}, []string{"audio", "transcript", "hidden"}),
		n.SetPreference("voice", cpnet.Outcome{"ct": "segmented"}, []string{"audio", "transcript", "hidden"}),
		n.SetPreference("voice", cpnet.Outcome{"ct": "lowres"}, []string{"transcript", "audio", "hidden"}),
		n.SetPreference("voice", cpnet.Outcome{"ct": "hidden"}, []string{"transcript", "audio", "hidden"}),
		n.SetUnconditional("labs", []string{"table", "hidden"}),
		n.SetUnconditional("notes", []string{"text", "hidden"}),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func labTable(rng *rand.Rand) string {
	return fmt.Sprintf("WBC %.1f\nHGB %.1f\nPLT %d\nCRP %.1f",
		4+6*rng.Float64(), 11+4*rng.Float64(), 150+rng.Intn(250), 10*rng.Float64())
}

// WideRecord builds a synthetic record with n independent image
// components under one group — used to scale the reconfiguration and
// prefetch experiments with document size.
func WideRecord(id string, n int, seed int64) (*document.Document, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: need at least 1 component")
	}
	children := make([]*document.Component, n)
	for i := range children {
		children[i] = &document.Component{
			Name:  fmt.Sprintf("img%03d", i),
			Label: fmt.Sprintf("Study %d", i),
			Presentations: []document.Presentation{
				{Name: "full", Kind: document.KindImage, Bytes: int64(64+i) << 10},
				{Name: "icon", Kind: document.KindIcon, Bytes: 4 << 10},
				{Name: "hidden", Kind: document.KindHidden},
			},
		}
	}
	root := &document.Component{Name: "record", Label: "Wide record", Children: children}
	d, err := document.New(id, "Wide record "+id, root)
	if err != nil {
		return nil, err
	}
	n2 := d.Prefs
	if err := n2.SetUnconditional("record", []string{document.VisShown, document.VisHidden}); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Chain dependencies: each image (after the first) conditions on its
	// predecessor, giving the CP-net real structure.
	for i, c := range children {
		if i == 0 {
			if err := n2.SetUnconditional(c.Name, []string{"full", "icon", "hidden"}); err != nil {
				return nil, err
			}
			continue
		}
		prev := children[i-1].Name
		if err := n2.SetParents(c.Name, []string{prev}); err != nil {
			return nil, err
		}
		for _, pv := range []string{"full", "icon", "hidden"} {
			order := []string{"icon", "hidden", "full"}
			if pv == "hidden" || rng.Intn(3) == 0 {
				order = []string{"full", "icon", "hidden"}
			}
			if err := n2.SetPreference(c.Name, cpnet.Outcome{prev: pv}, order); err != nil {
				return nil, err
			}
		}
	}
	if err := n2.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// PopulatedRecord is the output of Populate: a stored document whose
// presentations reference real multimedia objects.
type PopulatedRecord struct {
	Doc *document.Document
	// CTID/XrayID are IMAGE_OBJECTS_TABLE ids; CmpID is the multi-layer
	// stream in CMP_OBJECTS_TABLE; VoiceID is in AUDIO_OBJECTS_TABLE.
	CTID, XrayID, CmpID, VoiceID uint64
	// Truth is the ground-truth segmentation of the voice object.
	Truth []audio.Segment
}

// Populate stores a full medical record in the database: CT and X-ray
// phantoms, the CT's multi-layer compressed stream, a synthesized
// multi-speaker commentary with ground truth, and the document itself.
func Populate(m *mediadb.MediaDB, id string, seed int64) (*PopulatedRecord, error) {
	doc, err := MedicalRecord(id, seed)
	if err != nil {
		return nil, err
	}
	ct, err := image.Phantom(256, 256, seed)
	if err != nil {
		return nil, err
	}
	xray, err := image.Phantom(192, 192, seed+1)
	if err != nil {
		return nil, err
	}
	ctID, err := m.PutImage(100, "", 0.05, ct.Encode())
	if err != nil {
		return nil, err
	}
	xrayID, err := m.PutImage(100, "", 0.08, xray.Encode())
	if err != nil {
		return nil, err
	}
	stream, err := compress.Encode(ct, compress.Options{})
	if err != nil {
		return nil, err
	}
	header, body, err := stream.Marshal()
	if err != nil {
		return nil, err
	}
	cmpID, err := m.PutCmp(fmt.Sprintf("%s-ct.mml", id), header, body)
	if err != nil {
		return nil, err
	}
	synth := audio.NewSynthesizer(seed)
	speakers := audio.DefaultSpeakers()
	wave, truth, err := synth.Compose([]audio.ScriptItem{
		{Type: audio.Silence, Dur: 0.3},
		{Type: audio.Speech, Speaker: speakers[0], Words: []string{"patient", "normal"}},
		{Type: audio.Speech, Speaker: speakers[1], Words: []string{"tumor", "negative"}},
		{Type: audio.Silence, Dur: 0.2},
	})
	if err != nil {
		return nil, err
	}
	sectors, err := audio.MarshalSegments(truth)
	if err != nil {
		return nil, err
	}
	voiceID, err := m.PutAudio(fmt.Sprintf("%s-voice.pcm", id), sectors, encodeWave(wave))
	if err != nil {
		return nil, err
	}
	// Wire object ids into the document's presentations.
	assign := map[string]map[string]uint64{
		"ct":    {"full": ctID, "segmented": ctID, "lowres": cmpID},
		"xray":  {"full": xrayID, "icon": xrayID},
		"voice": {"audio": voiceID},
	}
	for comp, values := range assign {
		c, err := doc.Component(comp)
		if err != nil {
			return nil, err
		}
		for i := range c.Presentations {
			if oid, ok := values[c.Presentations[i].Name]; ok {
				c.Presentations[i].ObjectID = oid
			}
		}
	}
	if err := m.PutDocument(doc); err != nil {
		return nil, err
	}
	return &PopulatedRecord{
		Doc: doc, CTID: ctID, XrayID: xrayID, CmpID: cmpID, VoiceID: voiceID, Truth: truth,
	}, nil
}

// encodeWave packs samples as little-endian int16 PCM.
func encodeWave(samples []float64) []byte {
	out := make([]byte, 2*len(samples))
	for i, s := range samples {
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		v := int16(s * 32767)
		out[2*i] = byte(v)
		out[2*i+1] = byte(v >> 8)
	}
	return out
}

// DecodeWave unpacks int16 PCM back to samples.
func DecodeWave(data []byte) []float64 {
	out := make([]float64, len(data)/2)
	for i := range out {
		v := int16(uint16(data[2*i]) | uint16(data[2*i+1])<<8)
		out[i] = float64(v) / 32767
	}
	return out
}

// Choice is one scripted viewer action.
type Choice struct {
	Viewer   string
	Variable string
	Value    string
}

// Session scripts n plausible viewer choices over the document: each step
// picks a random variable and a random value from its domain, weighted
// toward non-hidden presentations (physicians mostly ask to see things).
func Session(doc *document.Document, viewers []string, n int, seed int64) []Choice {
	rng := rand.New(rand.NewSource(seed))
	vars := doc.Prefs.Variables()
	choices := make([]Choice, 0, n)
	for len(choices) < n {
		v := vars[rng.Intn(len(vars))]
		val := v.Domain[rng.Intn(len(v.Domain))]
		if (val == "hidden" || val == document.VisHidden) && rng.Intn(3) != 0 {
			continue // hide only a third of the time it comes up
		}
		choices = append(choices, Choice{
			Viewer:   viewers[rng.Intn(len(viewers))],
			Variable: v.Name,
			Value:    val,
		})
	}
	return choices
}
