package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mmconf/internal/wire"
)

func TestOpenLoopTally(t *testing.T) {
	// A fast op that cycles outcome: completed, shed, failed. The tally
	// must route each error class to its own counter.
	var n atomic.Int64
	op := func(ctx context.Context) error {
		switch n.Add(1) % 3 {
		case 1:
			return nil
		case 2:
			return wire.ErrOverloaded
		default:
			return errors.New("boom")
		}
	}
	res := OpenLoop(context.Background(), op, OpenLoopOptions{
		Rate:     1000,
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
	})
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	total := res.Completed + res.Shed + res.Failed + res.Dropped
	if total != res.Offered {
		t.Fatalf("tally leak: offered %d but accounted %d (%+v)", res.Offered, total, res)
	}
	for _, c := range []int64{res.Completed, res.Shed, res.Failed} {
		if c == 0 {
			t.Fatalf("an outcome class never tallied: %+v", res)
		}
	}
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
	if g := res.Goodput(); g <= 0 {
		t.Fatalf("goodput = %v", g)
	}
}

func TestOpenLoopOfferedRateIndependentOfSlowOps(t *testing.T) {
	// The defining open-loop property: a server that stops answering
	// does not slow the arrival process. Ops block until cancelled, so a
	// closed loop would stall after MaxOutstanding arrivals; the open
	// loop keeps offering and sheds the excess at the driver.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(400*time.Millisecond, cancel)
	op := func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}
	res := OpenLoop(ctx, op, OpenLoopOptions{
		Rate:           2000,
		Duration:       250 * time.Millisecond,
		MaxOutstanding: 8,
	})
	if res.Dropped == 0 {
		t.Fatalf("wedged server produced no driver-side drops: %+v", res)
	}
	if res.Offered < res.Dropped {
		t.Fatalf("offered %d < dropped %d", res.Offered, res.Dropped)
	}
}

func TestOpenLoopWarmupExcluded(t *testing.T) {
	// Arrivals during warmup run but are not tallied: with warmup equal
	// to the whole wall-clock budget minus the window, offered counts
	// only the measured window's arrivals.
	res := OpenLoop(context.Background(), func(context.Context) error { return nil }, OpenLoopOptions{
		Rate:     1000,
		Duration: 100 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
	})
	// ~100 measured arrivals, never the ~300 of the full run. Generous
	// bounds: CI timers are coarse.
	if res.Offered < 20 || res.Offered > 200 {
		t.Fatalf("offered = %d, want ~100 (warmup arrivals excluded)", res.Offered)
	}
}

func TestOpenLoopGoodputZeroOnEmpty(t *testing.T) {
	if g := (OpenLoopResult{}).Goodput(); g != 0 {
		t.Fatalf("goodput of empty result = %v", g)
	}
}
