package workload

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
)

// This file threads multi-node clusters through the load drivers. A
// single-server experiment points every client at one address; against
// a room-sharded cluster the offered load has to spread across node
// endpoints, and ops need somewhere to record which endpoint they ran
// against. Endpoints is that seam — transport-level only (this package
// cannot import the client: the client depends on workload via the
// prefetcher), so client construction stays with the caller.

// AddrDialFunc dials a specific address. It mirrors the client
// package's AddrDialFunc (netsim's Faults.DialContext satisfies both).
type AddrDialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Endpoints is a rotating view over a cluster's node addresses plus the
// dialer that reaches them.
type Endpoints struct {
	Addrs []string
	Dial  AddrDialFunc

	next atomic.Uint64
}

// NewEndpoints builds an endpoint set; dial nil means plain TCP.
func NewEndpoints(dial AddrDialFunc, addrs ...string) (*Endpoints, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("workload: endpoint set needs at least one address")
	}
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return &Endpoints{Addrs: append([]string(nil), addrs...), Dial: dial}, nil
}

// Pick returns the next address in rotation — how a driver binds each
// of its workers (or clients) to a node so offered load spreads evenly.
func (e *Endpoints) Pick() string {
	return e.Addrs[(e.next.Add(1)-1)%uint64(len(e.Addrs))]
}

// DialNext dials the next endpoint in rotation, trying each address at
// most once before giving up — a load generator's connect path across a
// cluster with some nodes down.
func (e *Endpoints) DialNext(ctx context.Context) (net.Conn, string, error) {
	var lastErr error
	for range e.Addrs {
		addr := e.Pick()
		conn, err := e.Dial(ctx, addr)
		if err == nil {
			return conn, addr, nil
		}
		lastErr = err
	}
	return nil, "", fmt.Errorf("workload: no endpoint reachable: %w", lastErr)
}

// SpreadOp interleaves per-endpoint ops into one op for OpenLoop: each
// arrival runs against the next endpoint in rotation, so an open-loop
// run offers the same rate to every node of a cluster. mk is called
// once per address up front (building a client pool, say); the returned
// op dispatches by rotation.
func (e *Endpoints) SpreadOp(mk func(addr string) Op) Op {
	ops := make([]Op, len(e.Addrs))
	for i, addr := range e.Addrs {
		ops[i] = mk(addr)
	}
	var n atomic.Uint64
	return func(ctx context.Context) error {
		return ops[(n.Add(1)-1)%uint64(len(ops))](ctx)
	}
}
