package workload

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

func TestEndpointsPickRotates(t *testing.T) {
	e, err := NewEndpoints(nil, "a:1", "b:2", "c:3")
	if err != nil {
		t.Fatal(err)
	}
	got := []string{e.Pick(), e.Pick(), e.Pick(), e.Pick()}
	want := []string{"a:1", "b:2", "c:3", "a:1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	if _, err := NewEndpoints(nil); err == nil {
		t.Fatal("empty endpoint set accepted")
	}
}

func TestEndpointsDialNextSkipsDeadNodes(t *testing.T) {
	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go func() {
		for {
			conn, err := live.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	e, err := NewEndpoints(nil, deadAddr, live.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	conn, addr, err := e.DialNext(ctx)
	if err != nil {
		t.Fatalf("DialNext: %v", err)
	}
	conn.Close()
	if addr != live.Addr().String() {
		t.Fatalf("DialNext landed on %s, want the live node %s", addr, live.Addr().String())
	}
}

// TestSpreadOpOffersLoadToEveryEndpoint drives an open loop through
// SpreadOp and checks every endpoint's op took an even share of the
// arrivals — the property a sharded cluster needs from a load driver.
func TestSpreadOpOffersLoadToEveryEndpoint(t *testing.T) {
	addrs := []string{"n1:1", "n2:2", "n3:3"}
	e, err := NewEndpoints(nil, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := make(map[string]int)
	op := e.SpreadOp(func(addr string) Op {
		return func(ctx context.Context) error {
			mu.Lock()
			counts[addr]++
			mu.Unlock()
			return nil
		}
	})
	res := OpenLoop(context.Background(), op, OpenLoopOptions{
		Rate:     2000,
		Duration: 150 * time.Millisecond,
	})
	if res.Completed == 0 {
		t.Fatal("open loop completed nothing")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, addr := range addrs {
		share := float64(counts[addr]) / float64(res.Completed)
		if share < 0.25 || share > 0.42 {
			t.Errorf("endpoint %s took %.0f%% of arrivals, want ~33%%: %v", addr, share*100, counts)
		}
	}
}
