package prefetch

import (
	"fmt"
	"testing"
	"time"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/netsim"
	"mmconf/internal/workload"
)

// populatedDoc builds a medical record with distinct object ids.
func populatedDoc(t *testing.T) *document.Document {
	t.Helper()
	d, err := workload.MedicalRecord("p", 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]map[string]uint64{
		"ct":    {"full": 11, "segmented": 11, "lowres": 13},
		"xray":  {"full": 12, "icon": 12},
		"voice": {"audio": 14},
	}
	for comp, vals := range ids {
		c, err := d.Component(comp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Presentations {
			if id, ok := vals[c.Presentations[i].Name]; ok {
				c.Presentations[i].ObjectID = id
			}
		}
	}
	return d
}

func TestRankCurrentViewFirst(t *testing.T) {
	doc := populatedDoc(t)
	cands, err := Rank(doc, nil)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// The default view shows ct=full (object 11), xray=icon (object 12),
	// voice=audio (object 14): all must carry score 1.
	needed := map[uint64]bool{11: false, 12: false, 14: false}
	for _, c := range cands {
		if _, ok := needed[c.ObjectID]; ok {
			if c.Score != 1.0 {
				t.Errorf("object %d score %v, want 1.0", c.ObjectID, c.Score)
			}
			needed[c.ObjectID] = true
		}
	}
	for id, seen := range needed {
		if !seen {
			t.Errorf("object %d missing from ranking", id)
		}
	}
	// Scores are non-increasing.
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
	// Lookahead candidates exist (the lowres stream, object 13).
	found := false
	for _, c := range cands {
		if c.ObjectID == 13 && c.Score < 1.0 && c.Score > 0 {
			found = true
		}
	}
	if !found {
		t.Error("lookahead did not surface the lowres stream")
	}
}

func TestRankRespectsChoices(t *testing.T) {
	doc := populatedDoc(t)
	cands, err := Rank(doc, cpnet.Outcome{"ct": "hidden"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.ObjectID == 11 && c.Score >= 1.0 {
			t.Error("hidden CT payload ranked as needed-now")
		}
	}
	// Bad evidence propagates an error.
	if _, err := Rank(doc, cpnet.Outcome{"nosuch": "x"}); err == nil {
		t.Error("bad choices accepted")
	}
}

func TestCacheLRUSemantics(t *testing.T) {
	c, err := NewCache(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCache(0); err == nil {
		t.Error("zero capacity accepted")
	}
	c.Put(1, make([]byte, 40))
	c.Put(2, make([]byte, 40))
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry 1 missing")
	}
	// Inserting 3 (40 bytes) exceeds 100: evicts LRU = 2 (1 was touched).
	c.Put(3, make([]byte, 40))
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry survived eviction")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("wrong entries evicted")
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d", hits, misses, evictions)
	}
	// Oversized payloads are not cached.
	c.Put(9, make([]byte, 200))
	if c.Contains(9) {
		t.Error("oversized payload cached")
	}
	// Replacing an entry adjusts usage.
	c.Put(1, make([]byte, 10))
	if c.Used() != 50 {
		t.Errorf("used = %d, want 50", c.Used())
	}
	// Contains does not affect stats.
	c.Contains(1)
	h2, m2, _ := c.Stats()
	if h2 != hits || m2 != misses {
		t.Error("Contains changed stats")
	}
}

func TestCacheEvictionOrderWithTouch(t *testing.T) {
	c, _ := NewCache(30)
	c.Put(1, make([]byte, 10))
	c.Put(2, make([]byte, 10))
	c.Put(3, make([]byte, 10))
	c.Get(1) // 1 becomes MRU; order now 1,3,2
	c.Put(4, make([]byte, 10))
	if c.Contains(2) {
		t.Error("2 should be evicted first")
	}
	c.Put(5, make([]byte, 10))
	if c.Contains(3) {
		t.Error("3 should be evicted second")
	}
	if !c.Contains(1) {
		t.Error("recently used entry evicted")
	}
}

func TestPrefetcherDemandAndWarm(t *testing.T) {
	doc := populatedDoc(t)
	fetched := map[uint64]int{}
	fetch := func(id uint64) ([]byte, error) {
		fetched[id]++
		return make([]byte, 1000), nil
	}
	cache, _ := NewCache(1 << 20)
	pf, err := NewPrefetcher(cache, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPrefetcher(nil, fetch); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewPrefetcher(cache, nil); err == nil {
		t.Error("nil fetch accepted")
	}
	// Demand twice: second hit avoids the fetch.
	if _, err := pf.Demand(11); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Demand(11); err != nil {
		t.Fatal(err)
	}
	if fetched[11] != 1 {
		t.Errorf("object 11 fetched %d times", fetched[11])
	}
	// Warm pulls the ranked candidates.
	n, err := pf.Warm(doc, nil, 1<<20)
	if err != nil {
		t.Fatalf("Warm: %v", err)
	}
	if n == 0 {
		t.Error("warm fetched nothing")
	}
	if pf.PrefetchedBytes == 0 {
		t.Error("prefetched bytes not accounted")
	}
	// A later demand for a warmed object is a pure hit.
	before := fetched[12]
	if _, err := pf.Demand(12); err != nil {
		t.Fatal(err)
	}
	if fetched[12] != before {
		t.Error("warmed object fetched again on demand")
	}
	// Budget is respected.
	cache2, _ := NewCache(1 << 20)
	pf2, _ := NewPrefetcher(cache2, fetch)
	if _, err := pf2.Warm(doc, nil, 1); err != nil {
		t.Fatal(err)
	}
	if pf2.PrefetchedBytes > 1000 {
		t.Errorf("warm overshot budget: %d", pf2.PrefetchedBytes)
	}
	// Fetch failures surface.
	bad, _ := NewPrefetcher(cache2, func(id uint64) ([]byte, error) {
		return nil, fmt.Errorf("db down")
	})
	if _, err := bad.Demand(999); err == nil {
		t.Error("fetch failure swallowed")
	}
}

func TestSimulatePolicyOrdering(t *testing.T) {
	doc := populatedDoc(t)
	script := workload.Session(doc, []string{"alice", "bob"}, 120, 5)
	link, _ := netsim.NewLink(256<<10, 20*time.Millisecond) // 256 KiB/s
	const cacheBytes = 900 << 10
	const warm = 512 << 10

	results := map[Policy]Result{}
	for _, pol := range []Policy{PolicyNone, PolicyLRU, PolicyPreference} {
		link.Reset()
		r, err := Simulate(doc, script, pol, cacheBytes, warm, link)
		if err != nil {
			t.Fatalf("Simulate(%v): %v", pol, err)
		}
		results[pol] = r
		t.Logf("%-10s hit=%.3f mean=%v demandKB=%d prefetchKB=%d",
			pol, r.HitRate, r.MeanResponse, r.DemandBytes>>10, r.PrefetchedBytes>>10)
	}
	// The paper's shape: preference-based prefetch dominates LRU which
	// dominates no caching, in hit rate and user-visible response time.
	if !(results[PolicyPreference].HitRate > results[PolicyLRU].HitRate) {
		t.Errorf("preference hit rate %.3f not above LRU %.3f",
			results[PolicyPreference].HitRate, results[PolicyLRU].HitRate)
	}
	if results[PolicyNone].HitRate != 0 {
		t.Errorf("no-cache policy reported hits: %.3f", results[PolicyNone].HitRate)
	}
	if !(results[PolicyPreference].TotalResponse < results[PolicyLRU].TotalResponse) {
		t.Errorf("preference response %v not below LRU %v",
			results[PolicyPreference].TotalResponse, results[PolicyLRU].TotalResponse)
	}
	if !(results[PolicyLRU].TotalResponse < results[PolicyNone].TotalResponse) {
		t.Errorf("LRU response %v not below none %v",
			results[PolicyLRU].TotalResponse, results[PolicyNone].TotalResponse)
	}
}

func TestSimulateValidation(t *testing.T) {
	doc := populatedDoc(t)
	if _, err := Simulate(doc, nil, PolicyLRU, 1<<20, 0, nil); err == nil {
		t.Error("nil link accepted")
	}
	if _, err := Simulate(doc, nil, PolicyLRU, 0, 0, mustLink(t)); err == nil {
		t.Error("zero cache accepted for caching policy")
	}
	// Unknown variables in the script are skipped, not fatal.
	script := []workload.Choice{{Viewer: "a", Variable: "nosuch", Value: "x"}}
	if _, err := Simulate(doc, script, PolicyNone, 0, 0, mustLink(t)); err != nil {
		t.Errorf("unknown-variable choice not skipped: %v", err)
	}
}

func mustLink(t *testing.T) *netsim.Link {
	t.Helper()
	l, err := netsim.NewLink(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPolicyString(t *testing.T) {
	if PolicyNone.String() != "none" || PolicyLRU.String() != "lru" || PolicyPreference.String() != "preference" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy name empty")
	}
}
