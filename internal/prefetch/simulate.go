package prefetch

import (
	"fmt"
	"time"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/netsim"
	"mmconf/internal/workload"
)

// Policy selects the client buffering strategy under evaluation in E8.
type Policy int

// Policies.
const (
	// PolicyNone fetches every displayed payload on demand, no buffer.
	PolicyNone Policy = iota
	// PolicyLRU keeps a demand-only LRU buffer.
	PolicyLRU
	// PolicyPreference keeps the LRU buffer and additionally warms it
	// with preference-ranked candidates after every choice.
	PolicyPreference
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyLRU:
		return "lru"
	case PolicyPreference:
		return "preference"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Result aggregates one simulated session.
type Result struct {
	Policy          Policy
	Steps           int
	Demands         int64 // payload displays requested
	Hits            int64
	HitRate         float64
	TotalResponse   time.Duration // sum of user-visible waits
	MeanResponse    time.Duration
	FirstDisplay    time.Duration // wait for the initial display (time-to-presentable)
	DemandBytes     int64         // bytes fetched on the critical path
	PrefetchedBytes int64         // bytes fetched ahead of time
}

// Simulate replays a scripted session over a document under the given
// policy, modeling transfers over link. Every step applies one viewer
// choice, recomputes the optimal view, and "displays" it: each visible
// stored payload must be present — a cache hit costs nothing, a miss
// costs the link transfer time. PolicyPreference then warms the buffer
// with warmBudget bytes of ranked candidates (modeled off the critical
// path, as background transfer).
func Simulate(doc *document.Document, script []workload.Choice, policy Policy,
	cacheBytes, warmBudget int64, link *netsim.Link) (Result, error) {
	return SimulateWith(doc, script, policy, cacheBytes, warmBudget, link, nil)
}

// SimulateWith is Simulate with initial evidence pinned before the first
// display — E15 uses it to pin the net/bandwidth tuning variable so the
// solver degrades layered presentations for the simulated link class.
func SimulateWith(doc *document.Document, script []workload.Choice, policy Policy,
	cacheBytes, warmBudget int64, link *netsim.Link, initial cpnet.Outcome) (Result, error) {
	if link == nil {
		return Result{}, fmt.Errorf("prefetch: nil link")
	}
	sizeOf := make(map[uint64]int64)
	for _, c := range doc.Components() {
		for _, p := range c.Presentations {
			if p.ObjectID != 0 {
				sizeOf[p.ObjectID] = p.Bytes
			}
		}
	}
	fetch := func(id uint64) ([]byte, error) {
		n, ok := sizeOf[id]
		if !ok {
			return nil, fmt.Errorf("prefetch: unknown object %d", id)
		}
		return make([]byte, n), nil
	}
	var pf *Prefetcher
	if policy != PolicyNone {
		cache, err := NewCache(cacheBytes)
		if err != nil {
			return Result{}, err
		}
		pf, err = NewPrefetcher(cache, fetch)
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Policy: policy, Steps: len(script)}
	choices := cpnet.Outcome{}
	for v, val := range initial {
		choices[v] = val
	}
	display := func() error {
		view, err := doc.ReconfigPresentation(choices)
		if err != nil {
			return err
		}
		for _, c := range doc.Components() {
			if c.Composite() || !view.Visible[c.Name] {
				continue
			}
			p, err := c.Presentation(view.Outcome[c.Name])
			if err != nil || p.ObjectID == 0 {
				continue
			}
			res.Demands++
			if pf != nil {
				if _, ok := pf.Cache.Get(p.ObjectID); ok {
					res.Hits++
					continue
				}
				data, err := fetch(p.ObjectID)
				if err != nil {
					return err
				}
				pf.Cache.Put(p.ObjectID, data)
			}
			res.TotalResponse += link.TransferTime(p.Bytes)
			res.DemandBytes += p.Bytes
		}
		return nil
	}
	// Initial display, then one per scripted choice.
	if err := display(); err != nil {
		return Result{}, err
	}
	res.FirstDisplay = res.TotalResponse
	warm := func() error {
		if policy != PolicyPreference {
			return nil
		}
		n, err := pf.Warm(doc, choices, warmBudget)
		_ = n
		return err
	}
	if err := warm(); err != nil {
		return Result{}, err
	}
	for _, ch := range script {
		if !doc.Prefs.HasVariable(ch.Variable) {
			continue
		}
		choices[ch.Variable] = ch.Value
		if err := display(); err != nil {
			return Result{}, err
		}
		if err := warm(); err != nil {
			return Result{}, err
		}
	}
	if res.Demands > 0 {
		res.HitRate = float64(res.Hits) / float64(res.Demands)
		res.MeanResponse = res.TotalResponse / time.Duration(res.Demands)
	}
	if pf != nil {
		res.PrefetchedBytes = pf.PrefetchedBytes
	}
	return res, nil
}
