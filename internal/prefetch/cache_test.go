package prefetch

import (
	"bytes"
	"sync"
	"testing"
)

// The cache is shared between the viewer's Demand path and the server's
// push-prefetch path; every public method must be safe under -race.
func TestCacheConcurrentAccess(t *testing.T) {
	c, err := NewCache(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := seed*1000 + uint64(i%37)
				switch i % 5 {
				case 0:
					c.Put(id, make([]byte, 128+i%512))
				case 1:
					c.PutDigest(id, "sha256:deadbeef", make([]byte, 64))
				case 2:
					c.Get(id)
				case 3:
					c.Contains(id)
				default:
					c.Stats()
					c.Used()
					c.Digest(id)
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d exceeds capacity %d after concurrent churn", c.Used(), c.Capacity())
	}
}

// Regression: Put of an existing id whose new payload exceeds the whole
// capacity used to return early and keep serving the stale old bytes.
// The stale entry must be evicted instead.
func TestCachePutOversizedEvictsStale(t *testing.T) {
	c, err := NewCache(1024)
	if err != nil {
		t.Fatal(err)
	}
	old := []byte("version-1")
	c.Put(7, old)
	if got, ok := c.Get(7); !ok || !bytes.Equal(got, old) {
		t.Fatalf("seed entry missing: ok=%v got=%q", ok, got)
	}
	// The object grew past the buffer: the update cannot be cached, and
	// the old bytes no longer describe the object.
	c.Put(7, make([]byte, 4096))
	if _, ok := c.Get(7); ok {
		t.Fatal("stale entry survived an oversized Put of the same id")
	}
	if c.Used() != 0 {
		t.Fatalf("used = %d after evicting the only entry, want 0", c.Used())
	}
	_, _, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

func TestCacheDigestTag(t *testing.T) {
	c, err := NewCache(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Digest(1); ok {
		t.Fatal("digest present before any Put")
	}
	c.PutDigest(1, "sha256:aa", []byte("pushed"))
	if d, ok := c.Digest(1); !ok || d != "sha256:aa" {
		t.Fatalf("digest = %q ok=%v, want sha256:aa", d, ok)
	}
	// A plain demand Put of the same id clears the tag: the bytes came
	// from a direct fetch, not a digest-verified push.
	c.Put(1, []byte("fetched"))
	if _, ok := c.Digest(1); ok {
		t.Fatal("digest tag survived an untagged overwrite")
	}
	if got, ok := c.Get(1); !ok || string(got) != "fetched" {
		t.Fatalf("payload = %q ok=%v", got, ok)
	}
}
