// Package prefetch implements the preference-based pre-fetching of §4.4
// of the paper (formalized in their TR [12], "Predicting Likely Components
// in CP-net based Multimedia Systems"): because the whole document cannot
// be downloaded ahead of time under limited client buffer and bandwidth,
// the client downloads the components *most likely to be requested*,
// using the buffer as a cache. Likelihood comes from the preference
// structure itself: the current optimal configuration is needed now, and
// the configurations reachable by the viewer's single next choice are
// ranked by how preferred that choice is.
//
// The package also provides the demand-only LRU and no-cache baselines
// the E8 experiment compares against.
package prefetch

import (
	"fmt"
	"sort"
	"sync"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
)

// Candidate is one payload worth holding in the client buffer.
type Candidate struct {
	Component string
	Value     string
	ObjectID  uint64
	Bytes     int64
	// Kind is the presentation's media kind, captured at ranking time so
	// callers (the server's push-prefetch loop) need not re-read the
	// document concurrently with mutating operations.
	Kind document.MediaKind
	// Score in (0, 1]: 1 for payloads of the current optimal view,
	// decaying with the preference rank of the hypothetical next choice
	// that would require the payload.
	Score float64
}

// lookaheadWeight scales one-step-lookahead candidates relative to the
// certain ones.
const lookaheadWeight = 0.5

// Rank returns candidate payloads in descending likelihood given the
// document and the current viewer choices. Payloads with ObjectID 0
// (inline or hidden forms) are not fetchable and are skipped.
func Rank(doc *document.Document, choices cpnet.Outcome) ([]Candidate, error) {
	base, err := doc.ReconfigPresentation(choices)
	if err != nil {
		return nil, err
	}
	best := make(map[uint64]Candidate)
	add := func(v document.View, score float64) {
		for _, c := range doc.Components() {
			if c.Composite() || !v.Visible[c.Name] {
				continue
			}
			p, err := c.Presentation(v.Outcome[c.Name])
			if err != nil || p.ObjectID == 0 {
				continue
			}
			cand := Candidate{
				Component: c.Name, Value: p.Name,
				ObjectID: p.ObjectID, Bytes: p.Bytes, Kind: p.Kind, Score: score,
			}
			if old, ok := best[p.ObjectID]; !ok || cand.Score > old.Score {
				best[p.ObjectID] = cand
			}
		}
	}
	add(base, 1.0)

	// One-step lookahead: the viewer's next click pins one variable to an
	// alternative value. Alternatives that the author ranks higher (given
	// everything else) are likelier clicks.
	for _, v := range doc.Prefs.Variables() {
		current := base.Outcome[v.Name]
		for rank, alt := range v.Domain {
			if alt == current {
				continue
			}
			ev := choices.Clone()
			ev[v.Name] = alt
			view, err := doc.ReconfigPresentation(ev)
			if err != nil {
				return nil, err
			}
			score := lookaheadWeight / float64(2+rank)
			add(view, score)
		}
	}
	out := make([]Candidate, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out, nil
}

// Cache is a byte-budgeted LRU buffer of fetched payloads — the "user's
// buffer as a cache" of §4.4. It is safe for concurrent use: the server
// push-prefetch path fills it while the viewer's Demand path reads it.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[uint64]*entry
	// LRU list: head = most recent.
	head, tail *entry
	hits       int64
	misses     int64
	evictions  int64
}

type entry struct {
	id         uint64
	data       []byte
	digest     string
	prev, next *entry
}

// NewCache returns a cache with the given byte capacity.
func NewCache(capacity int64) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("prefetch: capacity %d must be positive", capacity)
	}
	return &Cache{capacity: capacity, entries: make(map[uint64]*entry)}, nil
}

// Get returns the cached payload and records a hit or miss.
func (c *Cache) Get(id uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touch(e)
	return e.data, true
}

// Digest returns the digest tag stored alongside a cached payload, if
// any, without touching LRU order or hit statistics.
func (c *Cache) Digest(id uint64) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.digest == "" {
		return "", false
	}
	return e.digest, true
}

// Contains reports presence without recording a hit or miss (used by the
// prefetcher to avoid distorting statistics).
func (c *Cache) Contains(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// Offer inserts a speculative payload only if it fits without evicting
// anything — the acceptance rule for server push-prefetch: an unasked-for
// payload must never displace content the viewer demanded or a
// higher-ranked candidate already warmed. Replacing an existing entry for
// the same id reclaims that entry's bytes first. It reports whether the
// payload was stored.
func (c *Cache) Offer(id uint64, digest string, data []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	need := int64(len(data))
	avail := c.capacity - c.used
	if e, ok := c.entries[id]; ok {
		if need > avail+int64(len(e.data)) {
			return false // keep the resident bytes
		}
		c.used += need - int64(len(e.data))
		e.data = data
		e.digest = digest
		c.touch(e)
		return true
	}
	if need > avail {
		return false
	}
	e := &entry{id: id, data: data, digest: digest}
	c.entries[id] = e
	c.used += need
	c.pushFront(e)
	return true
}

// Put inserts a payload, evicting least-recently-used entries as needed.
// Payloads larger than the whole capacity are not cached — and if such an
// oversized payload replaces an existing id, the stale entry is evicted
// rather than silently kept (the old bytes no longer describe the object).
func (c *Cache) Put(id uint64, data []byte) {
	c.PutDigest(id, "", data)
}

// PutDigest is Put with a content digest tag attached to the entry, so
// server-pushed payloads can be verified against the digest the demand
// path would have fetched.
func (c *Cache) PutDigest(id uint64, digest string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(data)) > c.capacity {
		if e, ok := c.entries[id]; ok {
			c.evict(e)
		}
		return
	}
	if e, ok := c.entries[id]; ok {
		c.used += int64(len(data)) - int64(len(e.data))
		e.data = data
		e.digest = digest
		c.touch(e)
	} else {
		e := &entry{id: id, data: data, digest: digest}
		c.entries[id] = e
		c.used += int64(len(data))
		c.pushFront(e)
	}
	for c.used > c.capacity && c.tail != nil {
		c.evict(c.tail)
	}
}

func (c *Cache) touch(e *entry) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) evict(e *entry) {
	c.unlink(e)
	delete(c.entries, e.id)
	c.used -= int64(len(e.data))
	c.evictions++
}

// Used returns the occupied bytes.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// FetchFunc retrieves a payload from the database server by object id.
type FetchFunc func(objectID uint64) ([]byte, error)

// Prefetcher couples a cache with a fetch path.
type Prefetcher struct {
	Cache *Cache
	Fetch FetchFunc
	// PrefetchedBytes counts bytes fetched ahead of demand.
	PrefetchedBytes int64
}

// NewPrefetcher wires a cache to a fetch function.
func NewPrefetcher(cache *Cache, fetch FetchFunc) (*Prefetcher, error) {
	if cache == nil || fetch == nil {
		return nil, fmt.Errorf("prefetch: need a cache and a fetch function")
	}
	return &Prefetcher{Cache: cache, Fetch: fetch}, nil
}

// Inject stores a payload the server pushed ahead of demand (the QoS
// loop's push-prefetch). Unlike Warm it costs the client no fetch, but
// the same no-eviction rule applies: the payload is dropped if it does
// not fit in the buffer's free space. It reports whether it was kept.
func (p *Prefetcher) Inject(id uint64, digest string, data []byte) bool {
	return p.Cache.Offer(id, digest, data)
}

// Demand returns the payload for an object the viewer needs right now,
// through the cache.
func (p *Prefetcher) Demand(objectID uint64) ([]byte, error) {
	if data, ok := p.Cache.Get(objectID); ok {
		return data, nil
	}
	data, err := p.Fetch(objectID)
	if err != nil {
		return nil, err
	}
	p.Cache.Put(objectID, data)
	return data, nil
}

// Warm fetches ranked candidates ahead of demand until budget bytes have
// been prefetched this call or the ranking is exhausted. Already-cached
// payloads are skipped without touching hit statistics. Warming is
// speculative, so it never evicts: candidates that do not fit in the
// buffer's remaining free space are skipped (a lower-ranked candidate
// must not push out a higher-ranked or recently demanded payload). It
// returns the number of payloads fetched.
func (p *Prefetcher) Warm(doc *document.Document, choices cpnet.Outcome, budget int64) (int, error) {
	cands, err := Rank(doc, choices)
	if err != nil {
		return 0, err
	}
	fetched := 0
	var spent int64
	for _, cand := range cands {
		if spent >= budget {
			break
		}
		if p.Cache.Contains(cand.ObjectID) {
			continue
		}
		avail := p.Cache.Capacity() - p.Cache.Used()
		if cand.Bytes > avail {
			continue // would evict better content; skip, try smaller candidates
		}
		data, err := p.Fetch(cand.ObjectID)
		if err != nil {
			return fetched, fmt.Errorf("prefetch: warming object %d: %w", cand.ObjectID, err)
		}
		if int64(len(data)) > avail {
			continue // size estimate was low; still refuse to evict
		}
		p.Cache.Put(cand.ObjectID, data)
		spent += int64(len(data))
		p.PrefetchedBytes += int64(len(data))
		fetched++
	}
	return fetched, nil
}
