package cluster

import (
	"context"
	"crypto/sha256"
	"fmt"

	"mmconf/internal/blob"
	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/wire"
)

// This file is the dataset half of standby replication: alongside each
// room's event log (links.go), the owner ships the room's media dataset
// — table rows with payloads by digest, plus the chunk manifests behind
// them. The standby adopts the rows and pulls only the chunks its own
// CAS is missing, so a node can join with an empty store and converge
// by transferring exactly the bytes it lacks; payloads shared across
// rooms or already present from any earlier sync cost nothing. This is
// what removed the "equivalently seeded databases" restriction the
// cluster launched with.

// fetchChunkBatch bounds one MNodeFetchChunks request: 256 chunks of at
// most 64 KiB stay far inside the 64 MiB frame cap.
const fetchChunkBatch = 256

// syncDataset exports the room's document dataset and ships it to the
// standby when it changed since the last successful sync to that node
// (or when force re-sends after a dirty/standby-change full sync). The
// frame carries rows and manifests only — never payload bytes — so an
// unchanged-room resend costs one manifest-sized frame and zero chunks.
func (n *Node) syncDataset(roomName, docID, standby string, force bool) {
	if docID == "" || n.db == nil {
		return
	}
	ds, err := n.db.ExportDataset(docID)
	if err != nil {
		n.logf("cluster %s: export dataset for room %q: %v", n.id, roomName, err)
		return
	}
	req, err := n.buildSyncReq(roomName, ds)
	if err != nil {
		n.logf("cluster %s: manifest build for room %q: %v", n.id, roomName, err)
		return
	}
	fp := sha256.Sum256(wire.MarshalBody(req))
	n.repMu.Lock()
	st := n.rep[roomName]
	if st == nil {
		st = &repState{}
		n.rep[roomName] = st
	}
	if !force && st.dataStandby == standby && st.dataFP == fp {
		n.repMu.Unlock()
		return
	}
	n.repMu.Unlock()
	if err := n.sendSyncManifest(standby, req); err != nil {
		n.logf("cluster %s: dataset sync of %q to %s failed: %v", n.id, roomName, standby, err)
		n.markDirty(roomName)
		return
	}
	n.manifestSyncs.Add(1)
	n.repMu.Lock()
	st.dataStandby = standby
	st.dataFP = fp
	n.repMu.Unlock()
}

// buildSyncReq flattens a dataset and its blob manifests into the wire
// frame.
func (n *Node) buildSyncReq(roomName string, ds *mediadb.Dataset) (*proto.SyncManifestReq, error) {
	req := &proto.SyncManifestReq{
		Room: roomName, Node: n.id, DocID: ds.DocID, Title: ds.Title,
		DocBlob: refOf(ds.DocBlob),
	}
	for _, r := range ds.Images {
		req.Images = append(req.Images, proto.SyncImageRow{
			ID: r.ID, Quality: r.Quality, Texts: r.Texts, CM: r.CM, Data: refOf(r.Data),
		})
	}
	for _, r := range ds.Audios {
		req.Audios = append(req.Audios, proto.SyncAudioRow{
			ID: r.ID, Filename: r.Filename, Sectors: r.Sectors, Data: refOf(r.Data),
		})
	}
	for _, r := range ds.Cmps {
		req.Cmps = append(req.Cmps, proto.SyncCmpRow{
			ID: r.ID, Filename: r.Filename, FileSize: r.FileSize, Position: r.Position,
			Header: refOf(r.Header), Data: refOf(r.Data),
		})
	}
	for _, h := range ds.Handles() {
		chunks, err := n.db.DB().BlobManifest(h)
		if err != nil {
			return nil, err
		}
		m := proto.BlobManifest{Digest: append([]byte(nil), h.Digest[:]...), Length: h.Length}
		for _, cd := range chunks {
			m.Chunks = append(m.Chunks, append([]byte(nil), cd[:]...))
		}
		req.Manifests = append(req.Manifests, m)
	}
	return req, nil
}

// refOf flattens a handle for the wire; the zero handle stays zero.
func refOf(h blob.Handle) proto.BlobRef {
	if h.IsZero() {
		return proto.BlobRef{}
	}
	return proto.BlobRef{Digest: append([]byte(nil), h.Digest[:]...), Length: h.Length}
}

// handleOf rebuilds a blob handle from its wire form.
func handleOf(r proto.BlobRef) (blob.Handle, error) {
	if len(r.Digest) == 0 && r.Length == 0 {
		return blob.Handle{}, nil
	}
	d, err := digestOf(r.Digest)
	if err != nil {
		return blob.Handle{}, err
	}
	return blob.Handle{Digest: d, Length: r.Length}, nil
}

func digestOf(b []byte) (blob.Digest, error) {
	var d blob.Digest
	if len(b) != len(d) {
		return d, fmt.Errorf("cluster: digest is %d bytes, want %d", len(b), len(d))
	}
	copy(d[:], b)
	return d, nil
}

// sendSyncManifest ships one dataset sync over the control link to the
// standby.
func (n *Node) sendSyncManifest(target string, req *proto.SyncManifestReq) error {
	n.mu.Lock()
	ps := n.peers[target]
	n.mu.Unlock()
	if ps == nil {
		return fmt.Errorf("cluster: unknown sync target %s", target)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.SuspectAfter)
	defer cancel()
	rpc, err := ps.link.get(ctx, n)
	if err != nil {
		return err
	}
	var resp proto.SyncManifestResp
	return rpc.CallCtx(ctx, proto.MNodeSyncManifest, req, &resp)
}

// handleSyncManifest is the standby side: adopt the shipped rows,
// pulling each payload this node's CAS cannot assemble locally back
// from the sender by chunk digest. Adoption is idempotent — a resend of
// an unchanged dataset touches no rows and pulls no chunks.
func (n *Node) handleSyncManifest(ctx context.Context, p *wire.Peer, req *proto.SyncManifestReq) (*proto.SyncManifestResp, error) {
	if n.db == nil {
		return nil, fmt.Errorf("cluster %s: no database to sync into", n.id)
	}
	type manifestInfo struct {
		length uint32
		chunks []blob.Digest
	}
	manifests := make(map[blob.Digest]manifestInfo, len(req.Manifests))
	for _, m := range req.Manifests {
		d, err := digestOf(m.Digest)
		if err != nil {
			return nil, err
		}
		mi := manifestInfo{length: m.Length, chunks: make([]blob.Digest, 0, len(m.Chunks))}
		for _, cb := range m.Chunks {
			cd, err := digestOf(cb)
			if err != nil {
				return nil, err
			}
			mi.chunks = append(mi.chunks, cd)
		}
		manifests[d] = mi
	}
	ds, err := datasetOf(req)
	if err != nil {
		return nil, err
	}

	var chunksPulled uint32
	var bytesPulled uint64
	ensure := func(h blob.Handle) error {
		mi, ok := manifests[h.Digest]
		if !ok {
			return fmt.Errorf("cluster: sync of %q ships no manifest for %s", req.Room, h)
		}
		missing := n.db.DB().MissingBlobChunks(mi.chunks)
		data := make(map[blob.Digest][]byte, len(missing))
		for len(missing) > 0 {
			batch := missing
			if len(batch) > fetchChunkBatch {
				batch = batch[:fetchChunkBatch]
			}
			missing = missing[len(batch):]
			chunks, err := n.fetchChunks(ctx, req.Node, batch)
			if err != nil {
				return err
			}
			for i, cd := range batch {
				if len(chunks[i]) == 0 {
					return fmt.Errorf("cluster: node %s no longer holds chunk %x", req.Node, cd[:8])
				}
				data[cd] = chunks[i]
				chunksPulled++
				bytesPulled += uint64(len(chunks[i]))
			}
		}
		_, err := n.db.DB().PutBlobFromChunks(h.Digest, mi.length, mi.chunks, data)
		return err
	}
	adopted, err := n.db.AdoptDataset(ds, ensure)
	if err != nil {
		return nil, err
	}
	if adopted > 0 || chunksPulled > 0 {
		n.logf("cluster %s: adopted %d rows of %q from %s (%d chunks, %d bytes pulled)",
			n.id, adopted, req.Room, req.Node, chunksPulled, bytesPulled)
	}
	n.syncRowsAdopted.Add(int64(adopted))
	n.syncChunksPulled.Add(int64(chunksPulled))
	n.syncChunkBytes.Add(int64(bytesPulled))
	return &proto.SyncManifestResp{
		Node: n.id, RowsAdopted: uint32(adopted),
		ChunksPulled: chunksPulled, ChunkBytesPulled: bytesPulled,
	}, nil
}

// datasetOf rebuilds the mediadb dataset from its wire form.
func datasetOf(req *proto.SyncManifestReq) (*mediadb.Dataset, error) {
	docBlob, err := handleOf(req.DocBlob)
	if err != nil {
		return nil, err
	}
	ds := &mediadb.Dataset{DocID: req.DocID, Title: req.Title, DocBlob: docBlob}
	for _, r := range req.Images {
		h, err := handleOf(r.Data)
		if err != nil {
			return nil, err
		}
		ds.Images = append(ds.Images, mediadb.ImageRow{
			ID: r.ID, Quality: r.Quality, Texts: r.Texts, CM: r.CM, Data: h,
		})
	}
	for _, r := range req.Audios {
		h, err := handleOf(r.Data)
		if err != nil {
			return nil, err
		}
		ds.Audios = append(ds.Audios, mediadb.AudioRow{
			ID: r.ID, Filename: r.Filename, Sectors: r.Sectors, Data: h,
		})
	}
	for _, r := range req.Cmps {
		hh, err := handleOf(r.Header)
		if err != nil {
			return nil, err
		}
		dh, err := handleOf(r.Data)
		if err != nil {
			return nil, err
		}
		ds.Cmps = append(ds.Cmps, mediadb.CmpRow{
			ID: r.ID, Filename: r.Filename, FileSize: r.FileSize, Position: r.Position,
			Header: hh, Data: dh,
		})
	}
	return ds, nil
}

// fetchChunks pulls one batch of chunks from the named peer over the
// control link.
func (n *Node) fetchChunks(ctx context.Context, from string, digests []blob.Digest) ([][]byte, error) {
	n.mu.Lock()
	ps := n.peers[from]
	n.mu.Unlock()
	if ps == nil {
		return nil, fmt.Errorf("cluster: unknown chunk source %s", from)
	}
	cctx, cancel := context.WithTimeout(ctx, 2*n.cfg.SuspectAfter)
	defer cancel()
	rpc, err := ps.link.get(cctx, n)
	if err != nil {
		return nil, err
	}
	req := &proto.FetchChunksReq{Node: n.id, Digests: make([][]byte, 0, len(digests))}
	for _, cd := range digests {
		req.Digests = append(req.Digests, append([]byte(nil), cd[:]...))
	}
	var resp proto.FetchChunksResp
	if err := rpc.CallCtx(cctx, proto.MNodeFetchChunks, req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Chunks) != len(digests) {
		return nil, fmt.Errorf("cluster: asked %s for %d chunks, got %d", from, len(digests), len(resp.Chunks))
	}
	return resp.Chunks, nil
}

// handleFetchChunks serves a chunk batch by digest — the sender side of
// the standby's pull. Unknown digests return empty entries; the puller
// treats that as a hard error for chunks it was just promised.
func (n *Node) handleFetchChunks(ctx context.Context, p *wire.Peer, req *proto.FetchChunksReq) (*proto.FetchChunksResp, error) {
	if n.db == nil {
		return nil, fmt.Errorf("cluster %s: no database to serve chunks from", n.id)
	}
	if len(req.Digests) > 4*fetchChunkBatch {
		return nil, fmt.Errorf("cluster: chunk batch of %d exceeds the %d limit", len(req.Digests), 4*fetchChunkBatch)
	}
	resp := &proto.FetchChunksResp{Chunks: make([][]byte, len(req.Digests))}
	for i, db := range req.Digests {
		cd, err := digestOf(db)
		if err != nil {
			continue // malformed digest: empty entry, same as unknown
		}
		if chunk, err := n.db.DB().GetBlobChunk(cd); err == nil {
			resp.Chunks[i] = chunk
		}
	}
	return resp, nil
}
