package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/server"
)

// The partial-dataset replication suite: nodes no longer need
// identically seeded databases. A node that starts with an empty CAS
// receives each standby room's dataset by manifest diff — rows plus
// chunk digests per heartbeat, payload bytes only for chunks it lacks
// — and converges to serving those rooms, media included, after
// failover.

// newReplHarness is newHarness with the listed nodes left unseeded.
func newReplHarness(t *testing.T, nodes int, unseeded ...string) *Harness {
	t.Helper()
	h, err := NewHarness(HarnessOptions{
		Nodes:    nodes,
		Dir:      t.TempDir(),
		Seed:     harnessSeed,
		Unseeded: unseeded,
		Server:   server.Options{SessionGrace: 5 * time.Second},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return h
}

// roomPlacedOn derives a room name (from prefix) that the full cluster
// places with the given owner and standby — so tests can aim a room's
// replication stream at a chosen node.
func (h *Harness) roomPlacedOn(owner, standby, prefix string) string {
	all := make([]string, len(h.Nodes))
	for i, hn := range h.Nodes {
		all[i] = hn.ID
	}
	place := NewPlacement(all)
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if place.Owner(name) == owner && place.Standby(name) == standby {
			return name
		}
	}
}

// waitMetric polls a node's metrics until cond accepts them.
func waitMetric(t *testing.T, hn *HarnessNode, what string, cond func(Metrics) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cond(hn.Node.Metrics()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never reached %s; metrics %+v", hn.ID, what, hn.Node.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationSyncsDatasetToEmptyStandby: a room owned by a seeded
// node replicates to an unseeded standby. The standby must end up with
// the document and byte-identical media under the owner's object ids,
// paid for with pulled chunks — and a balanced refcount ledger.
func TestReplicationSyncsDatasetToEmptyStandby(t *testing.T) {
	h := newReplHarness(t, 3, "n3")
	owner, standby := h.ByID("n1"), h.ByID("n3")
	if _, err := standby.media.GetDocument("p1"); err == nil {
		t.Fatalf("unseeded node started with the document")
	}
	roomName := h.roomPlacedOn("n1", "n3", "board")

	alice := clusterClient(t, h, "alice")
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustChat(t, sa, "hello")

	waitMetric(t, standby, "dataset adoption", func(m Metrics) bool {
		return m.SyncRowsAdopted > 0 && m.SyncChunkBytesPulled > 0
	})
	doc, err := standby.media.GetDocument("p1")
	if err != nil {
		t.Fatalf("standby GetDocument after sync: %v", err)
	}
	if doc.Title != h.Record.Doc.Title {
		t.Errorf("standby document title %q, want %q", doc.Title, h.Record.Doc.Title)
	}
	for _, id := range []uint64{h.Record.CTID, h.Record.XrayID} {
		want, err := owner.media.GetImage(id)
		if err != nil {
			t.Fatalf("owner GetImage(%d): %v", id, err)
		}
		got, err := standby.media.GetImage(id)
		if err != nil {
			t.Fatalf("standby GetImage(%d) after sync: %v", id, err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Errorf("image %d differs between owner and standby", id)
		}
	}
	if _, err := standby.media.GetAudio(h.Record.VoiceID); err != nil {
		t.Errorf("standby GetAudio: %v", err)
	}
	if _, err := standby.media.GetCmp(h.Record.CmpID); err != nil {
		t.Errorf("standby GetCmp: %v", err)
	}
	if _, missing := standby.db.BlobStats(); missing != 0 {
		t.Errorf("standby has %d dangling blob references", missing)
	}
	if m := owner.Node.Metrics(); m.ManifestSyncs == 0 {
		t.Errorf("owner sent no manifest syncs: %+v", m)
	}
}

// TestReplicationRepeatSyncMovesNoChunks: once the standby converged, a
// forced full re-sync of the unchanged room ships the manifest again
// but adopts no rows and pulls zero chunk bytes.
func TestReplicationRepeatSyncMovesNoChunks(t *testing.T) {
	h := newReplHarness(t, 3, "n3")
	owner, standby := h.ByID("n1"), h.ByID("n3")
	roomName := h.roomPlacedOn("n1", "n3", "board")

	alice := clusterClient(t, h, "alice")
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustChat(t, sa, "hello")
	waitMetric(t, standby, "dataset adoption", func(m Metrics) bool {
		return m.SyncRowsAdopted > 0 && m.SyncChunkBytesPulled > 0
	})

	before := standby.Node.Metrics()
	syncs := owner.Node.Metrics().ManifestSyncs
	// A placement wobble or lost tap marks every room dirty; the next
	// flush then force-resends the manifest even though nothing changed.
	owner.Node.markAllDirty()
	waitMetric(t, owner, "manifest re-send", func(m Metrics) bool {
		return m.ManifestSyncs > syncs
	})
	after := standby.Node.Metrics()
	if after.SyncChunkBytesPulled != before.SyncChunkBytesPulled || after.SyncChunksPulled != before.SyncChunksPulled {
		t.Errorf("repeat sync pulled chunks: %+v -> %+v", before, after)
	}
	if after.SyncRowsAdopted != before.SyncRowsAdopted {
		t.Errorf("repeat sync adopted rows: %d -> %d", before.SyncRowsAdopted, after.SyncRowsAdopted)
	}
}

// TestReplicationFailoverServesFromEmptyNode is the headline: a node
// that joined with an empty store becomes the owner of a standby room
// when the seeded owner crashes, and serves it fully — the session
// resumes exactly-once on it, and media fetches served from its CAS
// return the payload bytes it pulled over replication.
func TestReplicationFailoverServesFromEmptyNode(t *testing.T) {
	h := newReplHarness(t, 3, "n3")
	owner, standby := h.ByID("n1"), h.ByID("n3")
	roomName := h.roomPlacedOn("n1", "n3", "ward")

	want, err := owner.media.GetImage(h.Record.CTID)
	if err != nil {
		t.Fatal(err)
	}

	alice := clusterClient(t, h, "alice")
	bob := clusterClient(t, h, "bob")
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Join(roomName, "p1", 0); err != nil {
		t.Fatal(err)
	}
	colB := collect(bob)

	pre := []string{"m0", "m1", "m2"}
	for _, m := range pre {
		mustChat(t, sa, m)
	}
	colB.waitChats(t, pre...)
	h.waitReplicated(t, roomName, h.ownerSeq(t, roomName))
	waitMetric(t, standby, "dataset adoption", func(m Metrics) bool {
		return m.SyncRowsAdopted > 0
	})

	owner.Kill()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	post := []string{"m3", "m4", "m5"}
	for _, m := range post {
		mustChat(t, sa, m)
	}
	all := append(append([]string(nil), pre...), post...)
	colB.waitChats(t, all...)
	colB.assertExactChats(t, all...)

	// The room's standby was the empty node; with the owner dead it must
	// be the sole holder.
	if holder := h.waitSoleHolder(t, roomName); holder != standby.ID {
		t.Errorf("room held by %s, want promoted standby %s", holder, standby.ID)
	}
	// And it serves media end to end, from the CAS it filled over
	// replication: a client pinned to the promoted node fetches the CT
	// image byte-identical to the dead owner's copy.
	pinned, err := client.NewOverResolver(h.ClientFaults.DialContext, []string{standby.Addr}, "carol", fastFailover())
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	got, err := pinned.GetImageBytes(h.Record.CTID)
	if err != nil {
		t.Fatalf("GetImageBytes from promoted node: %v", err)
	}
	if !bytes.Equal(got, want.Data) {
		t.Errorf("promoted node served %d bytes differing from the owner's image", len(got))
	}
}
