package cluster

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"mmconf/internal/mediadb"
	"mmconf/internal/netsim"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// This file is the in-process multi-node harness: N cluster nodes, each
// with its own populated store, its own netsim fault domain (listener +
// node-link dials), plus a separate client fault domain. Everything
// runs in one process under the race detector; partitions, crashes and
// drains are injected per node. Experiments use it too (E16), so it
// carries no testing.T — errors return normally.

// HarnessOptions configures NewHarness.
type HarnessOptions struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Dir is the base directory for per-node stores (required — tests
	// pass t.TempDir()); node i stores under Dir/<node-id>.
	Dir string
	// Seed feeds workload population identically on every node, so any
	// node can serve the same documents. It is also the seed tests
	// should use for churn scheduling, keeping runs reproducible.
	Seed int64
	// Unseeded lists node ids (n1..nN) whose stores start empty: no
	// workload population, an empty CAS. Such a node converges purely
	// through dataset sync — the digest-replication path — instead of
	// relying on an identically seeded database.
	Unseeded []string
	// Forward turns on transparent cross-node relaying (instead of
	// redirects) on every node.
	Forward bool
	// HeartbeatInterval and SuspectAfter set cluster timings (defaults
	// 40ms / 160ms — fast enough that failover tests finish in
	// milliseconds, slow enough for the race detector's overhead).
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	// Server is the base server configuration; the cluster hook fields
	// must be nil (the node installs its own).
	Server server.Options
	// Logf, when set, receives node lifecycle diagnostics from every
	// node, prefixed with its id (pass t.Logf).
	Logf func(format string, args ...any)
}

func (o *HarnessOptions) unseeded(id string) bool {
	for _, u := range o.Unseeded {
		if u == id {
			return true
		}
	}
	return false
}

// HarnessNode is one cluster member under harness control.
type HarnessNode struct {
	ID   string
	Addr string
	// Faults is this node's fault domain: its listener's inbound
	// connections and its outbound node-link dials. Partitioning it
	// isolates the node from peers and clients alike.
	Faults *netsim.Faults
	Node   *Node

	h        *Harness
	listener net.Listener
	db       *store.DB
	media    *mediadb.MediaDB

	// Unseeded records that this node's store started empty (see
	// HarnessOptions.Unseeded).
	Unseeded bool

	mu          sync.Mutex
	killed      bool
	partitioned bool
}

// Harness is an in-process cluster of Nodes over netsim transports.
type Harness struct {
	Nodes []*HarnessNode
	// ClientFaults is the fault domain for test clients: dial node
	// addresses through ClientFaults.DialContext (it is shaped for
	// client.AddrDialFunc) and client-side faults stay independent of
	// node-side ones.
	ClientFaults *netsim.Faults
	// Record describes the workload population (identical on every
	// node): document ids, media object ids.
	Record *workload.PopulatedRecord

	opts HarnessOptions
	wg   sync.WaitGroup
}

// NewHarness builds, populates and starts an n-node cluster. Callers
// must Close it.
func NewHarness(o HarnessOptions) (*Harness, error) {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("cluster: harness needs a base directory")
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 40 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 4 * o.HeartbeatInterval
	}
	h := &Harness{ClientFaults: netsim.NewFaults(), opts: o}

	// Listeners first: every node's config needs every address.
	addrs := make([]string, o.Nodes)
	ids := make([]string, o.Nodes)
	listeners := make([]net.Listener, o.Nodes)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.Close()
			return nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
		ids[i] = fmt.Sprintf("n%d", i+1)
	}

	for i := 0; i < o.Nodes; i++ {
		hn, err := h.startNode(ids, addrs, listeners, i)
		if err != nil {
			for _, l := range listeners[i:] {
				l.Close()
			}
			h.Close()
			return nil, err
		}
		h.Nodes = append(h.Nodes, hn)
	}
	return h, nil
}

// startNode opens node i's store, populates it, and starts its cluster
// node behind a fault-wrapped listener.
func (h *Harness) startNode(ids, addrs []string, listeners []net.Listener, i int) (*HarnessNode, error) {
	o := h.opts
	db, err := store.Open(filepath.Join(o.Dir, ids[i]), store.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, err
	}
	m, err := mediadb.Open(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	if !o.unseeded(ids[i]) {
		rec, err := workload.Populate(m, "p1", o.Seed)
		if err != nil {
			db.Close()
			return nil, err
		}
		if h.Record == nil {
			h.Record = rec
		}
	}
	faults := netsim.NewFaults()
	peers := make(map[string]string, len(ids)-1)
	for j, id := range ids {
		if j != i {
			peers[id] = addrs[j]
		}
	}
	cfg := Config{
		ID:                ids[i],
		Addr:              addrs[i],
		Peers:             peers,
		Dial:              faults.DialContext,
		Forward:           o.Forward,
		HeartbeatInterval: o.HeartbeatInterval,
		SuspectAfter:      o.SuspectAfter,
	}
	if o.Logf != nil {
		cfg.Logf = o.Logf
	}
	node, err := New(m, o.Server, cfg)
	if err != nil {
		db.Close()
		return nil, err
	}
	hn := &HarnessNode{
		ID: ids[i], Addr: addrs[i], Faults: faults, Node: node,
		h: h, listener: faults.Listener(listeners[i]), db: db, media: m,
		Unseeded: o.unseeded(ids[i]),
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		_ = node.Serve(hn.listener)
	}()
	return hn, nil
}

// Media exposes the node's media database — experiments measure
// replication transfer against its blob statistics.
func (hn *HarnessNode) Media() *mediadb.MediaDB { return hn.media }

// Addrs lists every node's client address in node order — the endpoint
// set for client.NewOverResolver.
func (h *Harness) Addrs() []string {
	addrs := make([]string, len(h.Nodes))
	for i, hn := range h.Nodes {
		addrs[i] = hn.Addr
	}
	return addrs
}

// ByID returns the harness node with the given cluster id.
func (h *Harness) ByID(id string) *HarnessNode {
	for _, hn := range h.Nodes {
		if hn.ID == id {
			return hn
		}
	}
	return nil
}

// aliveIDs is the set of nodes neither killed nor partitioned — the
// membership every connected node should converge on.
func (h *Harness) aliveIDs() []string {
	var ids []string
	for _, hn := range h.Nodes {
		hn.mu.Lock()
		ok := !hn.killed && !hn.partitioned
		hn.mu.Unlock()
		if ok {
			ids = append(ids, hn.ID)
		}
	}
	return ids
}

// Owner computes which currently alive node owns room — where the
// cluster will serve it once views converge.
func (h *Harness) Owner(room string) *HarnessNode {
	return h.ByID(NewPlacement(h.aliveIDs()).Owner(room))
}

// RoomOwnedBy derives a room name (from prefix) that the full cluster
// places on the given node — how tests pin a scenario to a node without
// hardcoding hash outcomes.
func (h *Harness) RoomOwnedBy(id, prefix string) string {
	all := make([]string, len(h.Nodes))
	for i, hn := range h.Nodes {
		all[i] = hn.ID
	}
	place := NewPlacement(all)
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if place.Owner(name) == id {
			return name
		}
	}
}

// WaitConverged blocks until every alive node's live view equals the
// alive set (and it holds quorum iff the alive set is a majority), or
// the timeout passes.
func (h *Harness) WaitConverged(timeout time.Duration) error {
	want := h.aliveIDs()
	majority := 2*len(want) > len(h.Nodes)
	deadline := time.Now().Add(timeout)
	for {
		if h.converged(want, majority) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: views did not converge on {%v} within %v", want, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *Harness) converged(want []string, majority bool) bool {
	for _, id := range want {
		hn := h.ByID(id)
		got := hn.Node.Live()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		if hn.Node.HasQuorum() != majority {
			return false
		}
	}
	return true
}

// Kill crashes the node: its listener closes, every connection in its
// fault domain resets mid-stream, and the node shuts down. Clients and
// peers observe a dead TCP transport, exactly as on a machine failure.
func (hn *HarnessNode) Kill() {
	hn.mu.Lock()
	if hn.killed {
		hn.mu.Unlock()
		return
	}
	hn.killed = true
	hn.mu.Unlock()
	hn.listener.Close()
	hn.Faults.KillAll()
	// Teardown runs off the test's critical path: the interesting part
	// of a kill is what the survivors do, not the corpse's cleanup.
	hn.h.wg.Add(1)
	go func() {
		defer hn.h.wg.Done()
		_ = hn.Node.Close()
		hn.db.Close()
	}()
}

// Drain takes the node out of service gracefully: rooms hand off to
// their post-drain owners, peers learn of the departure, members are
// told to reconnect, and only then does the node stop.
func (hn *HarnessNode) Drain(ctx context.Context) error {
	hn.mu.Lock()
	if hn.killed {
		hn.mu.Unlock()
		return fmt.Errorf("cluster: node %s already stopped", hn.ID)
	}
	hn.killed = true
	hn.mu.Unlock()
	err := hn.Node.Drain(ctx)
	hn.listener.Close()
	hn.db.Close()
	return err
}

// Partition cuts the node off: everything in its fault domain — peer
// links in and out, client connections — black-holes until Heal.
func (hn *HarnessNode) Partition() {
	hn.mu.Lock()
	hn.partitioned = true
	hn.mu.Unlock()
	hn.Faults.Partition()
}

// Heal ends the node's partition.
func (hn *HarnessNode) Heal() {
	hn.mu.Lock()
	hn.partitioned = false
	hn.mu.Unlock()
	hn.Faults.Heal()
}

// Close tears the whole harness down.
func (h *Harness) Close() {
	for _, hn := range h.Nodes {
		hn.mu.Lock()
		stopped := hn.killed
		hn.killed = true
		hn.mu.Unlock()
		if stopped {
			continue
		}
		hn.Faults.Heal()
		hn.listener.Close()
		_ = hn.Node.Close()
		hn.db.Close()
	}
	h.wg.Wait()
}
