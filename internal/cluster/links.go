package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/server"
	"mmconf/internal/wire"
)

// This file is the node-link half of the cluster: the control links
// (hello + heartbeat pings + event-log replication) every node keeps to
// every peer, and the per-client ingress links a forwarding node opens
// to relay a wrong-node client's requests — and the owner's pushes —
// byte-for-byte.

// --- control links and liveness ---

// get returns the live control link to this peer, dialing (and
// identifying with a hello) when absent or dead.
func (l *peerLink) get(ctx context.Context, n *Node) (*wire.Client, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rpc != nil {
		select {
		case <-l.rpc.Done():
			l.rpc = nil
		default:
			return l.rpc, nil
		}
	}
	conn, err := n.cfg.Dial(ctx, l.addr)
	if err != nil {
		return nil, err
	}
	rpc := wire.NewClient(conn)
	rpc.SetCallTimeout(2 * n.cfg.SuspectAfter)
	var resp proto.NodeHelloResp
	if err := rpc.CallCtx(ctx, proto.MNodeHello, &proto.NodeHelloReq{Node: n.id, Addr: n.cfg.Addr, Epoch: n.epoch}, &resp); err != nil {
		rpc.Close()
		return nil, err
	}
	if resp.Node != l.id {
		rpc.Close()
		return nil, fmt.Errorf("cluster: dialed %s expecting node %s, reached %s", l.addr, l.id, resp.Node)
	}
	l.rpc = rpc
	return rpc, nil
}

// close tears the control link down (the next get redials).
func (l *peerLink) close() {
	l.mu.Lock()
	if l.rpc != nil {
		l.rpc.Close()
		l.rpc = nil
	}
	l.mu.Unlock()
}

// pinger heartbeats one peer for the node's lifetime. Liveness is
// symmetric — each side both sends pings and observes received ones —
// so a one-way dial failure still converges.
func (n *Node) pinger(ps *peerState) {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		n.pingOnce(ps)
		select {
		case <-n.closed:
			return
		case <-t.C:
		}
	}
}

// pingOnce sends one heartbeat and folds the outcome into the liveness
// view.
func (n *Node) pingOnce(ps *peerState) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.SuspectAfter)
	defer cancel()
	rpc, err := ps.link.get(ctx, n)
	if err != nil {
		n.markDead(ps.id, false)
		return
	}
	var resp proto.NodePingResp
	if err := rpc.CallCtx(ctx, proto.MNodePing, &proto.NodePingReq{Node: n.id, Epoch: n.epoch, Draining: n.isDraining()}, &resp); err != nil {
		ps.link.close()
		n.markDead(ps.id, false)
		return
	}
	n.markLive(ps.id)
}

// handleHello identifies a dialing peer and marks it live.
func (n *Node) handleHello(ctx context.Context, p *wire.Peer, req *proto.NodeHelloReq) (*proto.NodeHelloResp, error) {
	n.markLive(req.Node)
	return &proto.NodeHelloResp{Node: n.id, Epoch: n.epoch}, nil
}

// handlePing answers a heartbeat: record the sender's liveness (or its
// drain announcement) and report this node's current live view — the
// convergence hint the ping protocol carries.
func (n *Node) handlePing(ctx context.Context, p *wire.Peer, req *proto.NodePingReq) (*proto.NodePingResp, error) {
	if req.Draining {
		n.markDead(req.Node, true)
	} else {
		n.markLive(req.Node)
	}
	place, _ := n.view()
	return &proto.NodePingResp{Node: n.id, Epoch: n.epoch, Live: place.Nodes()}, nil
}

// --- ingress forwarding ---

// ingressSet is a forwarding node's per-client bundle of relay links,
// keyed by owner node id. Each origin client gets its own connection to
// each owner it reaches through this node, so the owner sees one
// session scope per client (exactly as if the client had dialed it) and
// pushes relay back to the right client.
type ingressSet struct {
	mu    sync.Mutex
	links map[string]*ingressLink
}

// handleIngress marks the calling connection as a node-link ingress:
// requests relayed on it were originated by a client of req.Node, and
// this node must never re-forward them (one hop only — if placement
// moved again, the origin gets a redirect instead).
func (n *Node) handleIngress(ctx context.Context, p *wire.Peer, req *proto.NodeIngressReq) (*proto.NodeIngressResp, error) {
	p.SetMeta(metaIngress, req.Node)
	return &proto.NodeIngressResp{Node: n.id}, nil
}

// forward relays a room-scoped request to its owner over the origin
// client's ingress link and returns the owner's response payload
// verbatim. Owner-side handler errors relay as RemoteError (typed
// errors like redirects survive — the strings cross unmodified);
// transport failures surface as cluster-unavailable, and the dead link
// is dropped so the next request redials.
func (n *Node) forward(ctx context.Context, p *wire.Peer, owner, method string, payload []byte) (any, error) {
	enc := wire.ContextPayloadEnc(ctx)
	rpc, err := n.ingressLinkFor(ctx, p, owner)
	if err != nil {
		n.forwardErrs.Add(1)
		return nil, &wire.UnavailableError{Node: n.id, Reason: "relay to " + owner + " failed"}
	}
	body, err := rpc.CallRaw(ctx, method, enc, payload)
	if err != nil {
		if re, ok := err.(*wire.RemoteError); ok {
			// The relay worked; the owner's handler said no. Pass its
			// message through untouched.
			n.forwards.Add(1)
			return nil, re
		}
		n.forwardErrs.Add(1)
		n.dropIngressLink(p, owner, rpc)
		return nil, &wire.UnavailableError{Node: n.id, Reason: "relay to " + owner + " failed"}
	}
	n.forwards.Add(1)
	return wire.RawResult{Enc: body.Enc, Payload: body.Data}, nil
}

// ingressLinkFor returns (dialing on demand) the origin peer's relay
// link to owner. A link found dead is dropped and redialed once.
func (n *Node) ingressLinkFor(ctx context.Context, p *wire.Peer, owner string) (*wire.Client, error) {
	set := p.MetaSetDefault(metaIngressLinks, newIngressSet()).(*ingressSet)
	for attempt := 0; attempt < 2; attempt++ {
		set.mu.Lock()
		lk := set.links[owner]
		if lk == nil {
			lk = &ingressLink{ready: make(chan struct{})}
			set.links[owner] = lk
			set.mu.Unlock()
			lk.rpc, lk.err = n.dialIngress(ctx, p, owner)
			close(lk.ready)
		} else {
			set.mu.Unlock()
			select {
			case <-lk.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if lk.err != nil {
			n.dropIngressLink(p, owner, nil)
			return nil, lk.err
		}
		select {
		case <-lk.rpc.Done():
			// Stale link from a previous owner incarnation; retry fresh.
			n.dropIngressLink(p, owner, lk.rpc)
			continue
		default:
		}
		return lk.rpc, nil
	}
	return nil, fmt.Errorf("cluster: relay link to %s will not stay up", owner)
}

// ingressLink is one lazily dialed relay connection; ready closes once
// the dial (by whichever request got there first) settles.
type ingressLink struct {
	ready chan struct{}
	rpc   *wire.Client
	err   error
}

func newIngressSet() *ingressSet {
	return &ingressSet{links: make(map[string]*ingressLink)}
}

// closeAll tears down every relay link (the origin client is gone).
func (s *ingressSet) closeAll() {
	s.mu.Lock()
	links := s.links
	s.links = make(map[string]*ingressLink)
	s.mu.Unlock()
	for _, lk := range links {
		go func(lk *ingressLink) {
			<-lk.ready
			if lk.rpc != nil {
				lk.rpc.Close()
			}
		}(lk)
	}
}

// dropIngressLink forgets (and closes) the peer's relay link to owner.
func (n *Node) dropIngressLink(p *wire.Peer, owner string, rpc *wire.Client) {
	v, ok := p.Meta(metaIngressLinks)
	if !ok {
		return
	}
	set := v.(*ingressSet)
	set.mu.Lock()
	lk := set.links[owner]
	if lk != nil {
		select {
		case <-lk.ready:
		default:
			lk = nil // still dialing; leave it alone
		}
	}
	if lk != nil && (rpc == nil || lk.rpc == rpc) {
		delete(set.links, owner)
	}
	set.mu.Unlock()
	if rpc != nil {
		rpc.Close()
	}
}

// dialIngress opens a relay connection to owner on behalf of origin
// peer p: identify with an ingress mark, relay every push the owner
// sends back to the origin client byte-for-byte, and — should the link
// die while the client lives — close the client's connection so its
// reconnect supervisor redials and resumes on whatever node owns its
// rooms now.
func (n *Node) dialIngress(ctx context.Context, p *wire.Peer, owner string) (*wire.Client, error) {
	addr := n.cfg.Peers[owner]
	if addr == "" {
		return nil, fmt.Errorf("cluster: no address for node %s", owner)
	}
	dctx, cancel := context.WithTimeout(ctx, n.cfg.SuspectAfter)
	defer cancel()
	conn, err := n.cfg.Dial(dctx, addr)
	if err != nil {
		return nil, err
	}
	rpc := wire.NewClient(conn)
	rpc.SetCallTimeout(2 * n.cfg.SuspectAfter)
	var resp proto.NodeIngressResp
	if err := rpc.CallCtx(dctx, proto.MNodeIngress, &proto.NodeIngressReq{Node: n.id, PeerID: p.ID}, &resp); err != nil {
		rpc.Close()
		return nil, err
	}
	rpc.OnPush(func(method string, body wire.Body) {
		_ = p.PushRaw(method, body.Enc, body.Data)
	})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		select {
		case <-rpc.Done():
			// The owner (or the path to it) died mid-session: the client's
			// forwarded sessions are marooned. Kill its connection; the
			// resume machinery takes it from there.
			_ = p.Close()
		case <-n.closed:
			rpc.Close()
		}
	}()
	return rpc, nil
}

// --- event-log replication ---

// replicaBuffer bounds a replicated room log, mirroring the room's own
// change buffer: a standby holds at most this many trailing events.
const replicaBuffer = 1024

// replica is a standby's copy of one room's event log.
type replica struct {
	docID   string
	events  []room.Event
	seq     uint64 // log high-water (includes event-free seq advances)
	trimmed uint64 // highest sequence dropped from events
}

// apply folds one replication request in. Events merge by sequence
// (snapshot retransmits overlap incremental batches), the high-waters
// only move forward, and the buffer cap trims from the front.
func (r *replica) apply(req *proto.ReplicateReq) {
	var last uint64
	if len(r.events) > 0 {
		last = r.events[len(r.events)-1].Seq
	}
	for _, ev := range req.Events {
		if ev.Seq > last {
			r.events = append(r.events, ev)
			last = ev.Seq
		}
	}
	if req.Seq > r.seq {
		r.seq = req.Seq
	}
	if req.Trimmed > r.trimmed {
		r.trimmed = req.Trimmed
	}
	drop := 0
	for drop < len(r.events) && r.events[drop].Seq <= r.trimmed {
		drop++
	}
	if over := len(r.events) - drop - replicaBuffer; over > 0 {
		drop += over
	}
	if drop > 0 {
		if cut := r.events[drop-1].Seq; cut > r.trimmed {
			r.trimmed = cut
		}
		r.events = append([]room.Event(nil), r.events[drop:]...)
	}
}

// handleReplicate accepts an owner's event-log stream for a room this
// node stands by for. A replicated log strictly ahead of a live local
// room exposes the local copy as stale — this node served the room
// while partitioned away or before a handoff — so the local room is
// evicted rather than ever shadowing the authoritative log.
func (n *Node) handleReplicate(ctx context.Context, p *wire.Peer, req *proto.ReplicateReq) (*proto.ReplicateResp, error) {
	if snap, ok := n.srv.SnapshotRoom(req.Room); ok && req.Seq > snap.Seq {
		n.evictRoom(req.Room, "newer replicated log")
	}
	n.replMu.Lock()
	r := n.replicas[req.Room]
	if r == nil {
		r = &replica{docID: req.DocID}
		n.replicas[req.Room] = r
	}
	r.apply(req)
	seq := r.seq
	n.replMu.Unlock()
	return &proto.ReplicateResp{Seq: seq}, nil
}

// repEvent is one tap observation in flight to the replication loop.
type repEvent struct {
	room, docID  string
	ev           *room.Event
	seq, trimmed uint64
}

// repState is the owner-side replication cursor for one room.
type repState struct {
	standby string // node the log last streamed to
	dirty   bool   // lost updates or failed send: re-snapshot
	// dataStandby/dataFP are the dataset-sync cursor: the node the
	// room's media manifest last shipped to and the fingerprint of what
	// it saw. Matching both skips the resend entirely (sync.go).
	dataStandby string
	dataFP      [32]byte
}

// roomTap observes every local room event-log advance (called under the
// room lock — it must not block): queue the update for the replication
// loop, or mark the room for a full re-snapshot when the queue is full.
func (n *Node) roomTap(roomName, docID string, ev *room.Event, seq, trimmed uint64) {
	re := repEvent{room: roomName, docID: docID, seq: seq, trimmed: trimmed}
	if ev != nil {
		cp := *ev
		re.ev = &cp
	}
	select {
	case n.repCh <- re:
	default:
		n.markDirty(roomName)
	}
}

func (n *Node) markDirty(roomName string) {
	n.repMu.Lock()
	st := n.rep[roomName]
	if st == nil {
		st = &repState{}
		n.rep[roomName] = st
	}
	st.dirty = true
	n.repMu.Unlock()
}

// ForceResync marks every replicated room dirty: the next replication
// round re-sends full snapshots and dataset manifests even if nothing
// changed. Tests and experiments use it to measure the cost of a
// no-op re-sync (manifest frame, zero chunks).
func (n *Node) ForceResync() { n.markAllDirty() }

// markAllDirty forces a re-snapshot of every replicated room — the
// placement changed, so standbys may have too.
func (n *Node) markAllDirty() {
	n.repMu.Lock()
	for _, st := range n.rep {
		st.dirty = true
	}
	n.repMu.Unlock()
}

// replLoop streams the node's room event logs to each room's standby:
// incremental batches on the hot path, full snapshots after a standby
// change, a lost update, or a failed send.
func (n *Node) replLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	pending := make(map[string]*pendingRep)
	flush := func() {
		for name, pr := range pending {
			n.flushRoom(name, pr)
			delete(pending, name)
		}
	}
	for {
		select {
		case <-n.closed:
			return
		case re := <-n.repCh:
			foldRep(pending, re)
		drain:
			for i := 0; i < 1024; i++ {
				select {
				case re := <-n.repCh:
					foldRep(pending, re)
				default:
					break drain
				}
			}
			flush()
		case <-t.C:
			flush()
			n.retryDirty()
		}
	}
}

// pendingRep is a batched set of untransmitted advances for one room.
type pendingRep struct {
	docID        string
	events       []room.Event
	seq, trimmed uint64
}

func foldRep(pending map[string]*pendingRep, re repEvent) {
	pr := pending[re.room]
	if pr == nil {
		pr = &pendingRep{docID: re.docID}
		pending[re.room] = pr
	}
	if re.ev != nil {
		pr.events = append(pr.events, *re.ev)
	}
	if re.seq > pr.seq {
		pr.seq = re.seq
	}
	if re.trimmed > pr.trimmed {
		pr.trimmed = re.trimmed
	}
}

// flushRoom transmits one room's pending advances to its standby.
func (n *Node) flushRoom(name string, pr *pendingRep) {
	place, quorum := n.view()
	if !quorum {
		// A minority node must not replicate: its log may be the stale
		// side of a healed split.
		n.markDirty(name)
		return
	}
	standby := place.Standby(name)
	if standby == "" || standby == n.id {
		return
	}
	n.repMu.Lock()
	st := n.rep[name]
	if st == nil {
		st = &repState{}
		n.rep[name] = st
	}
	full := st.dirty || st.standby != standby
	n.repMu.Unlock()
	req := &proto.ReplicateReq{Room: name, DocID: pr.docID, Seq: pr.seq, Trimmed: pr.trimmed, Events: pr.events}
	if full {
		snap, ok := n.srv.SnapshotRoom(name)
		if !ok {
			// The room is gone (evicted or closed): nothing to stream.
			n.repMu.Lock()
			delete(n.rep, name)
			n.repMu.Unlock()
			return
		}
		req = &proto.ReplicateReq{Room: snap.Room, DocID: snap.DocID, Seq: snap.Seq, Trimmed: snap.Trimmed, Events: snap.Events}
	}
	if err := n.sendReplicate(standby, req); err != nil {
		n.markDirty(name)
		return
	}
	n.repMu.Lock()
	st.standby = standby
	if full {
		st.dirty = false
	}
	n.repMu.Unlock()
	// The log landed; make sure the standby can also materialize the
	// room's media. Manifests only — the standby pulls what it lacks.
	n.syncDataset(name, req.DocID, standby, full)
}

// retryDirty re-flushes rooms whose replication fell behind.
func (n *Node) retryDirty() {
	n.repMu.Lock()
	var names []string
	for name, st := range n.rep {
		if st.dirty {
			names = append(names, name)
		}
	}
	n.repMu.Unlock()
	for _, name := range names {
		n.flushRoom(name, &pendingRep{})
	}
}

// sendReplicate ships one replication request over the control link.
func (n *Node) sendReplicate(target string, req *proto.ReplicateReq) error {
	n.mu.Lock()
	ps := n.peers[target]
	n.mu.Unlock()
	if ps == nil {
		return fmt.Errorf("cluster: unknown replication target %s", target)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.SuspectAfter)
	defer cancel()
	rpc, err := ps.link.get(ctx, n)
	if err != nil {
		return err
	}
	var resp proto.ReplicateResp
	if err := rpc.CallCtx(ctx, proto.MNodeReplicate, req, &resp); err != nil {
		return err
	}
	n.replicated.Add(1)
	return nil
}

// sendSnapshot best-effort ships a full room snapshot to target (the
// drain/handoff path).
func (n *Node) sendSnapshot(target string, snap server.RoomSnapshot) {
	if err := n.sendReplicate(target, &proto.ReplicateReq{
		Room: snap.Room, DocID: snap.DocID, Seq: snap.Seq, Trimmed: snap.Trimmed, Events: snap.Events,
	}); err != nil {
		n.logf("cluster %s: snapshot of %q to %s failed: %v", n.id, snap.Room, target, err)
	}
}
