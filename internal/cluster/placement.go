// Package cluster turns N mmconf server processes into one
// room-sharded conferencing service: every room name hashes to an
// owning node (rendezvous hashing over the live member set), a routing
// tier answers requests that land on the wrong node with a redirect or
// a transparent forward to the owner, room event logs replicate to the
// room's natural failover standby, and ownership hands off on drain or
// crash so detached clients resume — exactly once — on the new owner.
//
// The package is built cluster-first as an in-process harness over
// netsim (see Harness): nodes are real servers on real listeners, but
// every link runs through a fault controller, so partitions, crashes
// and latency are injected deterministically under `go test -race`.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Placement maps room names onto a set of node ids with rendezvous
// (highest-random-weight) hashing: for a room, every node's
// (node, room) pair is hashed and nodes are ranked by descending
// weight. The rank-1 node owns the room; the rank-2 node is the
// natural failover standby — when the owner leaves the set, exactly
// its rooms move, each to its own standby, and nothing else shifts.
// A Placement is immutable once built; derive a new one per membership
// change.
type Placement struct {
	nodes []string
}

// NewPlacement builds a placement over the given node ids (order
// irrelevant, duplicates ignored). An empty set is legal — Owner
// returns "" and Rank returns nil.
func NewPlacement(nodes []string) *Placement {
	seen := make(map[string]struct{}, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if _, dup := seen[n]; dup || n == "" {
			continue
		}
		seen[n] = struct{}{}
		uniq = append(uniq, n)
	}
	sort.Strings(uniq) // deterministic iteration; weights decide placement
	return &Placement{nodes: uniq}
}

// Nodes returns the member ids the placement ranks over (sorted).
func (p *Placement) Nodes() []string { return append([]string(nil), p.nodes...) }

// Len reports the number of member nodes.
func (p *Placement) Len() int { return len(p.nodes) }

// Has reports whether node is a member.
func (p *Placement) Has(node string) bool {
	for _, n := range p.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// weight scores one (node, room) pair: FNV-1a over node‖0x00‖room,
// finished with the splitmix64 mixer. The finalizer matters — raw
// FNV-1a is multiplicative enough that one node's weights dominate
// another's across most rooms (similar room names barely avalanche),
// which wrecks both balance and minimal movement; the mixer restores
// per-pair independence, so 3 nodes × 1k rooms balance within a few
// percent (the property test pins 10%).
func weight(node, room string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(room))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the node owning room — the highest-weight member ("" on
// an empty placement). Every node computes the same answer from the
// same member set; no coordination, no stored map.
func (p *Placement) Owner(room string) string {
	var best string
	var bw uint64
	for _, n := range p.nodes {
		if w := weight(n, room); best == "" || w > bw || (w == bw && n < best) {
			best, bw = n, w
		}
	}
	return best
}

// Rank returns every member ordered by descending preference for room:
// Rank(room)[0] is the owner, Rank(room)[1] the failover standby. Ties
// break by node id so the order is total and identical on every node.
func (p *Placement) Rank(room string) []string {
	type scored struct {
		node string
		w    uint64
	}
	ss := make([]scored, len(p.nodes))
	for i, n := range p.nodes {
		ss[i] = scored{node: n, w: weight(n, room)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].w != ss[j].w {
			return ss[i].w > ss[j].w
		}
		return ss[i].node < ss[j].node
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.node
	}
	return out
}

// Standby returns the rank-2 node for room ("" with fewer than two
// members) — the node event-log replication streams to, and the owner
// every client lands on after the rank-1 node dies.
func (p *Placement) Standby(room string) string {
	r := p.Rank(room)
	if len(r) < 2 {
		return ""
	}
	return r[1]
}
