package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func roomNames(n int) []string {
	rooms := make([]string, n)
	for i := range rooms {
		rooms[i] = fmt.Sprintf("room-%04d", i)
	}
	return rooms
}

// TestPlacementBalance pins the satellite acceptance number: 3 nodes ×
// 1k rooms balance within 10% of the ideal share.
func TestPlacementBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	p := NewPlacement(nodes)
	counts := make(map[string]int)
	const nRooms = 1000
	for _, r := range roomNames(nRooms) {
		counts[p.Owner(r)]++
	}
	ideal := float64(nRooms) / float64(len(nodes))
	for _, n := range nodes {
		got := float64(counts[n])
		if dev := (got - ideal) / ideal; dev > 0.10 || dev < -0.10 {
			t.Errorf("node %s owns %d rooms: %+.1f%% from ideal %.0f (want within 10%%)",
				n, counts[n], dev*100, ideal)
		}
	}
	t.Logf("ownership: %v (ideal %.0f)", counts, ideal)
}

// TestPlacementStability pins minimal movement: when a node joins, the
// only rooms that move are those the new node now owns; when a node
// leaves, only that node's rooms move — and each lands on what was its
// rank-2 standby.
func TestPlacementStability(t *testing.T) {
	rooms := roomNames(1000)
	three := NewPlacement([]string{"n1", "n2", "n3"})
	four := NewPlacement([]string{"n1", "n2", "n3", "n4"})

	// Join: a room may change owner only by moving TO the joiner.
	moved := 0
	for _, r := range rooms {
		before, after := three.Owner(r), four.Owner(r)
		if before != after {
			if after != "n4" {
				t.Fatalf("room %s moved %s → %s on n4's join (only moves to n4 are minimal)", r, before, after)
			}
			moved++
		}
	}
	// The joiner should take about a quarter of the rooms — not none,
	// not a reshuffle.
	if moved < 150 || moved > 350 {
		t.Errorf("n4 join moved %d/1000 rooms; want ≈250 (minimal, balanced movement)", moved)
	}

	// Leave: only n3's rooms move, each to its previous standby.
	two := NewPlacement([]string{"n1", "n2"})
	for _, r := range rooms {
		before, after := three.Owner(r), two.Owner(r)
		if before != "n3" {
			if before != after {
				t.Fatalf("room %s moved %s → %s though n3 (its non-owner) left", r, before, after)
			}
			continue
		}
		if want := three.Standby(r); after != want {
			t.Fatalf("room %s owned by departed n3 landed on %s; want its standby %s", r, after, want)
		}
	}
}

// TestPlacementProperties quick-checks the structural invariants on
// arbitrary member sets and room names: determinism, membership of the
// result, rank totality, and owner == rank[0].
func TestPlacementProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(1)),
	}
	prop := func(nodeSeeds []uint8, room string) bool {
		nodes := make([]string, 0, len(nodeSeeds))
		for _, s := range nodeSeeds {
			nodes = append(nodes, fmt.Sprintf("node-%d", s%8))
		}
		p := NewPlacement(nodes)
		rank := p.Rank(room)
		if len(rank) != p.Len() {
			return false
		}
		seen := make(map[string]struct{}, len(rank))
		for _, n := range rank {
			if !p.Has(n) {
				return false
			}
			if _, dup := seen[n]; dup {
				return false
			}
			seen[n] = struct{}{}
		}
		owner := p.Owner(room)
		if p.Len() == 0 {
			return owner == ""
		}
		if owner != rank[0] {
			return false
		}
		// Deterministic under re-construction with shuffled input order.
		shuffled := append([]string(nil), nodes...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := int(weight(room, shuffled[i]) % uint64(i+1))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		return NewPlacement(shuffled).Owner(room) == owner
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementChurnConvergence walks a seeded random membership churn
// sequence and checks that any two placements built from the same live
// set agree on every room — the property split-brain rejection rests
// on once a partition heals.
func TestPlacementChurnConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	all := []string{"n1", "n2", "n3", "n4", "n5"}
	rooms := roomNames(100)
	for step := 0; step < 50; step++ {
		live := make([]string, 0, len(all))
		for _, n := range all {
			if rng.Intn(4) > 0 { // each node up with p=0.75
				live = append(live, n)
			}
		}
		a := NewPlacement(live)
		// Same set presented in reverse and with duplicates.
		rev := make([]string, 0, 2*len(live))
		for i := len(live) - 1; i >= 0; i-- {
			rev = append(rev, live[i], live[i])
		}
		b := NewPlacement(rev)
		for _, r := range rooms {
			if a.Owner(r) != b.Owner(r) || a.Standby(r) != b.Standby(r) {
				t.Fatalf("step %d: placements over the same live set %v disagree on %s", step, live, r)
			}
		}
	}
}
