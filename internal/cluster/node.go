package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/server"
	"mmconf/internal/wire"
)

// Config describes one node's place in the cluster.
type Config struct {
	// ID is this node's cluster-unique name; Addr the client address it
	// advertises in redirects.
	ID   string
	Addr string
	// Peers maps every other node's id to its client address. The same
	// address serves clients and node links — node methods ride the
	// ordinary wire protocol at control priority.
	Peers map[string]string
	// Dial opens node-link connections (nil: plain TCP). The harness
	// passes a netsim-faulted dialer here so node links partition and
	// die with their node.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Forward makes this node relay wrong-node requests from protocol-v2
	// clients transparently to the owner instead of redirecting (gob
	// clients always get redirects — a relay must preserve payload
	// encodings end-to-end, which only v2 frames carry). Joins and
	// mid-session operations forward alike; pushed events relay back
	// over the same per-client link.
	Forward bool
	// HeartbeatInterval paces node pings (default 500ms); SuspectAfter
	// is how stale a peer's last pong may be before it is presumed dead
	// (default 3× the interval).
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	// Logf, when set, receives node lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) normalize() error {
	if c.ID == "" {
		return fmt.Errorf("cluster: node needs an ID")
	}
	if _, self := c.Peers[c.ID]; self {
		return fmt.Errorf("cluster: node %s lists itself as a peer", c.ID)
	}
	if c.Dial == nil {
		c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	return nil
}

// Metrics counts the node's routing and replication activity.
type Metrics struct {
	// Redirects counts requests answered with a redirect to the owner;
	// Forwards counts requests relayed to the owner over a node link;
	// ForwardErrors counts relays that failed at the transport (the
	// origin client was told the cluster is unavailable).
	Redirects, Forwards, ForwardErrors int64
	// Unavailable counts requests refused for lack of a cluster
	// majority (split-brain rejection) or mid-drain.
	Unavailable int64
	// Replicated counts replication RPCs sent; Evictions counts local
	// rooms dropped because placement moved them to another node.
	Replicated, Evictions int64
	// ManifestSyncs counts dataset manifest frames sent to standbys;
	// the Sync* counters aggregate what this node adopted as a standby:
	// rows applied, and chunks (with their payload bytes) pulled because
	// its CAS lacked them. An unchanged resend moves none of the three.
	ManifestSyncs                                           int64
	SyncRowsAdopted, SyncChunksPulled, SyncChunkBytesPulled int64
}

// Node is one cluster member: an interaction server plus the routing
// tier that steers each room to its rendezvous owner, the liveness view
// that gates serving on a majority, and the event-log replication that
// makes failover resume exact. Build with New, serve with Serve.
type Node struct {
	cfg   Config
	id    string
	epoch uint64
	srv   *server.Server
	db    *mediadb.MediaDB

	mu       sync.Mutex
	peers    map[string]*peerState
	place    *Placement
	placeKey string
	lastRec  string // live-set key the reconciler last acted on
	// roomPeers tracks, per locally served room, the connections with a
	// member in it — the set reconciliation disconnects when ownership
	// moves away.
	roomPeers map[string]map[*wire.Peer]struct{}
	draining  bool

	// replicas holds event logs replicated here for rooms this node
	// stands by for; becoming owner consumes them as room seeds.
	replMu   sync.Mutex
	replicas map[string]*replica

	// repCh carries owner-side event-log advances to the replication
	// loop; rep tracks per-room replication state.
	repCh chan repEvent
	repMu sync.Mutex
	rep   map[string]*repState

	closed    chan struct{}
	closeOnce sync.Once
	recNotify chan struct{}
	wg        sync.WaitGroup

	redirects, forwards, forwardErrs  atomic.Int64
	unavailable, replicated           atomic.Int64
	evictions, manifestSyncs          atomic.Int64
	syncRowsAdopted, syncChunksPulled atomic.Int64
	syncChunkBytes                    atomic.Int64
}

// peerState is this node's view of one configured peer.
type peerState struct {
	id, addr string
	link     peerLink
	// lastSeen is the last successful contact (zero: presumed dead);
	// draining marks a peer that announced an orderly departure.
	lastSeen time.Time
	draining bool
}

// peerLink is the lazily dialed control connection to one peer —
// heartbeats and replication share it. It carries its own lock so link
// churn never contends with the liveness view.
type peerLink struct {
	id, addr string
	mu       sync.Mutex
	rpc      *wire.Client
}

// New builds a cluster node around a server constructed with opts. The
// cluster installs its routing interceptor, room seed/tap hooks and
// peer-close hook into opts; the caller's own values for those fields
// must be nil. Call Serve to accept, Close (or Drain) to stop.
func New(db *mediadb.MediaDB, opts server.Options, cfg Config) (*Node, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if opts.Intercept != nil || opts.RoomSeed != nil || opts.RoomTap != nil || opts.OnPeerClose != nil {
		return nil, fmt.Errorf("cluster: server options already carry cluster hooks")
	}
	n := &Node{
		cfg:       cfg,
		id:        cfg.ID,
		db:        db,
		epoch:     uint64(time.Now().UnixNano()),
		peers:     make(map[string]*peerState, len(cfg.Peers)),
		roomPeers: make(map[string]map[*wire.Peer]struct{}),
		replicas:  make(map[string]*replica),
		repCh:     make(chan repEvent, 4096),
		rep:       make(map[string]*repState),
		closed:    make(chan struct{}),
		recNotify: make(chan struct{}, 1),
	}
	for id, addr := range cfg.Peers {
		n.peers[id] = &peerState{id: id, addr: addr, link: peerLink{id: id, addr: addr}}
	}
	opts.NodeID = cfg.ID
	opts.Intercept = n.intercept
	opts.RoomSeed = n.roomSeed
	opts.RoomTap = n.roomTap
	opts.OnPeerClose = n.peerClosed
	srv, err := server.NewWith(db, opts)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	srv.Register(proto.MNodeHello, wire.Typed(n.handleHello))
	srv.Register(proto.MNodePing, wire.Typed(n.handlePing))
	srv.Register(proto.MNodeIngress, wire.Typed(n.handleIngress))
	srv.Register(proto.MNodeReplicate, wire.Typed(n.handleReplicate))
	srv.Register(proto.MNodeSyncManifest, wire.Typed(n.handleSyncManifest))
	srv.Register(proto.MNodeFetchChunks, wire.Typed(n.handleFetchChunks))
	for _, ps := range n.peers {
		n.wg.Add(1)
		go n.pinger(ps)
	}
	n.wg.Add(1)
	go n.replLoop()
	n.wg.Add(1)
	go n.reconciler()
	return n, nil
}

// Server exposes the node's interaction server (stats, shutdown seams).
func (n *Node) Server() *server.Server { return n.srv }

// ID returns the node's cluster id.
func (n *Node) ID() string { return n.id }

// Metrics returns a snapshot of the node's routing counters.
func (n *Node) Metrics() Metrics {
	return Metrics{
		Redirects:     n.redirects.Load(),
		Forwards:      n.forwards.Load(),
		ForwardErrors: n.forwardErrs.Load(),
		Unavailable:   n.unavailable.Load(),
		Replicated:    n.replicated.Load(),
		Evictions:     n.evictions.Load(),

		ManifestSyncs:        n.manifestSyncs.Load(),
		SyncRowsAdopted:      n.syncRowsAdopted.Load(),
		SyncChunksPulled:     n.syncChunksPulled.Load(),
		SyncChunkBytesPulled: n.syncChunkBytes.Load(),
	}
}

// Serve accepts client and node-link connections on l until it closes.
func (n *Node) Serve(l net.Listener) error { return n.srv.Serve(l) }

// Close stops the node abruptly: background loops halt, node links
// close, and the server shuts down with its default drain budget.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { close(n.closed) })
	err := n.srv.Close()
	n.mu.Lock()
	peers := make([]*peerState, 0, len(n.peers))
	for _, ps := range n.peers {
		peers = append(peers, ps)
	}
	n.mu.Unlock()
	for _, ps := range peers {
		ps.link.close()
	}
	n.wg.Wait()
	return err
}

// Drain hands the node's rooms off and shuts down: peers learn the node
// is leaving (so placement moves before clients reconnect), every local
// room's event log is pushed to its post-drain owner and standby, then
// the server shuts down gracefully — members get the shutdown
// announcement, reconnect, follow the redirect, and resume on the new
// owner from the replicated log.
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	n.draining = true
	peers := make([]*peerState, 0, len(n.peers))
	for _, ps := range n.peers {
		peers = append(peers, ps)
	}
	n.mu.Unlock()
	// Announce the departure on every live link.
	for _, ps := range peers {
		pctx, cancel := context.WithTimeout(ctx, n.cfg.SuspectAfter)
		if rpc, err := ps.link.get(pctx, n); err == nil {
			var resp proto.NodePingResp
			_ = rpc.CallCtx(pctx, proto.MNodePing, &proto.NodePingReq{Node: n.id, Epoch: n.epoch, Draining: true}, &resp)
		}
		cancel()
	}
	// Final flush: the post-drain placement excludes this node.
	after := n.placementWithout(n.id)
	for _, snap := range n.srv.SnapshotRooms() {
		for _, target := range []string{after.Owner(snap.Room), after.Standby(snap.Room)} {
			if target == "" || target == n.id {
				continue
			}
			n.sendSnapshot(target, snap)
		}
	}
	n.closeOnce.Do(func() { close(n.closed) })
	err := n.srv.Shutdown(ctx)
	for _, ps := range peers {
		ps.link.close()
	}
	n.wg.Wait()
	return err
}

// placementWithout builds the placement over the current live set minus
// the given node.
func (n *Node) placementWithout(id string) *Placement {
	place, _ := n.view()
	nodes := make([]string, 0, place.Len())
	for _, m := range place.Nodes() {
		if m != id {
			nodes = append(nodes, m)
		}
	}
	return NewPlacement(nodes)
}

func (n *Node) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// view computes the node's current placement and whether it holds a
// cluster majority. Liveness is heartbeat-driven: a peer is live if it
// answered (or sent) a ping within SuspectAfter and has not announced a
// drain. The placement is cached per distinct live set.
func (n *Node) view() (*Placement, bool) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	live := []string{n.id}
	for id, ps := range n.peers {
		if !ps.draining && !ps.lastSeen.IsZero() && now.Sub(ps.lastSeen) <= n.cfg.SuspectAfter {
			live = append(live, id)
		}
	}
	sort.Strings(live)
	key := strings.Join(live, ",")
	if key != n.placeKey {
		n.placeKey = key
		n.place = NewPlacement(live)
	}
	total := 1 + len(n.peers)
	return n.place, 2*len(live) > total
}

// Live returns the node's current view of the live member set (itself
// included), sorted — the harness and tests assert convergence on it.
func (n *Node) Live() []string {
	place, _ := n.view()
	return place.Nodes()
}

// HasQuorum reports whether this node currently holds a cluster
// majority and is therefore willing to serve room-scoped requests.
func (n *Node) HasQuorum() bool {
	_, q := n.view()
	return q
}

// OwnerOf returns which node this one believes owns room, and whether
// that belief is backed by a majority view.
func (n *Node) OwnerOf(room string) (string, bool) {
	place, q := n.view()
	return place.Owner(room), q
}

// markLive records contact with a peer and nudges the reconciler.
func (n *Node) markLive(id string) {
	n.mu.Lock()
	if ps, ok := n.peers[id]; ok {
		ps.lastSeen = time.Now()
		ps.draining = false
	}
	n.mu.Unlock()
	n.kickReconcile()
}

// markDead forgets a peer immediately (failed ping or drain notice) —
// faster convergence than waiting out SuspectAfter.
func (n *Node) markDead(id string, draining bool) {
	n.mu.Lock()
	if ps, ok := n.peers[id]; ok {
		ps.lastSeen = time.Time{}
		ps.draining = draining
	}
	n.mu.Unlock()
	n.kickReconcile()
}

// kickReconcile schedules a reconciliation pass without blocking the
// caller (ping handlers and pingers call it; the reconciler's snapshot
// sends must never delay a heartbeat).
func (n *Node) kickReconcile() {
	select {
	case n.recNotify <- struct{}{}:
	default:
	}
}

// reconciler runs placement reconciliation off the heartbeat paths. It
// also ticks on the suspect interval so silent staleness (a peer that
// just stopped answering) is acted on without a state-change nudge.
func (n *Node) reconciler() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.SuspectAfter)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-n.recNotify:
		case <-t.C:
		}
		n.reconcile()
	}
}

// reconcile reacts to a placement change: rooms this node no longer
// owns are handed off (final snapshot to the new owner), dropped
// locally, and their member connections closed so clients reconnect to
// the right node. Single-ownership rests on this: a placement-moved
// room never keeps serving from its old node.
func (n *Node) reconcile() {
	place, quorum := n.view()
	n.mu.Lock()
	key := n.placeKey
	if key == n.lastRec {
		n.mu.Unlock()
		return
	}
	n.lastRec = key
	n.mu.Unlock()
	n.logf("cluster %s: live set now {%s} quorum=%v", n.id, key, quorum)
	for _, name := range n.srv.Rooms() {
		owner := place.Owner(name)
		if owner == n.id || owner == "" {
			continue
		}
		if quorum {
			if snap, ok := n.srv.SnapshotRoom(name); ok {
				n.sendSnapshot(owner, snap)
			}
		}
		n.evictRoom(name, "ownership moved to "+owner)
	}
	// Standbys may have changed: force the next replication round to
	// re-snapshot every room this node still owns.
	n.markAllDirty()
}

// evictRoom drops a local room and disconnects its members' peers.
func (n *Node) evictRoom(name, why string) {
	if !n.srv.DropRoom(name) {
		return
	}
	n.evictions.Add(1)
	n.logf("cluster %s: evicting room %q (%s)", n.id, name, why)
	n.mu.Lock()
	peers := n.roomPeers[name]
	delete(n.roomPeers, name)
	n.mu.Unlock()
	for p := range peers {
		_ = p.Close()
	}
}

// trackRoomPeer records that peer has a member in a locally served room.
func (n *Node) trackRoomPeer(name string, p *wire.Peer) {
	n.mu.Lock()
	set := n.roomPeers[name]
	if set == nil {
		set = make(map[*wire.Peer]struct{})
		n.roomPeers[name] = set
	}
	set[p] = struct{}{}
	n.mu.Unlock()
}

// peerClosed is the server's peer-teardown hook: forget the peer's room
// tracking and tear down any ingress links relaying for it (the owner
// node sees those conns die and detaches the forwarded sessions, which
// stay resumable for the grace period).
func (n *Node) peerClosed(p *wire.Peer) {
	n.mu.Lock()
	for name, set := range n.roomPeers {
		delete(set, p)
		if len(set) == 0 {
			delete(n.roomPeers, name)
		}
	}
	n.mu.Unlock()
	if v, ok := p.Meta(metaIngressLinks); ok {
		v.(*ingressSet).closeAll()
	}
}

// --- routing ---

// metaIngress marks a server-side peer as a node-link ingress (value:
// origin node id); metaIngressLinks holds a client peer's per-owner
// relay links on the forwarding node.
const (
	metaIngress      = "cluster.ingress"
	metaIngressLinks = "cluster.links"
)

// intercept is the routing tier, inserted between tracing and admission
// (a redirected or forwarded request never consumes an admission slot).
// Room-scoped requests are steered to the room's owner: served here,
// redirected, or — for v2 clients on a forwarding node — relayed
// transparently. Requests with no room scope (object fetches, stats)
// serve anywhere.
func (n *Node) intercept(next wire.Handler) wire.Handler {
	return func(ctx context.Context, p *wire.Peer, payload []byte) (any, error) {
		method, _ := wire.ContextMethod(ctx)
		if !proto.RoomScoped(method) {
			return next(ctx, p, payload)
		}
		roomName, ok := proto.RoomOf(method, wire.ContextPayloadEnc(ctx), payload)
		if !ok {
			// Undecodable: let the handler produce the real error.
			return next(ctx, p, payload)
		}
		if n.isDraining() {
			n.unavailable.Add(1)
			return nil, &wire.UnavailableError{Node: n.id, Reason: "draining"}
		}
		place, quorum := n.view()
		if !quorum {
			// Split-brain rejection: a minority node must not serve (or
			// relay) room mutations — the majority side may already have
			// moved the room and be accepting writes.
			n.unavailable.Add(1)
			return nil, &wire.UnavailableError{Node: n.id, Reason: "no cluster majority"}
		}
		owner := place.Owner(roomName)
		if owner == n.id || owner == "" {
			result, err := next(ctx, p, payload)
			if err == nil && method == proto.MJoinRoom {
				n.trackRoomPeer(roomName, p)
			}
			return result, err
		}
		if _, ingress := p.Meta(metaIngress); ingress {
			// A relayed request landing on a non-owner: placement moved
			// under the relay. The redirect travels back through the
			// forwarding node verbatim; the origin client follows it.
			n.redirects.Add(1)
			return nil, n.redirectTo(owner)
		}
		if n.cfg.Forward && p.ProtoVersion() >= wire.ProtoV2 {
			return n.forward(ctx, p, owner, method, payload)
		}
		n.redirects.Add(1)
		return nil, n.redirectTo(owner)
	}
}

// redirectTo builds the typed redirect for the owner node.
func (n *Node) redirectTo(owner string) error {
	return &wire.RedirectError{Node: owner, Addr: n.cfg.Peers[owner]}
}

// roomSeed is the server's room-construction hook: a room being built
// here that has a replicated log (this node was its standby, or
// received a handoff snapshot) restores that log first, so resuming
// clients replay their outage exactly — same sequences, no duplicates.
func (n *Node) roomSeed(roomName string) (server.RoomSnapshot, bool) {
	n.replMu.Lock()
	defer n.replMu.Unlock()
	r := n.replicas[roomName]
	if r == nil {
		return server.RoomSnapshot{}, false
	}
	// The live room becomes the authority; the replica entry would only
	// go stale under it.
	delete(n.replicas, roomName)
	return server.RoomSnapshot{
		Room:    roomName,
		DocID:   r.docID,
		Seq:     r.seq,
		Trimmed: r.trimmed,
		Events:  r.events,
	}, true
}
