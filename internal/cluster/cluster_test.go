package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/room"
	"mmconf/internal/server"
	"mmconf/internal/wire"
)

// The cluster acceptance suite. Everything here runs in-process over
// netsim transports, under -race, with seeded population — the failure
// schedules are explicit (kill/partition/drain calls), so runs are
// reproducible without real sleep-for-luck timing.

const harnessSeed = 7

func newHarness(t *testing.T, nodes int, forward bool) *Harness {
	t.Helper()
	h, err := NewHarness(HarnessOptions{
		Nodes:   nodes,
		Dir:     t.TempDir(),
		Seed:    harnessSeed,
		Forward: forward,
		Server:  server.Options{SessionGrace: 5 * time.Second},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return h
}

// fastFailover is the client policy for failover tests: aggressive
// redial, bounded calls (a black-holed node must cost a timeout, not a
// hang), unlimited attempts.
func fastFailover() client.Options {
	return client.Options{
		Reconnect:      true,
		MaxAttempts:    -1,
		Backoff:        client.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: -1},
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    time.Second,
	}
}

// clusterClient connects through the harness's client fault domain with
// the full endpoint set.
func clusterClient(t *testing.T, h *Harness, user string) *client.Client {
	t.Helper()
	c, err := client.NewOverResolver(h.ClientFaults.DialContext, h.Addrs(), user, fastFailover())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// collector tails a client's event stream so events survive reconnects
// for later inspection.
type collector struct {
	mu  sync.Mutex
	evs []room.Event
}

func collect(c *client.Client) *collector {
	col := &collector{}
	go func() {
		for ev := range c.Events() {
			col.mu.Lock()
			col.evs = append(col.evs, ev)
			col.mu.Unlock()
		}
	}()
	return col
}

func (col *collector) snapshot() []room.Event {
	col.mu.Lock()
	defer col.mu.Unlock()
	return append([]room.Event(nil), col.evs...)
}

// chats extracts the EvChat texts, in arrival order.
func (col *collector) chats() []string {
	var texts []string
	for _, ev := range col.snapshot() {
		if ev.Kind == room.EvChat {
			texts = append(texts, ev.Text)
		}
	}
	return texts
}

// waitChats blocks until the collector has seen every listed chat text.
func (col *collector) waitChats(t *testing.T, want ...string) {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		seen := make(map[string]bool)
		for _, text := range col.chats() {
			seen[text] = true
		}
		missing := 0
		for _, w := range want {
			if !seen[w] {
				missing++
			}
		}
		if missing == 0 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("chats %v never all arrived; got %v", want, col.chats())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// assertExactChats is the exactly-once check: the collector saw
// precisely the given texts, in order, each once, with strictly
// increasing sequence numbers.
func (col *collector) assertExactChats(t *testing.T, want ...string) {
	t.Helper()
	got := col.chats()
	if len(got) != len(want) {
		t.Fatalf("chat texts = %v, want exactly %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chat[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	var last uint64
	for _, ev := range col.snapshot() {
		if ev.Seq == 0 {
			continue
		}
		if ev.Seq <= last {
			t.Fatalf("event seq went %d -> %d: replay duplicated or reordered", last, ev.Seq)
		}
		last = ev.Seq
	}
}

// mustChat sends a chat, retrying through reconnects, redirects and
// handoffs until it lands.
func mustChat(t *testing.T, s *client.Session, text string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := s.Chat(text)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("chat %q never landed: %v", text, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// roomHolders lists which nodes currently hold a live copy of room —
// the single-ownership assertion reads this.
func (h *Harness) roomHolders(name string) []string {
	var ids []string
	for _, hn := range h.Nodes {
		hn.mu.Lock()
		dead := hn.killed
		hn.mu.Unlock()
		if dead {
			continue
		}
		for _, r := range hn.Node.srv.Rooms() {
			if r == name {
				ids = append(ids, hn.ID)
			}
		}
	}
	return ids
}

// waitSoleHolder blocks until exactly one live node holds the room and
// returns its id.
func (h *Harness) waitSoleHolder(t *testing.T, name string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		holders := h.roomHolders(name)
		if len(holders) == 1 {
			return holders[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("room %q held by %v, want exactly one node", name, holders)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitReplicated blocks until the room's current standby has replicated
// the owner's log at least through minSeq — the precondition for a
// seq-exact failover (an async replica is allowed to trail between
// flushes; tests that kill the owner wait out the trail first).
func (h *Harness) waitReplicated(t *testing.T, name string, minSeq uint64) {
	t.Helper()
	standbyID := NewPlacement(h.aliveIDs()).Standby(name)
	if standbyID == "" {
		t.Fatalf("room %q has no standby", name)
	}
	standby := h.ByID(standbyID).Node
	deadline := time.Now().Add(5 * time.Second)
	for {
		standby.replMu.Lock()
		r := standby.replicas[name]
		var seq uint64
		if r != nil {
			seq = r.seq
		}
		standby.replMu.Unlock()
		if seq >= minSeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby %s replica of %q at seq %d, want >= %d", standbyID, name, seq, minSeq)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ownerSeq reads the owner's current log head for the room.
func (h *Harness) ownerSeq(t *testing.T, name string) uint64 {
	t.Helper()
	snap, ok := h.Owner(name).Node.srv.SnapshotRoom(name)
	if !ok {
		t.Fatalf("owner of %q holds no live room", name)
	}
	return snap.Seq
}

// TestOwnerRoutingUnderRedirects: one room per node, every client
// enters the cluster at node 1. Joins for rooms owned elsewhere must be
// redirected and each room served only by its rendezvous owner.
func TestOwnerRoutingUnderRedirects(t *testing.T) {
	h := newHarness(t, 3, false)
	for i, hn := range h.Nodes {
		roomName := h.RoomOwnedBy(hn.ID, "ward")
		c := clusterClient(t, h, fmt.Sprintf("dr-%d", i))
		s, _, err := c.Join(roomName, "p1", 0)
		if err != nil {
			t.Fatalf("join %q (owner %s): %v", roomName, hn.ID, err)
		}
		col := collect(c)
		mustChat(t, s, "rounds-"+hn.ID)
		col.waitChats(t, "rounds-"+hn.ID)
		if holder := h.waitSoleHolder(t, roomName); holder != hn.ID {
			t.Errorf("room %q held by %s, want owner %s", roomName, holder, hn.ID)
		}
		if i > 0 {
			// Rooms owned by n2/n3 were reached through a redirect: the
			// resolver enters at n1 (first endpoint).
			if got := c.ReconnectStats().Redirects; got == 0 {
				t.Errorf("client for %s-owned room followed no redirects", hn.ID)
			}
		}
	}
	var redirects int64
	for _, hn := range h.Nodes {
		redirects += hn.Node.Metrics().Redirects
	}
	if redirects < 2 {
		t.Errorf("cluster redirects = %d, want >= 2 (two rooms entered via a non-owner)", redirects)
	}
}

// TestForwardingServesThroughWrongNode: with Forward on, v2 clients
// pinned to a non-owner are relayed transparently — the conversation
// flows (pushes included) while the room lives only on its owner, and
// a legacy gob client on the same node still gets a redirect.
func TestForwardingServesThroughWrongNode(t *testing.T) {
	h := newHarness(t, 3, true)
	owner := h.Nodes[1] // n2
	relay := h.Nodes[0] // n1
	roomName := h.RoomOwnedBy(owner.ID, "board")

	pinned := func(user string, opts client.Options) *client.Client {
		c, err := client.NewOverResolver(h.ClientFaults.DialContext, []string{relay.Addr}, user, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	alice := pinned("alice", fastFailover())
	bob := pinned("bob", fastFailover())
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatalf("alice join through relay: %v", err)
	}
	if _, _, err := bob.Join(roomName, "p1", 0); err != nil {
		t.Fatalf("bob join through relay: %v", err)
	}
	colB := collect(bob)
	mustChat(t, sa, "consult-1")
	mustChat(t, sa, "consult-2")
	colB.waitChats(t, "consult-1", "consult-2")
	colB.assertExactChats(t, "consult-1", "consult-2")

	if holder := h.waitSoleHolder(t, roomName); holder != owner.ID {
		t.Errorf("room %q held by %s, want owner %s", roomName, holder, owner.ID)
	}
	if f := relay.Node.Metrics().Forwards; f < 4 {
		t.Errorf("relay forwards = %d, want >= 4 (two joins + two chats)", f)
	}
	if alice.ReconnectStats().Redirects != 0 {
		t.Errorf("v2 client followed redirects in forward mode")
	}

	// A gob client cannot be relayed (its frames don't carry encodings
	// end-to-end), so the same node redirects it to the owner.
	gobOpts := fastFailover()
	gobOpts.GobOnly = true
	legacy, err := client.NewOverResolver(h.ClientFaults.DialContext, h.Addrs(), "legacy", gobOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { legacy.Close() })
	sl, _, err := legacy.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatalf("legacy join: %v", err)
	}
	mustChat(t, sl, "legacy-note")
	colB.waitChats(t, "legacy-note")
	if legacy.ReconnectStats().Redirects == 0 {
		t.Errorf("gob client was not redirected to the owner")
	}
}

// TestOwnerCrashResumesOnNewOwner is the acceptance centerpiece: a
// 3-node cluster serves a conversation, the room's owner is killed
// mid-session, and both members must end up on the new owner with the
// transcript exactly once — no duplicate, no gap, sequence numbers
// strictly increasing across the failover.
func TestOwnerCrashResumesOnNewOwner(t *testing.T) {
	h := newHarness(t, 3, false)
	roomName := "tumor-board"
	owner := h.Owner(roomName)

	alice := clusterClient(t, h, "alice")
	bob := clusterClient(t, h, "bob")
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Join(roomName, "p1", 0); err != nil {
		t.Fatal(err)
	}
	colA, colB := collect(alice), collect(bob)

	pre := []string{"m0", "m1", "m2", "m3", "m4"}
	for _, m := range pre {
		mustChat(t, sa, m)
	}
	colB.waitChats(t, pre...)
	// Let replication catch the log head, then crash the owner: the
	// failover must replay from the standby's copy with the same
	// sequence numbers.
	h.waitReplicated(t, roomName, h.ownerSeq(t, roomName))
	owner.Kill()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	post := []string{"m5", "m6", "m7", "m8", "m9"}
	for _, m := range post {
		mustChat(t, sa, m)
	}
	all := append(append([]string(nil), pre...), post...)
	colB.waitChats(t, all...)
	colA.waitChats(t, all...)
	colB.assertExactChats(t, all...)
	colA.assertExactChats(t, all...)

	newOwner := h.waitSoleHolder(t, roomName)
	if newOwner == owner.ID {
		t.Fatalf("room still held by killed node %s", owner.ID)
	}
	if want := h.Owner(roomName).ID; newOwner != want {
		t.Errorf("room held by %s, want surviving rendezvous owner %s", newOwner, want)
	}
	if bob.ReconnectStats().Successes == 0 {
		t.Errorf("bob never reconnected, yet his server died")
	}
}

// TestPartitionHealsWithoutDoubleOwnership: the owner is partitioned
// away; the majority moves the room and keeps serving. When the
// partition heals, ownership reconciles back to a single node — the
// healed node's stale copy is superseded by the newer replicated log,
// never served alongside it.
func TestPartitionHealsWithoutDoubleOwnership(t *testing.T) {
	h := newHarness(t, 3, false)
	roomName := "icu-round"
	owner := h.Owner(roomName)

	alice := clusterClient(t, h, "alice")
	bob := clusterClient(t, h, "bob")
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Join(roomName, "p1", 0); err != nil {
		t.Fatal(err)
	}
	colB := collect(bob)
	mustChat(t, sa, "before")
	colB.waitChats(t, "before")
	h.waitReplicated(t, roomName, h.ownerSeq(t, roomName))

	owner.Partition()
	// Black-holed connections hang silently; reset the clients' conns so
	// their supervisors redial immediately instead of waiting out call
	// timeouts one by one.
	h.ClientFaults.KillAll()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	mustChat(t, sa, "during-1")
	mustChat(t, sa, "during-2")
	colB.waitChats(t, "before", "during-1", "during-2")
	if got := h.Owner(roomName).ID; got == owner.ID {
		t.Fatalf("majority still routes %q to partitioned node", roomName)
	}

	owner.Heal()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Ownership converges back to the full-set rendezvous owner; the
	// stale pre-partition copy must lose to the newer log.
	holder := h.waitSoleHolder(t, roomName)
	mustChat(t, sa, "after")
	colB.waitChats(t, "before", "during-1", "during-2", "after")
	colB.assertExactChats(t, "before", "during-1", "during-2", "after")
	if finalHolder := h.waitSoleHolder(t, roomName); finalHolder != h.Owner(roomName).ID {
		t.Errorf("room held by %s, want rendezvous owner %s (first holder after heal: %s)",
			finalHolder, h.Owner(roomName).ID, holder)
	}
}

// TestMinorityRejectsRoomRequests is the split-brain rejection check: a
// node that cannot see a cluster majority refuses room-scoped requests
// outright instead of serving what it can no longer own safely.
func TestMinorityRejectsRoomRequests(t *testing.T) {
	h := newHarness(t, 3, false)
	h.Nodes[2].Kill()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Two live of three is still a majority; now isolate n2 so n1 stands
	// alone.
	h.Nodes[1].Partition()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	opts := client.Options{ConnectTimeout: 2 * time.Second, CallTimeout: 2 * time.Second}
	c, err := client.NewOverResolver(h.ClientFaults.DialContext, []string{h.Nodes[0].Addr}, "alice", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	_, _, err = c.Join("er-consult", "p1", 0)
	if !errors.Is(err, wire.ErrUnavailable) {
		t.Fatalf("minority join error = %v, want %v", err, wire.ErrUnavailable)
	}
	if h.Nodes[0].Node.Metrics().Unavailable == 0 {
		t.Errorf("minority node counted no unavailable rejections")
	}

	// Heal: majority restored, the same node serves again.
	h.Nodes[1].Heal()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c2 := clusterClient(t, h, "bob")
	if _, _, err := c2.Join("er-consult", "p1", 0); err != nil {
		t.Fatalf("join after heal: %v", err)
	}
}

// TestDrainHandsOffOwnership: an orderly departure. The draining node
// pushes its rooms to their post-drain owners before shutting down, so
// members reconnect and continue with exact sequence continuity.
func TestDrainHandsOffOwnership(t *testing.T) {
	h := newHarness(t, 3, false)
	roomName := "discharge-plan"
	owner := h.Owner(roomName)

	alice := clusterClient(t, h, "alice")
	bob := clusterClient(t, h, "bob")
	sa, _, err := alice.Join(roomName, "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Join(roomName, "p1", 0); err != nil {
		t.Fatal(err)
	}
	colB := collect(bob)
	mustChat(t, sa, "d0")
	mustChat(t, sa, "d1")
	colB.waitChats(t, "d0", "d1")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = owner.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	mustChat(t, sa, "d2")
	mustChat(t, sa, "d3")
	colB.waitChats(t, "d0", "d1", "d2", "d3")
	colB.assertExactChats(t, "d0", "d1", "d2", "d3")
	holder := h.waitSoleHolder(t, roomName)
	if holder == owner.ID {
		t.Fatalf("room still held by drained node %s", owner.ID)
	}
	if want := h.Owner(roomName).ID; holder != want {
		t.Errorf("room held by %s, want post-drain owner %s", holder, want)
	}
}
