package server

import (
	"context"
	"runtime"
	"sort"

	"mmconf/internal/obs"
	"mmconf/internal/proto"
	"mmconf/internal/wire"
)

// MetricsSnapshot assembles the server's full observability view: every
// method's latency summary (mean plus log-bucketed tail percentiles),
// the named monotonic counters (push.*, cache.*, session.*, wire.*),
// live gauges, and per-room status. It is the single source behind the
// sys.stats RPC and the -debug-addr /debug/metrics endpoint.
func (s *Server) MetricsSnapshot() *proto.StatsResp {
	resp := &proto.StatsResp{
		Methods:  make(map[string]proto.MethodSummary),
		Counters: s.stats.Counters(),
		Gauges:   make(map[string]int64),
	}
	for name, ms := range s.stats.Snapshot() {
		resp.Methods[name] = proto.MethodSummary{
			Requests: ms.Requests,
			Errors:   ms.Errors,
			Mean:     ms.Mean(),
			Max:      ms.MaxLatency,
			P50:      ms.P50,
			P90:      ms.P90,
			P99:      ms.P99,
		}
	}

	peers, backlog := s.rpc.WriteBacklog()
	resp.Gauges["wire.peers"] = int64(peers)
	resp.Gauges["wire.write_backlog"] = int64(backlog)

	// Wire protocol v2 rollout health: the ceiling this server speaks,
	// the live peer split by negotiated version, and codec scratch-pool
	// effectiveness (gets vs misses = hit rate).
	resp.Gauges["wire.proto_version"] = int64(s.rpc.MaxProtoVersion())
	v2, gob := s.rpc.PeerVersions()
	resp.Gauges["wire.peers_v2"] = int64(v2)
	resp.Gauges["wire.peers_gob"] = int64(gob)
	gets, misses := wire.PoolStats()
	resp.Counters["wire.pool_gets"] = gets
	resp.Counters["wire.pool_misses"] = misses

	// Content-addressed blob store: dedup and space-reclamation health.
	bs, missing := s.db.DB().BlobStats()
	resp.Counters["blob.puts"] = uint64(bs.Puts)
	resp.Counters["blob.gets"] = uint64(bs.Gets)
	resp.Counters["blob.releases"] = uint64(bs.Releases)
	resp.Counters["blob.dedup_hits"] = uint64(bs.DedupHits)
	resp.Counters["blob.dedup_bytes"] = uint64(bs.DedupBytes)
	resp.Counters["blob.chunk_dedup_hits"] = uint64(bs.ChunkDedupHits)
	resp.Counters["blob.hole_reuses"] = uint64(bs.HoleReuses)
	resp.Counters["blob.compactions"] = uint64(bs.Compactions)
	resp.Counters["blob.compacted_bytes"] = uint64(bs.CompactedBytes)
	resp.Gauges["blob.chunks"] = bs.Chunks
	resp.Gauges["blob.objects"] = bs.Manifests
	resp.Gauges["blob.live_bytes"] = bs.LiveBytes
	resp.Gauges["blob.free_bytes"] = bs.FreeBytes
	resp.Gauges["blob.total_bytes"] = bs.TotalBytes
	resp.Gauges["blob.segments"] = bs.Segments
	resp.Gauges["blob.missing_refs"] = int64(missing)
	bytes, entries := s.objects.gauges()
	resp.Gauges["cache.obj.bytes"] = bytes
	resp.Gauges["cache.obj.entries"] = int64(entries)
	resp.Gauges["go.goroutines"] = int64(runtime.NumGoroutine())
	// Adaptive QoS loop: members under control and their level split.
	if s.qos != nil {
		s.qos.addGauges(resp.Gauges)
	}
	if s.limiter != nil {
		resp.Gauges["admission.inflight"] = int64(s.limiter.Inflight())
		resp.Gauges["admission.queued"] = int64(s.limiter.Queued())
	}

	var members, detached, queued, buffered, queuedBytes int64
	s.reg.forEach(func(name string, rs *roomState) {
		g := rs.room.Gauges()
		resp.Rooms = append(resp.Rooms, proto.RoomStatus{
			Name:           name,
			Members:        g.Members,
			Detached:       g.Detached,
			QueuedEvents:   g.QueuedEvents,
			QueuedBytes:    g.QueuedBytes,
			MaxQueueDepth:  g.MaxQueueDepth,
			BufferedEvents: g.BufferedEvents,
		})
		members += int64(g.Members)
		detached += int64(g.Detached)
		queued += int64(g.QueuedEvents)
		buffered += int64(g.BufferedEvents)
		queuedBytes += g.QueuedBytes
	})
	sort.Slice(resp.Rooms, func(i, j int) bool { return resp.Rooms[i].Name < resp.Rooms[j].Name })
	resp.Gauges["rooms.live"] = int64(len(resp.Rooms))
	resp.Gauges["rooms.members"] = members
	resp.Gauges["rooms.detached"] = detached
	resp.Gauges["rooms.queued_events"] = queued
	resp.Gauges["rooms.buffered_events"] = buffered
	resp.Gauges["rooms.queued_bytes"] = queuedBytes
	return resp
}

// Traces returns recent slow/errored request traces, newest first. A
// non-zero id filters to that trace; limit <= 0 returns all retained.
func (s *Server) Traces(id uint64, limit int) []obs.TraceRecord {
	if id != 0 {
		recs := s.tracer.Find(id)
		if limit > 0 && len(recs) > limit {
			recs = recs[:limit]
		}
		return recs
	}
	return s.tracer.Recent(limit)
}

func (s *Server) handleStats(ctx context.Context, p *wire.Peer, req *proto.StatsReq) (*proto.StatsResp, error) {
	return s.MetricsSnapshot(), nil
}

func (s *Server) handleTraces(ctx context.Context, p *wire.Peer, req *proto.TracesReq) (*proto.TracesResp, error) {
	recs := s.Traces(req.ID, req.Limit)
	resp := &proto.TracesResp{Traces: make([]proto.TraceInfo, 0, len(recs))}
	for _, r := range recs {
		ti := proto.TraceInfo{
			ID:     r.ID,
			Method: r.Method,
			Peer:   r.Peer,
			Start:  r.Start,
			Total:  r.Total,
			Err:    r.Err,
			Spans:  make([]proto.TraceSpan, 0, len(r.Spans)),
		}
		for _, sp := range r.Spans {
			ti.Spans = append(ti.Spans, proto.TraceSpan{Name: sp.Name, Start: sp.Start, Dur: sp.Dur})
		}
		resp.Traces = append(resp.Traces, ti)
	}
	return resp, nil
}
