package server

import (
	"context"
	"net"
	"testing"
	"time"

	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// traceSystem is testSystem with the trace recorder set to keep every
// request, so tests can assert on traces without manufacturing slowness.
func traceSystem(t *testing.T) (*Server, string) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(m, "p1", 1); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, Options{TraceThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// TestTracePropagationEndToEnd pins the tentpole guarantee: a trace id
// minted at the client rides the wire frame into the server's context,
// the typed adapter and the room attach their spans to it, and the
// completed trace is queryable by that same id — both in-process and
// over the sys.traces RPC.
func TestTracePropagationEndToEnd(t *testing.T) {
	srv, addr := traceSystem(t)
	c := dial(t, addr, "alice")
	s, _, err := c.Join("trace-room", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}

	const pinned = uint64(0xabcdef01)
	ctx := wire.WithTraceID(context.Background(), pinned)
	if err := s.ChoiceCtx(ctx, "ct", "segmented"); err != nil {
		t.Fatal(err)
	}

	recs := srv.Tracer().Find(pinned)
	if len(recs) != 1 {
		t.Fatalf("Find(%#x) = %d records, want 1", pinned, len(recs))
	}
	rec := recs[0]
	if rec.Method != proto.MChoice {
		t.Fatalf("traced method = %q, want %q", rec.Method, proto.MChoice)
	}
	if rec.Total <= 0 {
		t.Fatalf("traced total = %v", rec.Total)
	}
	spans := map[string]bool{}
	for _, sp := range rec.Spans {
		spans[sp.Name] = true
		if sp.Dur < 0 || sp.Start < 0 {
			t.Fatalf("span %q has negative timing: %+v", sp.Name, sp)
		}
	}
	for _, want := range []string{"decode", "handle", "push"} {
		if !spans[want] {
			t.Fatalf("trace missing %q span; got %+v", want, rec.Spans)
		}
	}

	// The same trace must come back over the wire.
	infos, err := c.Traces(pinned, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != pinned || infos[0].Method != proto.MChoice {
		t.Fatalf("sys.traces = %+v", infos)
	}
	if len(infos[0].Spans) != len(rec.Spans) {
		t.Fatalf("RPC spans = %d, in-process = %d", len(infos[0].Spans), len(rec.Spans))
	}
}

// TestTraceIDMintedWhenUnpinned checks that a plain call (no pinned id)
// still gets traced under a server-visible nonzero id.
func TestTraceIDMintedWhenUnpinned(t *testing.T) {
	srv, addr := traceSystem(t)
	c := dial(t, addr, "bob")
	if _, _, err := c.ListDocuments(); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, rec := range srv.Tracer().Recent(0) {
		if rec.Method == proto.MListDocuments {
			found = true
			if rec.ID == 0 {
				t.Fatal("minted trace id is 0")
			}
		}
	}
	if !found {
		t.Fatal("list call never entered the trace ring")
	}
}

// TestErroredRequestAlwaysTraced checks the recorder's other entry
// condition: failures are kept even when fast (with a real threshold).
func TestErroredRequestAlwaysTraced(t *testing.T) {
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, Options{SlowThreshold: time.Hour}) // nothing is "slow"
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c := dial(t, l.Addr().String(), "carol")
	if _, err := c.GetDocument("no-such-doc"); err == nil {
		t.Fatal("missing document fetch succeeded")
	}
	recs := srv.Tracer().Recent(0)
	if len(recs) == 0 || recs[0].Err == "" {
		t.Fatalf("errored request not in ring: %+v", recs)
	}
}

func TestStatsRPCAndMetricsSnapshot(t *testing.T) {
	srv, addr := traceSystem(t)
	c := dial(t, addr, "alice")
	s, _, err := c.Join("stats-room", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Choice("ct", "segmented"); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ms, ok := stats.Methods[proto.MChoice]
	if !ok || ms.Requests != 20 {
		t.Fatalf("choice summary = %+v, %v", ms, ok)
	}
	if ms.P50 <= 0 || ms.P50 > ms.P90 || ms.P90 > ms.P99 || ms.P99 > ms.Max {
		t.Fatalf("percentiles not ordered: %+v", ms)
	}
	if ms.Mean <= 0 {
		t.Fatalf("mean = %v", ms.Mean)
	}
	if stats.Gauges["wire.peers"] < 1 {
		t.Fatalf("wire.peers = %d", stats.Gauges["wire.peers"])
	}
	if stats.Gauges["rooms.live"] != 1 || stats.Gauges["rooms.members"] != 1 {
		t.Fatalf("room gauges = %+v", stats.Gauges)
	}
	if len(stats.Rooms) != 1 || stats.Rooms[0].Name != "stats-room" || stats.Rooms[0].Members != 1 {
		t.Fatalf("rooms = %+v", stats.Rooms)
	}
	if stats.Counters["push.events"] == 0 {
		t.Fatalf("push.events counter missing: %+v", stats.Counters)
	}

	// The in-process snapshot behind -debug-addr agrees on structure.
	snap := srv.MetricsSnapshot()
	if snap.Methods[proto.MChoice].Requests < 20 {
		t.Fatalf("MetricsSnapshot choice requests = %+v", snap.Methods[proto.MChoice])
	}
	if snap.Gauges["go.goroutines"] <= 0 {
		t.Fatal("go.goroutines gauge missing")
	}
}
