package server

import (
	"sync"
	"time"

	"mmconf/internal/core"
	"mmconf/internal/document"
	"mmconf/internal/proto"
	"mmconf/internal/qos"
	"mmconf/internal/room"
	"mmconf/internal/wire"
)

// Counter names for the adaptive QoS loop, surfaced through
// Server.Stats() alongside the push.* and cache.* families.
const (
	// CounterQoSTuneChanges counts per-member bandwidth-level transitions
	// applied to the CP-net tuning variable (each one re-solves and
	// pushes that member's presentation).
	CounterQoSTuneChanges = "qos.tune_changes"
	// CounterQoSPrefetchPushes / Bytes count speculative payloads the
	// loop pre-pushed into member buffers, and their byte volume.
	CounterQoSPrefetchPushes = "qos.prefetch.pushes"
	CounterQoSPrefetchBytes  = "qos.prefetch.bytes"
)

// qosController closes the paper's §4.4 loop at runtime: every interval
// it reads each member connection's measured write throughput (the wire
// layer's per-peer meter) and queue pressure, classifies them into a
// bandwidth level with hysteresis, pins the level on the member's
// CP-net tuning variable (degrading resolution before components), and
// spends idle push-budget headroom pre-pushing the member's likeliest
// next payloads into their client-side buffer.
type qosController struct {
	s              *Server
	interval       time.Duration
	bands          qos.Bands
	prefetchBudget int64

	mu      sync.Mutex
	clients map[*room.Member]*qosClient

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// qosClient is one room membership under QoS control. The pushed set
// and pushedBytes are touched only by the controller goroutine.
type qosClient struct {
	peer     *wire.Peer
	rs       *roomState
	roomName string
	user     string
	member   *room.Member
	ctrl     *qos.Controller

	pushed      map[uint64]bool
	pushedBytes int64
}

// newQoSController wires the loop; bands were validated with Options.
func newQoSController(s *Server, interval time.Duration, bands qos.Bands, prefetchBudget int64) *qosController {
	return &qosController{
		s:              s,
		interval:       interval,
		bands:          bands,
		prefetchBudget: prefetchBudget,
		clients:        make(map[*room.Member]*qosClient),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
}

func (q *qosController) run() {
	t := time.NewTicker(q.interval)
	defer t.Stop()
	defer close(q.done)
	for {
		select {
		case <-q.stop:
			return
		case <-t.C:
			q.tick()
		}
	}
}

// stopLoop halts the ticker and waits for an in-flight tick to finish.
func (q *qosController) stopLoop() {
	q.stopOnce.Do(func() { close(q.stop) })
	<-q.done
}

// register places a new room membership under QoS control. Controllers
// start optimistic (high) like the tuning variable's unconditional
// preference, so nothing changes until the meter has real samples.
func (q *qosController) register(p *wire.Peer, rs *roomState, roomName, user string, member *room.Member) {
	ctrl, err := qos.NewController(q.bands)
	if err != nil {
		return // bands were validated at construction; unreachable
	}
	q.mu.Lock()
	q.clients[member] = &qosClient{
		peer: p, rs: rs, roomName: roomName, user: user,
		member: member, ctrl: ctrl, pushed: make(map[uint64]bool),
	}
	q.mu.Unlock()
}

// unregister drops a membership when its forwarder exits.
func (q *qosController) unregister(member *room.Member) {
	q.mu.Lock()
	delete(q.clients, member)
	q.mu.Unlock()
}

// tick runs one control period over a snapshot of the live clients.
func (q *qosController) tick() {
	q.mu.Lock()
	clients := make([]*qosClient, 0, len(q.clients))
	for _, c := range q.clients {
		clients = append(clients, c)
	}
	q.mu.Unlock()
	for _, c := range clients {
		m := c.peer.Meter()
		var pressure float64
		if q.s.pushBudget > 0 {
			pressure = float64(c.member.QueuedBytes()) / float64(q.s.pushBudget)
		}
		level, changed := c.ctrl.Update(m.Rate(), m.Samples(), pressure)
		if changed {
			// The member may have left or the document may carry no tuning
			// variable (no degradable components); both are benign.
			if _, err := c.rs.room.SetMemberEnvironment(c.user, core.BandwidthVariable, level.String()); err == nil {
				q.s.stats.Add(CounterQoSTuneChanges, 1)
			}
		}
		q.prefetch(c)
	}
}

// imageBacked reports whether a presentation kind is served from an
// image object — one stored payload backs every rendering of it (full,
// lowres, segmented, icon), so pushing that object satisfies any of
// them.
func imageBacked(k document.MediaKind) bool {
	switch k {
	case document.KindImage, document.KindSegmentedImage, document.KindImageLowRes,
		document.KindImageMedRes, document.KindImageHighRes, document.KindIcon:
		return true
	}
	return false
}

// prefetch pre-pushes the member's likeliest next payloads, best-ranked
// first, within two budgets: the per-session prefetch allowance and the
// member's live push-budget headroom (speculative bytes must never
// starve real event delivery). Only image-backed payloads are pushed —
// they dominate §4.4's transfer cost and map directly onto the client
// buffer's demand path.
func (q *qosController) prefetch(c *qosClient) {
	if q.prefetchBudget <= 0 || c.pushedBytes >= q.prefetchBudget {
		return
	}
	cands, err := c.rs.room.Engine().PrefetchRank(c.user)
	if err != nil {
		return
	}
	for _, cand := range cands {
		if c.pushedBytes >= q.prefetchBudget {
			return
		}
		if c.pushed[cand.ObjectID] || !imageBacked(cand.Kind) {
			continue
		}
		resp, err := q.s.getImageCached(cand.ObjectID)
		if err != nil {
			continue
		}
		n := int64(len(resp.Data))
		if c.pushedBytes+n > q.prefetchBudget {
			continue // over allowance; a smaller candidate may still fit
		}
		if q.s.pushBudget > 0 && c.member.QueuedBytes()+n > q.s.pushBudget {
			return // no headroom this tick; retry when the queue drains
		}
		err = c.peer.Push(proto.MPrefetchPush, &proto.PrefetchPush{
			Room: c.roomName, ObjectID: cand.ObjectID,
			Digest: resp.Digest, Data: resp.Data,
		})
		if err != nil {
			return // connection is going away; the forwarder unregisters us
		}
		c.pushed[cand.ObjectID] = true
		c.pushedBytes += n
		q.s.stats.Add(CounterQoSPrefetchPushes, 1)
		q.s.stats.Add(CounterQoSPrefetchBytes, uint64(n))
	}
}

// addGauges reports the loop's live state into a metrics snapshot: the
// member count under control and the split across bandwidth levels.
func (q *qosController) addGauges(g map[string]int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var low, med, high int64
	for _, c := range q.clients {
		switch c.ctrl.Level() {
		case qos.Low:
			low++
		case qos.Medium:
			med++
		default:
			high++
		}
	}
	g["qos.clients"] = int64(len(q.clients))
	g["qos.level_low"] = low
	g["qos.level_medium"] = med
	g["qos.level_high"] = high
}
