package server

import (
	"net"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/core"
	"mmconf/internal/mediadb"
	"mmconf/internal/qos"
	"mmconf/internal/room"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// qosSystem boots a server over net.Pipe with a fast adaptive-QoS loop
// whose band edges sit far above anything a pipe can carry, so the
// measured rate deterministically classifies every connection as low —
// the degradation path without real network shaping.
func qosSystem(t *testing.T) (*Server, *client.Client, *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, Options{
		QoSInterval: 10 * time.Millisecond,
		QoSBands:    qos.Bands{LowMedium: 1 << 40, MediumHigh: 1 << 41, Hysteresis: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sc, cc := net.Pipe()
	go srv.ServeConn(sc)
	c, err := client.NewOverConn(cc, "alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c, rec
}

// The full adaptive loop, end to end: the server measures the member's
// connection, demotes its tuning level, re-solves the member's view with
// resolution degraded (the CT drops to lowres but stays visible), pushes
// the presentation, pre-pushes likely payloads into the client's buffer,
// and surfaces qos.* metrics in sys.stats.
func TestQoSAdaptiveDegradationEndToEnd(t *testing.T) {
	srv, c, rec := qosSystem(t)
	s, _, err := c.Join("consult", "p1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Generate enough response writes for the meter's confidence gate.
	for i := 0; i < 6; i++ {
		if _, _, err := c.ListDocuments(); err != nil {
			t.Fatal(err)
		}
	}
	ev := waitEvent(t, c, func(ev room.Event) bool {
		return ev.Kind == room.EvPresentation && ev.Outcome[core.BandwidthVariable] == core.BandwidthLow
	})
	if got := ev.Outcome["ct"]; got != "lowres" {
		t.Errorf("degraded ct = %s, want lowres", got)
	}
	if !ev.Visible["ct"] {
		t.Error("degradation hid the ct instead of lowering resolution — resolution-before-components violated")
	}

	// Push-prefetch lands the likeliest image payload in the session
	// buffer, digest-tagged, without the client ever fetching it.
	deadline := time.Now().Add(3 * time.Second)
	for !s.Buffer.Cache.Contains(rec.CTID) {
		if time.Now().After(deadline) {
			t.Fatal("CT payload never push-prefetched into the session buffer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := s.Buffer.Cache.Digest(rec.CTID); !ok {
		t.Error("pushed payload carries no digest tag")
	}

	// The metrics surface reports the loop's work.
	resp, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Gauges["qos.clients"] != 1 {
		t.Errorf("qos.clients = %d, want 1", resp.Gauges["qos.clients"])
	}
	if resp.Gauges["qos.level_low"] != 1 {
		t.Errorf("qos.level_low = %d, want 1 (levels: low=%d med=%d high=%d)",
			resp.Gauges["qos.level_low"], resp.Gauges["qos.level_low"],
			resp.Gauges["qos.level_medium"], resp.Gauges["qos.level_high"])
	}
	if resp.Counters["qos.tune_changes"] == 0 {
		t.Error("qos.tune_changes = 0 after a demotion")
	}
	if resp.Counters["qos.prefetch.pushes"] == 0 {
		t.Error("qos.prefetch.pushes = 0 after a buffered push")
	}
	if resp.Counters["qos.prefetch.bytes"] == 0 {
		t.Error("qos.prefetch.bytes = 0 after a buffered push")
	}

	// A demand fetch for the pre-pushed object is now a buffer hit.
	if _, err := s.Buffer.Demand(rec.CTID); err != nil {
		t.Fatalf("Demand after prefetch: %v", err)
	}
	if hits, _, _ := s.Buffer.Cache.Stats(); hits == 0 {
		t.Error("demand after push-prefetch did not hit the buffer")
	}
	_ = srv
}

// Forwarder teardown under flood: killing a member's connection while
// events are in flight runs the push-error exit (detach + drain-refund),
// and the room's queued-bytes gauge settles back to zero — no phantom
// push-budget charges survive the teardown.
func TestForwarderTeardownSettlesBudget(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = sb
	// Drop bob abruptly, then flood: deliveries charged to bob's queue
	// race his forwarder's failing pushes, exercising the error exit
	// with events still queued.
	bob.Close()
	for i := 0; i < 50; i++ {
		if err := sa.Chat("flood"); err != nil {
			t.Fatalf("chat %d: %v", i, err)
		}
	}
	// Bob's session detaches and (after the short test grace) expires
	// into a real leave that alice observes.
	waitEvent(t, alice, func(ev room.Event) bool {
		return ev.Kind == room.EvLeave && ev.Actor == "bob"
	})
	deadline := time.Now().Add(3 * time.Second)
	for {
		g := gaugesFor(t, addr, "consult")
		if g.QueuedBytes == 0 && g.Detached == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("room gauges never settled: %+v", g)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// gaugesFor reads one room's status through the stats RPC.
func gaugesFor(t *testing.T, addr, roomName string) room.Gauges {
	t.Helper()
	c := dial(t, addr, "observer")
	resp, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range resp.Rooms {
		if rs.Name == roomName {
			return room.Gauges{
				Members:      rs.Members,
				Detached:     rs.Detached,
				QueuedEvents: rs.QueuedEvents,
				QueuedBytes:  rs.QueuedBytes,
			}
		}
	}
	t.Fatalf("room %q not in stats", roomName)
	return room.Gauges{}
}
