// Package server implements the interaction server of the paper (§3,
// §5.3): it serves multimedia objects and documents out of the database
// server, manages the shared rooms, keeps track of user actions, hands
// them to the presentation module, and propagates every change to all
// clients in the room over the wire layer's push channel.
//
// Requests flow through the wire package's typed pipeline: every method
// registers through wire.Typed (which owns unmarshal/marshal), a default
// interceptor chain provides stats, panic recovery, per-request deadlines
// and slow-request logging, and the per-request context reaches the room
// entry points so work for a dead or impatient client is abandoned.
// Rooms live in a sharded registry so traffic in different rooms never
// contends on a single lock.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mmconf/internal/core"
	"mmconf/internal/document"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/mediadb"
	"mmconf/internal/obs"
	"mmconf/internal/proto"
	"mmconf/internal/qos"
	"mmconf/internal/room"
	"mmconf/internal/wire"
)

// Options tunes the request pipeline. The zero value selects the
// defaults noted on each field.
type Options struct {
	// RequestTimeout bounds every handler (default 30s; negative
	// disables the deadline entirely).
	RequestTimeout time.Duration
	// MethodTimeouts overrides RequestTimeout per method name.
	MethodTimeouts map[string]time.Duration
	// SlowThreshold is the slow-request log bar (default 250ms).
	SlowThreshold time.Duration
	// Logf receives slow-request reports (default log.Printf).
	Logf func(format string, args ...any)
	// RegistryShards sizes the room table (default 32).
	RegistryShards int
	// CacheBytes bounds the store-backed object response cache
	// (default 64 MiB; negative disables caching).
	CacheBytes int64
	// SessionGrace is how long a dropped client's room sessions stay
	// resumable before they expire into a real leave (default 30s;
	// negative disables resumption — disconnect evicts immediately).
	SessionGrace time.Duration
	// TraceThreshold selects which requests enter the slow-trace ring:
	// total latency >= threshold, or any error (default: SlowThreshold;
	// negative records every request — tests and live debugging).
	TraceThreshold time.Duration
	// TraceRing is how many slow/errored traces are retained (default
	// obs.DefaultTraceRing).
	TraceRing int
	// MaxInflight caps concurrently executing requests across the server
	// (default 1024; negative disables admission control entirely —
	// every request is admitted immediately, the pre-PR-5 behavior).
	MaxInflight int
	// QueueDepth bounds how many requests may wait for an execution slot
	// once MaxInflight are running (default 128; 0 keeps the default,
	// negative is invalid). Arrivals beyond it are shed with
	// proto.ErrOverloaded.
	QueueDepth int
	// QueueTimeout sheds a queued request that cannot get a slot in time
	// (default 1s; negative waits as long as the request context allows).
	QueueTimeout time.Duration
	// PerPeerRate limits each connection to a sustained request rate in
	// requests/second (default 0: unlimited; negative is invalid).
	// PerPeerBurst is the burst allowance on top (default: the rate
	// rounded up, minimum 1).
	PerPeerRate  float64
	PerPeerBurst int
	// ShedPolicy selects queue-full behavior: wire.ShedByPriority (the
	// default) sheds bulk media fetches first and control RPCs last;
	// wire.ShedFIFO sheds strictly by arrival order.
	ShedPolicy wire.ShedPolicy
	// MemberPushBudget caps the estimated bytes of undrained events
	// queued per room member (default 1 MiB; negative disables). Slow
	// consumers over budget lose their oldest queued events and get a
	// Resync hint instead of buffering without bound.
	MemberPushBudget int64
	// QoSInterval is the adaptive-QoS control period: every tick the
	// server re-estimates each member connection's throughput from its
	// socket writes and adjusts that member's bandwidth tuning level,
	// degrading resolution before components (default 500ms; negative
	// disables the adaptive loop — and push-prefetch with it).
	QoSInterval time.Duration
	// QoSBands sets the throughput thresholds (bytes/second) separating
	// the low/medium/high tuning levels and the hysteresis fraction that
	// prevents flapping at a band edge (zero value selects
	// qos.DefaultBands()).
	QoSBands qos.Bands
	// PrefetchBudget caps the speculative bytes push-prefetched into one
	// member's client buffer over its session (default 256 KiB; negative
	// disables push-prefetch while keeping adaptive tuning).
	PrefetchBudget int64
	// NodeID names this server process in a room-sharded cluster (""
	// — the default — runs standalone). The cluster tier sets it; the
	// id appears in stats gauges and redirect errors.
	NodeID string
	// Intercept, when non-nil, is inserted into the dispatch chain
	// between tracing and admission — the seam where the cluster
	// routing tier decides served-here / redirect / forward before the
	// request consumes an admission slot.
	Intercept wire.Interceptor
	// OnPeerClose, when non-nil, observes every disconnected peer after
	// the server's own session eviction ran (the cluster tier tears
	// down the peer's forwarding links here).
	OnPeerClose func(*wire.Peer)
	// RoomSeed, when non-nil, is consulted once per room construction:
	// a node taking ownership after a failover restores the replicated
	// event log (Seq high-water mark, trim watermark, buffered events)
	// before the first member joins, so Resume replays exactly what the
	// old owner would have.
	RoomSeed func(roomName string) (RoomSnapshot, bool)
	// RoomTap, when non-nil, observes every room event-log advance —
	// the replication source. Called under the room lock: it must be
	// cheap, must not block, and must not call back into the server.
	RoomTap func(roomName, docID string, ev *room.Event, seq, trimmed uint64)
}

// RoomSnapshot is one room's replicable event-log state: what a
// standby accumulates from ReplicateReq streams and what SnapshotRooms
// exports on drain.
type RoomSnapshot struct {
	Room    string
	DocID   string
	Seq     uint64
	Trimmed uint64
	Events  []room.Event
}

// Server is the interaction server.
type Server struct {
	db      *mediadb.MediaDB
	rpc     *wire.Server
	reg     *registry
	stats   *wire.Stats
	tracer  *obs.Recorder
	objects *objectCache
	grace   time.Duration
	// limiter is the admission-control concurrency limiter (nil when
	// MaxInflight is negative); pushBudget is the per-member event-queue
	// byte cap handed to every room.
	limiter    *wire.Limiter
	pushBudget int64
	// forwarders counts the event-forwarding goroutines (one per room
	// membership) so Shutdown can flush queued pushes before closing
	// connections.
	forwarders sync.WaitGroup
	// qos is the adaptive bandwidth-estimation loop (nil when disabled):
	// per-member throughput drives the CP-net tuning level and spends
	// idle push budget on prefetch pushes.
	qos *qosController
	// Cluster-tier hooks (see the Options fields of the same names).
	nodeID      string
	onPeerClose func(*wire.Peer)
	roomSeed    func(string) (RoomSnapshot, bool)
	roomTap     func(string, string, *room.Event, uint64, uint64)
}

// roomState binds a live room to its document id.
type roomState struct {
	room  *room.Room
	docID string
	doc   *document.Document
}

// membership tracks one peer's presence in one room.
type membership struct {
	room   string
	user   string
	member *room.Member
}

// New builds a server over an opened multimedia database with default
// pipeline options.
func New(db *mediadb.MediaDB) *Server {
	s, err := NewWith(db, Options{})
	if err != nil {
		// The zero Options always validate; reaching here is a bug in
		// the defaulting/validation code itself.
		panic(fmt.Sprintf("server: default options rejected: %v", err))
	}
	return s
}

// normalize applies the documented defaults in place.
func (o *Options) normalize() {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0 // wire.Timeout treats 0 as unbounded
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.CacheBytes < 0 {
		o.CacheBytes = 0 // objectCache treats 0 as disabled
	}
	if o.SessionGrace == 0 {
		o.SessionGrace = 30 * time.Second
	}
	if o.SessionGrace < 0 {
		o.SessionGrace = 0 // room.SetGrace treats 0 as disabled
	}
	if o.TraceThreshold == 0 {
		o.TraceThreshold = o.SlowThreshold
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 1024
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 128
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = time.Second
	}
	if o.QueueTimeout < 0 {
		o.QueueTimeout = 0 // wire.Limiter treats 0 as wait-for-context
	}
	if o.MemberPushBudget == 0 {
		o.MemberPushBudget = 1 << 20
	}
	if o.MemberPushBudget < 0 {
		o.MemberPushBudget = 0 // room.SetPushBudget treats 0 as disabled
	}
	if o.QoSInterval == 0 {
		o.QoSInterval = 500 * time.Millisecond
	}
	if o.QoSInterval < 0 {
		o.QoSInterval = 0 // adaptive loop disabled
	}
	if o.QoSBands == (qos.Bands{}) {
		o.QoSBands = qos.DefaultBands()
	}
	if o.PrefetchBudget == 0 {
		o.PrefetchBudget = 256 << 10
	}
	if o.PrefetchBudget < 0 {
		o.PrefetchBudget = 0 // push-prefetch disabled
	}
}

// validate rejects nonsensical option values after normalize ran.
// Fields with a documented negative-disables contract (RequestTimeout,
// CacheBytes, SessionGrace, MaxInflight, QueueTimeout, MemberPushBudget)
// were already folded by normalize and are not re-checked here.
func (o *Options) validate() error {
	if o.RegistryShards < 0 {
		return fmt.Errorf("server: RegistryShards must be >= 0 (0 selects the default), got %d", o.RegistryShards)
	}
	if o.TraceRing < 0 {
		return fmt.Errorf("server: TraceRing must be >= 0 (0 selects the default), got %d", o.TraceRing)
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("server: QueueDepth must be >= 0 (0 selects the default), got %d", o.QueueDepth)
	}
	if o.PerPeerRate < 0 {
		return fmt.Errorf("server: PerPeerRate must be >= 0 (0 disables), got %g", o.PerPeerRate)
	}
	if o.PerPeerBurst < 0 {
		return fmt.Errorf("server: PerPeerBurst must be >= 0 (0 derives from the rate), got %d", o.PerPeerBurst)
	}
	if o.ShedPolicy != wire.ShedByPriority && o.ShedPolicy != wire.ShedFIFO {
		return fmt.Errorf("server: unknown ShedPolicy %d", o.ShedPolicy)
	}
	for m := range o.MethodTimeouts {
		if _, ok := methodClasses[m]; !ok {
			return fmt.Errorf("server: MethodTimeouts names unknown method %q", m)
		}
	}
	if o.QoSInterval > 0 {
		if err := o.QoSBands.Valid(); err != nil {
			return fmt.Errorf("server: QoSBands: %w", err)
		}
	}
	return nil
}

// NewWith builds a server with explicit pipeline options, rejecting
// nonsensical values with an error rather than silently misbehaving.
func NewWith(db *mediadb.MediaDB, o Options) (*Server, error) {
	o.normalize()
	if err := o.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		db:          db,
		rpc:         wire.NewServer(),
		reg:         newRegistry(o.RegistryShards),
		stats:       wire.NewStats(),
		tracer:      obs.NewRecorder(o.TraceRing, o.TraceThreshold),
		grace:       o.SessionGrace,
		pushBudget:  o.MemberPushBudget,
		nodeID:      o.NodeID,
		onPeerClose: o.OnPeerClose,
		roomSeed:    o.RoomSeed,
		roomTap:     o.RoomTap,
	}
	s.objects = newObjectCache(o.CacheBytes, s.stats)
	s.rpc.SetStats(s.stats) // peer writers count flushes/bytes here
	if o.MaxInflight > 0 {
		s.limiter = wire.NewLimiter(o.MaxInflight, o.QueueDepth, o.ShedPolicy)
	}
	// Stats sits outermost so even recovered panics count as errors;
	// recovery wraps the timeout so a panic in a deadline-bound handler
	// still converts to a clean response. Tracing sits inside recovery:
	// its trace context must be live when the typed adapter and the room
	// record their decode/handle/push spans. Admission sits inside
	// tracing (shed requests and queue waits show up as traces/spans)
	// but outside the timeout, so time spent waiting for a slot never
	// consumes the handler's own deadline.
	ics := []wire.Interceptor{
		wire.WithStats(s.stats),
		wire.Recovery(),
		wire.Tracing(s.tracer),
	}
	if o.Intercept != nil {
		// The cluster routing tier sits inside tracing (redirects and
		// forwards appear as traces) but outside admission: a request
		// this node merely redirects or relays must not consume one of
		// its execution slots.
		ics = append(ics, o.Intercept)
	}
	ics = append(ics,
		wire.Admission(wire.AdmissionConfig{
			Limiter:      s.limiter,
			QueueTimeout: o.QueueTimeout,
			Classes:      methodClasses,
			PerPeerRate:  o.PerPeerRate,
			PerPeerBurst: o.PerPeerBurst,
			Stats:        s.stats,
		}),
		wire.Timeout(o.RequestTimeout, o.MethodTimeouts),
		wire.SlowLog(o.SlowThreshold, o.Logf),
	)
	s.rpc.Use(ics...)
	s.register()
	s.rpc.OnPeerClose(s.evictPeer)
	if o.QoSInterval > 0 {
		s.qos = newQoSController(s, o.QoSInterval, o.QoSBands, o.PrefetchBudget)
		go s.qos.run()
	}
	return s, nil
}

// methodClasses assigns every RPC an admission priority: control RPCs
// (join/resume/leave and the metrics surface) keep sessions alive and
// shed last; bulk media fetches are individually expensive, retryable,
// and shed first; everything else — the conference hot path — sits in
// between. Doubling as the known-method set for Options validation.
var methodClasses = map[string]wire.Priority{
	proto.MJoinRoom:  wire.PriorityControl,
	proto.MLeaveRoom: wire.PriorityControl,
	proto.MStats:     wire.PriorityControl,
	proto.MTraces:    wire.PriorityControl,
	proto.MHistory:   wire.PriorityControl,

	proto.MChoice:           wire.PriorityInteractive,
	proto.MOperation:        wire.PriorityInteractive,
	proto.MAnnotate:         wire.PriorityInteractive,
	proto.MDeleteAnnotation: wire.PriorityInteractive,
	proto.MFreeze:           wire.PriorityInteractive,
	proto.MRelease:          wire.PriorityInteractive,
	proto.MShareSearch:      wire.PriorityInteractive,
	proto.MChat:             wire.PriorityInteractive,
	proto.MBroadcastStart:   wire.PriorityInteractive,
	proto.MBroadcastStop:    wire.PriorityInteractive,

	proto.MListDocuments: wire.PriorityBulk,
	proto.MGetDocument:   wire.PriorityBulk,
	proto.MGetImage:      wire.PriorityBulk,
	proto.MGetAudio:      wire.PriorityBulk,
	proto.MGetCmp:        wire.PriorityBulk,
	proto.MPutImageTexts: wire.PriorityBulk,
	proto.MSaveMinutes:   wire.PriorityBulk,

	// Node-link plane: liveness and replication keep the cluster
	// coherent and must survive overload like session control does.
	proto.MNodeHello:        wire.PriorityControl,
	proto.MNodePing:         wire.PriorityControl,
	proto.MNodeIngress:      wire.PriorityControl,
	proto.MNodeReplicate:    wire.PriorityControl,
	proto.MNodeSyncManifest: wire.PriorityControl,
	proto.MNodeFetchChunks:  wire.PriorityControl,
}

// Stats exposes the pipeline's per-method request counters plus the
// push-path/cache named counters (see the Counter* constants in
// cache.go and package wire's CounterWriter*).
func (s *Server) Stats() *wire.Stats { return s.stats }

// NodeID reports this server's cluster node id ("" standalone).
func (s *Server) NodeID() string { return s.nodeID }

// Register installs an additional RPC handler — the seam the cluster
// tier uses to mount its node-link methods (hello/ping/ingress/
// replicate) on the same dispatch pipeline as client traffic. Call
// before Serve.
func (s *Server) Register(method string, h wire.Handler) { s.rpc.Register(method, h) }

// SnapshotRooms exports every live room's replicable event-log state —
// the drain path's final flush: before shutting down, a draining node
// pushes these snapshots to each room's standby so takeover loses
// nothing.
func (s *Server) SnapshotRooms() []RoomSnapshot {
	var out []RoomSnapshot
	s.reg.forEach(func(name string, rs *roomState) {
		out = append(out, RoomSnapshot{
			Room:    name,
			DocID:   rs.docID,
			Seq:     rs.room.Seq(),
			Trimmed: rs.room.Trimmed(),
			Events:  rs.room.History(0),
		})
	})
	return out
}

// Rooms lists the names of every live room — the cluster tier's cheap
// reconciliation view (no event logs are copied).
func (s *Server) Rooms() []string {
	var out []string
	s.reg.forEach(func(name string, rs *roomState) { out = append(out, name) })
	return out
}

// SnapshotRoom exports one live room's replicable event-log state.
func (s *Server) SnapshotRoom(name string) (RoomSnapshot, bool) {
	rs, ok := s.reg.get(name)
	if !ok {
		return RoomSnapshot{}, false
	}
	return RoomSnapshot{
		Room:    name,
		DocID:   rs.docID,
		Seq:     rs.room.Seq(),
		Trimmed: rs.room.Trimmed(),
		Events:  rs.room.History(0),
	}, true
}

// DropRoom closes the named room and removes it from the registry —
// the cluster tier's ownership-loss eviction: when placement moves a
// room to another node, the old owner drops its live copy so a stale
// room can never shadow the new owner's (the next local build starts
// from the replicated log instead). Members' event channels close;
// callers are expected to also disconnect the affected peers so their
// clients reconnect and land on the new owner.
func (s *Server) DropRoom(name string) bool {
	rs, ok := s.reg.get(name)
	if !ok {
		return false
	}
	s.reg.remove(name)
	rs.room.Close()
	return true
}

// Tracer exposes the slow/errored request trace ring (the sys.traces
// RPC and the -debug-addr trace endpoint read it).
func (s *Server) Tracer() *obs.Recorder { return s.tracer }

// Serve accepts connections on l until it closes.
func (s *Server) Serve(l net.Listener) error { return s.rpc.Serve(l) }

// ServeConn serves a single established connection (in-process setups).
func (s *Server) ServeConn(conn net.Conn) { s.rpc.ServeConn(conn) }

// Shutdown drains the server gracefully: stop accepting connections and
// reject new requests, announce the shutdown to every room (members
// receive room.EvShutdown while their connections are still up), wait
// for in-flight handlers until ctx expires, then close rooms and tear
// down the remaining connections.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.qos != nil {
		s.qos.stopLoop()
	}
	s.rpc.Drain()
	s.reg.forEach(func(name string, rs *roomState) { rs.room.AnnounceShutdown() })
	err := s.rpc.AwaitIdle(ctx)
	s.reg.closeAll()
	// Closing the rooms ended every member event stream; wait (bounded
	// by ctx) for the forwarding goroutines to flush their queued
	// pushes — the shutdown announcement among them — while the
	// connections are still up.
	flushed := make(chan struct{})
	go func() {
		s.forwarders.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	// Forwarders only enqueue pushes; force the batched peer writers to
	// hand everything to the OS before the connections close.
	_ = s.rpc.FlushPeers(ctx)
	if cerr := s.rpc.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close shuts down with a default 5-second drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// register installs all RPC handlers through the typed adapter.
func (s *Server) register() {
	s.rpc.Register(proto.MListDocuments, wire.Typed(s.handleListDocuments))
	s.rpc.Register(proto.MGetDocument, wire.Typed(s.handleGetDocument))
	s.rpc.Register(proto.MGetImage, wire.Typed(s.handleGetImage))
	s.rpc.Register(proto.MGetAudio, wire.Typed(s.handleGetAudio))
	s.rpc.Register(proto.MGetCmp, wire.Typed(s.handleGetCmp))
	s.rpc.Register(proto.MPutImageTexts, wire.Typed(s.handlePutImageTexts))
	s.rpc.Register(proto.MJoinRoom, wire.Typed(s.handleJoinRoom))
	s.rpc.Register(proto.MLeaveRoom, wire.Typed(s.handleLeaveRoom))
	s.rpc.Register(proto.MChoice, wire.Typed(s.handleChoice))
	s.rpc.Register(proto.MOperation, wire.Typed(s.handleOperation))
	s.rpc.Register(proto.MAnnotate, wire.Typed(s.handleAnnotate))
	s.rpc.Register(proto.MDeleteAnnotation, wire.Typed(s.handleDeleteAnnotation))
	s.rpc.Register(proto.MFreeze, wire.Typed(s.handleFreeze))
	s.rpc.Register(proto.MRelease, wire.Typed(s.handleRelease))
	s.rpc.Register(proto.MShareSearch, wire.Typed(s.handleShareSearch))
	s.rpc.Register(proto.MChat, wire.Typed(s.handleChat))
	s.rpc.Register(proto.MHistory, wire.Typed(s.handleHistory))
	s.rpc.Register(proto.MBroadcastStart, wire.Typed(s.handleBroadcastStart))
	s.rpc.Register(proto.MBroadcastStop, wire.Typed(s.handleBroadcastStop))
	s.rpc.Register(proto.MSaveMinutes, wire.Typed(s.handleSaveMinutes))
	s.rpc.Register(proto.MStats, wire.Typed(s.handleStats))
	s.rpc.Register(proto.MTraces, wire.Typed(s.handleTraces))
}

// --- database methods ---

func (s *Server) handleListDocuments(ctx context.Context, p *wire.Peer, req *proto.ListDocumentsReq) (*proto.ListDocumentsResp, error) {
	ids, titles, err := s.db.ListDocuments()
	if err != nil {
		return nil, err
	}
	return &proto.ListDocumentsResp{IDs: ids, Titles: titles}, nil
}

func (s *Server) handleGetDocument(ctx context.Context, p *wire.Peer, req *proto.GetDocumentReq) (*proto.GetDocumentResp, error) {
	doc, err := s.db.GetDocument(req.DocID)
	if err != nil {
		return nil, err
	}
	data, err := doc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &proto.GetDocumentResp{DocData: data}, nil
}

func (s *Server) handleGetImage(ctx context.Context, p *wire.Peer, req *proto.GetImageReq) (*proto.GetImageResp, error) {
	resp, err := s.getImageCached(req.ID)
	if err != nil {
		return nil, err
	}
	if digestMatches(req.IfDigestAbsent, resp.Digest) {
		// Shallow copy, never a mutation: the cached resp is shared with
		// every other reader of the object cache.
		cp := *resp
		cp.Data = nil
		cp.NotModified = true
		return &cp, nil
	}
	return resp, nil
}

// digestMatches reports whether a conditional request's known digest
// equals the stored object's — the payload can then be elided.
func digestMatches(cond, digest []byte) bool {
	return len(cond) > 0 && bytes.Equal(cond, digest)
}

// getImageCached serves an image object through the response cache; the
// demand path (GetImage RPC) and the QoS loop's push-prefetch share the
// cache, so a pre-push never doubles the store fetch the first demand
// would have done.
func (s *Server) getImageCached(id uint64) (*proto.GetImageResp, error) {
	v, err := s.objects.get(imgKey(id), func() (any, int64, error) {
		img, err := s.db.GetImage(id)
		if err != nil {
			return nil, 0, err
		}
		resp := &proto.GetImageResp{Quality: img.Quality, Texts: img.Texts, CM: img.CM, Digest: img.Digest[:], Data: img.Data}
		return resp, int64(len(img.Data) + len(img.Texts) + 64), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*proto.GetImageResp), nil
}

func (s *Server) handleGetAudio(ctx context.Context, p *wire.Peer, req *proto.GetAudioReq) (*proto.GetAudioResp, error) {
	v, err := s.objects.get(audKey(req.ID), func() (any, int64, error) {
		a, err := s.db.GetAudio(req.ID)
		if err != nil {
			return nil, 0, err
		}
		resp := &proto.GetAudioResp{Filename: a.Filename, Sectors: a.Sectors, Digest: a.Digest[:], Data: a.Data}
		return resp, int64(len(a.Data) + len(a.Sectors) + len(a.Filename) + 64), nil
	})
	if err != nil {
		return nil, err
	}
	resp := v.(*proto.GetAudioResp)
	if digestMatches(req.IfDigestAbsent, resp.Digest) {
		cp := *resp
		cp.Data = nil
		cp.NotModified = true
		return &cp, nil
	}
	return resp, nil
}

// handleGetCmp serves a compressed stream, truncating the body to the
// requested layer count so low-bandwidth clients transfer less. The
// (id, layers) result is cached: every viewer of a room pulling the
// same layer prefix does one store fetch + header parse, not N.
func (s *Server) handleGetCmp(ctx context.Context, p *wire.Peer, req *proto.GetCmpReq) (*proto.GetCmpResp, error) {
	v, err := s.objects.get(cmpKey(req.ID, req.MaxLayers), func() (any, int64, error) {
		resp, err := s.fetchCmp(req)
		if err != nil {
			return nil, 0, err
		}
		return resp, int64(len(resp.Data) + len(resp.Header) + len(resp.Filename) + 64), nil
	})
	if err != nil {
		return nil, err
	}
	resp := v.(*proto.GetCmpResp)
	// The digest addresses the full stream, so only an untruncated
	// response (MaxLayers == 0) can match a conditional request. The
	// header stays in the reply either way — it is tiny and the layer
	// map may be what the client is after.
	if req.MaxLayers == 0 && digestMatches(req.IfDigestAbsent, resp.Digest) {
		cp := *resp
		cp.Data = nil
		cp.NotModified = true
		return &cp, nil
	}
	return resp, nil
}

// fetchCmp is the uncached GetCmp body: store fetch, layer-header
// parse, prefix truncation.
func (s *Server) fetchCmp(req *proto.GetCmpReq) (*proto.GetCmpResp, error) {
	c, err := s.db.GetCmp(req.ID)
	if err != nil {
		return nil, err
	}
	body := c.Data
	if req.MaxLayers > 0 {
		stream, err := compress.Unmarshal(c.Header, c.Data)
		if err != nil {
			return nil, err
		}
		if req.MaxLayers > len(stream.Layers) {
			return nil, fmt.Errorf("server: stream %d has %d layers, not %d", req.ID, len(stream.Layers), req.MaxLayers)
		}
		n := stream.PrefixBytes(req.MaxLayers)
		if n > len(c.Data) {
			return nil, fmt.Errorf("server: stream %d is corrupt: %d-layer prefix (%d bytes) exceeds body (%d bytes)",
				req.ID, req.MaxLayers, n, len(c.Data))
		}
		body = c.Data[:n]
	}
	return &proto.GetCmpResp{Filename: c.Filename, Digest: c.DataDigest[:], Header: c.Header, Data: body}, nil
}

func (s *Server) handlePutImageTexts(ctx context.Context, p *wire.Peer, req *proto.PutImageTextsReq) (*wire.None, error) {
	if err := s.db.UpdateImageTexts(req.ID, req.Texts); err != nil {
		return nil, err
	}
	s.objects.invalidate(imgKey(req.ID))
	return nil, nil
}

// --- room lookup and membership ---

// roomFor returns (creating on demand) the named room bound to docID.
func (s *Server) roomFor(name, docID string) (*roomState, error) {
	rs, ok := s.reg.get(name)
	if !ok {
		if docID == "" {
			return nil, fmt.Errorf("server: room %q does not exist; first joiner must name a document", name)
		}
		var created bool
		var err error
		rs, created, err = s.reg.getOrCreate(name, func() (*roomState, error) {
			return s.buildRoom(name, docID)
		})
		if err != nil {
			return nil, err
		}
		if created {
			return rs, nil
		}
		// Another joiner won the race; fall through to the binding check.
	}
	if docID != "" && rs.docID != docID {
		return nil, fmt.Errorf("server: room %q is bound to document %q, not %q", name, rs.docID, docID)
	}
	return rs, nil
}

// buildRoom fetches the document and constructs a live room around it.
func (s *Server) buildRoom(name, docID string) (*roomState, error) {
	doc, err := s.db.GetDocument(docID)
	if err != nil {
		return nil, err
	}
	// With the adaptive loop on, extend the document's preference network
	// with the bandwidth tuning variable (§4.4's automatic template
	// extension) so per-member measured levels can re-rank resolutions.
	// Documents with nothing to degrade (no component offers at least two
	// visible forms) are left untouched.
	if s.qos != nil && !doc.Prefs.HasVariable(core.BandwidthVariable) {
		if tpl := core.AutoBandwidthTemplates(doc, 0); len(tpl) > 0 {
			if err := core.AddBandwidthTuning(doc, tpl); err != nil {
				return nil, fmt.Errorf("server: bandwidth tuning for %s: %w", docID, err)
			}
		}
	}
	r, err := room.New(name, doc)
	if err != nil {
		return nil, err
	}
	r.OnQueueDrop(func(string) { s.stats.Add(CounterQueueDrops, 1) })
	r.SetGrace(s.grace)
	// Cluster wiring: a room moving here after failover restores the
	// replicated log before any member joins; the tap streams every
	// subsequent advance back out to the room's standby.
	if s.roomSeed != nil {
		if snap, ok := s.roomSeed(name); ok {
			if err := r.Restore(snap.Events, snap.Seq, snap.Trimmed); err != nil {
				return nil, err
			}
		}
	}
	if s.roomTap != nil {
		r.SetReplicator(func(ev *room.Event, seq, trimmed uint64) {
			s.roomTap(name, docID, ev, seq, trimmed)
		})
	}
	// Safe to enable: the forwarder refunds every delivered event via
	// member.Consumed.
	r.SetPushBudget(s.pushBudget)
	r.OnSessionExpire(func(string) { s.stats.Add(CounterSessionExpired, 1) })
	// Register base rasters for annotation rendering where available.
	for _, c := range doc.Components() {
		for _, pres := range c.Presentations {
			if pres.ObjectID == 0 || pres.Kind != document.KindImage {
				continue
			}
			if img, err := s.db.GetImage(pres.ObjectID); err == nil {
				if raster, err := image.Decode(img.Data); err == nil {
					r.RegisterRaster(pres.ObjectID, raster)
				}
			}
		}
	}
	return &roomState{room: r, docID: docID, doc: doc}, nil
}

// peerSessions is a connection's room memberships, keyed by room name.
// Requests on one connection dispatch concurrently, so the map carries
// its own lock.
type peerSessions struct {
	mu    sync.Mutex
	rooms map[string]*membership
}

// sessionsOf returns the peer's membership table, creating it if needed.
func sessionsOf(p *wire.Peer) *peerSessions {
	return p.MetaSetDefault("sessions", &peerSessions{rooms: make(map[string]*membership)}).(*peerSessions)
}

func (ps *peerSessions) add(mb *membership) (dup bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, dup := ps.rooms[mb.room]; dup {
		return true
	}
	ps.rooms[mb.room] = mb
	return false
}

func (ps *peerSessions) lookup(room string) (*membership, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	mb, ok := ps.rooms[room]
	return mb, ok
}

func (ps *peerSessions) drop(room string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	delete(ps.rooms, room)
}

func (ps *peerSessions) snapshot() []*membership {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]*membership, 0, len(ps.rooms))
	for _, mb := range ps.rooms {
		out = append(out, mb)
	}
	return out
}

func (s *Server) handleJoinRoom(ctx context.Context, p *wire.Peer, req *proto.JoinRoomReq) (*proto.JoinRoomResp, error) {
	if req.User == "" {
		return nil, fmt.Errorf("server: join needs a user name")
	}
	rs, err := s.roomFor(req.Room, req.DocID)
	if err != nil {
		return nil, err
	}
	var (
		member   *room.Member
		history  []room.Event
		view     document.View
		resumed  bool
		complete = true
	)
	if req.Resume {
		m, missed, v, comp, rerr := rs.room.Resume(ctx, req.User, req.SinceSeq)
		switch {
		case rerr == nil:
			member, history, view = m, missed, v
			resumed, complete = true, comp
			s.stats.Add(CounterSessionResumed, 1)
			s.stats.Add(CounterReconnectResumes, 1)
		case errors.Is(rerr, room.ErrNoSession):
			// The detached session expired (or never existed): fall back
			// to a fresh join so the reconnecting client still lands in
			// the room, just without replay continuity.
			s.stats.Add(CounterReconnectRejoins, 1)
		default:
			return nil, rerr
		}
	}
	if member == nil {
		member, history, view, err = rs.room.Join(ctx, req.User)
		if err != nil {
			return nil, err
		}
	}
	sessions := sessionsOf(p)
	mb := &membership{room: req.Room, user: req.User, member: member}
	if sessions.add(mb) {
		_ = rs.room.Leave(req.User)
		return nil, fmt.Errorf("server: this connection already joined room %q", req.Room)
	}
	s.startForwarder(p, sessions, rs, req.Room, req.User, member)
	resp := &proto.JoinRoomResp{
		History: history,
		Outcome: view.Outcome, Visible: view.Visible,
		Resumed: resumed, Complete: complete,
		LastSeq: rs.room.Seq(),
	}
	// A complete resume needs no document: the client's copy is still
	// current and the missed events carry every change. Fresh joins and
	// gappy resumes get the full snapshot.
	if !resumed || !complete {
		docData, hit, err := rs.room.DocSnapshot()
		if err != nil {
			// Unwind the join: without this the member and its forwarding
			// goroutine would leak on the marshal error path.
			sessions.drop(req.Room)
			_ = rs.room.Leave(req.User)
			return nil, err
		}
		if hit {
			s.stats.Add(CounterDocCacheHits, 1)
		} else {
			s.stats.Add(CounterDocCacheMisses, 1)
		}
		resp.DocData = docData
	}
	return resp, nil
}

// startForwarder pumps the member's event stream to the client as pushes.
// Room broadcast events carry a shared memoized encoding per wire
// format, so an N-member fan-out encodes each event at most once per
// negotiated protocol — v2 peers share one binary encoding, gob peers
// share one gob encoding — and every other forwarder pushes the same
// bytes (per-member presentation/resync events still encode
// individually). On v2 connections the shared payload rides the writev
// batch by reference: zero copies between the encode and the socket.
func (s *Server) startForwarder(p *wire.Peer, sessions *peerSessions, rs *roomState, roomName, user string, member *room.Member) {
	s.forwarders.Add(1)
	format, marshal, enc := room.FormatGob, wire.Marshal, wire.EncGob
	if p.ProtoVersion() >= wire.ProtoV2 {
		format, marshal, enc = room.FormatBinary, room.MarshalEventBinary, wire.EncBinary
	}
	if s.qos != nil {
		s.qos.register(p, rs, roomName, user, member)
	}
	go func() {
		defer s.forwarders.Done()
		if s.qos != nil {
			defer s.qos.unregister(member)
		}
		for ev := range member.Events() {
			// Refund the event's push-budget charge: once it is off the
			// queue the room no longer holds it for this member.
			member.Consumed(ev)
			payload, encoded, err := ev.EncodeShared(format, marshal)
			if err == nil {
				s.stats.Add(CounterFanoutEvents, 1)
				if encoded {
					s.stats.Add(CounterFanoutEncodes, 1)
				} else {
					s.stats.Add(CounterEncodesSaved, 1)
				}
				err = p.PushRaw(proto.MEvent, enc, payload)
			}
			if err != nil {
				// The client is unreachable: detach the session so a
				// reconnecting client can resume it within the grace
				// period (after which it expires into a real leave).
				// Detach closes the event channel, ending this range.
				sessions.drop(roomName)
				if rs.room.Detach(member) {
					s.stats.Add(CounterSessionDetached, 1)
				}
				// Detach closed the channel with events possibly still
				// queued; drain them so their push-budget charges are
				// refunded — otherwise the abandoned member reads as
				// phantom queue pressure to the QoS loop and the gauges.
				member.DrainRefund()
				return
			}
		}
	}()
}

func (s *Server) handleLeaveRoom(ctx context.Context, p *wire.Peer, req *proto.LeaveRoomReq) (*wire.None, error) {
	sessions := sessionsOf(p)
	mb, ok := sessions.lookup(req.Room)
	if !ok || mb.user != req.User {
		return nil, fmt.Errorf("server: this connection is not %q in room %q", req.User, req.Room)
	}
	sessions.drop(req.Room)
	rs, ok := s.reg.get(req.Room)
	if !ok {
		return nil, fmt.Errorf("server: no room %q", req.Room)
	}
	return nil, rs.room.Leave(req.User)
}

// evictPeer detaches a disconnected client's sessions in every room it
// had joined: each stays resumable for the grace period, then expires
// into a real leave.
func (s *Server) evictPeer(p *wire.Peer) {
	for _, mb := range sessionsOf(p).snapshot() {
		if rs, ok := s.reg.get(mb.room); ok {
			if rs.room.Detach(mb.member) {
				s.stats.Add(CounterSessionDetached, 1)
			}
		}
	}
	if s.onPeerClose != nil {
		s.onPeerClose(p)
	}
}

// withMembership validates that the calling connection owns the claimed
// (room, user) pair, then runs fn on the live room.
func (s *Server) withMembership(p *wire.Peer, roomName, user string, fn func(*room.Room) error) error {
	mb, ok := sessionsOf(p).lookup(roomName)
	if !ok || mb.user != user {
		return fmt.Errorf("server: this connection is not %q in room %q", user, roomName)
	}
	rs, ok := s.reg.get(roomName)
	if !ok {
		return fmt.Errorf("server: no room %q", roomName)
	}
	return fn(rs.room)
}

// --- room methods ---

func (s *Server) handleChoice(ctx context.Context, p *wire.Peer, req *proto.ChoiceReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Choice(ctx, req.User, req.Variable, req.Value)
	})
}

func (s *Server) handleOperation(ctx context.Context, p *wire.Peer, req *proto.OperationReq) (*proto.OperationResp, error) {
	var derived string
	err := s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		var err error
		derived, err = r.Operation(ctx, req.User, req.Component, req.Op, req.ActiveWhen, req.Private)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &proto.OperationResp{DerivedVar: derived}, nil
}

func (s *Server) handleAnnotate(ctx context.Context, p *wire.Peer, req *proto.AnnotateReq) (*proto.AnnotateResp, error) {
	var id int
	err := s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		var err error
		id, err = r.Annotate(req.User, req.ObjectID, image.AnnotationKind(req.Kind),
			req.X1, req.Y1, req.X2, req.Y2, req.Text, req.Intensity)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &proto.AnnotateResp{AnnotationID: id}, nil
}

func (s *Server) handleDeleteAnnotation(ctx context.Context, p *wire.Peer, req *proto.DeleteAnnotationReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.DeleteAnnotation(req.User, req.ObjectID, req.AnnotationID)
	})
}

func (s *Server) handleFreeze(ctx context.Context, p *wire.Peer, req *proto.FreezeReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Freeze(req.User, req.ObjectID)
	})
}

func (s *Server) handleRelease(ctx context.Context, p *wire.Peer, req *proto.ReleaseReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Release(req.User, req.ObjectID)
	})
}

func (s *Server) handleShareSearch(ctx context.Context, p *wire.Peer, req *proto.ShareSearchReq) (*wire.None, error) {
	kind := room.EvWordSearch
	if req.Speaker {
		kind = room.EvSpeakerSearch
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.ShareSearch(req.User, kind, req.Keyword, req.Hits)
	})
}

func (s *Server) handleChat(ctx context.Context, p *wire.Peer, req *proto.ChatReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Chat(req.User, req.Text)
	})
}

func (s *Server) handleHistory(ctx context.Context, p *wire.Peer, req *proto.HistoryReq) (*proto.HistoryResp, error) {
	rs, ok := s.reg.get(req.Room)
	if !ok {
		return nil, fmt.Errorf("server: no room %q", req.Room)
	}
	return &proto.HistoryResp{Events: rs.room.History(req.Since)}, nil
}

func (s *Server) handleBroadcastStart(ctx context.Context, p *wire.Peer, req *proto.BroadcastReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.StartBroadcast(req.User)
	})
}

func (s *Server) handleBroadcastStop(ctx context.Context, p *wire.Peer, req *proto.BroadcastReq) (*wire.None, error) {
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.StopBroadcast(req.User)
	})
}

// handleSaveMinutes persists the discussion's durable results: the
// transcript becomes a new document component (stored with the document),
// and each image object's current annotation overlay is written into its
// FLD_TEXTS column.
func (s *Server) handleSaveMinutes(ctx context.Context, p *wire.Peer, req *proto.SaveMinutesReq) (*proto.SaveMinutesResp, error) {
	var component string
	err := s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		minutes := r.Minutes()
		name, err := r.AddMinutesComponent(req.User, minutes.Transcript())
		if err != nil {
			return err
		}
		component = name
		for objectID, anns := range minutes.Annotations {
			data, err := image.MarshalAnnotations(anns)
			if err != nil {
				return err
			}
			// Only image objects carry a FLD_TEXTS column; other object
			// kinds simply skip persistence of marks.
			if err := s.db.UpdateImageTexts(objectID, string(data)); err != nil {
				continue
			}
			s.objects.invalidate(imgKey(objectID))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rs, ok := s.reg.get(req.Room)
	if !ok {
		return nil, fmt.Errorf("server: no room %q", req.Room)
	}
	if err := s.db.PutDocument(rs.doc); err != nil {
		return nil, err
	}
	return &proto.SaveMinutesResp{Component: component}, nil
}
