// Package server implements the interaction server of the paper (§3,
// §5.3): it serves multimedia objects and documents out of the database
// server, manages the shared rooms, keeps track of user actions, hands
// them to the presentation module, and propagates every change to all
// clients in the room over the wire layer's push channel.
package server

import (
	"fmt"
	"net"
	"sync"

	"mmconf/internal/document"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/wire"
)

// Server is the interaction server.
type Server struct {
	db  *mediadb.MediaDB
	rpc *wire.Server

	mu    sync.Mutex
	rooms map[string]*roomState
}

// roomState binds a live room to its document id.
type roomState struct {
	room  *room.Room
	docID string
	doc   *document.Document
}

// membership tracks one peer's presence in one room.
type membership struct {
	room   string
	user   string
	member *room.Member
	done   chan struct{}
}

// New builds a server over an opened multimedia database.
func New(db *mediadb.MediaDB) *Server {
	s := &Server{db: db, rpc: wire.NewServer(), rooms: make(map[string]*roomState)}
	s.register()
	s.rpc.OnPeerClose(s.evictPeer)
	return s
}

// Serve accepts connections on l until it closes.
func (s *Server) Serve(l net.Listener) error { return s.rpc.Serve(l) }

// ServeConn serves a single established connection (in-process setups).
func (s *Server) ServeConn(conn net.Conn) { s.rpc.ServeConn(conn) }

// Close shuts down listeners and rooms.
func (s *Server) Close() error {
	s.mu.Lock()
	for name, rs := range s.rooms {
		rs.room.Close()
		delete(s.rooms, name)
	}
	s.mu.Unlock()
	return s.rpc.Close()
}

// register installs all RPC handlers.
func (s *Server) register() {
	s.rpc.Register(proto.MListDocuments, s.handleListDocuments)
	s.rpc.Register(proto.MGetDocument, s.handleGetDocument)
	s.rpc.Register(proto.MGetImage, s.handleGetImage)
	s.rpc.Register(proto.MGetAudio, s.handleGetAudio)
	s.rpc.Register(proto.MGetCmp, s.handleGetCmp)
	s.rpc.Register(proto.MPutImageTexts, s.handlePutImageTexts)
	s.rpc.Register(proto.MJoinRoom, s.handleJoinRoom)
	s.rpc.Register(proto.MLeaveRoom, s.handleLeaveRoom)
	s.rpc.Register(proto.MChoice, s.handleChoice)
	s.rpc.Register(proto.MOperation, s.handleOperation)
	s.rpc.Register(proto.MAnnotate, s.handleAnnotate)
	s.rpc.Register(proto.MDeleteAnnotation, s.handleDeleteAnnotation)
	s.rpc.Register(proto.MFreeze, s.handleFreeze)
	s.rpc.Register(proto.MRelease, s.handleRelease)
	s.rpc.Register(proto.MShareSearch, s.handleShareSearch)
	s.rpc.Register(proto.MChat, s.handleChat)
	s.rpc.Register(proto.MHistory, s.handleHistory)
	s.rpc.Register(proto.MBroadcastStart, s.handleBroadcastStart)
	s.rpc.Register(proto.MBroadcastStop, s.handleBroadcastStop)
	s.rpc.Register(proto.MSaveMinutes, s.handleSaveMinutes)
}

// handleSaveMinutes persists the discussion's durable results: the
// transcript becomes a new document component (stored with the document),
// and each image object's current annotation overlay is written into its
// FLD_TEXTS column.
func (s *Server) handleSaveMinutes(p *wire.Peer, payload []byte) (any, error) {
	var req proto.SaveMinutesReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	var component string
	err := s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		minutes := r.Minutes()
		name, err := r.AddMinutesComponent(req.User, minutes.Transcript())
		if err != nil {
			return err
		}
		component = name
		for objectID, anns := range minutes.Annotations {
			data, err := image.MarshalAnnotations(anns)
			if err != nil {
				return err
			}
			// Only image objects carry a FLD_TEXTS column; other object
			// kinds simply skip persistence of marks.
			if err := s.db.UpdateImageTexts(objectID, string(data)); err != nil {
				continue
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	rs := s.rooms[req.Room]
	s.mu.Unlock()
	if rs == nil {
		return nil, fmt.Errorf("server: no room %q", req.Room)
	}
	if err := s.db.PutDocument(rs.doc); err != nil {
		return nil, err
	}
	return proto.SaveMinutesResp{Component: component}, nil
}

func (s *Server) handleBroadcastStart(p *wire.Peer, payload []byte) (any, error) {
	var req proto.BroadcastReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.StartBroadcast(req.User)
	})
}

func (s *Server) handleBroadcastStop(p *wire.Peer, payload []byte) (any, error) {
	var req proto.BroadcastReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.StopBroadcast(req.User)
	})
}

func (s *Server) handleListDocuments(p *wire.Peer, payload []byte) (any, error) {
	ids, titles, err := s.db.ListDocuments()
	if err != nil {
		return nil, err
	}
	return proto.ListDocumentsResp{IDs: ids, Titles: titles}, nil
}

func (s *Server) handleGetDocument(p *wire.Peer, payload []byte) (any, error) {
	var req proto.GetDocumentReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	doc, err := s.db.GetDocument(req.DocID)
	if err != nil {
		return nil, err
	}
	data, err := doc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return proto.GetDocumentResp{DocData: data}, nil
}

func (s *Server) handleGetImage(p *wire.Peer, payload []byte) (any, error) {
	var req proto.GetImageReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	img, err := s.db.GetImage(req.ID)
	if err != nil {
		return nil, err
	}
	return proto.GetImageResp{Quality: img.Quality, Texts: img.Texts, CM: img.CM, Data: img.Data}, nil
}

func (s *Server) handleGetAudio(p *wire.Peer, payload []byte) (any, error) {
	var req proto.GetAudioReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	a, err := s.db.GetAudio(req.ID)
	if err != nil {
		return nil, err
	}
	return proto.GetAudioResp{Filename: a.Filename, Sectors: a.Sectors, Data: a.Data}, nil
}

// handleGetCmp serves a compressed stream, truncating the body to the
// requested layer count so low-bandwidth clients transfer less.
func (s *Server) handleGetCmp(p *wire.Peer, payload []byte) (any, error) {
	var req proto.GetCmpReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	c, err := s.db.GetCmp(req.ID)
	if err != nil {
		return nil, err
	}
	body := c.Data
	if req.MaxLayers > 0 {
		stream, err := compress.Unmarshal(c.Header, c.Data)
		if err != nil {
			return nil, err
		}
		body = c.Data[:stream.PrefixBytes(req.MaxLayers)]
	}
	return proto.GetCmpResp{Filename: c.Filename, Header: c.Header, Data: body}, nil
}

func (s *Server) handlePutImageTexts(p *wire.Peer, payload []byte) (any, error) {
	var req proto.PutImageTextsReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.db.UpdateImageTexts(req.ID, req.Texts)
}

// roomFor returns (creating on demand) the named room bound to docID.
func (s *Server) roomFor(name, docID string) (*roomState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rs, ok := s.rooms[name]; ok {
		if docID != "" && rs.docID != docID {
			return nil, fmt.Errorf("server: room %q is bound to document %q, not %q", name, rs.docID, docID)
		}
		return rs, nil
	}
	if docID == "" {
		return nil, fmt.Errorf("server: room %q does not exist; first joiner must name a document", name)
	}
	doc, err := s.db.GetDocument(docID)
	if err != nil {
		return nil, err
	}
	r, err := room.New(name, doc)
	if err != nil {
		return nil, err
	}
	// Register base rasters for annotation rendering where available.
	for _, c := range doc.Components() {
		for _, pres := range c.Presentations {
			if pres.ObjectID == 0 || pres.Kind != document.KindImage {
				continue
			}
			if img, err := s.db.GetImage(pres.ObjectID); err == nil {
				if raster, err := image.Decode(img.Data); err == nil {
					r.RegisterRaster(pres.ObjectID, raster)
				}
			}
		}
	}
	rs := &roomState{room: r, docID: docID, doc: doc}
	s.rooms[name] = rs
	return rs, nil
}

// peerMemberships returns the peer's membership map, creating it if
// needed. Keyed by room name.
func peerMemberships(p *wire.Peer) map[string]*membership {
	if v, ok := p.Meta("memberships"); ok {
		return v.(map[string]*membership)
	}
	m := make(map[string]*membership)
	p.SetMeta("memberships", m)
	return m
}

func (s *Server) handleJoinRoom(p *wire.Peer, payload []byte) (any, error) {
	var req proto.JoinRoomReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	if req.User == "" {
		return nil, fmt.Errorf("server: join needs a user name")
	}
	rs, err := s.roomFor(req.Room, req.DocID)
	if err != nil {
		return nil, err
	}
	member, history, view, err := rs.room.Join(req.User)
	if err != nil {
		return nil, err
	}
	ms := peerMemberships(p)
	if _, dup := ms[req.Room]; dup {
		_ = rs.room.Leave(req.User)
		return nil, fmt.Errorf("server: this connection already joined room %q", req.Room)
	}
	mb := &membership{room: req.Room, user: req.User, member: member, done: make(chan struct{})}
	ms[req.Room] = mb
	// Forward the member's event stream to the client as pushes.
	go func() {
		for ev := range member.Events() {
			if err := p.Push(proto.MEvent, ev); err != nil {
				return
			}
		}
		close(mb.done)
	}()
	docData, err := rs.doc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return proto.JoinRoomResp{
		DocData: docData, History: history,
		Outcome: view.Outcome, Visible: view.Visible,
	}, nil
}

func (s *Server) handleLeaveRoom(p *wire.Peer, payload []byte) (any, error) {
	var req proto.LeaveRoomReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	ms := peerMemberships(p)
	mb, ok := ms[req.Room]
	if !ok || mb.user != req.User {
		return nil, fmt.Errorf("server: this connection is not %q in room %q", req.User, req.Room)
	}
	delete(ms, req.Room)
	rs, err := s.roomFor(req.Room, "")
	if err != nil {
		return nil, err
	}
	return nil, rs.room.Leave(req.User)
}

// evictPeer removes a disconnected client from every room it had joined.
func (s *Server) evictPeer(p *wire.Peer) {
	for name, mb := range peerMemberships(p) {
		s.mu.Lock()
		rs, ok := s.rooms[name]
		s.mu.Unlock()
		if ok {
			_ = rs.room.Leave(mb.user)
		}
	}
}

// withMembership validates that the calling connection owns the claimed
// (room, user) pair, then runs fn on the live room.
func (s *Server) withMembership(p *wire.Peer, roomName, user string, fn func(*room.Room) error) error {
	mb, ok := peerMemberships(p)[roomName]
	if !ok || mb.user != user {
		return fmt.Errorf("server: this connection is not %q in room %q", user, roomName)
	}
	s.mu.Lock()
	rs, ok := s.rooms[roomName]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no room %q", roomName)
	}
	return fn(rs.room)
}

func (s *Server) handleChoice(p *wire.Peer, payload []byte) (any, error) {
	var req proto.ChoiceReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Choice(req.User, req.Variable, req.Value)
	})
}

func (s *Server) handleOperation(p *wire.Peer, payload []byte) (any, error) {
	var req proto.OperationReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	var derived string
	err := s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		var err error
		derived, err = r.Operation(req.User, req.Component, req.Op, req.ActiveWhen, req.Private)
		return err
	})
	if err != nil {
		return nil, err
	}
	return proto.OperationResp{DerivedVar: derived}, nil
}

func (s *Server) handleAnnotate(p *wire.Peer, payload []byte) (any, error) {
	var req proto.AnnotateReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	var id int
	err := s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		var err error
		id, err = r.Annotate(req.User, req.ObjectID, image.AnnotationKind(req.Kind),
			req.X1, req.Y1, req.X2, req.Y2, req.Text, req.Intensity)
		return err
	})
	if err != nil {
		return nil, err
	}
	return proto.AnnotateResp{AnnotationID: id}, nil
}

func (s *Server) handleDeleteAnnotation(p *wire.Peer, payload []byte) (any, error) {
	var req proto.DeleteAnnotationReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.DeleteAnnotation(req.User, req.ObjectID, req.AnnotationID)
	})
}

func (s *Server) handleFreeze(p *wire.Peer, payload []byte) (any, error) {
	var req proto.FreezeReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Freeze(req.User, req.ObjectID)
	})
}

func (s *Server) handleRelease(p *wire.Peer, payload []byte) (any, error) {
	var req proto.ReleaseReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Release(req.User, req.ObjectID)
	})
}

func (s *Server) handleShareSearch(p *wire.Peer, payload []byte) (any, error) {
	var req proto.ShareSearchReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	kind := room.EvWordSearch
	if req.Speaker {
		kind = room.EvSpeakerSearch
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.ShareSearch(req.User, kind, req.Keyword, req.Hits)
	})
}

func (s *Server) handleChat(p *wire.Peer, payload []byte) (any, error) {
	var req proto.ChatReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return nil, s.withMembership(p, req.Room, req.User, func(r *room.Room) error {
		return r.Chat(req.User, req.Text)
	})
}

func (s *Server) handleHistory(p *wire.Peer, payload []byte) (any, error) {
	var req proto.HistoryReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rs, ok := s.rooms[req.Room]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: no room %q", req.Room)
	}
	return proto.HistoryResp{Events: rs.room.History(req.Since)}, nil
}
