package server

import (
	"bytes"
	"context"
	"net"
	"testing"

	"mmconf/internal/client"
	"mmconf/internal/proto"
	"mmconf/internal/wire"
)

// The conditional-fetch suite: a client with the digest cache enabled
// sends IfDigestAbsent on repeat fetches, the server answers
// NotModified with the payload elided, and the client serves its cached
// bytes — transparently to callers.

func dialCaching(t *testing.T, addr, user string) *client.Client {
	t.Helper()
	c, err := client.DialWith(addr, user, client.Options{DigestCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestConditionalGetImage(t *testing.T) {
	_, addr, rec := testSystem(t)
	c := dialCaching(t, addr, "alice")

	first, err := c.GetImageBytes(rec.CTID)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.DigestCacheStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("cold fetch stats %+v, want 0 hits / 1 miss", st)
	}
	second, err := c.GetImageBytes(rec.CTID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat fetch returned different bytes")
	}
	if st := c.DigestCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("repeat fetch stats %+v, want 1 hit / 1 miss", st)
	}
	// The decoded path shares the cache with the raw path.
	if _, _, err := c.GetImage(rec.CTID); err != nil {
		t.Fatal(err)
	}
	if st := c.DigestCacheStats(); st.Hits != 2 {
		t.Fatalf("decoded fetch missed the cache: %+v", st)
	}
}

func TestConditionalGetAudioAndCmp(t *testing.T) {
	_, addr, rec := testSystem(t)
	c := dialCaching(t, addr, "alice")

	pcm1, _, _, err := c.GetAudio(rec.VoiceID)
	if err != nil {
		t.Fatal(err)
	}
	pcm2, sectors, filename, err := c.GetAudio(rec.VoiceID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pcm1, pcm2) || len(sectors) == 0 || filename == "" {
		t.Fatalf("repeat audio fetch lost data: %d vs %d bytes, %d sectors, %q",
			len(pcm1), len(pcm2), len(sectors), filename)
	}
	if st := c.DigestCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("audio stats %+v, want 1 hit / 1 miss", st)
	}

	// Full-stream Cmp fetches are conditional; truncated ones are not
	// (the digest addresses the whole stream) and never poison the
	// cache.
	g1, n1, err := c.GetCmp(rec.CmpID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetCmp(rec.CmpID, 1); err != nil {
		t.Fatal(err)
	}
	g2, n2, err := c.GetCmp(rec.CmpID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || g1.W != g2.W || g1.H != g2.H {
		t.Fatalf("cached full-stream decode differs: %d/%d bytes", n1, n2)
	}
	st := c.DigestCacheStats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("cmp stats %+v, want 2 hits / 2 misses (the truncated fetch bypasses the cache)", st)
	}
}

// TestConditionalFetchWireContract pins the server's side of the
// protocol down at the frame level: a matching IfDigestAbsent elides
// exactly the payload (scalars and digest still present), a stale
// digest transfers the full object, and the shared response cache is
// never mutated by the elision.
func TestConditionalFetchWireContract(t *testing.T) {
	_, addr, rec := testSystem(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	rpc := wire.NewClient(conn)
	t.Cleanup(func() { rpc.Close() })
	ctx := context.Background()

	var full proto.GetImageResp
	if err := rpc.CallCtx(ctx, proto.MGetImage, &proto.GetImageReq{ID: rec.CTID}, &full); err != nil {
		t.Fatal(err)
	}
	if full.NotModified || len(full.Data) == 0 || len(full.Digest) == 0 {
		t.Fatalf("unconditional fetch: notModified=%v, %d data, %d digest",
			full.NotModified, len(full.Data), len(full.Digest))
	}

	var elided proto.GetImageResp
	if err := rpc.CallCtx(ctx, proto.MGetImage, &proto.GetImageReq{ID: rec.CTID, IfDigestAbsent: full.Digest}, &elided); err != nil {
		t.Fatal(err)
	}
	if !elided.NotModified || len(elided.Data) != 0 {
		t.Fatalf("matching digest: notModified=%v, %d data bytes", elided.NotModified, len(elided.Data))
	}
	if !bytes.Equal(elided.Digest, full.Digest) || elided.Quality != full.Quality {
		t.Fatalf("elided response lost scalars: %+v", elided)
	}

	stale := bytes.Repeat([]byte{0xAB}, len(full.Digest))
	var refreshed proto.GetImageResp
	if err := rpc.CallCtx(ctx, proto.MGetImage, &proto.GetImageReq{ID: rec.CTID, IfDigestAbsent: stale}, &refreshed); err != nil {
		t.Fatal(err)
	}
	if refreshed.NotModified || !bytes.Equal(refreshed.Data, full.Data) {
		t.Fatalf("stale digest: notModified=%v, %d data bytes", refreshed.NotModified, len(refreshed.Data))
	}

	// Truncated Cmp fetches never match — the digest names the full
	// stream.
	var cmpFull proto.GetCmpResp
	if err := rpc.CallCtx(ctx, proto.MGetCmp, &proto.GetCmpReq{ID: rec.CmpID}, &cmpFull); err != nil {
		t.Fatal(err)
	}
	var cmpTrunc proto.GetCmpResp
	if err := rpc.CallCtx(ctx, proto.MGetCmp, &proto.GetCmpReq{ID: rec.CmpID, MaxLayers: 1, IfDigestAbsent: cmpFull.Digest}, &cmpTrunc); err != nil {
		t.Fatal(err)
	}
	if cmpTrunc.NotModified || len(cmpTrunc.Data) == 0 {
		t.Fatalf("truncated cmp fetch: notModified=%v, %d data bytes", cmpTrunc.NotModified, len(cmpTrunc.Data))
	}
}
