package server

import (
	"hash/fnv"
	"sync"
)

// defaultRegistryShards sizes the room table. 32 shards keep the
// probability of two hot rooms colliding low while the array stays
// small enough to scan for snapshots.
const defaultRegistryShards = 32

// regShard is one lock domain of the room table.
type regShard struct {
	mu    sync.RWMutex
	rooms map[string]*roomState
}

// registry is the sharded room table of the interaction server. Room
// lookups on the hot path (every choice, annotation, chat) take only
// their shard's read lock, so concurrent traffic in different rooms
// never contends on a single global mutex. The shard array is fixed at
// construction; names map to shards by FNV-1a hash.
type registry struct {
	shards []regShard
}

// newRegistry builds a registry with the given shard count (<= 0 uses
// the default).
func newRegistry(shards int) *registry {
	if shards <= 0 {
		shards = defaultRegistryShards
	}
	g := &registry{shards: make([]regShard, shards)}
	for i := range g.shards {
		g.shards[i].rooms = make(map[string]*roomState)
	}
	return g
}

func (g *registry) shard(name string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &g.shards[h.Sum32()%uint32(len(g.shards))]
}

// get returns the named room, if live.
func (g *registry) get(name string) (*roomState, bool) {
	sh := g.shard(name)
	sh.mu.RLock()
	rs, ok := sh.rooms[name]
	sh.mu.RUnlock()
	return rs, ok
}

// getOrCreate returns the named room, building it with create when
// absent. The shard's write lock is held across create so concurrent
// first joiners race to a single room — creation (a database fetch)
// blocks only rooms hashing to the same shard. created reports whether
// this call built the room; when false the caller must re-validate the
// existing room's document binding.
func (g *registry) getOrCreate(name string, create func() (*roomState, error)) (rs *roomState, created bool, err error) {
	sh := g.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rs, ok := sh.rooms[name]; ok {
		return rs, false, nil
	}
	rs, err = create()
	if err != nil {
		return nil, false, err
	}
	sh.rooms[name] = rs
	return rs, true, nil
}

// remove drops the named room from the table (the caller closes it).
func (g *registry) remove(name string) {
	sh := g.shard(name)
	sh.mu.Lock()
	delete(sh.rooms, name)
	sh.mu.Unlock()
}

// forEach visits every live room. The visited set is a snapshot; fn
// runs without any shard lock held, so it may call back into the
// registry or block on room locks.
func (g *registry) forEach(fn func(name string, rs *roomState)) {
	type entry struct {
		name string
		rs   *roomState
	}
	var snap []entry
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for name, rs := range sh.rooms {
			snap = append(snap, entry{name, rs})
		}
		sh.mu.RUnlock()
	}
	for _, e := range snap {
		fn(e.name, e.rs)
	}
}

// closeAll closes every room and empties the table.
func (g *registry) closeAll() {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		rooms := sh.rooms
		sh.rooms = make(map[string]*roomState)
		sh.mu.Unlock()
		for _, rs := range rooms {
			rs.room.Close()
		}
	}
}
