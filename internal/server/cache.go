package server

import (
	"container/list"
	"fmt"
	"sync"

	"mmconf/internal/wire"
)

// Counter names for the server's content caches and push path, surfaced
// through Server.Stats() (wire.Stats named counters).
const (
	// CounterFanoutEvents counts room events handed to member
	// forwarders for push delivery.
	CounterFanoutEvents = "push.events"
	// CounterFanoutEncodes counts actual gob encodes of pushed events;
	// with encode-once fan-out this is ~1 per broadcast event.
	CounterFanoutEncodes = "push.encodes"
	// CounterEncodesSaved counts fan-out deliveries served from a
	// shared encoding (fanned events minus encodes).
	CounterEncodesSaved = "push.encodes_saved"
	// CounterQueueDrops counts member-queue events discarded because a
	// client stopped draining (the member's next event carries a
	// Resync hint).
	CounterQueueDrops = "push.queue_drops"
	// CounterDocCacheHits / Misses count joins served from (or filling)
	// the per-room document snapshot cache.
	CounterDocCacheHits   = "cache.doc.hits"
	CounterDocCacheMisses = "cache.doc.misses"
	// CounterObjCacheHits / Misses / Evictions count the store-backed
	// object response cache (GetCmp layers, images, audio). A hit is a
	// request served without a store fetch, including requests that
	// joined an in-flight singleflight fill.
	CounterObjCacheHits      = "cache.obj.hits"
	CounterObjCacheMisses    = "cache.obj.misses"
	CounterObjCacheEvictions = "cache.obj.evictions"
	// CounterSessionDetached counts room sessions parked for possible
	// resume after their connection dropped (or a push failed);
	// CounterSessionResumed counts sessions revived within the grace
	// period, and CounterSessionExpired those that ran it out and
	// became real leaves.
	CounterSessionDetached = "session.detached"
	CounterSessionResumed  = "session.resumed"
	CounterSessionExpired  = "session.expired"
	// CounterReconnectResumes / Rejoins split reconnect joins (Resume
	// set on JoinRoomReq) by outcome: an exact resume versus a fresh
	// fallback join after the detached session was gone.
	CounterReconnectResumes = "reconnect.resumes"
	CounterReconnectRejoins = "reconnect.rejoins"
)

// Cache keys for store-backed object responses.
func cmpKey(id uint64, layers int) string { return fmt.Sprintf("cmp:%d:%d", id, layers) }
func imgKey(id uint64) string             { return fmt.Sprintf("img:%d", id) }
func audKey(id uint64) string             { return fmt.Sprintf("aud:%d", id) }

// objectCache is a byte-bounded LRU over immutable store-backed RPC
// responses — the content cache of the delivery hot path: repeat
// fetches of the same compression layer prefix (every viewer of a room
// pulls the same CT layers) skip the store fetch, the layer-header
// parse and the prefix computation. Fills are singleflighted: N
// concurrent viewers requesting the same object do one store fetch and
// share the result. Cached values are shared by reference, so callers
// must treat them as immutable. A zero capacity disables the cache
// entirely (every get runs fill, nothing is counted).
type objectCache struct {
	stats *wire.Stats

	mu    sync.Mutex
	cap   int64
	size  int64
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element holding *cacheEntry
	fills map[string]*cacheFill    // in-flight loads (singleflight)
}

type cacheEntry struct {
	key  string
	val  any
	size int64
}

// cacheFill is one in-flight load; done closes when val/err are set.
// stale is flipped (under the cache lock) by invalidate so a fill that
// raced a mutation is returned to its waiters but never cached.
type cacheFill struct {
	done  chan struct{}
	val   any
	err   error
	stale bool
}

func newObjectCache(capBytes int64, stats *wire.Stats) *objectCache {
	return &objectCache{
		stats: stats,
		cap:   capBytes,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		fills: make(map[string]*cacheFill),
	}
}

// get returns the value for key, running fill (which reports the value
// and its approximate byte size) on a miss. Concurrent misses on one
// key share a single fill; errors are never cached.
func (c *objectCache) get(key string, fill func() (any, int64, error)) (any, error) {
	if c.cap <= 0 {
		v, _, err := fill()
		return v, err
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.stats.Add(CounterObjCacheHits, 1)
		return v, nil
	}
	if f, ok := c.fills[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		// Joined a concurrent fetch: the store was hit once for all of
		// us, so this counts as a hit.
		c.stats.Add(CounterObjCacheHits, 1)
		return f.val, nil
	}
	f := &cacheFill{done: make(chan struct{})}
	c.fills[key] = f
	c.mu.Unlock()
	c.stats.Add(CounterObjCacheMisses, 1)
	var size int64
	f.val, size, f.err = fill()
	close(f.done)
	c.mu.Lock()
	delete(c.fills, key)
	if f.err == nil && !f.stale && size <= c.cap {
		if _, dup := c.items[key]; !dup {
			c.size += size
			c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val, size: size})
			for c.size > c.cap {
				el := c.ll.Back()
				ent := el.Value.(*cacheEntry)
				c.ll.Remove(el)
				delete(c.items, ent.key)
				c.size -= ent.size
				c.stats.Add(CounterObjCacheEvictions, 1)
			}
		}
	}
	c.mu.Unlock()
	return f.val, f.err
}

// gauges reports the cache's live occupancy: resident bytes and entry
// count (both 0 when the cache is disabled).
func (c *objectCache) gauges() (bytes int64, entries int) {
	if c.cap <= 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, c.ll.Len()
}

// invalidate drops a key after its backing object mutated. An in-flight
// fill for the key is marked stale so its (possibly pre-mutation)
// result is served to its waiters but not cached.
func (c *objectCache) invalidate(key string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.size -= ent.size
	}
	if f, ok := c.fills[key]; ok {
		f.stale = true
	}
	c.mu.Unlock()
}
