package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/cpnet"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/mediadb"
	"mmconf/internal/room"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// testSystem spins up a populated database and a TCP interaction server.
// The session grace is kept short so tests asserting eviction after a
// disconnect (or a push failure) see the detached session expire into
// EvLeave well inside waitEvent's deadline.
func testSystem(t *testing.T) (*Server, string, *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, Options{SessionGrace: 75 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String(), rec
}

func dial(t *testing.T, addr, user string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, user)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitEvent pulls events from c until pred matches or the timeout fires.
func waitEvent(t *testing.T, c *client.Client, pred func(room.Event) bool) room.Event {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev := <-c.Events():
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatal("expected event never arrived")
		}
	}
}

func TestDatabaseMethods(t *testing.T) {
	_, addr, rec := testSystem(t)
	c := dial(t, addr, "alice")
	ids, titles, err := c.ListDocuments()
	if err != nil || len(ids) != 1 || ids[0] != "p1" || titles[0] == "" {
		t.Fatalf("ListDocuments = %v %v %v", ids, titles, err)
	}
	doc, err := c.GetDocument("p1")
	if err != nil {
		t.Fatalf("GetDocument: %v", err)
	}
	if len(doc.Components()) != 7 {
		t.Errorf("components = %d", len(doc.Components()))
	}
	if _, err := c.GetDocument("nosuch"); err == nil {
		t.Error("missing document accepted")
	}
	img, _, err := c.GetImage(rec.CTID)
	if err != nil || img.W != 256 {
		t.Errorf("GetImage: %v %v", img, err)
	}
	if _, _, err := c.GetImage(99999); err == nil {
		t.Error("missing image accepted")
	}
	pcm, sectors, name, err := c.GetAudio(rec.VoiceID)
	if err != nil || len(pcm) == 0 || len(sectors) == 0 || name == "" {
		t.Errorf("GetAudio: %d/%d/%q %v", len(pcm), len(sectors), name, err)
	}
}

func TestMultiResolutionTransfer(t *testing.T) {
	_, addr, rec := testSystem(t)
	c := dial(t, addr, "alice")
	full, fullBytes, err := c.GetCmp(rec.CmpID, 0)
	if err != nil {
		t.Fatalf("GetCmp full: %v", err)
	}
	low, lowBytes, err := c.GetCmp(rec.CmpID, 1)
	if err != nil {
		t.Fatalf("GetCmp low: %v", err)
	}
	if low.W != full.W || low.H != full.H {
		t.Errorf("resolution variants differ in size: %dx%d vs %dx%d", low.W, low.H, full.W, full.H)
	}
	if lowBytes >= fullBytes {
		t.Errorf("1-layer transfer %d not below full %d", lowBytes, fullBytes)
	}
	t.Logf("full=%d bytes, base-layer=%d bytes (%.1fx saving)",
		fullBytes, lowBytes, float64(fullBytes)/float64(lowBytes))
}

func TestRoomJoinChoicePropagation(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	bob := dial(t, addr, "bob")

	sa, hist, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatalf("alice join: %v", err)
	}
	if len(hist) != 0 {
		t.Errorf("first joiner history = %d", len(hist))
	}
	if sa.View().Outcome["ct"] != "full" {
		t.Errorf("alice initial view: %v", sa.View().Outcome)
	}
	sb, hist2, err := bob.Join("consult", "", 0) // room already bound
	if err != nil {
		t.Fatalf("bob join: %v", err)
	}
	if len(hist2) == 0 {
		t.Error("late joiner got no history")
	}
	// Alice picks the segmented CT; bob receives choice + presentation.
	if err := sa.Choice("ct", "segmented"); err != nil {
		t.Fatalf("choice: %v", err)
	}
	// Skip the presentation push from bob's own join; wait for the one
	// that reflects alice's choice.
	ev := waitEvent(t, bob, func(ev room.Event) bool {
		return ev.Kind == room.EvPresentation && ev.Outcome["ct"] == "segmented"
	})
	sb.ApplyEvent(ev)
	if sb.View().Outcome["ct"] != "segmented" || sb.View().Outcome["xray"] != "hidden" {
		t.Errorf("bob view after alice's choice: %v", sb.View().Outcome)
	}
	// Wrong doc binding is rejected.
	carol := dial(t, addr, "carol")
	if _, _, err := carol.Join("consult", "other-doc", 0); err == nil {
		t.Error("mismatched doc binding accepted")
	}
	// Unknown room without doc id is rejected.
	if _, _, err := carol.Join("empty-room", "", 0); err == nil {
		t.Error("join of unbound room accepted")
	}
}

func TestOperationAnnotationFreezeOverWire(t *testing.T) {
	_, addr, rec := testSystem(t)
	alice := dial(t, addr, "alice")
	bob := dial(t, addr, "bob")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := bob.Join("consult", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shared operation.
	derived, err := sa.Operation("ct", "segmentation", "segmented", false)
	if err != nil {
		t.Fatalf("operation: %v", err)
	}
	waitEvent(t, bob, func(ev room.Event) bool {
		return ev.Kind == room.EvOperation && ev.DerivedVar == derived
	})
	// Annotation propagates with payload.
	if _, err := sa.AnnotateText(rec.CTID, 10, 10, "lesion?", 1.0); err != nil {
		t.Fatalf("annotate: %v", err)
	}
	ev := waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvAnnotate })
	if ev.Annotation.Text != "lesion?" || ev.ObjectID != rec.CTID {
		t.Errorf("annotate event: %+v", ev)
	}
	// Freeze blocks bob, release unblocks.
	if err := sa.Freeze(rec.CTID); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvFreeze })
	if _, err := sb.AnnotateLine(rec.CTID, 0, 0, 5, 5, 1); err == nil {
		t.Error("bob annotated a frozen object")
	}
	if err := sb.Release(rec.CTID); err == nil {
		t.Error("bob released alice's freeze")
	}
	if err := sa.Release(rec.CTID); err != nil {
		t.Fatalf("release: %v", err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvRelease })
	if _, err := sb.AnnotateLine(rec.CTID, 0, 0, 5, 5, 1); err != nil {
		t.Errorf("bob blocked after release: %v", err)
	}
}

func TestCooperativeSearchOverWire(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	bob := dial(t, addr, "bob")
	sa, _, _ := alice.Join("consult", "p1", 0)
	if _, _, err := bob.Join("consult", "", 0); err != nil {
		t.Fatal(err)
	}
	hits := []voice.Hit{{Word: "dr-baker", Start: 8000, End: 16000, Score: 1.2}}
	if err := sa.ShareSearch(true, "dr-baker", hits); err != nil {
		t.Fatalf("ShareSearch: %v", err)
	}
	ev := waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvSpeakerSearch })
	if len(ev.Hits) != 1 || ev.Hits[0].Word != "dr-baker" {
		t.Errorf("search event: %+v", ev)
	}
	if err := sa.Chat("see segment 2"); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvChat && ev.Text == "see segment 2" })
}

func TestDisconnectEvictsFromRoom(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	bob := dial(t, addr, "bob")
	if _, _, err := alice.Join("consult", "p1", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Join("consult", "", 0); err != nil {
		t.Fatal(err)
	}
	alice.Close() // abrupt disconnect — no Leave call
	// The session first detaches (resumable), then the short test grace
	// expires it into a real leave that bob observes.
	waitEvent(t, bob, func(ev room.Event) bool {
		return ev.Kind == room.EvLeave && ev.Actor == "alice"
	})
}

func TestLeaveAndMembershipEnforcement(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// A second join of the same room on the same connection is rejected.
	if _, _, err := alice.Join("consult", "p1", 0); err == nil {
		t.Error("double join on one connection accepted")
	}
	// Choices from a connection that is not the claimed member fail.
	mallory := dial(t, addr, "mallory")
	sm, _, err := mallory.Join("consult", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = sm
	// mallory cannot impersonate alice: the proto carries the user, but
	// the server checks the connection's own membership record.
	if err := sa.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if err := sa.Choice("ct", "hidden"); err == nil {
		t.Error("choice after leave accepted")
	}
	if err := sa.Leave(); err == nil {
		t.Error("double leave accepted")
	}
}

func TestHistoryRPC(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	sa.Chat("one")
	sa.Chat("two")
	evs, err := sa.History(0)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	chats := 0
	var lastSeq uint64
	for _, ev := range evs {
		if ev.Kind == room.EvChat {
			chats++
		}
		lastSeq = ev.Seq
	}
	if chats != 2 {
		t.Errorf("chats in history = %d", chats)
	}
	tail, err := sa.History(lastSeq)
	if err != nil || len(tail) != 0 {
		t.Errorf("History(last) = %v, %v", tail, err)
	}
}

func TestSessionBufferWarm(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sa.WarmBuffer(cpnet.Outcome{}, 1<<22)
	if err != nil {
		t.Fatalf("WarmBuffer: %v", err)
	}
	if n == 0 {
		t.Error("nothing prefetched")
	}
	// The warmed CT image is now a pure cache hit.
	ct, _ := sa.Doc.Component("ct")
	full, _ := ct.Presentation("full")
	if _, err := sa.Buffer.Demand(full.ObjectID); err != nil {
		t.Fatal(err)
	}
	hits, _, _ := sa.Buffer.Cache.Stats()
	if hits == 0 {
		t.Error("warmed payload missed")
	}
	// Session without buffer refuses warming.
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.WarmBuffer(nil, 1); err == nil {
		t.Error("bufferless warm accepted")
	}
}

func TestBroadcastOverWire(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	bob := dial(t, addr, "bob")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := bob.Join("consult", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.StartBroadcast(); err != nil {
		t.Fatalf("StartBroadcast: %v", err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvBroadcastStart })
	// Bob loses the floor.
	if err := sb.Choice("ct", "hidden"); err == nil {
		t.Error("non-presenter choice accepted during broadcast")
	}
	// Alice's choice mirrors to bob.
	if err := sa.Choice("ct", "lowres"); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, bob, func(ev room.Event) bool {
		return ev.Kind == room.EvPresentation && ev.Outcome["ct"] == "lowres"
	})
	sb.ApplyEvent(ev)
	if sb.View().Outcome["ct"] != "lowres" {
		t.Errorf("bob not mirroring presenter: %v", sb.View().Outcome)
	}
	if err := sb.StopBroadcast(); err == nil {
		t.Error("non-presenter stop accepted")
	}
	if err := sa.StopBroadcast(); err != nil {
		t.Fatalf("StopBroadcast: %v", err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvBroadcastStop })
	if err := sb.Choice("ct", "full"); err != nil {
		t.Errorf("floor not returned: %v", err)
	}
}

func TestSaveMinutesPersists(t *testing.T) {
	srv, addr, rec := testSystem(t)
	_ = srv
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Chat("plan: biopsy tomorrow"); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.AnnotateText(rec.CTID, 12, 12, "lesion 8mm", 1); err != nil {
		t.Fatal(err)
	}
	comp, err := sa.SaveMinutes()
	if err != nil {
		t.Fatalf("SaveMinutes: %v", err)
	}
	if comp == "" {
		t.Fatal("empty component name")
	}
	// A fresh fetch of the document carries the minutes for future
	// reference — the paper's intro scenario.
	doc, err := alice.GetDocument("p1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := doc.Component(comp)
	if err != nil {
		t.Fatalf("minutes component not persisted: %v", err)
	}
	text := string(c.Presentations[0].Inline)
	if !contains(text, "biopsy tomorrow") || !contains(text, "lesion 8mm") {
		t.Errorf("transcript content:\n%s", text)
	}
	// The image object's FLD_TEXTS now holds the overlay.
	_, texts, err := alice.GetImage(rec.CTID)
	if err != nil {
		t.Fatal(err)
	}
	anns, err := image.UnmarshalAnnotations([]byte(texts))
	if err != nil || len(anns) != 1 || anns[0].Text != "lesion 8mm" {
		t.Errorf("persisted annotations: %v, %v", anns, err)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
