package server

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/wire"
)

// TestEncodeOnceFanOut joins k clients to one room and checks the
// encode-once contract end to end with the push-path counters: one
// broadcast event costs exactly one gob encode, the other k-1
// deliveries reuse the shared bytes.
func TestEncodeOnceFanOut(t *testing.T) {
	srv, addr, _ := testSystem(t)
	const k = 4
	clients := make([]*client.Client, k)
	sessions := make([]*client.Session, k)
	for i := range clients {
		c := dial(t, addr, fmt.Sprintf("u%d", i))
		s, _, err := c.Join("tumor-board", "p1", 0)
		if err != nil {
			t.Fatal(err)
		}
		clients[i], sessions[i] = c, s
	}
	// Quiesce: once every client has seen the last join, all join
	// fan-out has been counted (counters increment before the push).
	last := fmt.Sprintf("u%d", k-1)
	for _, c := range clients {
		waitEvent(t, c, func(ev room.Event) bool {
			return ev.Kind == room.EvJoin && ev.Actor == last
		})
	}
	before := srv.Stats().Counters()
	if err := sessions[0].Chat("fan out once"); err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		ev := waitEvent(t, c, func(ev room.Event) bool { return ev.Kind == room.EvChat })
		if ev.Text != "fan out once" {
			t.Fatalf("client %d got chat %q", i, ev.Text)
		}
	}
	after := srv.Stats().Counters()
	delta := func(name string) uint64 { return after[name] - before[name] }
	if got := delta(CounterFanoutEvents); got != k {
		t.Errorf("fanned events = %d, want %d", got, k)
	}
	if got := delta(CounterFanoutEncodes); got != 1 {
		t.Errorf("broadcast encoded %d times across %d members, want 1", got, k)
	}
	if got := delta(CounterEncodesSaved); got != k-1 {
		t.Errorf("encodes saved = %d, want %d", got, k-1)
	}
}

// TestGetCmpCacheHitsAcrossClients has two clients pull the same
// compression-layer prefix: the second request (and every repeat) must
// be served from the object cache without a store fetch.
func TestGetCmpCacheHitsAcrossClients(t *testing.T) {
	srv, addr, rec := testSystem(t)
	a := dial(t, addr, "alice")
	b := dial(t, addr, "bob")
	imgA, layersA, err := a.GetCmp(rec.CmpID, 1)
	if err != nil {
		t.Fatal(err)
	}
	imgB, layersB, err := b.GetCmp(rec.CmpID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if layersA != layersB || imgA.W != imgB.W || imgA.H != imgB.H {
		t.Errorf("cached response differs: %dx%d/%d vs %dx%d/%d",
			imgA.W, imgA.H, layersA, imgB.W, imgB.H, layersB)
	}
	if hits := srv.Stats().Counter(CounterObjCacheHits); hits == 0 {
		t.Error("second client's GetCmp missed the cache")
	}
	if misses := srv.Stats().Counter(CounterObjCacheMisses); misses != 1 {
		t.Errorf("cache misses = %d, want 1 (one store fetch for both clients)", misses)
	}
	// A different layer prefix is a different cache entry.
	if _, _, err := a.GetCmp(rec.CmpID, 2); err != nil {
		t.Fatal(err)
	}
	if misses := srv.Stats().Counter(CounterObjCacheMisses); misses != 2 {
		t.Errorf("cache misses after new prefix = %d, want 2", misses)
	}
}

// TestPutImageTextsInvalidatesCache checks the cache serves updated
// image texts after a mutation, not the stale cached response.
func TestPutImageTextsInvalidatesCache(t *testing.T) {
	_, addr, rec := testSystem(t)
	c := dial(t, addr, "alice")
	if _, _, err := c.GetImage(rec.CTID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetImage(rec.CTID); err != nil { // now cached
		t.Fatal(err)
	}
	raw, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := raw.Call(proto.MPutImageTexts, proto.PutImageTextsReq{ID: rec.CTID, Texts: "updated findings"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, texts, err := c.GetImage(rec.CTID); err != nil || texts != "updated findings" {
		t.Errorf("texts after invalidation = %q, %v; want the updated value", texts, err)
	}
}

// TestDocSnapshotReusedAcrossJoins checks the second joiner of a room
// is served the marshaled document from the per-room snapshot cache.
func TestDocSnapshotReusedAcrossJoins(t *testing.T) {
	srv, addr, _ := testSystem(t)
	a := dial(t, addr, "alice")
	if _, _, err := a.Join("consult", "p1", 0); err != nil {
		t.Fatal(err)
	}
	b := dial(t, addr, "bob")
	if _, _, err := b.Join("consult", "p1", 0); err != nil {
		t.Fatal(err)
	}
	if hits := srv.Stats().Counter(CounterDocCacheHits); hits == 0 {
		t.Error("second join rebuilt the document snapshot")
	}
}

// TestPushResponseOrderUnderLoad interleaves one client's RPC traffic
// (History calls) with a flood of pushed events from another member and
// checks the event stream stays in order: the batched per-peer writer
// must preserve FIFO between pushes and responses.
func TestPushResponseOrderUnderLoad(t *testing.T) {
	_, addr, _ := testSystem(t)
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	const chats = 100
	var lastSeq atomic.Uint64
	var order atomic.Bool
	order.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range alice.Events() {
			if ev.Seq <= lastSeq.Load() {
				order.Store(false)
			}
			lastSeq.Store(ev.Seq)
			if ev.Kind == room.EvChat && ev.Text == "fin" {
				return
			}
		}
	}()
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < chats; i++ {
			if err := sb.Chat(fmt.Sprintf("note %d", i)); err != nil {
				errs <- err
				return
			}
		}
		errs <- sb.Chat("fin")
	}()
	for i := 0; i < 50; i++ {
		if _, err := sa.History(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("final chat never arrived")
	}
	if !order.Load() {
		t.Error("event Seq went backwards under concurrent push/response traffic")
	}
}

// failConn wraps a net.Conn so writes can be made to fail on demand
// while Close is a no-op: the read loop stays alive, so only the
// forwarder's push-failure path — not disconnect eviction — can remove
// the member from its room.
type failConn struct {
	net.Conn
	fail *atomic.Bool
}

func (f *failConn) Write(b []byte) (int, error) {
	if f.fail.Load() {
		return 0, fmt.Errorf("injected write failure")
	}
	return f.Conn.Write(b)
}

func (f *failConn) Close() error { return nil }

// TestForwarderPushFailureLeavesRoom breaks one member's push channel
// and checks the forwarder detaches the stranded membership, which then
// expires past the test grace into a real leave (the other member sees
// EvLeave) instead of keeping a ghost member until disconnect.
func TestForwarderPushFailureLeavesRoom(t *testing.T) {
	srv, addr, _ := testSystem(t)
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Mallory joins over an in-process pipe whose server-side writes can
	// be failed without closing the connection.
	var fail atomic.Bool
	sc, cc := net.Pipe()
	go srv.ServeConn(&failConn{Conn: sc, fail: &fail})
	mallory := wire.NewClient(cc)
	defer mallory.Close()
	mallory.OnPush(func(string, wire.Body) {})
	var joinResp proto.JoinRoomResp
	if err := mallory.Call(proto.MJoinRoom, proto.JoinRoomReq{Room: "consult", User: "mallory"}, &joinResp); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, bob, func(ev room.Event) bool {
		return ev.Kind == room.EvJoin && ev.Actor == "mallory"
	})
	fail.Store(true)
	// Each chat is a broadcast reaching mallory's dead writer: the first
	// surfaces the write error, a later push fails fast and makes the
	// forwarder leave the room on mallory's behalf.
	deadline := time.After(5 * time.Second)
	left := make(chan room.Event, 1)
	go func() {
		left <- waitEvent(t, bob, func(ev room.Event) bool {
			return ev.Kind == room.EvLeave && ev.Actor == "mallory"
		})
	}()
	for i := 0; ; i++ {
		if err := sb.Chat(fmt.Sprintf("probe %d", i)); err != nil {
			t.Fatalf("chat %d: %v", i, err)
		}
		select {
		case <-left:
			return
		case <-deadline:
			t.Fatal("stranded membership never left the room after push failure")
		case <-time.After(50 * time.Millisecond):
		}
	}
}
