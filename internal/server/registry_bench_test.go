package server

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// These benchmarks isolate the room-table lock. shards=1 collapses the
// registry to a single mutex — the shape of the pre-refactor global
// `mu sync.Mutex` + map — so shards=1 vs shards=32 is the before/after
// of the sharding change. The write-lock variant models the old code
// exactly (it took a full Lock on every room lookup); the read-lock
// variant is the new hot path.

func benchRegistryLookup(b *testing.B, shards, rooms int, write bool) {
	g := newRegistry(shards)
	names := make([]string, rooms)
	for i := range names {
		names[i] = fmt.Sprintf("ward-%d", i)
		if _, _, err := g.getOrCreate(names[i], func() (*roomState, error) {
			return &roomState{}, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	var miss atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := names[i%rooms]
			i++
			if write {
				// Old-style lookup: full lock even when the room exists.
				if _, _, err := g.getOrCreate(name, func() (*roomState, error) {
					return &roomState{}, nil
				}); err != nil {
					miss.Add(1)
				}
			} else {
				if _, ok := g.get(name); !ok {
					miss.Add(1)
				}
			}
		}
	})
	if miss.Load() != 0 {
		b.Fatalf("%d lookups missed", miss.Load())
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	const rooms = 64
	for _, bc := range []struct {
		name   string
		shards int
		write  bool
	}{
		{"globalLock", 1, true}, // pre-refactor shape
		{"1shard-rlock", 1, false},
		{"32shards-rlock", 32, false}, // shipped configuration
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchRegistryLookup(b, bc.shards, rooms, bc.write)
		})
	}
}
