package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// testSystemWith is testSystem with explicit pipeline options.
func testSystemWith(t *testing.T, o Options) (*Server, string) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(m, "p1", 1); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, o)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// TestConcurrentRoomLifecycle churns many peers through many rooms at
// once — joining, acting, leaving cleanly or dropping the connection —
// so the race detector can check the sharded registry, the per-peer
// session table, and eviction against each other. All rooms bind the
// same document, so room creation also races within and across shards.
func TestConcurrentRoomLifecycle(t *testing.T) {
	srv, addr := testSystemWith(t, Options{})
	const (
		roomN = 8
		peerN = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, roomN*peerN)
	for ri := 0; ri < roomN; ri++ {
		for pi := 0; pi < peerN; pi++ {
			wg.Add(1)
			go func(ri, pi int) {
				defer wg.Done()
				user := fmt.Sprintf("user-%d-%d", ri, pi)
				c, err := client.Dial(addr, user)
				if err != nil {
					errs <- fmt.Errorf("%s dial: %w", user, err)
					return
				}
				defer c.Close()
				roomName := fmt.Sprintf("ward-%d", ri)
				s, _, err := c.Join(roomName, "p1", 0)
				if err != nil {
					errs <- fmt.Errorf("%s join: %w", user, err)
					return
				}
				rng := rand.New(rand.NewSource(int64(ri*peerN + pi)))
				for i := 0; i < 5; i++ {
					var err error
					switch rng.Intn(3) {
					case 0:
						err = s.Choice("ct", "segmented")
					case 1:
						err = s.Chat(fmt.Sprintf("note %d from %s", i, user))
					case 2:
						_, err = s.History(0)
					}
					if err != nil {
						errs <- fmt.Errorf("%s act: %w", user, err)
						return
					}
				}
				// Half the peers leave politely; the rest just hang up and
				// exercise the eviction path.
				if pi%2 == 0 {
					if err := s.Leave(); err != nil {
						errs <- fmt.Errorf("%s leave: %w", user, err)
					}
				}
			}(ri, pi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The default interceptor chain is live: its stats counted the churn.
	if got := srv.Stats().Method(proto.MJoinRoom).Requests; got != roomN*peerN {
		t.Errorf("join requests counted = %d, want %d", got, roomN*peerN)
	}
	if srv.Stats().Method(proto.MChoice).MaxLatency <= 0 {
		t.Error("choice latency never observed")
	}
}

// TestMethodTimeoutAbortsRoomWork proves the per-request context flows
// from wire dispatch into the room entry points: with an immediate
// deadline on MChoice, the room aborts the choice before touching any
// state, and the client sees the context error over the wire.
func TestMethodTimeoutAbortsRoomWork(t *testing.T) {
	_, addr := testSystemWith(t, Options{
		MethodTimeouts: map[string]time.Duration{proto.MChoice: time.Nanosecond},
		Logf:           func(string, ...any) {},
	})
	c := dial(t, addr, "alice")
	s, _, err := c.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Choice("ct", "segmented")
	if err == nil {
		t.Fatal("choice with expired deadline succeeded")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("choice error = %v, want a deadline error", err)
	}
	// The abort happened before the engine mutated: nothing propagated.
	hist, err := s.History(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range hist {
		if ev.Kind == room.EvChoice {
			t.Fatalf("aborted choice still reached the room log: %+v", ev)
		}
	}
}

// TestShutdownAnnouncesToRooms checks the graceful drain order: members
// receive the room.EvShutdown announcement while their connections are
// still up, and requests arriving after the drain began are refused.
func TestShutdownAnnouncesToRooms(t *testing.T) {
	srv, addr := testSystemWith(t, Options{})
	alice := dial(t, addr, "alice")
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The shutdown announcement must have been pushed before teardown.
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-alice.Events():
			if !ok {
				t.Fatal("event stream closed before shutdown announcement")
			}
			if ev.Kind == room.EvShutdown {
				if ev.Actor != "system/server" {
					t.Errorf("shutdown actor = %q", ev.Actor)
				}
				goto drained
			}
		case <-deadline:
			t.Fatal("no shutdown announcement received")
		}
	}
drained:
	if err := sa.Chat("anyone there?"); err == nil {
		t.Error("request accepted after shutdown")
	}
}

// TestDrainFlushesQueuedPushes checks the batched peer writers lose
// nothing on a graceful stop: a burst of events still queued behind the
// coalescing writer when Shutdown begins must reach the client before
// the connections close, followed by the shutdown announcement.
func TestDrainFlushesQueuedPushes(t *testing.T) {
	srv, addr := testSystemWith(t, Options{})
	alice := dial(t, addr, "alice")
	if _, _, err := alice.Join("consult", "p1", 0); err != nil {
		t.Fatal(err)
	}
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 50
	for i := 0; i < burst; i++ {
		if err := sb.Chat(fmt.Sprintf("note %d", i)); err != nil {
			t.Fatalf("chat %d: %v", i, err)
		}
	}
	// Shut down immediately: the burst is broadcast into member queues
	// but much of it still sits behind alice's batched writer.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	chats := 0
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-alice.Events():
			if !ok {
				t.Fatalf("stream closed with %d/%d chats and no shutdown announcement", chats, burst)
			}
			switch ev.Kind {
			case room.EvChat:
				chats++
			case room.EvShutdown:
				if chats != burst {
					t.Errorf("shutdown announced after %d/%d chats delivered", chats, burst)
				}
				return
			}
		case <-deadline:
			t.Fatalf("drain delivered %d/%d chats, no shutdown announcement", chats, burst)
		}
	}
}
