package server

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/netsim"
	"mmconf/internal/room"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// Mixed-version interoperability: the wire v2 rollout story is one
// fleet upgrading at a time, so a binary-framing server must serve a
// gob-only client flawlessly (and a v2-capable client must degrade to a
// gob-capped server) through the full session lifecycle — join, event
// push, media fetch, and resume after an injected connection kill.

// interopSystem is testSystem with a resume-friendly session grace.
func interopSystem(t *testing.T) (*Server, string, *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, Options{SessionGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String(), rec
}

// runInteropSession drives one legacy/v2 pair through the lifecycle.
// old is the client forced down to gob (by its own GobOnly knob or by a
// gob-capped server); fresh speaks whatever it negotiates.
func runInteropSession(t *testing.T, faults *netsim.Faults, old, fresh *client.Client, rec *workload.PopulatedRecord) {
	t.Helper()
	so, _, err := old.Join("consult", "p1", 0)
	if err != nil {
		t.Fatalf("old client join: %v", err)
	}
	col := collect(old)
	sf, _, err := fresh.Join("consult", "p1", 0)
	if err != nil {
		t.Fatalf("fresh client join: %v", err)
	}
	col.waitFor(t, "fresh join", func(evs []room.Event) bool {
		for _, ev := range evs {
			if ev.Kind == room.EvJoin && ev.Actor == "fresh" {
				return true
			}
		}
		return false
	})

	// Event push across the encoding boundary, both directions.
	if err := so.Chat("from the past"); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, fresh, func(ev room.Event) bool {
		return ev.Kind == room.EvChat && ev.Text == "from the past"
	})
	if err := sf.Chat("from the future"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "fresh chat", func(evs []room.Event) bool {
		for _, ev := range evs {
			if ev.Kind == room.EvChat && ev.Text == "from the future" {
				return true
			}
		}
		return false
	})

	// Media fetches return identical bytes over both encodings.
	oldImg, err := old.GetImageBytes(rec.CTID)
	if err != nil {
		t.Fatalf("old GetImageBytes: %v", err)
	}
	freshImg, err := fresh.GetImageBytes(rec.CTID)
	if err != nil {
		t.Fatalf("fresh GetImageBytes: %v", err)
	}
	if !bytes.Equal(oldImg, freshImg) {
		t.Errorf("image bytes differ across encodings: %d vs %d bytes", len(oldImg), len(freshImg))
	}
	oldCmp, oldLayers, err := old.GetCmp(rec.CmpID, 2)
	if err != nil {
		t.Fatalf("old GetCmp: %v", err)
	}
	freshCmp, freshLayers, err := fresh.GetCmp(rec.CmpID, 2)
	if err != nil {
		t.Fatalf("fresh GetCmp: %v", err)
	}
	if oldLayers != freshLayers || len(oldCmp.Pix) != len(freshCmp.Pix) {
		t.Error("progressive fetch differs across encodings")
	}
	for i := range oldCmp.Pix {
		if oldCmp.Pix[i] != freshCmp.Pix[i] {
			t.Errorf("progressive fetch pixel %d differs across encodings", i)
			break
		}
	}

	// Resume: kill the old client's transport under extra latency, let
	// the fresh client talk during the outage, and require an exact
	// replay after the redial.
	faults.SetLatency(2 * time.Millisecond)
	faults.FailDials(1)
	faults.KillAll()
	const missed = 3
	for i := 0; i < missed; i++ {
		if err := sf.Chat(fmt.Sprintf("missed %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, "replayed chat", func(evs []room.Event) bool {
		n := 0
		for _, ev := range evs {
			if ev.Kind == room.EvChat && len(ev.Text) > 6 && ev.Text[:6] == "missed" {
				n++
			}
		}
		return n >= missed
	})
	counts := map[string]int{}
	for _, ev := range col.snapshot() {
		if ev.Kind == room.EvChat {
			counts[ev.Text]++
		}
	}
	for i := 0; i < missed; i++ {
		if n := counts[fmt.Sprintf("missed %d", i)]; n != 1 {
			t.Errorf("chat %q delivered %d times, want exactly 1", fmt.Sprintf("missed %d", i), n)
		}
	}
	if so.NeedsResync() {
		t.Error("resume left the old client flagged for resync")
	}
	// The resumed session still speaks: its traffic reaches the peer.
	if err := so.Chat("still here"); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, fresh, func(ev room.Event) bool {
		return ev.Kind == room.EvChat && ev.Text == "still here"
	})
}

// TestInteropGobClientAgainstV2Server runs a legacy gob-only client
// against a v2 server alongside a v2 member in the same room.
func TestInteropGobClientAgainstV2Server(t *testing.T) {
	srv, addr, rec := interopSystem(t)
	faults := netsim.NewFaults()
	opts := fastRetry()
	opts.GobOnly = true
	old := faultyClient(t, faults, addr, "old", opts)
	fresh := dial(t, addr, "fresh")
	// A gob client announces itself with its first request bytes (there
	// is no preamble to peek), so make one before counting peers: the
	// server must show one negotiated-down peer next to one v2 peer.
	if _, _, err := old.ListDocuments(); err != nil {
		t.Fatal(err)
	}
	waitPeerVersions(t, srv, 1, 1)
	runInteropSession(t, faults, old, fresh, rec)
}

// TestInteropV2ClientAgainstGobServer runs default (v2-capable) clients
// against a server capped at the gob protocol: every connection must
// degrade to gob and the lifecycle must be unaffected.
func TestInteropV2ClientAgainstGobServer(t *testing.T) {
	srv, addr, rec := interopSystem(t)
	srv.rpc.SetMaxProtoVersion(wire.ProtoGob)
	faults := netsim.NewFaults()
	old := faultyClient(t, faults, addr, "old", fastRetry())
	fresh := dial(t, addr, "fresh")
	waitPeerVersions(t, srv, 0, 2)
	runInteropSession(t, faults, old, fresh, rec)
}

// waitPeerVersions polls until the server's live peers split into the
// expected v2/gob counts (connections register asynchronously).
func waitPeerVersions(t *testing.T, srv *Server, wantV2, wantGob int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		v2, gob := srv.rpc.PeerVersions()
		if v2 == wantV2 && gob == wantGob {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer versions v2=%d gob=%d, want v2=%d gob=%d", v2, gob, wantV2, wantGob)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
