package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/netsim"
	"mmconf/internal/proto"
	"mmconf/internal/room"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// fastRetry is a reconnect policy tuned for tests: tiny deterministic
// backoff, generous budget.
func fastRetry() client.Options {
	return client.Options{
		Reconnect:      true,
		MaxAttempts:    -1,
		Backoff:        client.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: -1},
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    5 * time.Second,
	}
}

// faultyClient dials through a netsim fault controller so the test can
// kill, partition or degrade the client's network at will.
func faultyClient(t *testing.T, f *netsim.Faults, addr, user string, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.NewOverDialer(f.Dialer(addr), user, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// collector tails a client's event stream on a background goroutine so
// events survive across reconnects for later inspection.
type collector struct {
	mu  sync.Mutex
	evs []room.Event
}

func collect(c *client.Client) *collector {
	col := &collector{}
	go func() {
		for ev := range c.Events() {
			col.mu.Lock()
			col.evs = append(col.evs, ev)
			col.mu.Unlock()
		}
	}()
	return col
}

func (col *collector) snapshot() []room.Event {
	col.mu.Lock()
	defer col.mu.Unlock()
	return append([]room.Event(nil), col.evs...)
}

// waitFor polls pred against the collected events until it passes or the
// deadline fires.
func (col *collector) waitFor(t *testing.T, what string, pred func([]room.Event) bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if pred(col.snapshot()) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("%s never observed; events: %v", what, col.snapshot())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestReconnectResumesAndReplaysExactlyMissedEvents is the acceptance
// test for the fault-tolerance work: kill the client's connection
// mid-session, hold the outage across a few failed redials while the
// other member keeps talking, then let the client back in. The client
// must redial with backoff, resume the same (user, room) session within
// the grace TTL, and replay exactly the missed events — verified by
// sequence numbers, with zero duplicates.
func TestReconnectResumesAndReplaysExactlyMissedEvents(t *testing.T) {
	srv, addr := testSystemWith(t, Options{SessionGrace: 5 * time.Second})
	faults := netsim.NewFaults()
	alice := faultyClient(t, faults, addr, "alice", fastRetry())
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	col := collect(alice)
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "bob's join", func(evs []room.Event) bool {
		for _, ev := range evs {
			if ev.Kind == room.EvJoin && ev.Actor == "bob" {
				return true
			}
		}
		return false
	})

	// Outage: the transport dies mid-session and the next two redial
	// attempts fail too, so bob's chatter lands while alice is away.
	faults.FailDials(2)
	faults.KillAll()
	const missed = 5
	for i := 0; i < missed; i++ {
		if err := sb.Chat(fmt.Sprintf("missed %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sb.Chat("fin"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "post-outage chat", func(evs []room.Event) bool {
		for _, ev := range evs {
			if ev.Kind == room.EvChat && ev.Text == "fin" {
				return true
			}
		}
		return false
	})

	// Exactness: every chat delivered exactly once, sequence numbers
	// strictly increasing across the reconnect.
	chats := map[string]int{}
	var lastSeq uint64
	for _, ev := range col.snapshot() {
		if ev.Seq != 0 {
			if ev.Seq <= lastSeq {
				t.Errorf("event Seq went %d -> %d across reconnect", lastSeq, ev.Seq)
			}
			lastSeq = ev.Seq
		}
		if ev.Kind == room.EvChat {
			chats[ev.Text]++
		}
	}
	for i := 0; i < missed; i++ {
		if n := chats[fmt.Sprintf("missed %d", i)]; n != 1 {
			t.Errorf("chat %q delivered %d times, want exactly 1", fmt.Sprintf("missed %d", i), n)
		}
	}
	if chats["fin"] != 1 {
		t.Errorf("chat \"fin\" delivered %d times", chats["fin"])
	}
	if sa.NeedsResync() {
		t.Error("complete resume left the session flagged for resync")
	}

	// The resumed session is fully live: alice's own traffic round-trips.
	if err := sa.Chat("back"); err != nil {
		t.Fatalf("chat after resume: %v", err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvChat && ev.Text == "back" })

	rs := alice.ReconnectStats()
	if rs.Successes != 1 {
		t.Errorf("reconnect successes = %d, want 1", rs.Successes)
	}
	if rs.Attempts < 3 {
		t.Errorf("reconnect attempts = %d, want >= 3 (two injected dial failures)", rs.Attempts)
	}
	if rs.GaveUp != 0 {
		t.Errorf("gaveUp = %d", rs.GaveUp)
	}
	if n := srv.Stats().Counter(CounterReconnectResumes); n != 1 {
		t.Errorf("server %s = %d, want 1", CounterReconnectResumes, n)
	}
	if n := srv.Stats().Counter(CounterSessionResumed); n != 1 {
		t.Errorf("server %s = %d, want 1", CounterSessionResumed, n)
	}
	if n := srv.Stats().Counter(CounterSessionExpired); n != 0 {
		t.Errorf("server %s = %d, want 0 (resume beat the grace TTL)", CounterSessionExpired, n)
	}
}

// TestCallsFailFastWhileReconnecting checks in-flight API use during an
// outage returns the typed ErrReconnecting immediately instead of
// hanging, and works again once the connection is restored.
func TestCallsFailFastWhileReconnecting(t *testing.T) {
	_, addr := testSystemWith(t, Options{SessionGrace: 5 * time.Second})
	faults := netsim.NewFaults()
	alice := faultyClient(t, faults, addr, "alice", fastRetry())
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.FailDials(-1)
	faults.KillAll()
	deadline := time.After(5 * time.Second)
	for {
		start := time.Now()
		err := sa.Chat("into the void")
		if errors.Is(err, client.ErrReconnecting) {
			if d := time.Since(start); d > time.Second {
				t.Errorf("ErrReconnecting took %v, want fail-fast", d)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("never saw ErrReconnecting, last err: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	faults.FailDials(0)
	deadline = time.After(5 * time.Second)
	for alice.ReconnectStats().Successes == 0 {
		select {
		case <-deadline:
			t.Fatal("client never reconnected after dials were allowed again")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := sa.Chat("back online"); err != nil {
		t.Fatalf("chat after reconnect: %v", err)
	}
}

// TestReconnectBudgetExhaustionClosesClient drops the network for good:
// after MaxAttempts failed redials the client gives up, closes, and
// reports the terminal state through typed errors and stats.
func TestReconnectBudgetExhaustionClosesClient(t *testing.T) {
	_, addr := testSystemWith(t, Options{SessionGrace: time.Second})
	faults := netsim.NewFaults()
	opts := fastRetry()
	opts.MaxAttempts = 3
	alice := faultyClient(t, faults, addr, "alice", opts)
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.FailDials(-1)
	faults.KillAll()
	deadline := time.After(5 * time.Second)
	for alice.ReconnectStats().GaveUp == 0 {
		select {
		case <-deadline:
			t.Fatal("client never gave up")
		case <-time.After(10 * time.Millisecond):
		}
	}
	rs := alice.ReconnectStats()
	if rs.Attempts != 3 {
		t.Errorf("attempts = %d, want exactly MaxAttempts=3", rs.Attempts)
	}
	if rs.Successes != 0 {
		t.Errorf("successes = %d", rs.Successes)
	}
	if err := sa.Chat("anyone?"); !errors.Is(err, client.ErrClosed) {
		t.Errorf("call after give-up = %v, want ErrClosed", err)
	}
}

// TestGraceExpiryFallsBackToFreshJoin holds the outage past the server's
// grace TTL: the session expires server-side, so the reconnect resumes
// as a fresh join and the client flags the session for resync.
func TestGraceExpiryFallsBackToFreshJoin(t *testing.T) {
	srv, addr := testSystemWith(t, Options{SessionGrace: 75 * time.Millisecond})
	faults := netsim.NewFaults()
	alice := faultyClient(t, faults, addr, "alice", fastRetry())
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.FailDials(-1)
	faults.KillAll()
	// Hold the outage until the server has expired the session (bob sees
	// alice leave), then let the client back in.
	waitEvent(t, bob, func(ev room.Event) bool {
		return ev.Kind == room.EvLeave && ev.Actor == "alice"
	})
	if err := sb.Chat("while you were gone"); err != nil {
		t.Fatal(err)
	}
	faults.FailDials(0)
	deadline := time.After(5 * time.Second)
	for alice.ReconnectStats().Successes == 0 {
		select {
		case <-deadline:
			t.Fatal("client never reconnected")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if !sa.NeedsResync() {
		t.Error("fresh-join fallback did not flag the session for resync")
	}
	if n := srv.Stats().Counter(CounterReconnectRejoins); n != 1 {
		t.Errorf("%s = %d, want 1", CounterReconnectRejoins, n)
	}
	if n := srv.Stats().Counter(CounterSessionExpired); n != 1 {
		t.Errorf("%s = %d, want 1", CounterSessionExpired, n)
	}
	if n := srv.Stats().Counter(CounterReconnectResumes); n != 0 {
		t.Errorf("%s = %d, want 0 (session was gone)", CounterReconnectResumes, n)
	}
	// The rejoined session is live again.
	if err := sa.Chat("fresh start"); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, bob, func(ev room.Event) bool { return ev.Kind == room.EvChat && ev.Text == "fresh start" })
}

// TestPartitionDeadlinesCallThenRecovers black-holes the network (no
// reset — pure silence) and checks the client-side call deadline turns
// the hang into an error; after the partition heals the same connection
// keeps working.
func TestPartitionDeadlinesCallThenRecovers(t *testing.T) {
	_, addr := testSystemWith(t, Options{SessionGrace: 5 * time.Second})
	faults := netsim.NewFaults()
	opts := fastRetry()
	opts.CallTimeout = 200 * time.Millisecond
	alice := faultyClient(t, faults, addr, "alice", opts)
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.Partition()
	start := time.Now()
	if err := sa.Chat("hello?"); err == nil {
		t.Fatal("call succeeded through a partition")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("partitioned call took %v, want bounded by the 200ms call timeout", d)
	}
	faults.Heal()
	// The transport never died, so the same connection serves new calls.
	deadline := time.After(5 * time.Second)
	for {
		if err := sa.Chat("healed"); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("calls never recovered after Heal")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestDropMidPushResumesWithoutLoss cuts the client's read side partway
// through the server's push stream: the wrapped connection delivers a
// partial frame and dies. The reconnect must replay the interrupted
// event — exactly once.
func TestDropMidPushResumesWithoutLoss(t *testing.T) {
	_, addr := testSystemWith(t, Options{SessionGrace: 5 * time.Second})
	faults := netsim.NewFaults()
	alice := faultyClient(t, faults, addr, "alice", fastRetry())
	if _, _, err := alice.Join("consult", "p1", 0); err != nil {
		t.Fatal(err)
	}
	col := collect(alice)
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The next few pushed bytes reach alice, then the transport resets
	// under the stream — a drop mid-push.
	faults.CutAfterRead(10)
	const chats = 4
	for i := 0; i < chats; i++ {
		if err := sb.Chat(fmt.Sprintf("push %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, "all pushes after mid-push drop", func(evs []room.Event) bool {
		n := 0
		for _, ev := range evs {
			if ev.Kind == room.EvChat {
				n++
			}
		}
		return n >= chats
	})
	counts := map[string]int{}
	for _, ev := range col.snapshot() {
		if ev.Kind == room.EvChat {
			counts[ev.Text]++
		}
	}
	for i := 0; i < chats; i++ {
		if n := counts[fmt.Sprintf("push %d", i)]; n != 1 {
			t.Errorf("chat %d delivered %d times, want exactly 1", i, n)
		}
	}
	if _, _, resets := faults.Stats(); resets == 0 {
		t.Error("cut never fired: the test exercised nothing")
	}
}

// BenchmarkE10ResumeVsRejoin measures what the resume path saves: a
// resuming session with an intact buffer skips the document snapshot
// transfer a fresh join pays. Reported per reconnect round trip.
func BenchmarkE10ResumeVsRejoin(b *testing.B) {
	bench := func(b *testing.B, resume bool) {
		db, err := store.Open(b.TempDir(), store.Options{Sync: store.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		m, err := mediadb.Open(db)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.Populate(m, "p1", 1); err != nil {
			b.Fatal(err)
		}
		srv, err := NewWith(m, Options{SessionGrace: 50 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		defer srv.Close()
		addr := l.Addr().String()
		// Establish the session to take over / supersede.
		seed, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		seed.OnPush(func(string, wire.Body) {})
		var resp proto.JoinRoomResp
		if err := seed.Call(proto.MJoinRoom, proto.JoinRoomReq{Room: "consult", DocID: "p1", User: "alice"}, &resp); err != nil {
			b.Fatal(err)
		}
		seed.Close()
		since := resp.LastSeq
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := wire.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			c.OnPush(func(string, wire.Body) {})
			req := proto.JoinRoomReq{Room: "consult", DocID: "p1", User: "alice"}
			if resume {
				req.Resume, req.SinceSeq = true, since
			} else {
				// A fresh join cannot supersede a still-live member, so each
				// rejoin round is a distinct user (what a resume-less client
				// effectively is to the room: a stranger who re-downloads).
				req.User = fmt.Sprintf("alice-%d", i)
			}
			var r proto.JoinRoomResp
			if err := c.Call(proto.MJoinRoom, req, &r); err != nil {
				b.Fatal(err)
			}
			if resume && len(r.DocData) != 0 {
				b.Fatal("complete resume transferred the document snapshot")
			}
			if !resume && len(r.DocData) == 0 {
				b.Fatal("fresh join skipped the document snapshot")
			}
			c.Close()
		}
	}
	b.Run("resume", func(b *testing.B) { bench(b, true) })
	b.Run("rejoin", func(b *testing.B) { bench(b, false) })
}

// TestReconnectRotatesAcrossClusterEndpoints exercises the resolver
// path the cluster depends on: a client configured with several node
// endpoints — the first of them dead — must connect by rotating to a
// live one, and when its connection dies mid-session the supervisor
// must resume there, replaying missed events exactly once.
func TestReconnectRotatesAcrossClusterEndpoints(t *testing.T) {
	_, addr := testSystemWith(t, Options{SessionGrace: 5 * time.Second})
	// A dead endpoint: bound once so the port is real, then closed.
	deadL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadL.Addr().String()
	deadL.Close()

	faults := netsim.NewFaults()
	alice, err := client.NewOverResolver(faults.DialContext, []string{deadAddr, addr}, "alice", fastRetry())
	if err != nil {
		t.Fatalf("connect through endpoint rotation: %v", err)
	}
	t.Cleanup(func() { alice.Close() })
	sa, _, err := alice.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	col := collect(alice)
	bob := dial(t, addr, "bob")
	sb, _, err := bob.Join("consult", "p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Chat("pre-drop"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "pre-drop chat", func(evs []room.Event) bool {
		for _, ev := range evs {
			if ev.Kind == room.EvChat && ev.Text == "pre-drop" {
				return true
			}
		}
		return false
	})

	// Kill alice's transport; her redial rotation may land on the dead
	// endpoint first but must come back around and resume.
	faults.KillAll()
	if err := sb.Chat("while-away"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, "replayed chat", func(evs []room.Event) bool {
		for _, ev := range evs {
			if ev.Kind == room.EvChat && ev.Text == "while-away" {
				return true
			}
		}
		return false
	})
	if alice.ReconnectStats().Successes == 0 {
		t.Error("supervisor never reconnected")
	}
	var chats []string
	var last uint64
	for _, ev := range col.snapshot() {
		if ev.Seq != 0 {
			if ev.Seq <= last {
				t.Fatalf("event seq went %d -> %d across endpoint rotation", last, ev.Seq)
			}
			last = ev.Seq
		}
		if ev.Kind == room.EvChat {
			chats = append(chats, ev.Text)
		}
	}
	if len(chats) != 2 || chats[0] != "pre-drop" || chats[1] != "while-away" {
		t.Fatalf("chats = %v, want exactly [pre-drop while-away]", chats)
	}
	if err := sa.Chat("back"); err != nil {
		t.Fatalf("chat after resume: %v", err)
	}
}
