package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// admissionSystem is testSystem with caller-chosen admission options.
func admissionSystem(t *testing.T, o Options) (string, *workload.PopulatedRecord) {
	t.Helper()
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWith(m, o)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), rec
}

func TestOptionsValidation(t *testing.T) {
	db, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		o    Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"admission disabled", Options{MaxInflight: -1}, true},
		{"negative registry shards", Options{RegistryShards: -1}, false},
		{"negative trace ring", Options{TraceRing: -1}, false},
		{"negative queue depth", Options{QueueDepth: -1}, false},
		{"negative per-peer rate", Options{PerPeerRate: -1}, false},
		{"negative per-peer burst", Options{PerPeerBurst: -1}, false},
		{"unknown shed policy", Options{ShedPolicy: wire.ShedPolicy(99)}, false},
		{"timeout for known method", Options{MethodTimeouts: map[string]time.Duration{proto.MGetCmp: time.Second}}, true},
		{"timeout for unknown method", Options{MethodTimeouts: map[string]time.Duration{"db.nope": time.Second}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewWith(m, tc.o)
			if tc.ok && err != nil {
				t.Fatalf("NewWith(%+v) = %v, want success", tc.o, err)
			}
			if !tc.ok && err == nil {
				srv.Close()
				t.Fatalf("NewWith(%+v) succeeded, want validation error", tc.o)
			}
			if srv != nil {
				srv.Close()
			}
		})
	}
}

func TestPerPeerRateLimitE2E(t *testing.T) {
	addr, _ := admissionSystem(t, Options{
		PerPeerRate:  0.5, // one token every 2s: the second bulk call sheds
		PerPeerBurst: 1,
	})
	c := dial(t, addr, "alice")
	if _, _, err := c.ListDocuments(); err != nil {
		t.Fatalf("first call: %v", err)
	}
	_, _, err := c.ListDocuments()
	if !errors.Is(err, proto.ErrOverloaded) {
		t.Fatalf("second call err = %v, want ErrOverloaded", err)
	}
	var oe *proto.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err %v does not carry the typed overload", err)
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > 5*time.Second {
		t.Fatalf("retry-after %v, want (0, 5s]", oe.RetryAfter)
	}
	// Control RPCs bypass the bucket: stats succeed while bulk sheds.
	for i := 0; i < 3; i++ {
		if _, err := c.Stats(); err != nil {
			t.Fatalf("control call %d: %v", i, err)
		}
	}
	// A second connection has a fresh bucket.
	c2 := dial(t, addr, "bob")
	if _, _, err := c2.ListDocuments(); err != nil {
		t.Fatalf("fresh peer: %v", err)
	}
}

func TestShedClientRetriesPerHint(t *testing.T) {
	addr, rec := admissionSystem(t, Options{
		PerPeerRate:  4, // empty bucket refills a token in 250ms
		PerPeerBurst: 1,
	})
	c, err := client.DialWith(addr, "alice", client.Options{RetryOverloaded: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, _, err := c.GetCmp(rec.CmpID, 1); err != nil {
		t.Fatalf("first call: %v", err)
	}
	// The bucket is now empty: the call is shed, the client sleeps the
	// server's hint and retries into a refilled bucket.
	start := time.Now()
	if _, _, err := c.GetCmp(rec.CmpID, 1); err != nil {
		t.Fatalf("retried call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("retried call returned in %v, want >= 100ms (a retry-after backoff)", elapsed)
	}
}

func TestAdmissionMetricsSurface(t *testing.T) {
	addr, _ := admissionSystem(t, Options{
		MaxInflight:  2,
		PerPeerRate:  0.5,
		PerPeerBurst: 1,
	})
	c := dial(t, addr, "alice")
	c.ListDocuments()
	c.ListDocuments() // shed by the bucket
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Counters[wire.CounterShedRate]; got == 0 {
		t.Fatalf("counter %s = %d, want > 0", wire.CounterShedRate, got)
	}
	if _, ok := stats.Gauges["admission.inflight"]; !ok {
		t.Fatal("admission.inflight gauge missing from the metrics surface")
	}
	if _, ok := stats.Gauges["admission.queued"]; !ok {
		t.Fatal("admission.queued gauge missing from the metrics surface")
	}
}
