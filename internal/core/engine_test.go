package core

import (
	"testing"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/workload"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	doc, err := workload.MedicalRecord("rec-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(doc)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil document accepted")
	}
	// A document whose network is incomplete is rejected.
	root := &document.Component{Name: "r", Children: []*document.Component{
		{Name: "x", Presentations: []document.Presentation{{Name: "p"}}},
	}}
	doc, err := document.New("d", "t", root)
	if err != nil {
		t.Fatal(err)
	}
	doc.Prefs = cpnet.New() // empty network
	if _, err := NewEngine(doc); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestJoinLeaveLifecycle(t *testing.T) {
	e := testEngine(t)
	v, err := e.Join("alice")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if v.Outcome["ct"] != "full" {
		t.Errorf("initial ct = %s", v.Outcome["ct"])
	}
	if _, err := e.Join("alice"); err == nil {
		t.Error("double join accepted")
	}
	if _, err := e.Join(""); err == nil {
		t.Error("empty viewer accepted")
	}
	if _, err := e.Join("bob"); err != nil {
		t.Fatal(err)
	}
	vs := e.Viewers()
	if len(vs) != 2 || vs[0] != "alice" || vs[1] != "bob" {
		t.Errorf("Viewers = %v", vs)
	}
	if _, err := e.Leave("carol"); err == nil {
		t.Error("leave of non-member accepted")
	}
	changed, err := e.Leave("bob")
	if err != nil || changed {
		t.Errorf("Leave(bob) = %v, %v; no choices so no change expected", changed, err)
	}
}

func TestChoicePropagatesToAllViewers(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	e.Join("bob")
	// Alice asks for the segmented CT: the author's preferences hide the
	// X-ray for everyone.
	v, err := e.Choice("alice", "ct", "segmented")
	if err != nil {
		t.Fatalf("Choice: %v", err)
	}
	if v.Outcome["ct"] != "segmented" || v.Outcome["xray"] != "hidden" {
		t.Errorf("alice view = %v", v.Outcome)
	}
	bobView, err := e.ViewFor("bob")
	if err != nil {
		t.Fatal(err)
	}
	if bobView.Outcome["ct"] != "segmented" || bobView.Outcome["xray"] != "hidden" {
		t.Errorf("bob view = %v — choice did not propagate", bobView.Outcome)
	}
	views, err := e.Views()
	if err != nil || len(views) != 2 {
		t.Fatalf("Views: %v, %v", views, err)
	}
}

func TestChoiceValidation(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	if _, err := e.Choice("ghost", "ct", "full"); err == nil {
		t.Error("non-member choice accepted")
	}
	if _, err := e.Choice("alice", "nosuch", "full"); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := e.Choice("alice", "ct", "nosuch"); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestChoiceRetraction(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	if _, err := e.Choice("alice", "ct", "hidden"); err != nil {
		t.Fatal(err)
	}
	v, _ := e.ViewFor("alice")
	if v.Outcome["ct"] != "hidden" {
		t.Fatal("choice not applied")
	}
	// Empty value retracts: back to the author's optimum.
	v, err := e.Choice("alice", "ct", "")
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome["ct"] != "full" {
		t.Errorf("after retraction ct = %s", v.Outcome["ct"])
	}
}

func TestLeaveRetractsChoices(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	e.Join("bob")
	e.Choice("alice", "ct", "hidden")
	bobView, _ := e.ViewFor("bob")
	if bobView.Outcome["ct"] != "hidden" {
		t.Fatal("choice not shared")
	}
	changed, err := e.Leave("alice")
	if err != nil || !changed {
		t.Fatalf("Leave = %v, %v; want changed=true", changed, err)
	}
	bobView, _ = e.ViewFor("bob")
	if bobView.Outcome["ct"] != "full" {
		t.Errorf("alice's choice survived her departure: ct=%s", bobView.Outcome["ct"])
	}
}

func TestSharedOperation(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	e.Join("bob")
	name, err := e.Operation("alice", "ct", "zoom", "full", false)
	if err != nil {
		t.Fatalf("Operation: %v", err)
	}
	bobView, err := e.ViewFor("bob")
	if err != nil {
		t.Fatal(err)
	}
	if bobView.Outcome[name] != cpnet.OpApplied {
		t.Errorf("shared operation invisible to bob: %v", bobView.Outcome[name])
	}
}

func TestPrivateOperationIsolation(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	e.Join("bob")
	name, err := e.Operation("alice", "ct", "segmentation", "full", true)
	if err != nil {
		t.Fatalf("private Operation: %v", err)
	}
	aliceView, _ := e.ViewFor("alice")
	if aliceView.Outcome[name] != cpnet.OpApplied {
		t.Errorf("alice does not see her private operation: %v", aliceView.Outcome[name])
	}
	bobView, _ := e.ViewFor("bob")
	if _, leaked := bobView.Outcome[name]; leaked {
		t.Error("bob sees alice's private operation")
	}
	// Alice can pin her private variable through Choice.
	v, err := e.Choice("alice", name, cpnet.OpFlat)
	if err != nil {
		t.Fatalf("choice on private variable: %v", err)
	}
	if v.Outcome[name] != cpnet.OpFlat {
		t.Errorf("private pin not honored: %v", v.Outcome[name])
	}
	// Bob cannot pin alice's private variable.
	if _, err := e.Choice("bob", name, cpnet.OpFlat); err == nil {
		t.Error("bob pinned alice's private variable")
	}
	if _, err := e.Operation("ghost", "ct", "zoom", "full", true); err == nil {
		t.Error("non-member operation accepted")
	}
}

func TestChoicesSnapshot(t *testing.T) {
	e := testEngine(t)
	e.Join("alice")
	e.Choice("alice", "ct", "segmented")
	c := e.Choices()
	if c["ct"] != "segmented" {
		t.Errorf("Choices = %v", c)
	}
	c["ct"] = "mutated"
	c2 := e.Choices()
	if c2["ct"] != "segmented" {
		t.Error("Choices returned shared state")
	}
}

func TestBandwidthTuning(t *testing.T) {
	doc, err := workload.MedicalRecord("rec-bw", 2)
	if err != nil {
		t.Fatal(err)
	}
	err = AddBandwidthTuning(doc, map[string]BandwidthTemplate{
		"ct": {
			Low:    []string{"lowres", "hidden", "segmented", "full"},
			Medium: []string{"lowres", "full", "segmented", "hidden"},
			High:   []string{"full", "segmented", "lowres", "hidden"},
		},
	})
	if err != nil {
		t.Fatalf("AddBandwidthTuning: %v", err)
	}
	e, err := NewEngine(doc)
	if err != nil {
		t.Fatal(err)
	}
	e.Join("alice")
	// Default environment assumes high bandwidth → full CT.
	v, _ := e.ViewFor("alice")
	if v.Outcome["ct"] != "full" {
		t.Errorf("high-bandwidth ct = %s", v.Outcome["ct"])
	}
	// The link degrades: the engine pins the measured level.
	if err := e.SetEnvironment(BandwidthVariable, BandwidthLow); err != nil {
		t.Fatal(err)
	}
	v, _ = e.ViewFor("alice")
	if v.Outcome["ct"] != "lowres" {
		t.Errorf("low-bandwidth ct = %s", v.Outcome["ct"])
	}
	// Environment pins survive viewers leaving.
	e.Join("bob")
	e.Leave("alice")
	v, _ = e.ViewFor("bob")
	if v.Outcome["ct"] != "lowres" {
		t.Errorf("environment pin lost on leave: ct = %s", v.Outcome["ct"])
	}
	// Clearing the environment restores the author's optimism.
	if err := e.SetEnvironment(BandwidthVariable, ""); err != nil {
		t.Fatal(err)
	}
	v, _ = e.ViewFor("bob")
	if v.Outcome["ct"] != "full" {
		t.Errorf("after clearing environment ct = %s", v.Outcome["ct"])
	}
}

func TestBandwidthTuningValidation(t *testing.T) {
	doc, _ := workload.MedicalRecord("rec-bwv", 3)
	if err := AddBandwidthTuning(doc, nil); err == nil {
		t.Error("empty templates accepted")
	}
	if err := AddBandwidthTuning(doc, map[string]BandwidthTemplate{
		"nosuch": {Low: []string{"a"}, Medium: []string{"a"}, High: []string{"a"}},
	}); err == nil {
		t.Error("unknown component accepted")
	}
	if err := AddBandwidthTuning(doc, map[string]BandwidthTemplate{
		"imaging": {Low: []string{"shown", "hidden"}, Medium: []string{"shown", "hidden"}, High: []string{"shown", "hidden"}},
	}); err == nil {
		t.Error("composite component accepted")
	}
	if err := AddBandwidthTuning(doc, map[string]BandwidthTemplate{
		"ct": {Low: []string{"full"}, Medium: []string{"full"}, High: []string{"full"}},
	}); err == nil {
		t.Error("short template accepted")
	}
	ok := map[string]BandwidthTemplate{
		"ct": {
			Low:    []string{"lowres", "hidden", "segmented", "full"},
			Medium: []string{"lowres", "full", "segmented", "hidden"},
			High:   []string{"full", "segmented", "lowres", "hidden"},
		},
	}
	if err := AddBandwidthTuning(doc, ok); err != nil {
		t.Fatal(err)
	}
	if err := AddBandwidthTuning(doc, ok); err == nil {
		t.Error("double tuning accepted")
	}
	e, _ := NewEngine(doc)
	if err := e.SetEnvironment("nosuch", "x"); err == nil {
		t.Error("unknown environment variable accepted")
	}
	if err := e.SetEnvironment(BandwidthVariable, "nosuch"); err == nil {
		t.Error("unknown environment value accepted")
	}
}
