package core
