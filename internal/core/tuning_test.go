package core

import (
	"testing"

	"mmconf/internal/document"
	"mmconf/internal/workload"
)

// The QoS loop's degradation invariant: in every generated template, at
// every bandwidth level, the hidden form ranks strictly last — a
// degrading link re-ranks resolutions but never prefers dropping a
// component over showing some visible form of it (resolution before
// components).
func TestAutoTemplatesDegradeResolutionBeforeComponents(t *testing.T) {
	doc, err := workload.MedicalRecord("rec-auto", 4)
	if err != nil {
		t.Fatal(err)
	}
	templates := AutoBandwidthTemplates(doc, 0)
	if len(templates) == 0 {
		t.Fatal("no templates generated")
	}
	for comp, tpl := range templates {
		c, err := doc.Component(comp)
		if err != nil {
			t.Fatal(err)
		}
		hasHidden := false
		for _, v := range c.Domain() {
			if v == document.HiddenValue {
				hasHidden = true
			}
		}
		for level, order := range map[string][]string{
			BandwidthLow: tpl.Low, BandwidthMedium: tpl.Medium, BandwidthHigh: tpl.High,
		} {
			if len(order) != len(c.Domain()) {
				t.Fatalf("%s/%s: order %v does not cover domain %v", comp, level, order, c.Domain())
			}
			if hasHidden && order[len(order)-1] != document.HiddenValue {
				t.Errorf("%s/%s: hidden is not last in %v — level drop would hide the component", comp, level, order)
			}
		}
	}
	// The CT's shape is known: low prefers the cheapest resolution, high
	// the author's full-fidelity order, medium demotes only the payload
	// above the limit.
	ct := templates["ct"]
	if ct.Low[0] != "lowres" {
		t.Errorf("ct low order %v, want lowres first", ct.Low)
	}
	if ct.High[0] != "full" {
		t.Errorf("ct high order %v, want full first", ct.High)
	}
	if ct.Medium[len(ct.Medium)-2] != "segmented" {
		t.Errorf("ct medium order %v, want oversized segmented demoted to just before hidden", ct.Medium)
	}
}

// Generated templates must be accepted by AddBandwidthTuning and produce
// a solvable network whose degradation follows the level.
func TestAutoTemplatesSolve(t *testing.T) {
	doc, err := workload.MedicalRecord("rec-auto2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := AddBandwidthTuning(doc, AutoBandwidthTemplates(doc, 0)); err != nil {
		t.Fatalf("AddBandwidthTuning(auto): %v", err)
	}
	e, err := NewEngine(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Join("alice"); err != nil {
		t.Fatal(err)
	}
	v, err := e.ViewFor("alice")
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome["ct"] != "full" {
		t.Errorf("optimistic default ct = %s, want full", v.Outcome["ct"])
	}
	if err := e.SetEnvironment(BandwidthVariable, BandwidthLow); err != nil {
		t.Fatal(err)
	}
	v, _ = e.ViewFor("alice")
	if v.Outcome["ct"] != "lowres" {
		t.Errorf("low-bandwidth ct = %s, want lowres", v.Outcome["ct"])
	}
	// Degraded, but still visible: the invariant end to end.
	if !v.Visible["ct"] {
		t.Error("low bandwidth hid the ct component instead of degrading resolution")
	}
}

func TestSetViewerEnvironmentScopesToViewer(t *testing.T) {
	doc, err := workload.MedicalRecord("rec-env", 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := AddBandwidthTuning(doc, AutoBandwidthTemplates(doc, 0)); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(doc)
	if err != nil {
		t.Fatal(err)
	}
	e.Join("clinic")
	e.Join("hospital")
	changed, err := e.SetViewerEnvironment("clinic", BandwidthVariable, BandwidthLow)
	if err != nil || !changed {
		t.Fatalf("SetViewerEnvironment: changed=%v err=%v", changed, err)
	}
	// Idempotent re-pin reports no change.
	if changed, _ := e.SetViewerEnvironment("clinic", BandwidthVariable, BandwidthLow); changed {
		t.Error("re-pinning the same level reported a change")
	}
	vClinic, _ := e.ViewFor("clinic")
	vHosp, _ := e.ViewFor("hospital")
	if vClinic.Outcome["ct"] != "lowres" {
		t.Errorf("clinic ct = %s, want lowres", vClinic.Outcome["ct"])
	}
	if vHosp.Outcome["ct"] != "full" {
		t.Errorf("hospital ct = %s, want full — clinic's slow link leaked", vHosp.Outcome["ct"])
	}
	if env := e.ViewerEnvironment("clinic"); env[BandwidthVariable] != BandwidthLow {
		t.Errorf("ViewerEnvironment = %v", env)
	}

	// An explicit viewer choice on a component still wins over tuning.
	if _, err := e.Choice("clinic", "ct", "full"); err != nil {
		t.Fatal(err)
	}
	vClinic, _ = e.ViewFor("clinic")
	if vClinic.Outcome["ct"] != "full" {
		t.Errorf("explicit choice lost to tuning: ct = %s", vClinic.Outcome["ct"])
	}

	// Per-viewer measurement beats a global environment pin (retract the
	// explicit choice first so the tuning variable decides again).
	if _, err := e.Choice("clinic", "ct", ""); err != nil {
		t.Fatal(err)
	}
	if err := e.SetEnvironment(BandwidthVariable, BandwidthHigh); err != nil {
		t.Fatal(err)
	}
	vClinic, _ = e.ViewFor("clinic")
	if got := vClinic.Outcome["ct"]; got != "lowres" {
		t.Errorf("clinic ct = %s, want lowres (per-viewer low must beat global high)", got)
	}
	vHosp, _ = e.ViewFor("hospital")
	if got := vHosp.Outcome["ct"]; got != "full" {
		t.Errorf("hospital ct = %s, want full under global high", got)
	}
	// The author's conditional row survives the tuning extension: a fast
	// link still honors "xray is just an icon while the full CT shows".
	if got := vHosp.Outcome["xray"]; got != "icon" {
		t.Errorf("hospital xray = %s, want icon (author row for ct=full)", got)
	}

	// Clearing restores the optimistic default.
	if changed, _ := e.SetViewerEnvironment("clinic", BandwidthVariable, ""); !changed {
		t.Error("clearing a pin reported no change")
	}
	if changed, _ := e.SetViewerEnvironment("clinic", BandwidthVariable, ""); changed {
		t.Error("clearing twice reported a change")
	}

	// Leave drops the viewer's environment with them.
	e.SetViewerEnvironment("hospital", BandwidthVariable, BandwidthLow)
	e.Leave("hospital")
	e.Join("hospital")
	if env := e.ViewerEnvironment("hospital"); len(env) != 0 {
		t.Errorf("environment survived leave: %v", env)
	}
}

func TestSetViewerEnvironmentValidation(t *testing.T) {
	doc, _ := workload.MedicalRecord("rec-envv", 7)
	if err := AddBandwidthTuning(doc, AutoBandwidthTemplates(doc, 0)); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(doc)
	e.Join("alice")
	if _, err := e.SetViewerEnvironment("ghost", BandwidthVariable, BandwidthLow); err == nil {
		t.Error("unjoined viewer accepted")
	}
	if _, err := e.SetViewerEnvironment("alice", "no/such", "x"); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := e.SetViewerEnvironment("alice", BandwidthVariable, "turbo"); err == nil {
		t.Error("out-of-domain value accepted")
	}
}
