// Package core is the presentation module of the conferencing system —
// the paper's primary contribution (§4). It orchestrates, for one shared
// document under concurrent viewing, everything the interaction server
// needs: the accumulated viewer choices (the evidence of the constrained
// optimization), per-viewer overlay networks for private operation
// variables (§4.2), the bandwidth/buffer tuning variables of §4.4, and
// the recomputation of the optimal presentation after every event.
//
// The flow mirrors Fig. 4 of the paper: on document retrieval the engine
// serves defaultPresentation(); on every viewer choice the interaction
// server calls Choice/Operation and pushes the resulting views to all
// clients.
package core

import (
	"fmt"
	"sort"
	"sync"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/prefetch"
)

// Engine manages the presentation state of one document in one room.
// All methods are safe for concurrent use.
type Engine struct {
	mu sync.Mutex
	// doc is the shared document (hierarchy + author network).
	doc *document.Document
	// choices is the accumulated evidence: the most recent explicit
	// presentation selection per variable, across all viewers.
	choices cpnet.Outcome
	// choiceBy remembers which viewer pinned each variable, so a
	// viewer's choices can be retracted when they leave.
	choiceBy map[string]string
	// overlays holds each viewer's private extension network.
	overlays map[string]*cpnet.Overlay
	// env holds per-viewer environment evidence — measured facts about
	// one viewer's situation (e.g. the QoS loop's bandwidth level) that
	// condition only that viewer's view, unlike the shared choices.
	env map[string]cpnet.Outcome
}

// NewEngine wraps a document for cooperative presentation.
func NewEngine(doc *document.Document) (*Engine, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	if err := doc.Prefs.Validate(); err != nil {
		return nil, fmt.Errorf("core: document %s: %w", doc.ID, err)
	}
	return &Engine{
		doc:      doc,
		choices:  cpnet.Outcome{},
		choiceBy: make(map[string]string),
		overlays: make(map[string]*cpnet.Overlay),
		env:      make(map[string]cpnet.Outcome),
	}, nil
}

// Document returns the engine's document.
func (e *Engine) Document() *document.Document { return e.doc }

// Join registers a viewer, creating their private overlay, and returns
// their initial view.
func (e *Engine) Join(viewer string) (document.View, error) {
	if viewer == "" {
		return document.View{}, fmt.Errorf("core: empty viewer name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.overlays[viewer]; dup {
		return document.View{}, fmt.Errorf("core: viewer %q already joined", viewer)
	}
	e.overlays[viewer] = e.doc.NewOverlay()
	return e.viewForLocked(viewer)
}

// Leave retracts the viewer's choices and discards their overlay. It
// returns true if the shared presentation changed (the server should then
// push fresh views to the remaining viewers).
func (e *Engine) Leave(viewer string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.overlays[viewer]; !ok {
		return false, fmt.Errorf("core: viewer %q not joined", viewer)
	}
	delete(e.overlays, viewer)
	delete(e.env, viewer)
	changed := false
	for variable, by := range e.choiceBy {
		if by == viewer {
			delete(e.choices, variable)
			delete(e.choiceBy, variable)
			changed = true
		}
	}
	return changed, nil
}

// Viewers lists the joined viewers, sorted.
func (e *Engine) Viewers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.overlays))
	for v := range e.overlays {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Choice records a viewer's explicit presentation selection — "a click
// indicating his desire to view some item in a particular form" — and
// returns the viewer's updated view. Passing an empty value retracts the
// viewer's previous choice on that variable.
func (e *Engine) Choice(viewer, variable, value string) (document.View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ov, ok := e.overlays[viewer]
	if !ok {
		return document.View{}, fmt.Errorf("core: viewer %q not joined", viewer)
	}
	if value == "" {
		if e.choiceBy[variable] != "" {
			delete(e.choices, variable)
			delete(e.choiceBy, variable)
		}
		return e.viewForViewerLocked(viewer, ov)
	}
	// Validate against the shared network or the viewer's own overlay.
	if e.doc.Prefs.HasVariable(variable) {
		dom, err := e.doc.Prefs.Domain(variable)
		if err != nil {
			return document.View{}, err
		}
		if !contains(dom, value) {
			return document.View{}, fmt.Errorf("core: variable %q has no value %q", variable, value)
		}
		e.choices[variable] = value
		e.choiceBy[variable] = viewer
		return e.viewForViewerLocked(viewer, ov)
	}
	// Private extension variable: pin it in the viewer's own evidence by
	// treating it as a per-view choice (stored in choices but scoped by
	// the overlay resolution in viewForViewerLocked).
	owned := false
	for _, name := range ov.ExtensionNames() {
		if name == variable {
			owned = true
			break
		}
	}
	if !owned {
		return document.View{}, fmt.Errorf("core: unknown variable %q", variable)
	}
	e.choices[variable] = value
	e.choiceBy[variable] = viewer
	return e.viewForViewerLocked(viewer, ov)
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// Operation records a media operation per §4.2. If private is false the
// derived variable enters the shared network and every viewer sees it;
// otherwise it lives only in this viewer's overlay ("the viewer can decide
// about the importance of this operation for the rest of the viewers").
func (e *Engine) Operation(viewer, component, op, activeWhen string, private bool) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ov, ok := e.overlays[viewer]
	if !ok {
		return "", fmt.Errorf("core: viewer %q not joined", viewer)
	}
	if private {
		return e.doc.ApplyOperationPrivate(ov, component, op, activeWhen)
	}
	return e.doc.ApplyOperation(component, op, activeWhen)
}

// ViewFor computes the current optimal view for one viewer: the shared
// completion under all accumulated choices, extended by the viewer's
// private overlay.
func (e *Engine) ViewFor(viewer string) (document.View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.viewForLocked(viewer)
}

func (e *Engine) viewForLocked(viewer string) (document.View, error) {
	ov, ok := e.overlays[viewer]
	if !ok {
		return document.View{}, fmt.Errorf("core: viewer %q not joined", viewer)
	}
	return e.viewForViewerLocked(viewer, ov)
}

// viewForViewerLocked resolves the viewer's view: shared choices that name
// base variables apply to everyone; choices naming overlay extension
// variables apply only when this viewer owns them.
func (e *Engine) viewForViewerLocked(viewer string, ov *cpnet.Overlay) (document.View, error) {
	ev := cpnet.Outcome{}
	owned := make(map[string]bool)
	for _, name := range ov.ExtensionNames() {
		owned[name] = true
	}
	for variable, value := range e.env[viewer] {
		if e.doc.Prefs.HasVariable(variable) {
			ev[variable] = value
		}
	}
	for variable, value := range e.choices {
		if e.doc.Prefs.HasVariable(variable) || owned[variable] {
			if _, measured := e.env[viewer][variable]; measured && e.choiceBy[variable] == "" {
				// A per-viewer measurement beats the global environment
				// pin; an explicit viewer choice still wins below.
				continue
			}
			ev[variable] = value
		}
	}
	return e.doc.ReconfigPresentationFor(ov, ev)
}

// Views computes the current view of every joined viewer — what the
// interaction server broadcasts after a change.
func (e *Engine) Views() (map[string]document.View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]document.View, len(e.overlays))
	for viewer, ov := range e.overlays {
		v, err := e.viewForViewerLocked(viewer, ov)
		if err != nil {
			return nil, err
		}
		out[viewer] = v
	}
	return out, nil
}

// PrefetchRank computes the push-prefetch candidate ranking for one
// viewer under the engine lock, so a concurrent media operation cannot
// mutate the document mid-rank. Evidence is the viewer's measured
// environment with the shared explicit choices layered on top.
func (e *Engine) PrefetchRank(viewer string) ([]prefetch.Candidate, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.overlays[viewer]; !ok {
		return nil, fmt.Errorf("core: viewer %q not joined", viewer)
	}
	ev := cpnet.Outcome{}
	for variable, value := range e.env[viewer] {
		if e.doc.Prefs.HasVariable(variable) {
			ev[variable] = value
		}
	}
	for variable, value := range e.choices {
		if e.doc.Prefs.HasVariable(variable) {
			ev[variable] = value
		}
	}
	return prefetch.Rank(e.doc, ev)
}

// Choices returns a copy of the accumulated shared evidence.
func (e *Engine) Choices() cpnet.Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.choices.Clone()
}
