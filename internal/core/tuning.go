package core

import (
	"fmt"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
)

// This file implements the first §4.4 strategy for handling communication
// bandwidth and client buffer limits: "add corresponding 'tuning'
// variables into the preference model of the document presentation, and
// to condition on them the preferential ordering of the presentation
// alternatives for various bandwidth/buffer consuming components. Such
// model extension can be done automatically, according to some predefined
// ordering templates."

// BandwidthVariable is the reserved tuning-variable name. It contains '/'
// so document.SetNetwork treats it as a derived (non-component) variable.
const BandwidthVariable = "net/bandwidth"

// Bandwidth levels, ordered worst to best.
const (
	BandwidthLow    = "low"
	BandwidthMedium = "medium"
	BandwidthHigh   = "high"
)

// BandwidthTemplate gives, for one component, the preference order over
// its presentations at each bandwidth level — the "predefined ordering
// template". Typically Low prefers icons/low-resolution forms and High
// prefers full fidelity.
type BandwidthTemplate struct {
	Low, Medium, High []string
}

// AddBandwidthTuning extends the document's network with the bandwidth
// tuning variable and re-conditions each templated component on it. The
// templated components' previous parents are replaced by the tuning
// variable (the automatic-template path of §4.4; authors wanting both
// kinds of conditioning refine the CPT manually afterwards).
func AddBandwidthTuning(doc *document.Document, templates map[string]BandwidthTemplate) error {
	if len(templates) == 0 {
		return fmt.Errorf("core: no tuning templates")
	}
	n := doc.Prefs
	if n.HasVariable(BandwidthVariable) {
		return fmt.Errorf("core: document %s already has bandwidth tuning", doc.ID)
	}
	// Validate everything before mutating.
	for comp, tpl := range templates {
		c, err := doc.Component(comp)
		if err != nil {
			return err
		}
		if c.Composite() {
			return fmt.Errorf("core: cannot condition composite %q on bandwidth", comp)
		}
		for _, order := range [][]string{tpl.Low, tpl.Medium, tpl.High} {
			if len(order) != len(c.Domain()) {
				return fmt.Errorf("core: template for %q lists %d values, domain has %d",
					comp, len(order), len(c.Domain()))
			}
		}
	}
	if err := n.AddVariable(BandwidthVariable, []string{BandwidthLow, BandwidthMedium, BandwidthHigh}); err != nil {
		return err
	}
	// Absent measurement, assume the best: high ≻ medium ≻ low.
	if err := n.SetUnconditional(BandwidthVariable, []string{BandwidthHigh, BandwidthMedium, BandwidthLow}); err != nil {
		return err
	}
	for comp, tpl := range templates {
		if err := n.SetParents(comp, []string{BandwidthVariable}); err != nil {
			return fmt.Errorf("core: conditioning %q: %w", comp, err)
		}
		for level, order := range map[string][]string{
			BandwidthLow:    tpl.Low,
			BandwidthMedium: tpl.Medium,
			BandwidthHigh:   tpl.High,
		} {
			if err := n.SetPreference(comp, cpnet.Outcome{BandwidthVariable: level}, order); err != nil {
				return fmt.Errorf("core: template row for %q at %s: %w", comp, level, err)
			}
		}
	}
	return n.Validate()
}

// SetEnvironment pins a measured environment variable (e.g. the bandwidth
// tuning variable) as evidence that no viewer owns: it survives viewers
// leaving and can only be changed by another SetEnvironment call.
func (e *Engine) SetEnvironment(variable, value string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.doc.Prefs.HasVariable(variable) {
		return fmt.Errorf("core: unknown environment variable %q", variable)
	}
	dom, err := e.doc.Prefs.Domain(variable)
	if err != nil {
		return err
	}
	if value == "" {
		delete(e.choices, variable)
		delete(e.choiceBy, variable)
		return nil
	}
	if !contains(dom, value) {
		return fmt.Errorf("core: variable %q has no value %q", variable, value)
	}
	e.choices[variable] = value
	e.choiceBy[variable] = "" // owned by the environment, not a viewer
	return nil
}
