package core

import (
	"fmt"
	"sort"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
)

// This file implements the first §4.4 strategy for handling communication
// bandwidth and client buffer limits: "add corresponding 'tuning'
// variables into the preference model of the document presentation, and
// to condition on them the preferential ordering of the presentation
// alternatives for various bandwidth/buffer consuming components. Such
// model extension can be done automatically, according to some predefined
// ordering templates."

// BandwidthVariable is the reserved tuning-variable name. It contains '/'
// so document.SetNetwork treats it as a derived (non-component) variable.
const BandwidthVariable = "net/bandwidth"

// Bandwidth levels, ordered worst to best.
const (
	BandwidthLow    = "low"
	BandwidthMedium = "medium"
	BandwidthHigh   = "high"
)

// BandwidthTemplate gives, for one component, the preference order over
// its presentations at each bandwidth level — the "predefined ordering
// template". Typically Low prefers icons/low-resolution forms and High
// prefers full fidelity.
type BandwidthTemplate struct {
	Low, Medium, High []string
	// MediumLimit is the payload size above which the medium level
	// demotes a presentation when re-ranking the author's conditional
	// rows (0 selects DefaultMediumLimit).
	MediumLimit int64
}

// DefaultMediumLimit is the payload size above which the medium template
// demotes a presentation: mid-grade links keep full fidelity for objects
// up to this size and degrade only the heavyweights.
const DefaultMediumLimit int64 = 256 << 10

// AutoBandwidthTemplates derives an ordering template for every leaf
// component that has at least two visible presentation alternatives —
// the "model extension can be done automatically, according to some
// predefined ordering templates" of §4.4. The generated orders encode
// the QoS loop's degradation invariant, resolution before components:
// the hidden form ranks last at every bandwidth level, so a degrading
// link changes which resolution is preferred but never prefers dropping
// a component over showing some visible form of it.
//
//   - high: the author's order (full fidelity first).
//   - medium: the author's order with presentations larger than
//     mediumLimit demoted behind the affordable ones.
//   - low: visible forms cheapest-first by payload size.
//
// mediumLimit <= 0 selects DefaultMediumLimit.
func AutoBandwidthTemplates(doc *document.Document, mediumLimit int64) map[string]BandwidthTemplate {
	if mediumLimit <= 0 {
		mediumLimit = DefaultMediumLimit
	}
	templates := make(map[string]BandwidthTemplate)
	for _, c := range doc.Components() {
		if c.Composite() {
			continue
		}
		visible := make([]document.Presentation, 0, len(c.Presentations))
		hidden := make([]string, 0, 1)
		for _, p := range c.Presentations {
			if p.Name == document.HiddenValue {
				hidden = append(hidden, p.Name)
				continue
			}
			visible = append(visible, p)
		}
		if len(visible) < 2 {
			continue // nothing to degrade between
		}
		order := func(ps []document.Presentation) []string {
			out := make([]string, 0, len(ps)+len(hidden))
			for _, p := range ps {
				out = append(out, p.Name)
			}
			return append(out, hidden...)
		}
		high := order(visible)
		// Medium: stable partition — affordable forms keep the author's
		// order, oversized ones follow, hidden stays last.
		med := make([]document.Presentation, 0, len(visible))
		var big []document.Presentation
		for _, p := range visible {
			if p.Bytes <= mediumLimit {
				med = append(med, p)
			} else {
				big = append(big, p)
			}
		}
		medium := order(append(med, big...))
		// Low: cheapest visible first (stable on author order for ties).
		low := make([]document.Presentation, len(visible))
		copy(low, visible)
		sort.SliceStable(low, func(i, j int) bool { return low[i].Bytes < low[j].Bytes })
		templates[c.Name] = BandwidthTemplate{Low: order(low), Medium: medium, High: high, MediumLimit: mediumLimit}
	}
	return templates
}

// AddBandwidthTuning extends the document's network with the bandwidth
// tuning variable and conditions each templated component on it — the
// automatic model extension of §4.4. A parentless component takes the
// template's three orders directly. A component the author already
// conditioned (on other components) keeps that conditioning: the tuning
// variable is appended to its parent set and each author row is
// re-ranked per level by the template's size policy — high keeps the
// author's row, medium demotes payloads above the template's
// MediumLimit, low sorts the visible forms cheapest-first. The hidden
// form never moves within an author row: where the author decided a
// context warrants hiding, a fast link must not resurrect the
// component, and where they ranked hidden last, a slow link degrades
// resolution but still shows something.
func AddBandwidthTuning(doc *document.Document, templates map[string]BandwidthTemplate) error {
	if len(templates) == 0 {
		return fmt.Errorf("core: no tuning templates")
	}
	n := doc.Prefs
	if n.HasVariable(BandwidthVariable) {
		return fmt.Errorf("core: document %s already has bandwidth tuning", doc.ID)
	}
	// Validate everything before mutating.
	for comp, tpl := range templates {
		c, err := doc.Component(comp)
		if err != nil {
			return err
		}
		if c.Composite() {
			return fmt.Errorf("core: cannot condition composite %q on bandwidth", comp)
		}
		for _, order := range [][]string{tpl.Low, tpl.Medium, tpl.High} {
			if len(order) != len(c.Domain()) {
				return fmt.Errorf("core: template for %q lists %d values, domain has %d",
					comp, len(order), len(c.Domain()))
			}
		}
	}
	if err := n.AddVariable(BandwidthVariable, []string{BandwidthLow, BandwidthMedium, BandwidthHigh}); err != nil {
		return err
	}
	// Absent measurement, assume the best: high ≻ medium ≻ low.
	if err := n.SetUnconditional(BandwidthVariable, []string{BandwidthHigh, BandwidthMedium, BandwidthLow}); err != nil {
		return err
	}
	for comp, tpl := range templates {
		parents, err := n.Parents(comp)
		if err != nil {
			return err
		}
		if len(parents) == 0 {
			if err := n.SetParents(comp, []string{BandwidthVariable}); err != nil {
				return fmt.Errorf("core: conditioning %q: %w", comp, err)
			}
			for level, order := range map[string][]string{
				BandwidthLow:    tpl.Low,
				BandwidthMedium: tpl.Medium,
				BandwidthHigh:   tpl.High,
			} {
				if err := n.SetPreference(comp, cpnet.Outcome{BandwidthVariable: level}, order); err != nil {
					return fmt.Errorf("core: template row for %q at %s: %w", comp, level, err)
				}
			}
			continue
		}
		// Author-conditioned component: capture every existing row before
		// SetParents clears the CPT, then re-rank each per level.
		c, err := doc.Component(comp)
		if err != nil {
			return err
		}
		sizes := make(map[string]int64, len(c.Presentations))
		for _, p := range c.Presentations {
			sizes[p.Name] = p.Bytes
		}
		limit := tpl.MediumLimit
		if limit <= 0 {
			limit = DefaultMediumLimit
		}
		type authorRow struct {
			ctx   cpnet.Outcome
			order []string
		}
		var rows []authorRow
		var rowErr error
		if err := n.ForEachContext(comp, func(ctx cpnet.Outcome) bool {
			order, err := n.Preference(comp, ctx)
			if err != nil {
				rowErr = err
				return false
			}
			rows = append(rows, authorRow{ctx: ctx.Clone(), order: order})
			return true
		}); err != nil {
			return err
		}
		if rowErr != nil {
			return fmt.Errorf("core: conditioning %q: %w", comp, rowErr)
		}
		if err := n.SetParents(comp, append(parents, BandwidthVariable)); err != nil {
			return fmt.Errorf("core: conditioning %q: %w", comp, err)
		}
		for _, row := range rows {
			for _, level := range []string{BandwidthLow, BandwidthMedium, BandwidthHigh} {
				ctx := row.ctx.Clone()
				ctx[BandwidthVariable] = level
				if err := n.SetPreference(comp, ctx, rerankRow(level, row.order, sizes, limit)); err != nil {
					return fmt.Errorf("core: template row for %q at %s: %w", comp, level, err)
				}
			}
		}
	}
	return n.Validate()
}

// rerankRow applies a bandwidth level's size policy to one author
// preference row: hidden entries keep their author-chosen positions;
// the visible entries are permuted among the remaining slots — medium
// demotes payloads above limit (stable), low sorts cheapest-first
// (stable), high returns the row unchanged.
func rerankRow(level string, order []string, sizes map[string]int64, limit int64) []string {
	if level == BandwidthHigh {
		return order
	}
	visible := make([]string, 0, len(order))
	slots := make([]int, 0, len(order))
	for i, v := range order {
		if v == document.HiddenValue {
			continue
		}
		visible = append(visible, v)
		slots = append(slots, i)
	}
	if level == BandwidthMedium {
		part := make([]string, 0, len(visible))
		var big []string
		for _, v := range visible {
			if sizes[v] <= limit {
				part = append(part, v)
			} else {
				big = append(big, v)
			}
		}
		visible = append(part, big...)
	} else {
		sort.SliceStable(visible, func(i, j int) bool { return sizes[visible[i]] < sizes[visible[j]] })
	}
	out := make([]string, len(order))
	copy(out, order)
	for i, slot := range slots {
		out[slot] = visible[i]
	}
	return out
}

// SetEnvironment pins a measured environment variable (e.g. the bandwidth
// tuning variable) as evidence that no viewer owns: it survives viewers
// leaving and can only be changed by another SetEnvironment call.
func (e *Engine) SetEnvironment(variable, value string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.doc.Prefs.HasVariable(variable) {
		return fmt.Errorf("core: unknown environment variable %q", variable)
	}
	dom, err := e.doc.Prefs.Domain(variable)
	if err != nil {
		return err
	}
	if value == "" {
		delete(e.choices, variable)
		delete(e.choiceBy, variable)
		return nil
	}
	if !contains(dom, value) {
		return fmt.Errorf("core: variable %q has no value %q", variable, value)
	}
	e.choices[variable] = value
	e.choiceBy[variable] = "" // owned by the environment, not a viewer
	return nil
}

// SetViewerEnvironment pins a measured environment variable for one
// viewer only — the QoS loop's per-client tuning hook: each client's
// estimated bandwidth level conditions that client's view without
// degrading anyone else's. An empty value clears the pin. A viewer's
// explicit choice on the same variable still wins; a global
// SetEnvironment pin does not (the per-viewer measurement is more
// specific). It returns whether the viewer's effective evidence changed.
func (e *Engine) SetViewerEnvironment(viewer, variable, value string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.overlays[viewer]; !ok {
		return false, fmt.Errorf("core: viewer %q not joined", viewer)
	}
	if !e.doc.Prefs.HasVariable(variable) {
		return false, fmt.Errorf("core: unknown environment variable %q", variable)
	}
	if value == "" {
		if _, ok := e.env[viewer][variable]; !ok {
			return false, nil
		}
		delete(e.env[viewer], variable)
		return true, nil
	}
	dom, err := e.doc.Prefs.Domain(variable)
	if err != nil {
		return false, err
	}
	if !contains(dom, value) {
		return false, fmt.Errorf("core: variable %q has no value %q", variable, value)
	}
	if e.env[viewer] == nil {
		e.env[viewer] = cpnet.Outcome{}
	}
	if e.env[viewer][variable] == value {
		return false, nil
	}
	e.env[viewer][variable] = value
	return true, nil
}

// ViewerEnvironment returns a copy of one viewer's environment evidence.
func (e *Engine) ViewerEnvironment(viewer string) cpnet.Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := cpnet.Outcome{}
	for v, val := range e.env[viewer] {
		out[v] = val
	}
	return out
}
