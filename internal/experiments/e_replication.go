package experiments

import (
	"fmt"
	"path/filepath"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/cluster"
	"mmconf/internal/workload"
)

// E17Replication measures digest-driven dataset replication on a
// 2-node cluster whose second node starts with an empty CAS. The owner
// ships each standby room's rows and blob manifests; the standby pulls
// only the chunks its store lacks. Three claims are measured against
// the full-copy baseline (what a naive "ship every payload" transfer
// would cost): the first sync to an empty store moves approximately the
// receiver-missing unique bytes, a forced re-sync of the unchanged room
// moves the manifest only (zero chunk bytes), and a second record over
// the same media bytes costs only its novel chunks — cross-room dedup
// over the shared CAS.
func E17Replication(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Digest-driven replication: chunk transfer vs full copy (empty-CAS standby)",
		Columns: []string{"phase", "rows", "chunks", "bytes moved", "vs baseline"},
	}
	h, err := cluster.NewHarness(cluster.HarnessOptions{
		Nodes:    2,
		Dir:      filepath.Join(workdir, "e17"),
		Seed:     17,
		Unseeded: []string{"n2"},
	})
	if err != nil {
		return nil, err
	}
	defer h.Close()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		return nil, err
	}
	owner, standby := h.ByID("n1"), h.ByID("n2")

	// The full-copy baseline: every payload byte of the record's
	// dataset, which is what replication would move without the diff.
	ds, err := owner.Media().ExportDataset("p1")
	if err != nil {
		return nil, err
	}
	var baseline uint64
	for _, bh := range ds.Handles() {
		baseline += uint64(bh.Length)
	}

	join := func(user, roomName, docID string) (*client.Session, func(), error) {
		c, err := client.NewOverResolver(h.ClientFaults.DialContext, h.Addrs(), user, client.Options{
			ConnectTimeout: 5 * time.Second,
			CallTimeout:    10 * time.Second,
		})
		if err != nil {
			return nil, nil, err
		}
		s, _, err := c.Join(roomName, docID, 0)
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		return s, func() { c.Close() }, nil
	}
	waitSync := func(cond func(cluster.Metrics) bool) error {
		deadline := time.Now().Add(10 * time.Second)
		for !cond(standby.Node.Metrics()) {
			if time.Now().After(deadline) {
				return fmt.Errorf("standby never reached sync state; metrics %+v", standby.Node.Metrics())
			}
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	}

	// Phase 1: first sync into the empty store. Joining a room on the
	// owner starts the room's replication stream; the standby pulls
	// every chunk it lacks — all of them.
	s1, done1, err := join("measure", h.RoomOwnedBy("n1", "board"), "p1")
	if err != nil {
		return nil, err
	}
	defer done1()
	if err := s1.Chat("sync"); err != nil {
		return nil, err
	}
	if err := waitSync(func(m cluster.Metrics) bool { return m.SyncRowsAdopted > 0 }); err != nil {
		return nil, err
	}
	first := standby.Node.Metrics()
	t.Rows = append(t.Rows, []string{
		"full copy baseline", "-", "-", fmt.Sprint(baseline), "1.00x",
	})
	t.Rows = append(t.Rows, []string{
		"first sync (empty CAS)",
		fmt.Sprint(first.SyncRowsAdopted), fmt.Sprint(first.SyncChunksPulled),
		fmt.Sprint(first.SyncChunkBytesPulled),
		fmt.Sprintf("%.2fx", float64(first.SyncChunkBytesPulled)/float64(baseline)),
	})

	// Phase 2: forced re-sync of the unchanged room. The manifest frame
	// crosses again; no row changes, no chunk moves.
	syncs := owner.Node.Metrics().ManifestSyncs
	owner.Node.ForceResync()
	deadline := time.Now().Add(10 * time.Second)
	for owner.Node.Metrics().ManifestSyncs <= syncs {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("owner never re-sent the manifest")
		}
		time.Sleep(5 * time.Millisecond)
	}
	repeat := standby.Node.Metrics()
	t.Rows = append(t.Rows, []string{
		"repeat sync (unchanged)",
		fmt.Sprint(repeat.SyncRowsAdopted - first.SyncRowsAdopted),
		fmt.Sprint(repeat.SyncChunksPulled - first.SyncChunksPulled),
		fmt.Sprint(repeat.SyncChunkBytesPulled - first.SyncChunkBytesPulled),
		"0.00x",
	})

	// Phase 3: a second record populated with the same seed — identical
	// media payloads, distinct document blob. Its sync costs only the
	// novel chunks; everything else is already in the standby's CAS.
	if _, err := workload.Populate(owner.Media(), "p2", 17); err != nil {
		return nil, err
	}
	s2, done2, err := join("measure2", h.RoomOwnedBy("n1", "annex"), "p2")
	if err != nil {
		return nil, err
	}
	defer done2()
	if err := s2.Chat("sync"); err != nil {
		return nil, err
	}
	if err := waitSync(func(m cluster.Metrics) bool { return m.SyncRowsAdopted > repeat.SyncRowsAdopted }); err != nil {
		return nil, err
	}
	second := standby.Node.Metrics()
	secondBytes := second.SyncChunkBytesPulled - repeat.SyncChunkBytesPulled
	t.Rows = append(t.Rows, []string{
		"second record, shared media",
		fmt.Sprint(second.SyncRowsAdopted - repeat.SyncRowsAdopted),
		fmt.Sprint(second.SyncChunksPulled - repeat.SyncChunksPulled),
		fmt.Sprint(secondBytes),
		fmt.Sprintf("%.2fx", float64(secondBytes)/float64(baseline)),
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("standby n2 started with an empty CAS and adopted %d rows over %d manifest syncs",
			second.SyncRowsAdopted, owner.Node.Metrics().ManifestSyncs),
		"bytes moved counts chunk payloads pulled by the standby; manifests and rows are metadata-sized",
		"the second record shares every media payload with the first — only its document blob moves chunks")
	if repeat.SyncChunkBytesPulled != first.SyncChunkBytesPulled {
		return nil, fmt.Errorf("repeat sync moved %d chunk bytes, want 0",
			repeat.SyncChunkBytesPulled-first.SyncChunkBytesPulled)
	}
	if secondBytes >= first.SyncChunkBytesPulled/2 {
		return nil, fmt.Errorf("second record moved %d bytes (first: %d); cross-record dedup failed",
			secondBytes, first.SyncChunkBytesPulled)
	}
	return t, nil
}
