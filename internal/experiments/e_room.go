package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"mmconf/internal/room"
	"mmconf/internal/workload"
)

// E5Propagation measures the shared-room machinery behind Fig. 8: the
// latency from one partner's action to every other partner having
// received both the action event and their updated presentation, as the
// room grows, plus the sustained event throughput.
func E5Propagation() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Room change propagation (Fig. 8)",
		Columns: []string{"members", "choice-latency", "chat-latency", "events/s"},
	}
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		choiceLat, chatLat, throughput, err := propagationRun(n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmtDur(choiceLat), fmtDur(chatLat),
			fmt.Sprintf("%.0f", throughput),
		})
	}
	t.Notes = append(t.Notes,
		"choice-latency includes per-member presentation recomputation; chat is propagation only")
	// Ablation: event diffs vs re-sending the whole document per change.
	diffBytes, docBytes, mediaBytes, err := diffVsWholeDocument()
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"ablation: one choice propagates %d bytes of events per member; re-sending the whole object for redisplay would ship %d bytes of structure plus %d KiB of referenced media (%.0fx saving) — \"the hierarchical structure of the object permits sending only the relevant parts\"",
		diffBytes, docBytes, mediaBytes>>10, float64(docBytes+int(mediaBytes))/float64(diffBytes)))
	return t, nil
}

// diffVsWholeDocument measures the per-member bytes of propagating one
// choice as events (what the room does) against re-shipping the whole
// serialized document (the naive alternative, §5.3).
func diffVsWholeDocument() (diffBytes, docBytes int, mediaBytes int64, err error) {
	doc, err := workload.MedicalRecord("e5diff", 1)
	if err != nil {
		return 0, 0, 0, err
	}
	data, err := doc.MarshalBinary()
	if err != nil {
		return 0, 0, 0, err
	}
	docBytes = len(data)
	r, err := room.New("diff", doc)
	if err != nil {
		return 0, 0, 0, err
	}
	defer r.Close()
	m, _, _, err := r.Join(context.Background(), "a")
	if err != nil {
		return 0, 0, 0, err
	}
	if err := r.Choice(context.Background(), "a", "ct", "segmented"); err != nil {
		return 0, 0, 0, err
	}
	// What a full redisplay would re-transfer: the view's media payloads.
	view, err := doc.ReconfigPresentation(map[string]string{"ct": "segmented"})
	if err != nil {
		return 0, 0, 0, err
	}
	mediaBytes = doc.TransferBytes(view)
	deadline := time.After(2 * time.Second)
	got := 0
	for got < 2 { // the choice event + the presentation event
		select {
		case ev := <-m.Events():
			if ev.Kind == room.EvChoice || ev.Kind == room.EvPresentation {
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(ev); err != nil {
					return 0, 0, 0, err
				}
				diffBytes += buf.Len()
				got++
			}
		case <-deadline:
			return 0, 0, 0, fmt.Errorf("experiments: choice events never arrived")
		}
	}
	return diffBytes, docBytes, mediaBytes, nil
}

// propagationRun measures one room size.
func propagationRun(n int) (choiceLat, chatLat time.Duration, eventsPerSec float64, err error) {
	doc, err := workload.MedicalRecord("e5", 1)
	if err != nil {
		return 0, 0, 0, err
	}
	r, err := room.New("bench", doc)
	if err != nil {
		return 0, 0, 0, err
	}
	defer r.Close()
	members := make([]*room.Member, n)
	for i := 0; i < n; i++ {
		m, _, _, err := r.Join(context.Background(), fmt.Sprintf("m%02d", i))
		if err != nil {
			return 0, 0, 0, err
		}
		members[i] = m
	}
	// Drain join noise.
	drainAll(members, 20*time.Millisecond)

	// await starts goroutines that wait until every member saw an event
	// matching pred, then reports the elapsed time from start.
	await := func(pred func(room.Event) bool, act func() error) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, n)
		start := time.Now()
		for _, m := range members {
			wg.Add(1)
			go func(m *room.Member) {
				defer wg.Done()
				timeout := time.After(5 * time.Second)
				for {
					select {
					case ev, ok := <-m.Events():
						if !ok {
							errs <- fmt.Errorf("member channel closed")
							return
						}
						if pred(ev) {
							return
						}
					case <-timeout:
						errs <- fmt.Errorf("event never arrived")
						return
					}
				}
			}(m)
		}
		if err := act(); err != nil {
			return 0, err
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return 0, err
		default:
		}
		return elapsed, nil
	}

	// One choice: everyone must receive their updated presentation.
	const rounds = 10
	var choiceTotal time.Duration
	values := []string{"segmented", "full", "lowres"}
	for i := 0; i < rounds; i++ {
		val := values[i%len(values)]
		d, err := await(
			func(ev room.Event) bool {
				return ev.Kind == room.EvPresentation && ev.Outcome["ct"] == val
			},
			func() error { return r.Choice(context.Background(), "m00", "ct", val) },
		)
		if err != nil {
			return 0, 0, 0, err
		}
		choiceTotal += d
	}
	choiceLat = choiceTotal / rounds

	var chatTotal time.Duration
	for i := 0; i < rounds; i++ {
		text := fmt.Sprintf("msg-%d", i)
		d, err := await(
			func(ev room.Event) bool { return ev.Kind == room.EvChat && ev.Text == text },
			func() error { return r.Chat("m00", text) },
		)
		if err != nil {
			return 0, 0, 0, err
		}
		chatTotal += d
	}
	chatLat = chatTotal / rounds

	// Throughput: fire a burst of chats while all members drain. Member
	// queues shed their oldest entries under overload (by design), so the
	// consumers run until they see the final marker message — which, being
	// newest, survives shedding — and report how many events were actually
	// delivered.
	const burst = 500
	var wg sync.WaitGroup
	var delivered int64
	var deliveredMu sync.Mutex
	for _, m := range members {
		wg.Add(1)
		go func(m *room.Member) {
			defer wg.Done()
			seen := int64(0)
			timeout := time.After(10 * time.Second)
			for {
				select {
				case ev, ok := <-m.Events():
					if !ok {
						return
					}
					if ev.Kind == room.EvChat {
						seen++
						if ev.Text == "burst-final" {
							deliveredMu.Lock()
							delivered += seen
							deliveredMu.Unlock()
							return
						}
					}
				case <-timeout:
					deliveredMu.Lock()
					delivered += seen
					deliveredMu.Unlock()
					return
				}
			}
		}(m)
	}
	start := time.Now()
	for i := 0; i < burst; i++ {
		text := "burst"
		if i == burst-1 {
			text = "burst-final"
		}
		if err := r.Chat("m00", text); err != nil {
			return 0, 0, 0, err
		}
	}
	wg.Wait()
	eventsPerSec = float64(delivered) / time.Since(start).Seconds()
	return choiceLat, chatLat, eventsPerSec, nil
}

// drainAll empties every member queue for the given settle window.
func drainAll(members []*room.Member, settle time.Duration) {
	for _, m := range members {
		for {
			select {
			case <-m.Events():
			case <-time.After(settle):
				goto next
			}
		}
	next:
	}
}
