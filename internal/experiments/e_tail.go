package experiments

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/obs"
	"mmconf/internal/proto"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// E11TailLatency measures the tail of the interactive request path — the
// latency distribution, not just the mean, of concurrent presentation
// choices flowing client → server → room fan-out over real TCP. Client
// round-trip times come from a shared log-bucketed histogram fed by
// ReplayTimed; server-side handler times come back over the wire through
// the sys.stats RPC, so the experiment also exercises the observability
// surface it reports on.
func E11TailLatency(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Tail latency under concurrent conferencing (client RTT vs server handle)",
		Columns: []string{"series", "requests", "mean", "p50", "p90", "p99", "max"},
	}
	dir, err := os.MkdirTemp(workdir, "e11-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return nil, err
	}
	if _, err := workload.Populate(m, "p1", 1); err != nil {
		return nil, err
	}
	srv := server.New(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	const viewers = 4
	const choicesPerViewer = 60
	names := make([]string, viewers)
	for i := range names {
		names[i] = fmt.Sprintf("viewer-%d", i)
	}

	clients := make([]*client.Client, viewers)
	sessions := make([]*client.Session, viewers)
	for i, name := range names {
		c, err := client.Dial(l.Addr().String(), name)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		s, _, err := c.Join("e11-room", "p1", 0)
		if err != nil {
			return nil, err
		}
		clients[i] = c
		sessions[i] = s
	}

	doc, err := clients[0].GetDocument("p1")
	if err != nil {
		return nil, err
	}
	script := workload.Session(doc, names, viewers*choicesPerViewer, 11)

	// All viewers replay their share of the script concurrently into one
	// shared RTT histogram — contention on the room is the point.
	rtt := obs.NewHistogram()
	var wg sync.WaitGroup
	errs := make([]error, viewers)
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = workload.ReplayTimed(context.Background(), sessions[i], script, rtt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	hs := rtt.Snapshot()
	t.Rows = append(t.Rows, []string{
		"client RTT " + proto.MChoice,
		fmt.Sprint(hs.Count), fmtDur(hs.Mean()),
		fmtDur(hs.Quantile(0.50)), fmtDur(hs.Quantile(0.90)),
		fmtDur(hs.Quantile(0.99)), fmtDur(hs.Max),
	})

	// Server-side summaries fetched over the wire: the same numbers the
	// -debug-addr metrics endpoint serves.
	stats, err := clients[0].Stats()
	if err != nil {
		return nil, err
	}
	for _, method := range []string{proto.MChoice, proto.MJoinRoom} {
		ms, ok := stats.Methods[method]
		if !ok {
			return nil, fmt.Errorf("experiments: sys.stats missing %s", method)
		}
		t.Rows = append(t.Rows, []string{
			"server handle " + method,
			fmt.Sprint(ms.Requests), fmtDur(ms.Mean),
			fmtDur(ms.P50), fmtDur(ms.P90),
			fmtDur(ms.P99), fmtDur(ms.Max),
		})
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d viewers replaying %d choices each over loopback TCP into one room; client percentiles from a shared log-bucketed histogram (~6%% bucket resolution), server rows via the sys.stats RPC", viewers, choicesPerViewer),
	)
	return t, nil
}
