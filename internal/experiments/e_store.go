package experiments

import (
	"fmt"
	"os"
	"time"

	"mmconf/internal/mediadb"
	"mmconf/internal/store"
)

// E4Store measures the database server (Fig. 6/7): multimedia object
// insert/fetch throughput across payload sizes and WAL durability modes,
// plus crash-recovery time — the properties an Oracle deployment would
// give the paper's system and our embedded store must match in shape.
func E4Store(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Object store throughput and durability (Fig. 6, 7)",
		Columns: []string{"payload", "sync-mode", "insert/s", "fetch/s", "wal-fsyncs"},
	}
	modes := []struct {
		name string
		opts store.Options
	}{
		{"always", store.Options{Sync: store.SyncAlways}},
		{"group-64", store.Options{Sync: store.SyncGroup, GroupSize: 64}},
		{"never", store.Options{Sync: store.SyncNever}},
	}
	const ops = 200
	for _, size := range []int{4 << 10, 64 << 10, 512 << 10} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		for _, mode := range modes {
			dir, err := os.MkdirTemp(workdir, "e4-*")
			if err != nil {
				return nil, err
			}
			db, err := store.Open(dir, mode.opts)
			if err != nil {
				return nil, err
			}
			m, err := mediadb.Open(db)
			if err != nil {
				db.Close()
				return nil, err
			}
			ids := make([]uint64, ops)
			start := time.Now()
			for i := 0; i < ops; i++ {
				id, err := m.PutImage(int64(i), "", 1.0, payload)
				if err != nil {
					db.Close()
					return nil, err
				}
				ids[i] = id
			}
			insertDur := time.Since(start)
			start = time.Now()
			for _, id := range ids {
				if _, err := m.GetImage(id); err != nil {
					db.Close()
					return nil, err
				}
			}
			fetchDur := time.Since(start)
			_, syncs := db.WALStats()
			db.Close()
			os.RemoveAll(dir)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dKiB", size>>10),
				mode.name,
				fmt.Sprintf("%.0f", float64(ops)/insertDur.Seconds()),
				fmt.Sprintf("%.0f", float64(ops)/fetchDur.Seconds()),
				fmt.Sprint(syncs),
			})
		}
	}
	// Recovery: replay cost after a crash mid-session.
	dir, err := os.MkdirTemp(workdir, "e4rec-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		return nil, err
	}
	m, err := mediadb.Open(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	const recOps = 2000
	small := make([]byte, 1024)
	for i := 0; i < recOps; i++ {
		if _, err := m.PutImage(int64(i), "", 1.0, small); err != nil {
			db.Close()
			return nil, err
		}
	}
	db.Close() // clean close; the WAL still holds every operation
	start := time.Now()
	db2, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		return nil, err
	}
	replay := time.Since(start)
	if err := db2.Checkpoint(); err != nil {
		db2.Close()
		return nil, err
	}
	db2.Close()
	start = time.Now()
	db3, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		return nil, err
	}
	snapLoad := time.Since(start)
	db3.Close()
	t.Notes = append(t.Notes,
		fmt.Sprintf("recovery of %d ops from WAL: %s; from checkpoint snapshot: %s",
			recOps, fmtDur(replay), fmtDur(snapLoad)),
		"ablation: group commit amortizes fsyncs (wal-fsyncs column) at equal durability horizon")
	return t, nil
}
