// Package experiments regenerates every figure of the paper's system
// description as a measurable experiment (the paper, a prototype
// description, publishes screenshots; we publish the numbers behind the
// behaviour each screenshot demonstrates). DESIGN.md §4 maps experiment
// ids E1–E9 to paper figures; cmd/mmbench prints every table, and
// bench_test.go exposes testing.B counterparts. EXPERIMENTS.md records
// representative output.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/workload"
)

// Table is one experiment's result: a title, column headers, and rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timeIt runs fn n times and returns the mean duration.
func timeIt(n int, fn func()) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

// fmtDur renders a duration compactly with µs precision.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// E2OptimalOutcome reproduces Fig. 2: it rebuilds the paper's example
// CP-network, verifies its unique optimum and the conditional flips, and
// scales the optimal-sweep time against network size, with a brute-force
// enumeration baseline where the configuration space is small enough.
func E2OptimalOutcome() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "CP-net optimal configuration (Fig. 2)",
		Columns: []string{"variables", "outcomes", "sweep", "brute-force", "speedup"},
	}
	// The exact Fig. 2 network first.
	fig2, err := Fig2Network()
	if err != nil {
		return nil, err
	}
	opt, err := fig2.OptimalOutcome()
	if err != nil {
		return nil, err
	}
	want := cpnet.Outcome{"c1": "c11", "c2": "c22", "c3": "c23", "c4": "c24", "c5": "c25"}
	if opt.String() != want.String() {
		return nil, fmt.Errorf("experiments: Fig. 2 optimum = %v, want %v", opt, want)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Fig. 2 network verified: optimum is %v", opt))

	for _, n := range []int{5, 10, 20, 50, 100, 200} {
		doc, err := workload.WideRecord(fmt.Sprintf("w%d", n), n, int64(n))
		if err != nil {
			return nil, err
		}
		net := doc.Prefs
		sweep := timeIt(200, func() {
			if _, err := net.OptimalOutcome(); err != nil {
				panic(err)
			}
		})
		bruteCell, speedCell := "-", "-"
		if n <= 10 {
			brute := timeIt(3, func() {
				if _, err := bruteForceOptimum(net); err != nil {
					panic(err)
				}
			})
			bruteCell = fmtDur(brute)
			speedCell = fmt.Sprintf("%.0fx", float64(brute)/float64(sweep))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(net.Len()),
			fmt.Sprint(net.OutcomeCount()),
			fmtDur(sweep),
			bruteCell,
			speedCell,
		})
	}
	return t, nil
}

// Fig2Network builds the exact network of Fig. 2 of the paper.
func Fig2Network() (*cpnet.Network, error) {
	n := cpnet.New()
	for _, v := range []string{"c1", "c2", "c3", "c4", "c5"} {
		suffix := v[1:]
		if err := n.AddVariable(v, []string{"c1" + suffix, "c2" + suffix}); err != nil {
			return nil, err
		}
	}
	steps := []error{
		n.SetParents("c3", []string{"c1", "c2"}),
		n.SetParents("c4", []string{"c3"}),
		n.SetParents("c5", []string{"c3"}),
		n.SetUnconditional("c1", []string{"c11", "c21"}),
		n.SetUnconditional("c2", []string{"c22", "c12"}),
		n.SetPreference("c3", cpnet.Outcome{"c1": "c11", "c2": "c12"}, []string{"c13", "c23"}),
		n.SetPreference("c3", cpnet.Outcome{"c1": "c21", "c2": "c22"}, []string{"c13", "c23"}),
		n.SetPreference("c3", cpnet.Outcome{"c1": "c11", "c2": "c22"}, []string{"c23", "c13"}),
		n.SetPreference("c3", cpnet.Outcome{"c1": "c21", "c2": "c12"}, []string{"c23", "c13"}),
		n.SetPreference("c4", cpnet.Outcome{"c3": "c13"}, []string{"c14", "c24"}),
		n.SetPreference("c4", cpnet.Outcome{"c3": "c23"}, []string{"c24", "c14"}),
		n.SetPreference("c5", cpnet.Outcome{"c3": "c13"}, []string{"c15", "c25"}),
		n.SetPreference("c5", cpnet.Outcome{"c3": "c23"}, []string{"c25", "c15"}),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// bruteForceOptimum finds the outcome no other outcome dominates by
// enumerating the configuration space and counting improving flips — the
// E2/E3 baseline. It relies on the sweep only for verification in tests.
func bruteForceOptimum(n *cpnet.Network) (cpnet.Outcome, error) {
	var best cpnet.Outcome
	var bestErr error
	found := false
	n.ForEachOutcome(func(o cpnet.Outcome) bool {
		ok, err := hasNoImprovingFlip(n, o)
		if err != nil {
			bestErr = err
			return false
		}
		if ok {
			best = o.Clone()
			found = true
			return false // acyclic CP-nets have a unique optimum
		}
		return true
	})
	if bestErr != nil {
		return nil, bestErr
	}
	if !found {
		return nil, fmt.Errorf("experiments: no undominated outcome found")
	}
	return best, nil
}

// hasNoImprovingFlip reports local optimality of o.
func hasNoImprovingFlip(n *cpnet.Network, o cpnet.Outcome) (bool, error) {
	// An outcome is the optimum iff pinning every variable except one and
	// completing never improves that variable's value.
	for _, v := range n.Variables() {
		ev := o.Clone()
		delete(ev, v.Name)
		comp, err := n.OptimalCompletion(ev)
		if err != nil {
			return false, err
		}
		if comp[v.Name] != o[v.Name] {
			return false, nil
		}
	}
	return true, nil
}

// E3Reconfig reproduces the Fig. 5 behaviour quantitatively: the latency
// of reconfigPresentation after a viewer choice, as a function of
// document width, against brute-force enumeration.
func E3Reconfig() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Dynamic reconfiguration latency (Fig. 5 / use case 4b)",
		Columns: []string{"components", "choices", "reconfig", "brute-force", "speedup"},
	}
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{5, 10, 20, 50, 100} {
		doc, err := workload.WideRecord(fmt.Sprintf("e3-%d", n), n, int64(n))
		if err != nil {
			return nil, err
		}
		// Pin a random third of the components.
		choices := cpnet.Outcome{}
		for _, c := range doc.Components() {
			if c.Composite() || rng.Intn(3) != 0 {
				continue
			}
			dom := c.Domain()
			choices[c.Name] = dom[rng.Intn(len(dom))]
		}
		sweep := timeIt(100, func() {
			if _, err := doc.ReconfigPresentation(choices); err != nil {
				panic(err)
			}
		})
		bruteCell, speedCell := "-", "-"
		if n <= 10 {
			brute := timeIt(3, func() {
				if _, err := bruteForceCompletion(doc.Prefs, choices); err != nil {
					panic(err)
				}
			})
			bruteCell = fmtDur(brute)
			speedCell = fmt.Sprintf("%.0fx", float64(brute)/float64(sweep))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(choices)), fmtDur(sweep), bruteCell, speedCell,
		})
	}
	t.Notes = append(t.Notes,
		"reconfig = topological sweep (OptimalCompletion); brute-force enumerates the configuration space")
	return t, nil
}

// bruteForceCompletion enumerates completions of the evidence and returns
// the locally optimal one.
func bruteForceCompletion(n *cpnet.Network, ev cpnet.Outcome) (cpnet.Outcome, error) {
	var best cpnet.Outcome
	var outerErr error
	n.ForEachOutcome(func(o cpnet.Outcome) bool {
		for k, v := range ev {
			if o[k] != v {
				return true
			}
		}
		ok := true
		for _, vr := range n.Variables() {
			if _, pinned := ev[vr.Name]; pinned {
				continue
			}
			e2 := o.Clone()
			delete(e2, vr.Name)
			comp, err := n.OptimalCompletion(e2)
			if err != nil {
				outerErr = err
				return false
			}
			if comp[vr.Name] != o[vr.Name] {
				ok = false
				break
			}
		}
		if ok {
			best = o.Clone()
			return false
		}
		return true
	})
	if outerErr != nil {
		return nil, outerErr
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no completion found")
	}
	return best, nil
}

// E9Update measures the online CP-net update operations of §4.2: adding a
// component, deriving an operation variable, removing a component, and
// building per-viewer overlays, across network sizes.
func E9Update() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Online document update cost (§4.2)",
		Columns: []string{"components", "add-component", "add-operation", "remove-component", "overlay-op", "overlay-solve"},
	}
	for _, n := range []int{10, 50, 100, 200} {
		// Pre-build fresh documents so construction stays out of the
		// timed sections (each mutating op consumes one document).
		const reps = 30
		fresh := func() []*document.Document {
			docs := make([]*document.Document, reps)
			for i := range docs {
				docs[i] = mustWide(n)
			}
			return docs
		}
		docs := fresh()
		i := 0
		addComp := timeIt(reps, func() {
			doc := docs[i]
			i++
			if err := doc.AddComponent("record", &document.Component{
				Name: "extra",
				Presentations: []document.Presentation{
					{Name: "full", Kind: document.KindImage},
					{Name: "hidden", Kind: document.KindHidden},
				},
			}, []string{"img000"}, []string{"full", "hidden"}); err != nil {
				panic(err)
			}
		})
		docs, i = fresh(), 0
		addOp := timeIt(reps, func() {
			doc := docs[i]
			i++
			if _, err := doc.ApplyOperation("img000", "zoom", "full"); err != nil {
				panic(err)
			}
		})
		docs, i = fresh(), 0
		remove := timeIt(reps, func() {
			doc := docs[i]
			i++
			if err := doc.RemoveComponent(fmt.Sprintf("img%03d", n-1)); err != nil {
				panic(err)
			}
		})
		// Overlay operations measured on one persistent document.
		doc := mustWide(n)
		ovOp := timeIt(50, func() {
			ov := doc.NewOverlay()
			if _, err := doc.ApplyOperationPrivate(ov, "img000", "zoom", "full"); err != nil {
				panic(err)
			}
		})
		ov := doc.NewOverlay()
		if _, err := doc.ApplyOperationPrivate(ov, "img000", "zoom", "full"); err != nil {
			return nil, err
		}
		ovSolve := timeIt(100, func() {
			if _, err := doc.ReconfigPresentationFor(ov, nil); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmtDur(addComp), fmtDur(addOp), fmtDur(remove), fmtDur(ovOp), fmtDur(ovSolve),
		})
	}
	t.Notes = append(t.Notes,
		"add/remove/operation include rebuilding derived CPT rows; overlay-solve is a per-viewer completion")
	return t, nil
}

// mustWide builds a WideRecord or panics (timing-loop helper; the
// construction cost is excluded from measured sections where it matters).
func mustWide(n int) *document.Document {
	doc, err := workload.WideRecord(fmt.Sprintf("w%d", n), n, int64(n))
	if err != nil {
		panic(err)
	}
	return doc
}
