package experiments

import (
	"fmt"
	"path/filepath"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/cluster"
	"mmconf/internal/obs"
)

// E16Cluster measures what the routing tier's transparent forwarding
// costs: the same chat round-trip driven against the room's owning node
// directly, then through a non-owner relay (Forward mode), on a 2-node
// in-process cluster. Client links carry injected netsim latency (the
// WAN the client crosses either way); node links run at in-process
// speed (the machine-room interconnect). The claim worth guarding: a
// relayed request costs at most 2× the direct-serve P50 — the price of
// not moving the client's connection.
func E16Cluster(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Cross-node forward overhead vs direct serve (routing tier)",
		Columns: []string{"path", "chats", "mean", "P50", "P90", "P99"},
	}
	h, err := cluster.NewHarness(cluster.HarnessOptions{
		Nodes:   2,
		Dir:     filepath.Join(workdir, "e16"),
		Seed:    16,
		Forward: true,
	})
	if err != nil {
		return nil, err
	}
	defer h.Close()
	if err := h.WaitConverged(5 * time.Second); err != nil {
		return nil, err
	}
	// Every client read/write pays a half-millisecond each way — the
	// links whose cost forwarding cannot avoid.
	h.ClientFaults.SetLatency(500 * time.Microsecond)

	owner, relay := h.Nodes[0], h.Nodes[1]
	roomName := h.RoomOwnedBy(owner.ID, "case")

	const warmup, measured = 20, 200
	measure := func(addr, user string) (obs.HistogramSnapshot, error) {
		c, err := client.NewOverResolver(h.ClientFaults.DialContext, []string{addr}, user, client.Options{
			ConnectTimeout: 5 * time.Second,
			CallTimeout:    10 * time.Second,
		})
		if err != nil {
			return obs.HistogramSnapshot{}, err
		}
		defer c.Close()
		s, _, err := c.Join(roomName, "p1", 0)
		if err != nil {
			return obs.HistogramSnapshot{}, err
		}
		defer s.Leave()
		hist := obs.NewHistogram()
		for i := 0; i < warmup+measured; i++ {
			start := time.Now()
			if err := s.Chat(fmt.Sprintf("%s-%d", user, i)); err != nil {
				return obs.HistogramSnapshot{}, err
			}
			if i >= warmup {
				hist.Observe(time.Since(start))
			}
		}
		return hist.Snapshot(), nil
	}

	direct, err := measure(owner.Addr, "direct")
	if err != nil {
		return nil, fmt.Errorf("direct serve: %w", err)
	}
	forwarded, err := measure(relay.Addr, "forwarded")
	if err != nil {
		return nil, fmt.Errorf("forwarded serve: %w", err)
	}
	for _, r := range []struct {
		name string
		s    obs.HistogramSnapshot
	}{{"direct (owner)", direct}, {"forwarded (relay)", forwarded}} {
		t.Rows = append(t.Rows, []string{
			r.name, fmt.Sprint(r.s.Count), fmtDur(r.s.Mean()),
			fmtDur(r.s.Quantile(0.50)), fmtDur(r.s.Quantile(0.90)), fmtDur(r.s.Quantile(0.99)),
		})
	}
	ratio := float64(forwarded.Quantile(0.50)) / float64(direct.Quantile(0.50))
	t.Notes = append(t.Notes,
		fmt.Sprintf("forward/direct P50 ratio = %.2fx (budget <= 2x); relay forwarded %d requests",
			ratio, relay.Node.Metrics().Forwards),
		"client links carry 0.5ms injected latency each way; node links are in-process")
	return t, nil
}
