package experiments

import (
	"fmt"
	"math/rand"
	"os"

	"mmconf/internal/blob"
	"mmconf/internal/store"
)

// e13Payload builds a pseudo-random payload from the seed: payloads with
// the same seed are identical, payloads with different seeds share no
// chunks (structured patterns would silently chunk-dedup and skew the
// dedup ratios being measured).
func e13Payload(seed int, size int) []byte {
	p := make([]byte, size)
	rand.New(rand.NewSource(int64(seed))).Read(p)
	return p
}

// E13Blob measures the content-addressed blob store: whole-object dedup
// (N identical + M distinct payloads occupy ≈ unique bytes), footprint
// stability under delete-heavy churn (freed blocks are reused, not
// leaked), and online compaction of sparse segments.
func E13Blob(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Content-addressed blob store: dedup, hole reuse, compaction",
		Columns: []string{"scenario", "logical", "unique", "on-disk", "ratio", "detail"},
	}
	row := func(scenario string, logical, unique, onDisk int64, detail string) {
		t.Rows = append(t.Rows, []string{
			scenario,
			fmt.Sprintf("%dKiB", logical>>10),
			fmt.Sprintf("%dKiB", unique>>10),
			fmt.Sprintf("%dKiB", onDisk>>10),
			fmt.Sprintf("%.2f", float64(onDisk)/float64(unique)),
			detail,
		})
	}
	open := func(name string) (*store.DB, error) {
		dir, err := os.MkdirTemp(workdir, "e13-"+name+"-*")
		if err != nil {
			return nil, err
		}
		// Small segments so the compaction scenario works with a few MiB
		// of data; compaction is driven explicitly, not in background.
		return store.Open(dir, store.Options{
			Sync: store.SyncNever,
			Blob: blob.Options{SegmentSize: 1 << 20, CompactRatio: -1},
		})
	}

	// Scenario 1 — dedup: N references to one payload plus M distinct
	// payloads. On-disk bytes must track unique bytes, not logical bytes.
	const n, m, size = 50, 20, 256 << 10
	db, err := open("dedup")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := db.PutBlob(e13Payload(0, size)); err != nil {
			db.Close()
			return nil, err
		}
	}
	for j := 1; j <= m; j++ {
		if _, err := db.PutBlob(e13Payload(j, size)); err != nil {
			db.Close()
			return nil, err
		}
	}
	st, _ := db.BlobStats()
	row(fmt.Sprintf("dedup: %d identical + %d distinct", n, m),
		int64(n+m)*size, int64(m+1)*size, st.TotalBytes,
		fmt.Sprintf("%d dedup hits", st.DedupHits))
	db.Close()

	// Scenario 2 — churn: put-then-release cycles of distinct payloads.
	// Every cycle's delete feeds the free lists, so the footprint must
	// plateau at roughly one working set instead of growing linearly.
	const cycles, churnSize = 400, 64 << 10
	db, err = open("churn")
	if err != nil {
		return nil, err
	}
	var peak int64
	for i := 0; i < cycles; i++ {
		h, err := db.PutBlob(e13Payload(1000+i, churnSize))
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := db.ReleaseBlob(h); err != nil {
			db.Close()
			return nil, err
		}
		if st, _ := db.BlobStats(); st.TotalBytes > peak {
			peak = st.TotalBytes
		}
	}
	st, _ = db.BlobStats()
	row(fmt.Sprintf("churn: %d put+release cycles", cycles),
		int64(cycles)*churnSize, churnSize, peak,
		fmt.Sprintf("%d hole reuses; peak on-disk shown", st.HoleReuses))
	db.Close()

	// Scenario 3 — compaction: fill segments, delete most objects, then
	// compact. The survivors migrate into dense segments and the sparse
	// ones are removed from disk. Rows reference the handles because
	// CompactBlobs recounts references from the tables — a handle with no
	// row is an orphan and would be reclaimed too.
	const objects, keepEvery, objSize = 40, 10, 128 << 10
	db, err = open("compact")
	if err != nil {
		return nil, err
	}
	tbl, err := db.CreateTable("e13", []store.Column{{Name: "d", Type: store.TBlob}})
	if err != nil {
		db.Close()
		return nil, err
	}
	var handles []blob.Handle
	var rowIDs []uint64
	for i := 0; i < objects; i++ {
		h, err := db.PutBlob(e13Payload(2000+i, objSize))
		if err != nil {
			db.Close()
			return nil, err
		}
		id, err := tbl.Insert(store.Row{h})
		if err != nil {
			db.Close()
			return nil, err
		}
		handles = append(handles, h)
		rowIDs = append(rowIDs, id)
	}
	for i, h := range handles {
		if i%keepEvery == 0 {
			continue
		}
		if err := tbl.Delete(rowIDs[i]); err != nil {
			db.Close()
			return nil, err
		}
		if err := db.ReleaseBlob(h); err != nil {
			db.Close()
			return nil, err
		}
	}
	before, _ := db.BlobStats()
	reclaimed, err := db.CompactBlobs()
	if err != nil {
		db.Close()
		return nil, err
	}
	after, _ := db.BlobStats()
	live := int64(objects/keepEvery) * objSize
	row(fmt.Sprintf("compaction: %d objects, %d survive", objects, objects/keepEvery),
		before.TotalBytes, live, after.TotalBytes,
		fmt.Sprintf("%dKiB reclaimed, %d→%d segments", reclaimed>>10, before.Segments, after.Segments))
	db.Close()

	t.Notes = append(t.Notes,
		"ratio = on-disk bytes / unique live bytes (1.0 is ideal; block rounding and manifests add overhead)",
		"churn peak stays near one working set because freed blocks are reused for subsequent puts")
	return t, nil
}
