package experiments

import (
	"fmt"
	"time"

	"mmconf/internal/document"
	"mmconf/internal/netsim"
	"mmconf/internal/prefetch"
	"mmconf/internal/workload"
)

// E8Prefetch reproduces the §4.4 performance machinery: response time and
// buffer hit rate over a scripted consultation, across buffering policies
// (none / LRU / preference-based prefetch) and client buffer sizes.
func E8Prefetch() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Preference-based pre-fetching (§4.4, TR [12])",
		Columns: []string{"buffer", "policy", "hit-rate", "mean-response", "demand-KB", "prefetch-KB"},
	}
	doc, err := prefetchDoc()
	if err != nil {
		return nil, err
	}
	script := workload.Session(doc, []string{"alice", "bob", "carol"}, 150, 11)
	link, err := netsim.NewLink(256<<10, 30*time.Millisecond)
	if err != nil {
		return nil, err
	}
	const warmBudget = 512 << 10
	for _, buffer := range []int64{256 << 10, 512 << 10, 1 << 20, 4 << 20} {
		for _, pol := range []prefetch.Policy{prefetch.PolicyNone, prefetch.PolicyLRU, prefetch.PolicyPreference} {
			link.Reset()
			r, err := prefetch.Simulate(doc, script, pol, buffer, warmBudget, link)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dKiB", buffer>>10),
				pol.String(),
				fmt.Sprintf("%.3f", r.HitRate),
				fmtDur(r.MeanResponse),
				fmt.Sprint(r.DemandBytes >> 10),
				fmt.Sprint(r.PrefetchedBytes >> 10),
			})
		}
	}
	t.Notes = append(t.Notes,
		"link: 256 KiB/s, 30 ms; 150 scripted choices by 3 viewers over the medical record",
		"expected shape: preference ≥ lru ≥ none in hit rate; response time ordered the other way")
	return t, nil
}

// prefetchDoc builds the medical record with object ids and sizes set.
func prefetchDoc() (*document.Document, error) {
	doc, err := workload.MedicalRecord("e8", 1)
	if err != nil {
		return nil, err
	}
	ids := map[string]map[string]uint64{
		"ct":    {"full": 11, "segmented": 15, "lowres": 13},
		"xray":  {"full": 12, "icon": 16},
		"voice": {"audio": 14},
	}
	for comp, vals := range ids {
		c, err := doc.Component(comp)
		if err != nil {
			return nil, err
		}
		for i := range c.Presentations {
			if id, ok := vals[c.Presentations[i].Name]; ok {
				c.Presentations[i].ObjectID = id
			}
		}
	}
	return doc, nil
}
