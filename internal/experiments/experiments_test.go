package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mmconf/internal/cpnet"
)

func TestFig2NetworkMatchesPaper(t *testing.T) {
	n, err := Fig2Network()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := n.OptimalOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if opt.String() != "c1=c11 c2=c22 c3=c23 c4=c24 c5=c25" {
		t.Errorf("optimum = %v", opt)
	}
	// Brute force agrees with the sweep.
	brute, err := bruteForceOptimum(n)
	if err != nil {
		t.Fatal(err)
	}
	if brute.String() != opt.String() {
		t.Errorf("brute force %v != sweep %v", brute, opt)
	}
	// Constrained case: pinning c2=c12 flips c3.
	comp, _ := n.OptimalCompletion(cpnet.Outcome{"c2": "c12"})
	bcomp, err := bruteForceCompletion(n, cpnet.Outcome{"c2": "c12"})
	if err != nil {
		t.Fatal(err)
	}
	if comp.String() != bcomp.String() {
		t.Errorf("completion %v != brute %v", comp, bcomp)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "EX", Title: "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	s := tb.String()
	if !strings.Contains(s, "EX: demo") || !strings.Contains(s, "note: a note") {
		t.Errorf("rendering:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("lines = %d", len(lines))
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2500 * time.Microsecond: "2.50ms",
		1500 * time.Millisecond: "1.500s",
	}
	for in, want := range cases {
		if got := fmtDur(in); got != want {
			t.Errorf("fmtDur(%v) = %s, want %s", in, got, want)
		}
	}
}

// The experiment smoke tests run each generator once and sanity-check the
// output shape. They are the long-running end of the suite; -short skips
// the heavy ones.

func TestE2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E2OptimalOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
	// Speedup must be present and large for n=10.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "11" && row[4] != "-" { // WideRecord(10) has 11 vars
			found = true
		}
	}
	if !found {
		t.Errorf("no brute-force comparison row: %v", tb.Rows)
	}
}

func TestE3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E3Reconfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestE4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E4Store(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestE5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A reduced run: just ensure one room size works through the harness.
	choice, chat, tput, err := propagationRun(4)
	if err != nil {
		t.Fatal(err)
	}
	if choice <= 0 || chat <= 0 || tput <= 0 {
		t.Errorf("degenerate measurements: %v %v %v", choice, chat, tput)
	}
}

func TestE6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E6MultiRes()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestE8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E8Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestE9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E9Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestE1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E1Retrieve(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("rows = %d:\n%s", len(tb.Rows), tb)
	}
}

func TestE7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E7Voice()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 6 {
		t.Errorf("rows = %d:\n%s", len(tb.Rows), tb)
	}
}

func TestE12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Shrunken run: tiny windows and a light control document keep this
	// in test-suite territory. The smoke test checks shape and that the
	// machinery holds together under -race, not the acceptance numbers —
	// those need the full windows (go run ./cmd/mmbench -only E12).
	tb, err := e12Overload(t.TempDir(), e12Params{
		MaxInflight:  2,
		QueueDepth:   16,
		QueueTimeout: 50 * time.Millisecond,
		RateHeadroom: 0.25,
		SLO:          500 * time.Millisecond,
		Conns:        4,
		CalibWorkers: 4,
		Calib:        150 * time.Millisecond,
		Warmup:       100 * time.Millisecond,
		Run:          250 * time.Millisecond,
		Probes:       10,
		ProbeEvery:   20 * time.Millisecond,
		CtlDocParts:  50,
		StreamBytes:  192 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb)
	}
	// The protected series must have shed rather than queued without
	// bound: sheds at 3x come from the rate limiter and the bounded
	// queue doing their job.
	shed := tb.Rows[4][3]
	if shed == "0" || shed == "-" {
		t.Errorf("protected 3x shed nothing:\n%s", tb)
	}
}

func TestE14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E14Wire(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// gob and v2 rows for each of the two RPC shapes.
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb)
	}
	for _, row := range tb.Rows {
		if row[0] != "gob" && row[0] != "v2" {
			t.Errorf("unexpected proto %q:\n%s", row[0], tb)
		}
	}
}

// E15's claim worth guarding: on the slowest profile, the adaptive mode
// must beat static-high on time-to-presentable, and on the fastest the
// two modes must coincide (level=high changes nothing).
func TestE15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E15QoS()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb)
	}
	// Rows come in (static-high, adaptive) pairs per profile, slowest
	// first: dialup must improve, lan must be identical.
	if tb.Rows[0][3] == tb.Rows[1][3] {
		t.Errorf("dialup adaptive first-display did not improve: %v vs %v", tb.Rows[0], tb.Rows[1])
	}
	if tb.Rows[4][3] != tb.Rows[5][3] {
		t.Errorf("lan modes diverged: %v vs %v", tb.Rows[4], tb.Rows[5])
	}
}

// E16's claim worth guarding: serving a room through a forwarding
// non-owner node costs at most 2x the direct-serve P50 — the routing
// tier's relay must stay cheap next to the client's own link latency.
func TestE16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := E16Cluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb)
	}
	var ratio float64
	if len(tb.Notes) == 0 {
		t.Fatalf("no notes:\n%s", tb)
	}
	if _, err := fmt.Sscanf(tb.Notes[0], "forward/direct P50 ratio = %fx", &ratio); err != nil {
		t.Fatalf("cannot parse ratio from note %q: %v", tb.Notes[0], err)
	}
	if ratio <= 0 || ratio > 2.0 {
		t.Errorf("forward/direct P50 ratio = %.2fx, want (0, 2.0]:\n%s", ratio, tb)
	}
}
