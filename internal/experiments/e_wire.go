package experiments

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"mmconf/internal/mediadb"
	"mmconf/internal/proto"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// E14Wire measures what wire protocol v2 buys over the legacy gob
// stream on the two RPC shapes that dominate a conference: the small
// control-plane call (ListDocuments — the E12 admission path) and the
// bulk media fetch (GetCmp, whose payload rides the zero-copy span
// path from the blob store to writev). For each protocol it reports
// mean latency, server->client wire bytes per op (from the writer's
// byte counter), and client-side heap allocations per op. The
// bytes/alloc collapse from the gob rows to the v2 rows is the PR 7
// tentpole; BenchmarkE14WireRPC gates it in BENCH_7.json.
func E14Wire(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "wire protocol v2 vs gob: codec cost on the RPC hot path",
		Columns: []string{"proto", "rpc", "mean", "wire-B/op", "client-allocs/op"},
	}

	db, err := store.Open(workdir+"/e14", store.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return nil, err
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		return nil, err
	}
	srv := server.New(m)
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)

	const (
		warmup = 50
		ops    = 400
	)
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		ver  uint8
	}{
		{"gob", wire.ProtoGob},
		{"v2", wire.ProtoV2},
	} {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		c := wire.NewClientVersion(conn, mode.ver)
		calls := []struct {
			name string
			do   func() error
		}{
			{"ListDocuments", func() error {
				var resp proto.ListDocumentsResp
				return c.CallCtx(ctx, proto.MListDocuments, &proto.ListDocumentsReq{}, &resp)
			}},
			{"GetCmp", func() error {
				var resp proto.GetCmpResp
				return c.CallCtx(ctx, proto.MGetCmp, &proto.GetCmpReq{ID: rec.CmpID, MaxLayers: 2}, &resp)
			}},
		}
		for _, call := range calls {
			for i := 0; i < warmup; i++ {
				if err := call.do(); err != nil {
					c.Close()
					return nil, fmt.Errorf("E14 %s/%s warmup: %w", mode.name, call.name, err)
				}
			}
			bytesBefore := srv.MetricsSnapshot().Counters[wire.CounterWriterBytes]
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			mallocsBefore := ms.Mallocs
			start := time.Now()
			for i := 0; i < ops; i++ {
				if err := call.do(); err != nil {
					c.Close()
					return nil, fmt.Errorf("E14 %s/%s: %w", mode.name, call.name, err)
				}
			}
			mean := time.Since(start) / ops
			runtime.ReadMemStats(&ms)
			// One flush per response on an idle connection, so the byte
			// counter delta is this client's response traffic.
			bytesAfter := srv.MetricsSnapshot().Counters[wire.CounterWriterBytes]
			t.Rows = append(t.Rows, []string{
				mode.name,
				call.name,
				fmtDur(mean),
				fmt.Sprint((bytesAfter - bytesBefore) / ops),
				fmt.Sprint((ms.Mallocs - mallocsBefore) / ops),
			})
		}
		c.Close()
	}
	gets, misses := wire.PoolStats()
	if gets > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"codec scratch pool: %d gets, %d misses (%.1f%% hit rate)",
			gets, misses, 100*float64(gets-misses)/float64(gets)))
	}
	t.Notes = append(t.Notes,
		"wire-B/op counts server->client bytes (responses incl. framing); client-allocs/op is process-wide Mallocs delta / ops",
		"v2 GetCmp payload bytes travel blob->writev unre-encoded (zero-copy spans); gob re-encodes them per response")
	return t, nil
}
