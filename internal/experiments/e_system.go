package experiments

import (
	"fmt"
	"net"
	"os"
	"time"

	"mmconf/internal/client"
	"mmconf/internal/mediadb"
	"mmconf/internal/netsim"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/workload"
)

// E1Retrieve measures the full architecture of Fig. 1/3/4 end to end: a
// client fetching the document catalog, a document with its optimal
// presentation, and each class of multimedia object from the interaction
// server over real TCP, with modeled WAN costs alongside.
func E1Retrieve(workdir string) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "End-to-end document retrieval (Fig. 1, 3, 4)",
		Columns: []string{"operation", "payload", "LAN-latency", "@128KiB/s", "@1MiB/s"},
	}
	dir, err := os.MkdirTemp(workdir, "e1-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return nil, err
	}
	rec, err := workload.Populate(m, "p1", 1)
	if err != nil {
		return nil, err
	}
	srv := server.New(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := client.Dial(l.Addr().String(), "alice")
	if err != nil {
		return nil, err
	}
	defer c.Close()

	slow, _ := netsim.NewLink(128<<10, 40*time.Millisecond)
	fast, _ := netsim.NewLink(1<<20, 10*time.Millisecond)
	row := func(op string, payload int, lan time.Duration) {
		t.Rows = append(t.Rows, []string{
			op, fmt.Sprintf("%dKiB", payload>>10), fmtDur(lan),
			fmtDur(slow.TransferTime(int64(payload))),
			fmtDur(fast.TransferTime(int64(payload))),
		})
	}

	const reps = 20
	lat := timeIt(reps, func() {
		if _, _, err := c.ListDocuments(); err != nil {
			panic(err)
		}
	})
	row("list documents", 64, lat)

	var docBytes int
	lat = timeIt(reps, func() {
		doc, err := c.GetDocument("p1")
		if err != nil {
			panic(err)
		}
		data, _ := doc.MarshalBinary()
		docBytes = len(data)
	})
	row("get document + CP-net", docBytes, lat)

	var imgBytes int
	lat = timeIt(reps, func() {
		img, _, err := c.GetImage(rec.CTID)
		if err != nil {
			panic(err)
		}
		imgBytes = len(img.Encode())
	})
	row("get CT image (flat)", imgBytes, lat)

	var cmpBase int
	lat = timeIt(reps, func() {
		_, n, err := c.GetCmp(rec.CmpID, 1)
		if err != nil {
			panic(err)
		}
		cmpBase = n
	})
	row("get CT base layer", cmpBase, lat)

	var audioBytes int
	lat = timeIt(reps, func() {
		pcm, _, _, err := c.GetAudio(rec.VoiceID)
		if err != nil {
			panic(err)
		}
		audioBytes = len(pcm)
	})
	row("get voice fragment", audioBytes, lat)

	// Join + initial optimal presentation (use case of Fig. 4a).
	joiner, err := client.Dial(l.Addr().String(), "joiner")
	if err != nil {
		return nil, err
	}
	defer joiner.Close()
	start := time.Now()
	s, _, err := joiner.Join("e1-room", "p1", 0)
	if err != nil {
		return nil, err
	}
	joinLat := time.Since(start)
	if s.View().Outcome["ct"] == "" {
		return nil, fmt.Errorf("experiments: join returned no presentation")
	}
	row("join room + default presentation", docBytes, joinLat)

	t.Notes = append(t.Notes,
		"LAN-latency measured over loopback TCP with gob serialization; WAN columns are modeled link costs for the same payloads")
	return t, nil
}
