package experiments

import (
	"fmt"
	"time"

	"mmconf/internal/media/audio"
	"mmconf/internal/media/compress"
	"mmconf/internal/media/image"
	"mmconf/internal/media/voice"
	"mmconf/internal/netsim"
)

// E6MultiRes reproduces Fig. 9 (multi-resolution views): the rate–
// distortion ladder of the multi-layer codec on a CT phantom, and the
// per-client adaptation — which layer prefix two differently connected
// clients should receive under a response-time budget.
func E6MultiRes() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Multi-resolution image transfer (Fig. 9)",
		Columns: []string{"layers", "bytes", "PSNR(dB)", "64kbps-client", "1Mbps-client"},
	}
	img, err := image.Phantom(256, 256, 9)
	if err != nil {
		return nil, err
	}
	stream, err := compress.Encode(img, compress.Options{})
	if err != nil {
		return nil, err
	}
	slow, err := netsim.NewLink(8<<10, 50*time.Millisecond) // 64 kbit/s
	if err != nil {
		return nil, err
	}
	fast, err := netsim.NewLink(128<<10, 20*time.Millisecond) // 1 Mbit/s
	if err != nil {
		return nil, err
	}
	const budget = 2 * time.Second
	bestSlow, bestFast := 0, 0
	for k := 1; k <= len(stream.Layers); k++ {
		dec, err := stream.Decode(k)
		if err != nil {
			return nil, err
		}
		p, err := image.PSNR(img, dec)
		if err != nil {
			return nil, err
		}
		bytes := stream.PrefixBytes(k)
		slowT := slow.TransferTime(int64(bytes))
		fastT := fast.TransferTime(int64(bytes))
		if slowT <= budget {
			bestSlow = k
		}
		if fastT <= budget {
			bestFast = k
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(bytes),
			fmt.Sprintf("%.1f", p),
			fmtDur(slowT),
			fmtDur(fastT),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("under a %s response budget the 64kbps client receives %d layer(s), the 1Mbps client %d — the two partners in Fig. 9 seeing the same CT at different resolutions",
			budget, bestSlow, bestFast),
		fmt.Sprintf("raw 8-bit image: %d bytes", img.W*img.H))

	// Ablation: hybrid layering vs a single fine wavelet-only stream.
	fine, err := compress.Encode(img, compress.Options{BaseStep: 0.005, ResidualSteps: []float64{}})
	if err != nil {
		return nil, err
	}
	fdec, err := fine.Decode(0)
	if err != nil {
		return nil, err
	}
	fp, err := image.PSNR(img, fdec)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ablation: single fine wavelet-only stream = %d bytes at %.1f dB — better final rate-distortion, but no usable preview until fully transferred (first hybrid layer: %d bytes)",
			fine.PrefixBytes(0), fp, stream.PrefixBytes(1)))

	// Residual-basis comparison: the paper offers "a wavelet packet or
	// local cosine compression algorithm" for the residuals.
	pkt, err := compress.Encode(img, compress.Options{Basis: compress.PacketBasis})
	if err != nil {
		return nil, err
	}
	pdec, err := pkt.Decode(0)
	if err != nil {
		return nil, err
	}
	pp, err := image.PSNR(img, pdec)
	if err != nil {
		return nil, err
	}
	full, err := stream.Decode(0)
	if err != nil {
		return nil, err
	}
	cp, err := image.PSNR(img, full)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("residual basis: local cosine = %d bytes at %.1f dB; wavelet packet = %d bytes at %.1f dB (choose per image, as [20] does)",
			stream.PrefixBytes(0), cp, pkt.PrefixBytes(0), pp))
	return t, nil
}

// E7Voice reproduces Fig. 10 (speaker identification interface) with the
// quantitative evaluation the paper never ran: audio segmentation frame
// accuracy, speaker identification over held-out speech, and word
// spotting detection/false-alarm counts at several thresholds.
func E7Voice() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Voice processing accuracy (Fig. 10, §3.2)",
		Columns: []string{"task", "metric", "value"},
	}
	speakers := audio.DefaultSpeakers()
	trainSynth := audio.NewSynthesizer(1000)
	testSynth := audio.NewSynthesizer(2000)

	// --- Segmentation ---
	script := func(s *audio.Synthesizer) ([]float64, []audio.Segment, error) {
		return s.Compose([]audio.ScriptItem{
			{Type: audio.Silence, Dur: 0.8},
			{Type: audio.Speech, Speaker: speakers[0], Words: []string{"patient", "normal", "urgent"}},
			{Type: audio.Music, Dur: 1.2},
			{Type: audio.Speech, Speaker: speakers[1], Words: []string{"tumor", "biopsy"}},
			{Type: audio.Artifact, Dur: 0.6},
			{Type: audio.Speech, Speaker: speakers[2], Words: []string{"negative", "patient"}},
			{Type: audio.Silence, Dur: 0.4},
			{Type: audio.Music, Dur: 0.8},
		})
	}
	var signals [][]float64
	var truths [][]audio.Segment
	for i := 0; i < 2; i++ {
		sig, segs, err := script(trainSynth)
		if err != nil {
			return nil, err
		}
		signals = append(signals, sig)
		truths = append(truths, segs)
	}
	seg, err := voice.TrainSegmenter(signals, truths)
	if err != nil {
		return nil, err
	}
	testSig, testTruth, err := script(testSynth)
	if err != nil {
		return nil, err
	}
	pred, err := seg.Segment(testSig)
	if err != nil {
		return nil, err
	}
	acc := voice.FrameAccuracy(seg.Extractor(), len(testSig), pred, testTruth)
	t.Rows = append(t.Rows, []string{"segmentation", "frame accuracy", fmt.Sprintf("%.3f", acc)})
	t.Rows = append(t.Rows, []string{"segmentation", "segments found", fmt.Sprint(len(pred))})

	// --- Speaker identification ---
	enroll := make(map[string][][]float64)
	for _, sp := range speakers {
		for rep := 0; rep < 2; rep++ {
			w, _, err := trainSynth.Utterance(sp, []string{"patient", "tumor", "normal", "urgent", "biopsy"})
			if err != nil {
				return nil, err
			}
			enroll[sp.Name] = append(enroll[sp.Name], w)
		}
	}
	ss, err := voice.TrainSpeakerSpotter(enroll, 4, 7)
	if err != nil {
		return nil, err
	}
	correct, total := 0, 0
	for trial := 0; trial < 3; trial++ {
		for _, sp := range speakers {
			w, _, err := testSynth.Utterance(sp, []string{"negative", "urgent", "patient"})
			if err != nil {
				return nil, err
			}
			name, _, err := ss.Identify(w)
			if err != nil {
				return nil, err
			}
			total++
			if name == sp.Name {
				correct++
			}
		}
	}
	t.Rows = append(t.Rows, []string{"speaker spotting", "identification accuracy",
		fmt.Sprintf("%.3f (%d/%d, chance 0.25)", float64(correct)/float64(total), correct, total)})

	// --- Word spotting ---
	examples := make(map[string][][]float64)
	for _, kw := range []string{"urgent", "biopsy"} {
		for rep := 0; rep < 3; rep++ {
			for _, sp := range speakers[:3] {
				w, _, err := trainSynth.Utterance(sp, []string{kw})
				if err != nil {
					return nil, err
				}
				examples[kw] = append(examples[kw], w)
			}
		}
	}
	var garbage [][]float64
	for _, words := range [][]string{{"patient", "normal"}, {"negative", "tumor"}} {
		for _, sp := range speakers[:3] {
			w, _, err := trainSynth.Utterance(sp, words)
			if err != nil {
				return nil, err
			}
			garbage = append(garbage, w)
		}
	}
	ws, err := voice.TrainWordSpotter(examples, garbage, 42)
	if err != nil {
		return nil, err
	}
	for _, threshold := range []float64{0, 1.5, 3} {
		detected, falseAlarms, trials := 0, 0, 0
		for trial := 0; trial < 4; trial++ {
			sp := speakers[trial%3]
			// Positive: keyword embedded among fillers.
			w, marks, err := testSynth.Utterance(sp, []string{"patient", "urgent", "normal"})
			if err != nil {
				return nil, err
			}
			hits, err := ws.Spot(w, []string{"urgent"}, threshold)
			if err != nil {
				return nil, err
			}
			trials++
			truth := marks[1]
			for _, h := range hits {
				if h.Start < truth.End && truth.Start < h.End {
					detected++
					break
				}
			}
			// Negative: no keyword present.
			w2, _, err := testSynth.Utterance(sp, []string{"normal", "tumor", "negative"})
			if err != nil {
				return nil, err
			}
			miss, err := ws.Spot(w2, []string{"urgent"}, threshold)
			if err != nil {
				return nil, err
			}
			falseAlarms += len(miss)
		}
		t.Rows = append(t.Rows, []string{
			"word spotting", fmt.Sprintf("threshold %.1f", threshold),
			fmt.Sprintf("detect %d/%d, false alarms %d", detected, trials, falseAlarms),
		})
	}
	// --- Unsupervised browsing (§3.2 opening questions, ref [8]) ---
	// "How many speakers participate in a given conversation?"
	convo, convoTruth, err := testSynth.Compose([]audio.ScriptItem{
		{Type: audio.Speech, Speaker: speakers[0], Words: []string{"patient", "urgent", "normal"}},
		{Type: audio.Silence, Dur: 0.3},
		{Type: audio.Speech, Speaker: speakers[1], Words: []string{"tumor", "biopsy", "negative"}},
		{Type: audio.Silence, Dur: 0.3},
		{Type: audio.Speech, Speaker: speakers[0], Words: []string{"negative", "biopsy"}},
		{Type: audio.Silence, Dur: 0.3},
		{Type: audio.Speech, Speaker: speakers[2], Words: []string{"normal", "patient", "tumor"}},
	})
	if err != nil {
		return nil, err
	}
	count, err := voice.CountSpeakers(convo, convoTruth, 0)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"speaker counting", "unsupervised clusters",
		fmt.Sprintf("%d found (3 true speakers, 4 turns)", count)})
	classes, err := voice.ClassifySpeech(convo, convoTruth)
	if err != nil {
		return nil, err
	}
	correctClass := 0
	wantClasses := []voice.SpeechClass{voice.SpeechMale, voice.SpeechFemale, voice.SpeechMale, voice.SpeechMale}
	for i := range wantClasses {
		if i < len(classes) && classes[i] == wantClasses[i] {
			correctClass++
		}
	}
	t.Rows = append(t.Rows, []string{"speech sub-typing", "male/female/child accuracy",
		fmt.Sprintf("%d/%d turns", correctClass, len(wantClasses))})
	t.Notes = append(t.Notes,
		"all audio is synthetic (see DESIGN.md substitutions); ground truth enables metrics the paper demonstrated only by screenshot")
	return t, nil
}
