package experiments

import (
	"fmt"

	"mmconf/internal/core"
	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/netsim"
	"mmconf/internal/prefetch"
	"mmconf/internal/qos"
	"mmconf/internal/workload"
)

// E15QoS measures what the adaptive QoS loop buys over each netsim
// bandwidth profile: a scripted consultation replayed twice per profile —
// once with the solver pinned optimistic (static-high, the behaviour
// without runtime estimation) and once with the bandwidth tuning
// variable pinned to the level the estimator converges to on that link
// (qos.Bands classification of the profile's effective goodput). The
// adaptive run lets the CP-net degrade resolution before components, so
// on slow links the first display arrives earlier and the prefetch
// budget covers more of the script.
func E15QoS() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Adaptive QoS: bandwidth-tuned degradation vs static-high (§4.4)",
		Columns: []string{"profile", "level", "mode", "first-display", "mean-response", "hit-rate", "demand-KB", "prefetch-KB"},
	}
	bands := qos.DefaultBands()
	for _, p := range netsim.Profiles() {
		doc, err := qosDoc(fmt.Sprintf("e15-%s", p.Name))
		if err != nil {
			return nil, err
		}
		script := workload.Session(doc, []string{"alice", "bob"}, 120, 15)
		link, err := p.Link()
		if err != nil {
			return nil, err
		}
		level := bands.Classify(float64(p.EffectiveBandwidth()), qos.High)
		for _, mode := range []struct {
			name    string
			initial cpnet.Outcome
		}{
			{"static-high", nil},
			{"adaptive", cpnet.Outcome{core.BandwidthVariable: level.String()}},
		} {
			link.Reset()
			r, err := prefetch.SimulateWith(doc, script, prefetch.PolicyPreference,
				1<<20, 512<<10, link, mode.initial)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				p.Name,
				level.String(),
				mode.name,
				fmtDur(r.FirstDisplay),
				fmtDur(r.MeanResponse),
				fmt.Sprintf("%.3f", r.HitRate),
				fmt.Sprint(r.DemandBytes >> 10),
				fmt.Sprint(r.PrefetchedBytes >> 10),
			})
		}
	}
	t.Notes = append(t.Notes,
		"level = qos.DefaultBands classification of the profile's effective goodput (what the runtime estimator converges to)",
		"adaptive pins net/bandwidth before the first display; static-high leaves the solver optimistic",
		"expected shape: on dialup, adaptive cuts first-display and demand bytes; on lan the two modes coincide at level=high",
		"at medium only payloads above the 256 KiB limit are demoted, so 3g rows coincide unless the script displays one")
	return t, nil
}

// qosDoc is the E8 document (object ids and sizes set) extended with the
// automatic bandwidth tuning templates — the same extension the server
// applies when the QoS loop is enabled.
func qosDoc(id string) (*document.Document, error) {
	doc, err := prefetchDoc()
	if err != nil {
		return nil, err
	}
	doc.ID = id
	if err := core.AddBandwidthTuning(doc, core.AutoBandwidthTemplates(doc, 0)); err != nil {
		return nil, err
	}
	return doc, nil
}
