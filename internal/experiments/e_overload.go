package experiments

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mmconf/internal/media/compress"
	"mmconf/internal/mediadb"
	"mmconf/internal/obs"
	"mmconf/internal/proto"
	"mmconf/internal/server"
	"mmconf/internal/store"
	"mmconf/internal/wire"
	"mmconf/internal/workload"
)

// E12Overload measures what admission control buys past saturation: an
// open-loop driver (offered rate independent of completion rate —
// workload.OpenLoop) fires uncached bulk media fetches at 1× and 3× the
// host's measured saturation rate (its raw closed-loop capacity), at
// the protected server (per-peer rate limits + MaxInflight + bounded
// queue + queue-deadline shedding) and at an unprotected baseline
// (limits disabled). Goodput is work completed within the client's SLO
// deadline, scored against the protected deployment's own closed-loop
// peak; a concurrent control-plane probe joins and leaves a conference
// room — the RPCs that keep sessions alive — and its p99 is compared
// to the same probe on an idle server.
//
// The protected server's knobs deliberately leave the host most of its
// CPU (the per-peer rate limits sum to a modest fraction of raw
// capacity): on a single-core host that headroom is what keeps the
// control plane schedulable — a join competes with bulk handlers for
// the one CPU, and no admission queue can reorder the runtime's
// scheduler — and it is what holds goodput at the configured peak no
// matter how far offered load climbs. This is the paper's §4.4 theme
// of tuning presentation quality to resource limits, applied to the
// server's own CPU. The unprotected baseline accepts everything,
// queues it, blows every deadline, and collapses.
func E12Overload(workdir string) (*Table, error) {
	return e12Overload(workdir, e12Params{
		MaxInflight:  2,
		QueueDepth:   32,
		QueueTimeout: 100 * time.Millisecond,
		RateHeadroom: 0.15,
		SLO:          500 * time.Millisecond,
		Conns:        12,
		CalibWorkers: 8,
		Calib:        1200 * time.Millisecond,
		Warmup:       1500 * time.Millisecond,
		Run:          8 * time.Second,
		Probes:       500,
		ProbeEvery:   10 * time.Millisecond,
		CtlDocParts:  5000,
		StreamBytes:  256 << 10,
	})
}

// e12Params sizes the run (shrunken by smoke tests).
type e12Params struct {
	MaxInflight  int
	QueueDepth   int
	QueueTimeout time.Duration
	// RateHeadroom scales the per-peer rate limits: their sum over the
	// driver's connections admits RateHeadroom × raw closed-loop
	// capacity. The remainder is deliberate headroom — it pays for
	// shedding the excess and keeps the control plane schedulable on a
	// saturated host.
	RateHeadroom float64
	// SLO is the per-op client deadline: work finished past it counts
	// as failed, not goodput.
	SLO time.Duration
	// Conns is the driver's connection-pool size; CalibWorkers sizes
	// the closed-loop capacity calibrations.
	Conns        int
	CalibWorkers int
	// Warmup precedes each measured open-loop window at the same rate:
	// buckets drain and queues settle before the tally starts.
	Calib, Warmup, Run time.Duration
	// Probes is how many unloaded join/leave round trips establish the
	// control-plane baseline p99; ProbeEvery spaces the probes that run
	// concurrently with each offered-load window.
	Probes     int
	ProbeEvery time.Duration
	// CtlDocParts sizes the control room's document (components): the
	// join under measurement ships this document's snapshot, so the
	// control RPC does the realistic amount of work.
	CtlDocParts int
	// StreamBytes sizes the bulk stream's full body; the driver fetches
	// a fixed 2-layer (128 KiB) prefix, the server reads the full body
	// from the store each time (caching disabled).
	StreamBytes int
}

func e12Overload(workdir string, p e12Params) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Goodput under overload: admission control vs unprotected baseline",
		Columns: []string{"series", "offered/s", "completed", "shed", "failed", "dropped", "goodput/s", "vs peak", "ctl p99", "×unloaded"},
	}
	dir, err := os.MkdirTemp(workdir, "e12-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	m, err := mediadb.Open(db)
	if err != nil {
		return nil, err
	}
	if _, err := workload.Populate(m, "p1", 1); err != nil {
		return nil, err
	}
	// The bulk op is an uncached 2-layer prefix fetch of a multi-layer
	// stream: the server reads and copies the full body per request
	// (store fetch + compress.Unmarshal), so every admitted op costs
	// real CPU and bytes — far more than rejecting one, which is what
	// makes shedding worthwhile rather than a wash. The stream is
	// synthesized rather than encoded: the fetch path never decodes
	// layer payloads, and wavelet-encoding real scans would dominate
	// the experiment's runtime.
	stream := e12Stream(p.StreamBytes)
	header, body, err := stream.Marshal()
	if err != nil {
		return nil, err
	}
	cmpID, err := m.PutCmp("e12-big.mml", header, body)
	if err != nil {
		return nil, err
	}
	// The control room's document: a wide record whose snapshot the
	// join ships, so the probed control RPC carries its realistic cost.
	ctlDoc, err := workload.WideRecord("e12-ctl-doc", p.CtlDocParts, 7)
	if err != nil {
		return nil, err
	}
	if err := m.PutDocument(ctlDoc); err != nil {
		return nil, err
	}
	// The driver allocates fresh multi-hundred-KB bodies per request, so
	// collector assist stalls are the main nuisance variable: each cycle
	// stalls the one or two probes it overlaps, and with cycles every
	// second those stalls ARE the p99. The live heap is tiny (tens of
	// MB), so a high target keeps cycles short and a few seconds apart —
	// rare enough that stalled probes sit above the p99 of a densely
	// sampled window. (Switching the collector off entirely tested far
	// worse: an ever-growing heap pays for itself in page faults.)
	defer debug.SetGCPercent(debug.SetGCPercent(1200))

	quiet := func(string, ...any) {}
	unprotected := server.Options{
		MaxInflight:  -1, // admission disabled: the pre-PR-5 server
		CacheBytes:   -1,
		SessionGrace: -1, // probe churn must not park sessions
		Logf:         quiet,
	}

	// Phase 1, unprotected server: raw closed-loop capacity. A closed
	// loop self-throttles, so this is the host's capacity doing only
	// useful bulk work with no limits in the way.
	var rawPeak float64
	err = e12WithServer(m, unprotected, func(addr string) error {
		pool, err := e12Dial(addr, p.Conns)
		if err != nil {
			return err
		}
		defer pool.close()
		// Capacity calibration must not carry the SLO deadline: a closed
		// loop at high concurrency has queueing latency of workers ×
		// service time, and an SLO-bounded op would time out and
		// undercount capacity.
		rawPeak = e12Calibrate(pool.cmpOp(cmpID, 10*time.Second), p.CalibWorkers, p.Calib)
		t.Rows = append(t.Rows, []string{"raw capacity (closed loop, unprotected)", "-", "-", "-", "-", "-", fmt.Sprintf("%.0f", rawPeak), "-", "-", "-"})
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The per-peer limit is derived from raw capacity so the sum over
	// the pool admits RateHeadroom × rawPeak; everything above it is
	// rejected at admission, before the handler pays for decode or body
	// copies. MaxInflight and the bounded queue back the rate limit up
	// as a second line of defense.
	perPeer := p.RateHeadroom * rawPeak / float64(p.Conns)
	protected := server.Options{
		MaxInflight:  p.MaxInflight,
		QueueDepth:   p.QueueDepth,
		QueueTimeout: p.QueueTimeout,
		PerPeerRate:  perPeer,
		// Burst absorbs scheduling jitter in the arrival process: with a
		// burst of 1, refill accrued during any inter-arrival gap longer
		// than 1/rate is lost at the cap and the bucket admits well
		// under its configured rate. Kept small so a freshly idle
		// bucket's token dump stays a fraction of a second of capacity
		// (the warmup window absorbs it).
		PerPeerBurst: max(1, int(perPeer/4)),
		CacheBytes:   -1, // every fetch pays full cost: saturation is the point
		SessionGrace: -1,
		Logf:         quiet,
	}

	// Phase 2, protected server: unloaded control-plane baseline, the
	// deployment's own peak (closed loop whose ops honor the
	// retry-after hint, as a well-behaved client does), then offered
	// load at 1× and 3× that peak.
	probe := &e12Probe{room: "e12-ctl", docID: "e12-ctl-doc"}
	var peak, ctlBase float64
	err = e12WithServer(m, protected, func(addr string) error {
		probe.addr = addr
		// A settled heap before the baseline loop: the loop's own
		// snapshot garbage triggers at most one collection across it,
		// and with this many samples a stalled probe or two stays above
		// the reported p99 — the baseline must be as free of collector
		// noise as the loaded windows are.
		runtime.GC()
		base := obs.NewHistogram()
		for i := 0; i < p.Probes; i++ {
			if err := probe.once(base); err != nil {
				return err
			}
		}
		ctlBase = float64(base.Snapshot().Quantile(0.99))
		t.Rows = append(t.Rows, []string{"unloaded control probe (join+leave)", "-", "-", "-", "-", "-", "-", "-", fmtDur(time.Duration(ctlBase)), "1.0"})

		pool, err := e12Dial(addr, p.Conns)
		if err != nil {
			return err
		}
		defer pool.close()
		peak = e12Calibrate(e12HintRetry(pool.cmpOp(cmpID, 10*time.Second)), p.CalibWorkers, p.Calib)
		t.Rows = append(t.Rows, []string{"protected peak (closed loop, hint-honoring)", "-", "-", "-", "-", "-", fmt.Sprintf("%.0f", peak), "100%", "-", "-"})

		op := pool.cmpOp(cmpID, p.SLO)
		for _, mult := range []float64{1, 3} {
			res, p99, err := e12Offered(probe, op, rawPeak*mult, p)
			if err != nil {
				return err
			}
			t.Rows = append(t.Rows, e12Row(fmt.Sprintf("protected %.0fx saturation", mult), rawPeak*mult, res, peak, p99, ctlBase))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3, unprotected baseline at the same 3× offered load: same
	// store, same op, same probe, no admission control.
	err = e12WithServer(m, unprotected, func(addr string) error {
		probe.addr = addr
		pool, err := e12Dial(addr, p.Conns)
		if err != nil {
			return err
		}
		defer pool.close()
		op := pool.cmpOp(cmpID, p.SLO)
		res, p99, err := e12Offered(probe, op, rawPeak*3, p)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, e12Row("unprotected 3x saturation", rawPeak*3, res, peak, p99, ctlBase))
		return nil
	})
	if err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("bulk op = uncached db.getCmp 2-layer prefix of a %d-byte stream (CacheBytes=-1) under a %v client SLO; goodput counts completions within the SLO", len(body), p.SLO),
		fmt.Sprintf("protected: PerPeerRate=%.1f/s per conn (%.0f%% of raw capacity over %d conns), MaxInflight=%d QueueDepth=%d QueueTimeout=%v; unprotected: MaxInflight=-1 (admission disabled)", perPeer, 100*p.RateHeadroom, p.Conns, p.MaxInflight, p.QueueDepth, p.QueueTimeout),
		fmt.Sprintf("ctl p99 = join+leave round trips (fresh connection each, %d-component document snapshot) during the measured window; ×unloaded compares against the idle-server probe; control RPCs bypass per-peer rate limits by design", p.CtlDocParts),
		"saturation = raw closed-loop capacity of the unprotected host; offered multiples are of that saturation rate and both servers receive identical offered load; 'vs peak' is against the protected deployment's own closed-loop goodput (its calibration ops honor the retry-after hint)",
	)
	return t, nil
}

// e12Stream synthesizes a multi-layer stream shaped like a deep
// encoding of a scan: a small wavelet base plus residual layers. The
// first two layers (the fetched prefix) total 128 KiB; the rest of
// total is split across two residual layers the server still reads
// from the store on every fetch. Payload bytes are deterministic
// filler — the fetch path copies layer payloads but never decodes them.
func e12Stream(total int) *compress.Stream {
	const prefix = 128 << 10
	if total < prefix+(64<<10) {
		total = prefix + (64 << 10)
	}
	rest := total - prefix
	mk := func(kind compress.LayerKind, step float64, n int) compress.Layer {
		data := make([]byte, n)
		x := uint32(2463534242)
		for i := range data {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			data[i] = byte(x)
		}
		return compress.Layer{Kind: kind, Step: step, Data: data}
	}
	return &compress.Stream{
		W: 2048, H: 2048, Levels: 4, Block: 16,
		Layers: []compress.Layer{
			mk(compress.WaveletLayer, 0.10, 32<<10),
			mk(compress.CosineLayer, 0.04, 96<<10),
			mk(compress.CosineLayer, 0.015, rest/2),
			mk(compress.CosineLayer, 0.005, rest-rest/2),
		},
	}
}

// e12Row formats one open-loop series.
func e12Row(series string, offered float64, res workload.OpenLoopResult, peak float64, controlP99 time.Duration, ctlBase float64) []string {
	vs, ratio := "-", "-"
	if peak > 0 {
		vs = fmt.Sprintf("%.0f%%", 100*res.Goodput()/peak)
	}
	if ctlBase > 0 {
		ratio = fmt.Sprintf("%.1f", float64(controlP99)/ctlBase)
	}
	return []string{
		series,
		fmt.Sprintf("%.0f", offered),
		fmt.Sprint(res.Completed), fmt.Sprint(res.Shed), fmt.Sprint(res.Failed), fmt.Sprint(res.Dropped),
		fmt.Sprintf("%.0f", res.Goodput()),
		vs,
		fmtDur(controlP99),
		ratio,
	}
}

// e12WithServer runs fn against a freshly started server over m,
// closing it afterwards. Each phase starts from a settled heap so one
// phase's garbage does not tax the next one's measurements.
func e12WithServer(m *mediadb.MediaDB, o server.Options, fn func(addr string) error) error {
	runtime.GC()
	srv, err := server.NewWith(m, o)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(l)
	defer srv.Close()
	return fn(l.Addr().String())
}

// e12Pool is a round-robin pool of raw wire connections: the open-loop
// driver multiplexes ops across it so one connection's reader/writer
// does not serialize the whole offered load.
type e12Pool struct {
	clients []*wire.Client
	next    atomic.Uint64
}

func e12Dial(addr string, n int) (*e12Pool, error) {
	p := &e12Pool{}
	for i := 0; i < n; i++ {
		c, err := wire.Dial(addr)
		if err != nil {
			p.close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

func (p *e12Pool) close() {
	for _, c := range p.clients {
		c.Close()
	}
}

// cmpOp builds the bulk op: one uncached GetCmp prefix fetch bounded by
// the SLO.
func (p *e12Pool) cmpOp(cmpID uint64, slo time.Duration) workload.Op {
	return func(ctx context.Context) error {
		c := p.clients[p.next.Add(1)%uint64(len(p.clients))]
		ctx, cancel := context.WithTimeout(ctx, slo)
		defer cancel()
		var resp proto.GetCmpResp
		return c.CallCtx(ctx, proto.MGetCmp, proto.GetCmpReq{ID: cmpID, MaxLayers: 2}, &resp)
	}
}

// e12HintRetry wraps op the way a well-behaved client consumes the
// overload protocol: a shed attempt sleeps the server's retry-after
// hint and tries again, so a closed loop measures the protected
// deployment's sustainable goodput instead of busy-spinning on
// rejections.
func e12HintRetry(op workload.Op) workload.Op {
	return func(ctx context.Context) error {
		for {
			err := op(ctx)
			var oe *wire.OverloadError
			if !errors.As(err, &oe) {
				return err
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(oe.RetryAfter):
			}
		}
	}
}

// e12Probe measures the control plane: each probe dials a fresh
// connection, joins the control room (shipping the document snapshot —
// the expensive, realistic part of a join), and leaves. Join and leave
// round trips are both observed. A fresh connection per probe keeps a
// client-side timeout from wedging the next probe (a timed-out join
// that landed server-side leaves the connection a member of the room),
// and exercises the whole admission path a reconnecting client takes.
// Overload sheds and timeouts are observations, not failures — a
// loaded server slowing (or shedding) its control plane is exactly
// what the probe exists to see; both are recorded at their round-trip
// time so the number stays honest.
type e12Probe struct {
	addr, room, docID string
	seq               atomic.Uint64
}

func (p *e12Probe) once(h *obs.Histogram) error {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
	defer cancel()
	start := time.Now()
	c, err := wire.DialContext(ctx, p.addr)
	if err != nil {
		// A dial that cannot complete IS a control-plane measurement:
		// an overloaded server that stops accepting has lost its
		// control plane entirely. Record the stall and move on.
		h.Observe(time.Since(start))
		return e12Observed(err)
	}
	defer c.Close()
	user := fmt.Sprintf("probe-%d", p.seq.Add(1))
	var jr proto.JoinRoomResp
	start = time.Now()
	err = c.CallCtx(ctx, proto.MJoinRoom, proto.JoinRoomReq{Room: p.room, User: user, DocID: p.docID}, &jr)
	h.Observe(time.Since(start))
	if err != nil {
		return e12Observed(err)
	}
	start = time.Now()
	err = c.CallCtx(ctx, proto.MLeaveRoom, proto.LeaveRoomReq{Room: p.room, User: user}, nil)
	h.Observe(time.Since(start))
	return e12Observed(err)
}

// e12Observed filters probe errors: overload rejections, deadline
// expiries, and network timeouts (net maps an expired dial context to
// its own i/o-timeout error) are measurements of a loaded control
// plane; anything else aborts the experiment.
func e12Observed(err error) error {
	if err == nil || errors.Is(err, wire.ErrOverloaded) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return nil
	}
	return err
}

// e12Calibrate measures peak goodput with a closed loop: workers run
// ops back-to-back for dur, completions per second. A closed loop
// cannot overload the server, so this is sustainable capacity.
func e12Calibrate(op workload.Op, workers int, dur time.Duration) float64 {
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	var completed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if op(ctx) == nil {
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return float64(completed.Load()) / time.Since(start).Seconds()
}

// e12Offered runs the open loop at the given rate while the concurrent
// control probe joins and leaves, returning the run tally and the
// control p99 observed during the measured window. The warmup window
// lets buckets drain and queues settle before either the tally or the
// probe starts; a forced GC beforehand keeps one run's garbage from
// taxing the next.
func e12Offered(probe *e12Probe, op workload.Op, rate float64, p e12Params) (workload.OpenLoopResult, time.Duration, error) {
	runtime.GC()
	h := obs.NewHistogram()
	probeCtx, stopProbe := context.WithCancel(context.Background())
	var probeErr error
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		select {
		case <-probeCtx.Done():
			return
		case <-time.After(p.Warmup):
		}
		for probeCtx.Err() == nil {
			if err := probe.once(h); err != nil {
				probeErr = err
				return
			}
			select {
			case <-probeCtx.Done():
			case <-time.After(p.ProbeEvery):
			}
		}
	}()
	res := workload.OpenLoop(context.Background(), op, workload.OpenLoopOptions{
		Rate:     rate,
		Warmup:   p.Warmup,
		Duration: p.Run,
		// Deep enough that the driver's own cap never throttles the
		// unprotected baseline before its latency blows the SLO many
		// times over: a backlog of MaxOutstanding × service time must
		// far exceed the SLO, or the cap would act as an accidental
		// admission limiter and mask the collapse.
		MaxOutstanding: 4096,
	})
	stopProbe()
	<-probeDone
	if probeErr != nil {
		return res, 0, probeErr
	}
	return res, h.Snapshot().Quantile(0.99), nil
}
