// Package author is the authoring tool the paper's future work calls for
// (§6: "enhancement of the presentation module with an advanced authoring
// tool"). It analyzes a document's CP-network statically and tells the
// author what a screenshot-driven review would miss: presentations no
// click can ever surface, components that stay hidden under every
// reachable configuration, vacuous conditioning that only bloats CPTs,
// and parent fan-in that will make the table infeasible to fill in.
package author

import (
	"fmt"
	"sort"
	"strings"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
)

// Severity grades a finding.
type Severity int

// Severities.
const (
	Info Severity = iota
	Warning
	Problem
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Problem:
		return "problem"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Finding is one lint result.
type Finding struct {
	Severity Severity
	Variable string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%-7s %-20s %s", f.Severity, f.Variable, f.Message)
}

// maxParentsBeforeWarning is the CPT fan-in the lint flags: with d-ary
// domains a variable with p parents needs d^p hand-authored rows.
const maxParentsBeforeWarning = 3

// Lint analyzes the document's preference network and returns findings
// sorted by severity (worst first) then variable name.
func Lint(doc *document.Document) ([]Finding, error) {
	if err := doc.Prefs.Validate(); err != nil {
		return nil, fmt.Errorf("author: %w", err)
	}
	var out []Finding
	reach, err := reachableValues(doc)
	if err != nil {
		return nil, err
	}
	for _, v := range doc.Prefs.Variables() {
		// Unreachable presentation values. A hidden form that never
		// surfaces automatically is by design, so only content-bearing
		// values are flagged.
		var dead []string
		for _, val := range v.Domain {
			if val == document.HiddenValue || val == document.VisHidden {
				continue
			}
			if !reach[v.Name][val] {
				dead = append(dead, val)
			}
		}
		if len(dead) > 0 {
			out = append(out, Finding{
				Severity: Warning,
				Variable: v.Name,
				Message: fmt.Sprintf("presentation(s) %s never surface automatically — not in the default view, and no click on another component selects them; viewers must ask for them explicitly",
					strings.Join(dead, ", ")),
			})
		}
		// Always-hidden variables.
		if onlyHiddenReachable(v, reach[v.Name]) {
			out = append(out, Finding{
				Severity: Problem,
				Variable: v.Name,
				Message:  "every reachable configuration hides this component; viewers will never see its content",
			})
		}
		// Vacuous parents.
		vac, err := vacuousParents(doc.Prefs, v.Name)
		if err != nil {
			return nil, err
		}
		for _, p := range vac {
			out = append(out, Finding{
				Severity: Info,
				Variable: v.Name,
				Message:  fmt.Sprintf("conditioning on %q never changes the preference order; the CPT can be simplified", p),
			})
		}
		// Fan-in explosion.
		parents, _ := doc.Prefs.Parents(v.Name)
		if len(parents) > maxParentsBeforeWarning {
			rows := 1
			for _, p := range parents {
				dom, _ := doc.Prefs.Domain(p)
				rows *= len(dom)
			}
			out = append(out, Finding{
				Severity: Warning,
				Variable: v.Name,
				Message:  fmt.Sprintf("%d parents require %d CPT rows; consider restructuring", len(parents), rows),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Variable < out[j].Variable
	})
	return out, nil
}

// reachableValues computes, for every variable, the values that surface
// automatically: those appearing in the default presentation or in the
// optimal completion after a single viewer click on some OTHER variable.
// (A value is always reachable by clicking it directly; the interesting
// authoring question is what the document ever shows unprompted.)
func reachableValues(doc *document.Document) (map[string]map[string]bool, error) {
	reach := make(map[string]map[string]bool)
	for _, v := range doc.Prefs.Variables() {
		reach[v.Name] = make(map[string]bool)
	}
	mark := func(o cpnet.Outcome, clicked string) {
		for name, val := range o {
			if name == clicked {
				continue
			}
			reach[name][val] = true
		}
	}
	def, err := doc.Prefs.OptimalOutcome()
	if err != nil {
		return nil, err
	}
	mark(def, "")
	for _, v := range doc.Prefs.Variables() {
		for _, val := range v.Domain {
			o, err := doc.Prefs.OptimalCompletion(cpnet.Outcome{v.Name: val})
			if err != nil {
				return nil, err
			}
			mark(o, v.Name)
		}
	}
	return reach, nil
}

// onlyHiddenReachable reports whether every reachable value of v hides it.
func onlyHiddenReachable(v cpnet.Variable, reach map[string]bool) bool {
	hasHiddenForm := false
	for _, val := range v.Domain {
		if val == document.HiddenValue || val == document.VisHidden {
			hasHiddenForm = true
		}
	}
	if !hasHiddenForm {
		return false
	}
	for _, val := range v.Domain {
		if val == document.HiddenValue || val == document.VisHidden {
			continue
		}
		if reach[val] {
			return false
		}
	}
	return true
}

// vacuousParents returns the parents of name whose value never affects
// the preference order of name.
func vacuousParents(n *cpnet.Network, name string) ([]string, error) {
	parents, err := n.Parents(name)
	if err != nil {
		return nil, err
	}
	var vacuous []string
	for _, p := range parents {
		pdom, err := n.Domain(p)
		if err != nil {
			return nil, err
		}
		matters := false
		// For every context over the other parents, the row must be the
		// same regardless of p's value.
		err = n.ForEachContext(name, func(ctx cpnet.Outcome) bool {
			if ctx[p] != pdom[0] {
				return true // canonical representative contexts only
			}
			base, err := n.Preference(name, ctx)
			if err != nil {
				matters = true // conservative
				return false
			}
			for _, alt := range pdom[1:] {
				c2 := ctx.Clone()
				c2[p] = alt
				other, err := n.Preference(name, c2)
				if err != nil || !equalOrder(base, other) {
					matters = true
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if !matters {
			vacuous = append(vacuous, p)
		}
	}
	return vacuous, nil
}

func equalOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReviewTable renders the click-reaction review: for every variable and
// value, the optimal completion that choice produces. This is the
// author's pre-publication sanity check of the document's dynamics.
func ReviewTable(doc *document.Document) (string, error) {
	if err := doc.Prefs.Validate(); err != nil {
		return "", fmt.Errorf("author: %w", err)
	}
	var b strings.Builder
	def, err := doc.Prefs.OptimalOutcome()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "default: %s\n", def)
	for _, v := range doc.Prefs.Variables() {
		for _, val := range v.Domain {
			o, err := doc.Prefs.OptimalCompletion(cpnet.Outcome{v.Name: val})
			if err != nil {
				return "", err
			}
			marker := " "
			if val == def[v.Name] {
				marker = "*"
			}
			fmt.Fprintf(&b, "%s %-20s = %-14s -> %s\n", marker, v.Name, val, o)
		}
	}
	return b.String(), nil
}
