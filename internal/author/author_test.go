package author

import (
	"strings"
	"testing"

	"mmconf/internal/cpnet"
	"mmconf/internal/document"
	"mmconf/internal/workload"
)

func TestLintCleanDocument(t *testing.T) {
	doc, err := workload.MedicalRecord("p", 1)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(doc)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	// The standard record has a few legitimately unreachable values
	// (e.g. xray=full is reachable; hidden variants trigger no Problem).
	for _, f := range findings {
		if f.Severity == Problem {
			t.Errorf("unexpected problem: %s", f)
		}
	}
}

func TestLintUnreachablePresentation(t *testing.T) {
	// A component whose "zoomed" presentation is last in every preference
	// order and never favored: unreachable by any single click on OTHER
	// variables (clicking the value itself reaches it, which is why the
	// lint marks values unreachable only when no click selects them —
	// build one whose value genuinely never surfaces).
	root := &document.Component{
		Name: "r",
		Children: []*document.Component{
			{Name: "a", Presentations: []document.Presentation{
				{Name: "x", Kind: document.KindText},
				{Name: "y", Kind: document.KindText},
			}},
			{Name: "b", Presentations: []document.Presentation{
				{Name: "u", Kind: document.KindText},
				{Name: "v", Kind: document.KindText},
				{Name: "w", Kind: document.KindText},
			}},
		},
	}
	doc, err := document.New("d", "t", root)
	if err != nil {
		t.Fatal(err)
	}
	n := doc.Prefs
	mustOK(t, n.SetUnconditional("r", []string{document.VisShown, document.VisHidden}))
	mustOK(t, n.SetUnconditional("a", []string{"x", "y"}))
	// b prefers u under every context of a: v and w never surface unless
	// the viewer clicks b itself — the lint must flag them.
	mustOK(t, n.SetParents("b", []string{"a"}))
	mustOK(t, n.SetPreference("b", cpnet.Outcome{"a": "x"}, []string{"u", "v", "w"}))
	mustOK(t, n.SetPreference("b", cpnet.Outcome{"a": "y"}, []string{"u", "v", "w"}))
	findings, err := Lint(doc)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, f := range findings {
		if f.Variable == "b" && f.Severity == Warning &&
			strings.Contains(f.Message, "v, w") {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("unreachable presentations not flagged: %v", findings)
	}
	// Also: conditioning of b on a is vacuous (same order in both rows).
	foundVacuous := false
	for _, f := range findings {
		if f.Variable == "b" && strings.Contains(f.Message, "never changes the preference order") {
			foundVacuous = true
		}
	}
	if !foundVacuous {
		t.Errorf("vacuous parent not flagged: %v", findings)
	}
}

func TestLintAlwaysHidden(t *testing.T) {
	root := &document.Component{
		Name: "r",
		Children: []*document.Component{
			{Name: "ghost", Presentations: []document.Presentation{
				{Name: "full", Kind: document.KindImage},
				{Name: "hidden", Kind: document.KindHidden},
			}},
		},
	}
	doc, err := document.New("d", "t", root)
	if err != nil {
		t.Fatal(err)
	}
	n := doc.Prefs
	mustOK(t, n.SetUnconditional("r", []string{document.VisShown, document.VisHidden}))
	// ghost prefers hidden unconditionally: nothing but an explicit click
	// on ghost itself ever reveals it — a Problem-grade finding.
	mustOK(t, n.SetUnconditional("ghost", []string{"hidden", "full"}))
	findings, err := Lint(doc)
	if err != nil {
		t.Fatal(err)
	}
	problem := false
	for _, f := range findings {
		if f.Severity == Problem && f.Variable == "ghost" {
			problem = true
		}
	}
	if !problem {
		t.Errorf("always-hidden component not flagged as problem: %v", findings)
	}
	review, err := ReviewTable(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(review, "ghost") {
		t.Error("review table missing the component")
	}
}

func TestLintFanInWarning(t *testing.T) {
	root := &document.Component{Name: "r", Children: []*document.Component{}}
	for _, name := range []string{"a", "b", "c", "d", "sink"} {
		root.Children = append(root.Children, &document.Component{
			Name: name,
			Presentations: []document.Presentation{
				{Name: "on", Kind: document.KindText},
				{Name: "off", Kind: document.KindHidden},
			},
		})
	}
	doc, err := document.New("d", "t", root)
	if err != nil {
		t.Fatal(err)
	}
	n := doc.Prefs
	mustOK(t, n.SetUnconditional("r", []string{document.VisShown, document.VisHidden}))
	for _, name := range []string{"a", "b", "c", "d"} {
		mustOK(t, n.SetUnconditional(name, []string{"on", "off"}))
	}
	mustOK(t, n.SetParents("sink", []string{"a", "b", "c", "d"}))
	// Fill all 16 rows.
	err = n.ForEachContext("sink", func(ctx cpnet.Outcome) bool {
		mustOK(t, n.SetPreference("sink", ctx, []string{"on", "off"}))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Lint(doc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Variable == "sink" && strings.Contains(f.Message, "CPT rows") {
			found = true
		}
	}
	if !found {
		t.Errorf("fan-in not flagged: %v", findings)
	}
}

func TestLintInvalidNetwork(t *testing.T) {
	root := &document.Component{
		Name: "r",
		Children: []*document.Component{
			{Name: "a", Presentations: []document.Presentation{{Name: "x", Kind: document.KindText}}},
		},
	}
	doc, _ := document.New("d", "t", root)
	doc.Prefs = cpnet.New()
	if _, err := Lint(doc); err == nil {
		t.Error("invalid network accepted")
	}
	if _, err := ReviewTable(doc); err == nil {
		t.Error("review of invalid network accepted")
	}
}

func TestReviewTableShape(t *testing.T) {
	doc, err := workload.MedicalRecord("p", 1)
	if err != nil {
		t.Fatal(err)
	}
	review, err := ReviewTable(doc)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(review), "\n")
	// 1 default line + one line per (variable, value).
	want := 1
	for _, v := range doc.Prefs.Variables() {
		want += len(v.Domain)
	}
	if len(lines) != want {
		t.Errorf("review lines = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "default:") {
		t.Error("missing default line")
	}
	// Default-matching values are starred.
	starred := 0
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "*") {
			starred++
		}
	}
	if starred != doc.Prefs.Len() {
		t.Errorf("starred = %d, want one per variable (%d)", starred, doc.Prefs.Len())
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Problem.String() != "problem" {
		t.Error("severity names")
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity")
	}
	f := Finding{Severity: Warning, Variable: "x", Message: "m"}
	if !strings.Contains(f.String(), "warning") || !strings.Contains(f.String(), "x") {
		t.Errorf("finding string: %s", f)
	}
}

func mustOK(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
