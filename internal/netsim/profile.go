package netsim

import (
	"net"
	"time"
)

// Profile is a named bundle of link conditions — the bandwidth, one-way
// latency, and packet-loss rate of a client class. Profiles parameterize
// both the analytic Link model (experiments) and the ThrottledConn shim
// (integration tests), so E15 and the QoS acceptance suite speak the
// same vocabulary.
type Profile struct {
	Name      string
	Bandwidth int64         // bytes per second, before loss
	Latency   time.Duration // one-way propagation delay
	Loss      float64       // fraction of packets lost and retransmitted, [0, 1)
}

// The three client classes the paper's remote-clinic setting implies:
// modem-connected field sites, early-mobile links, and the hospital LAN.
var (
	// Dialup: 56 kbit/s modem, long RTT, noisy line.
	Dialup = Profile{Name: "dialup", Bandwidth: 7_000, Latency: 150 * time.Millisecond, Loss: 0.02}
	// ThreeG: 384 kbit/s UMTS-class downlink.
	ThreeG = Profile{Name: "3g", Bandwidth: 48_000, Latency: 80 * time.Millisecond, Loss: 0.01}
	// LAN: 100 Mbit/s switched ethernet, effectively lossless.
	LAN = Profile{Name: "lan", Bandwidth: 12_500_000, Latency: time.Millisecond, Loss: 0}
)

// Profiles lists the presets worst-first.
func Profiles() []Profile { return []Profile{Dialup, ThreeG, LAN} }

// ProfileByName returns the preset with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// EffectiveBandwidth is the goodput after loss: every lost packet is
// retransmitted, so a loss rate of f costs a 1−f factor of the raw rate.
func (p Profile) EffectiveBandwidth() int64 {
	bw := int64(float64(p.Bandwidth) * (1 - p.Loss))
	if bw < 1 {
		bw = 1
	}
	return bw
}

// Link builds the analytic model for the profile.
func (p Profile) Link() (*Link, error) {
	return NewLink(p.EffectiveBandwidth(), p.Latency)
}

// Throttle wraps conn with the profile's effective write bandwidth.
// Throttle one direction by wrapping one end; both by wrapping both.
func (p Profile) Throttle(conn net.Conn) (*ThrottledConn, error) {
	return Throttle(conn, p.EffectiveBandwidth())
}
