package netsim

import (
	"net"
	"testing"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	l, err := NewLink(1000, 10*time.Millisecond) // 1000 B/s
	if err != nil {
		t.Fatal(err)
	}
	got := l.TransferTime(500)
	want := 10*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Errorf("TransferTime(500) = %v, want %v", got, want)
	}
	if l.TransferTime(0) != 10*time.Millisecond {
		t.Error("zero bytes should cost latency only")
	}
	if l.TransferTime(-5) != 10*time.Millisecond {
		t.Error("negative bytes not clamped")
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(0, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewLink(100, -time.Second); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestLinkQueueing(t *testing.T) {
	l, _ := NewLink(1000, 0)
	now := time.Unix(1000, 0)
	// Two back-to-back 1000-byte sends: second arrives a second later.
	a1 := l.Enqueue(now, 1000)
	a2 := l.Enqueue(now, 1000)
	if a1.Sub(now) != time.Second {
		t.Errorf("first arrival after %v", a1.Sub(now))
	}
	if a2.Sub(now) != 2*time.Second {
		t.Errorf("second arrival after %v (no queueing?)", a2.Sub(now))
	}
	// After Reset the link is idle again.
	l.Reset()
	a3 := l.Enqueue(now, 1000)
	if a3.Sub(now) != time.Second {
		t.Errorf("post-reset arrival after %v", a3.Sub(now))
	}
	// A send after the queue drained starts fresh.
	later := now.Add(time.Minute)
	a4 := l.Enqueue(later, 500)
	if a4.Sub(later) != 500*time.Millisecond {
		t.Errorf("idle-link arrival after %v", a4.Sub(later))
	}
}

func TestThrottledConnPacesWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	tc, err := Throttle(a, 64*1024) // 64 KiB/s
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 32*1024)
		total := 0
		for total < 32*1024 {
			n, err := b.Read(buf[total:])
			if err != nil {
				return
			}
			total += n
		}
	}()
	start := time.Now()
	if _, err := tc.Write(make([]byte, 32*1024)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 32 KiB at 64 KiB/s ≈ 500 ms; allow generous slack either way but
	// require clear evidence of pacing.
	if elapsed < 300*time.Millisecond {
		t.Errorf("write of 32KiB at 64KiB/s took only %v", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("write took %v — pacing broken", elapsed)
	}
}

func TestThrottleValidation(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	if _, err := Throttle(a, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
}
