package netsim

import (
	"context"
	"net"
	"testing"
	"time"
)

// pipePair returns both ends of an in-process connection with the client
// side wrapped by f.
func pipePair(t *testing.T, f *Faults) (wrapped *FaultyConn, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	fc := f.Wrap(a)
	t.Cleanup(func() { fc.Close(); b.Close() })
	return fc, b
}

func TestKillAllResetsMidStream(t *testing.T) {
	f := NewFaults()
	fc, peer := pipePair(t, f)
	go peer.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := fc.Read(buf); err != nil {
		t.Fatalf("read before kill: %v", err)
	}
	readErr := make(chan error, 1)
	go func() {
		_, err := fc.Read(buf)
		readErr <- err
	}()
	f.KillAll()
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("read survived KillAll")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read not interrupted by KillAll")
	}
	// The wrapper fails fast from now on.
	if _, err := fc.Write([]byte("x")); !IsInjected(err) {
		t.Errorf("write after kill = %v, want injected reset", err)
	}
	if _, _, resets := f.Stats(); resets != 1 {
		t.Errorf("resets = %d, want 1", resets)
	}
}

func TestPartitionBlocksUntilHeal(t *testing.T) {
	f := NewFaults()
	fc, peer := pipePair(t, f)
	f.Partition()
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 5)
		_, err := fc.Read(buf)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("read completed during partition: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	f.Heal()
	go peer.Write([]byte("hello"))
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read never completed after Heal")
	}
}

func TestPartitionedConnDiesOnKill(t *testing.T) {
	f := NewFaults()
	fc, _ := pipePair(t, f)
	f.Partition()
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, err := fc.Read(buf)
		got <- err
	}()
	time.Sleep(50 * time.Millisecond)
	f.KillAll()
	select {
	case err := <-got:
		if !IsInjected(err) {
			t.Errorf("read unblocked with %v, want injected reset", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read stayed blocked after KillAll during partition")
	}
}

func TestCutAfterReadResetsAfterBudget(t *testing.T) {
	f := NewFaults()
	fc, peer := pipePair(t, f)
	f.CutAfterRead(4)
	go peer.Write([]byte("abcdefgh"))
	buf := make([]byte, 8)
	// The read delivering the budget-crossing bytes still returns them —
	// a partial message — and the transport dies under it.
	n, _ := fc.Read(buf)
	if n == 0 {
		t.Fatal("cut read returned no bytes")
	}
	if _, err := fc.Read(buf); !IsInjected(err) {
		t.Errorf("read after cut = %v, want injected reset", err)
	}
	if _, _, resets := f.Stats(); resets != 1 {
		t.Errorf("resets = %d, want 1", resets)
	}
}

func TestFailDialsBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	f := NewFaults()
	dial := f.Dialer(ln.Addr().String())
	ctx := context.Background()

	f.FailDials(2)
	for i := 0; i < 2; i++ {
		if _, err := dial(ctx); !IsInjected(err) {
			t.Fatalf("dial %d = %v, want injected failure", i, err)
		}
	}
	c, err := dial(ctx)
	if err != nil {
		t.Fatalf("dial after budget spent: %v", err)
	}
	c.Close()

	f.FailDials(-1) // fail until reset
	for i := 0; i < 3; i++ {
		if _, err := dial(ctx); !IsInjected(err) {
			t.Fatalf("unlimited fail dial %d = %v", i, err)
		}
	}
	f.FailDials(0)
	c2, err := dial(ctx)
	if err != nil {
		t.Fatalf("dial after FailDials(0): %v", err)
	}
	c2.Close()

	dials, dialFails, _ := f.Stats()
	if dials != 7 || dialFails != 5 {
		t.Errorf("stats dials=%d fails=%d, want 7 and 5", dials, dialFails)
	}
}

func TestPartitionedDialHonorsDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	f := NewFaults()
	dial := f.Dialer(ln.Addr().String())
	f.Partition()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := dial(ctx); err == nil {
		t.Fatal("dial succeeded through a partition")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("partitioned dial ignored the context deadline")
	}
	f.Heal()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			defer c.Close()
		}
	}()
	c, err := dial(context.Background())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c.Close()
}

func TestInjectedLatencyDelaysTraffic(t *testing.T) {
	f := NewFaults()
	fc, peer := pipePair(t, f)
	f.SetLatency(60 * time.Millisecond)
	go func() {
		buf := make([]byte, 2)
		peer.Read(buf)
	}()
	start := time.Now()
	if _, err := fc.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("write took %v, want >= injected latency", d)
	}
}
