package netsim

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the fault-injection half of netsim: where Link and
// ThrottledConn model *bandwidth* (§4.4), Faults models *failure* — the
// dropped connections, silent partitions and flaky dial paths a WAN
// session layer must survive. Tests wrap real connections (or a dialer)
// in a Faults controller and then kill, partition or degrade the
// network mid-session to exercise reconnect and resume machinery.

// errInjected is the error surfaced by injected connection resets.
type errInjected struct{ op string }

func (e errInjected) Error() string { return "netsim: injected " + e.op }

// IsInjected reports whether err came from a netsim fault injection.
func IsInjected(err error) bool {
	_, ok := err.(errInjected)
	return ok
}

// Faults is a shared fault controller for a set of connections. The zero
// value is unusable; construct with NewFaults. All methods are safe for
// concurrent use.
type Faults struct {
	mu      sync.Mutex
	latency time.Duration
	healed  chan struct{} // closed when not partitioned; replaced on Partition
	parted  bool
	conns   map[*FaultyConn]struct{}
	// failDials: >0 fail that many upcoming dials, <0 fail all dials
	// until reset, 0 dial normally.
	failDials int

	dials, dialFails, resets atomic.Int64
}

// NewFaults returns a controller with no faults active.
func NewFaults() *Faults {
	healed := make(chan struct{})
	close(healed)
	return &Faults{healed: healed, conns: make(map[*FaultyConn]struct{})}
}

// SetLatency injects a fixed one-way delay before every read and write
// on wrapped connections (0 disables).
func (f *Faults) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Partition black-holes the network: reads and dials on every wrapped
// connection block (as on a silently dropped WAN path) until Heal, the
// connection closes, or the caller's deadline fires. Writes still
// succeed — as into a kernel socket buffer — so the partition is
// observed the way a real blackhole is: as silence where the response
// should be. Unlike a reset, the peer learns nothing — exactly the
// failure mode that makes client-side call deadlines necessary.
func (f *Faults) Partition() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.parted {
		f.parted = true
		f.healed = make(chan struct{})
	}
}

// Heal ends a partition; blocked operations resume.
func (f *Faults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.parted {
		f.parted = false
		close(f.healed)
	}
}

// KillAll resets every tracked connection mid-stream: both ends see the
// transport die (a dropped TCP connection), and subsequent operations on
// the wrappers fail fast.
func (f *Faults) KillAll() {
	f.mu.Lock()
	conns := make([]*FaultyConn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.inject("connection reset")
	}
}

// FailDials makes upcoming dials through Dialer fail fast: n > 0 fails
// the next n attempts, n < 0 fails every attempt until FailDials(0).
func (f *Faults) FailDials(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failDials = n
}

// CutAfterRead arms every currently tracked connection to reset itself
// after it reads n more bytes — a drop mid-push: the client receives a
// partial server message and then the transport dies.
func (f *Faults) CutAfterRead(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for c := range f.conns {
		c.cutRead.Store(n)
		c.cutArmed.Store(true)
	}
}

// CutAfterWrite arms every currently tracked connection to reset itself
// after it writes n more bytes — a drop mid-call: the request leaves
// partially framed and the transport dies.
func (f *Faults) CutAfterWrite(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for c := range f.conns {
		c.cutWrite.Store(n)
		c.cutWriteArmed.Store(true)
	}
}

// Stats reports cumulative dial attempts, injected dial failures, and
// injected connection resets.
func (f *Faults) Stats() (dials, dialFails, resets int64) {
	return f.dials.Load(), f.dialFails.Load(), f.resets.Load()
}

// Wrap tracks conn under the controller and returns the fault-injecting
// wrapper.
func (f *Faults) Wrap(conn net.Conn) *FaultyConn {
	fc := &FaultyConn{Conn: conn, f: f, closeCh: make(chan struct{})}
	f.mu.Lock()
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	return fc
}

// Dialer returns a dial function for addr whose attempts honor the
// controller's faults (FailDials budgets, partitions, ctx deadlines) and
// whose connections are tracked for KillAll/CutAfter injection. It is
// shaped for client.DialFunc.
func (f *Faults) Dialer(addr string) func(ctx context.Context) (net.Conn, error) {
	return func(ctx context.Context) (net.Conn, error) {
		return f.DialContext(ctx, addr)
	}
}

// DialContext is the address-parametric form of Dialer: one controller
// serves dials to any number of endpoints (the shape a cluster resolver
// needs — per-node addresses, one fault domain). It honors FailDials
// budgets, blocks during partitions, and tracks the resulting
// connection for KillAll/CutAfter injection. It is shaped for
// client.AddrDialFunc.
func (f *Faults) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	f.dials.Add(1)
	f.mu.Lock()
	if f.failDials != 0 {
		if f.failDials > 0 {
			f.failDials--
		}
		f.mu.Unlock()
		f.dialFails.Add(1)
		return nil, errInjected{op: "dial failure"}
	}
	healed := f.healed
	parted := f.parted
	f.mu.Unlock()
	if parted {
		// A partitioned dial black-holes: block until heal or deadline.
		select {
		case <-healed:
		case <-ctx.Done():
			f.dialFails.Add(1)
			return nil, fmt.Errorf("netsim: dial %s: %w", addr, ctx.Err())
		}
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		f.dialFails.Add(1)
		return nil, err
	}
	return f.Wrap(conn), nil
}

// Listener wraps a net.Listener so every accepted connection is tracked
// under the controller — the server-side half of a fault domain: wrap a
// node's listener and the node's entire incident traffic (inbound and,
// via DialContext, outbound) partitions, degrades and dies together.
func (f *Faults) Listener(l net.Listener) net.Listener {
	return &faultyListener{Listener: l, f: f}
}

type faultyListener struct {
	net.Listener
	f *Faults
}

func (fl *faultyListener) Accept() (net.Conn, error) {
	conn, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return fl.f.Wrap(conn), nil
}

// FaultyConn is a net.Conn whose traffic is subject to a Faults
// controller: injected latency, partition stalls, and mid-stream resets.
type FaultyConn struct {
	net.Conn
	f *Faults

	closeCh   chan struct{}
	closeOnce sync.Once

	cutRead       atomic.Int64 // remaining read bytes before injected reset
	cutArmed      atomic.Bool
	cutWrite      atomic.Int64
	cutWriteArmed atomic.Bool
}

// killed reports whether an injected reset has fired on this connection.
func (c *FaultyConn) killed() bool {
	select {
	case <-c.closeCh:
		return true
	default:
		return false
	}
}

// inject kills the connection with an injected reset: both directions
// die immediately.
func (c *FaultyConn) inject(op string) {
	c.f.resets.Add(1)
	c.closeOnce.Do(func() { close(c.closeCh) })
	_ = c.Conn.Close()
}

// gate applies latency and (when partition is true) partition faults;
// it returns an error when the connection died while gated.
func (c *FaultyConn) gate(partition bool) error {
	c.f.mu.Lock()
	latency := c.f.latency
	healed := c.f.healed
	parted := c.f.parted
	c.f.mu.Unlock()
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-c.closeCh:
			return errInjected{op: "connection reset"}
		}
	}
	if partition && parted {
		select {
		case <-healed:
		case <-c.closeCh:
			return errInjected{op: "connection reset"}
		}
	}
	return nil
}

func (c *FaultyConn) Read(p []byte) (int, error) {
	if err := c.gate(false); err != nil {
		return 0, err
	}
	select {
	case <-c.closeCh:
		return 0, errInjected{op: "connection reset"}
	default:
	}
	n, err := c.Conn.Read(p)
	if err != nil && n == 0 && c.killed() {
		return 0, errInjected{op: "connection reset"}
	}
	// The partition gate sits on the delivery side: a read is usually
	// already parked inside the raw conn when the partition starts, so
	// gating at entry would let in-flight responses through. Holding the
	// bytes until Heal matches TCP through a healed blackhole — data is
	// delayed (retransmitted), not lost.
	if n > 0 {
		if gerr := c.gate(true); gerr != nil {
			return 0, gerr
		}
	}
	if n > 0 && c.cutArmed.Load() {
		if c.cutRead.Add(int64(-n)) <= 0 {
			// The partial message is returned; the transport is dead for
			// everything after it — a reset mid-push.
			c.cutArmed.Store(false)
			c.inject("read cut")
		}
	}
	return n, err
}

func (c *FaultyConn) Write(p []byte) (int, error) {
	if err := c.gate(false); err != nil {
		return 0, err
	}
	select {
	case <-c.closeCh:
		return 0, errInjected{op: "connection reset"}
	default:
	}
	n, err := c.Conn.Write(p)
	if err != nil && n == 0 && c.killed() {
		return 0, errInjected{op: "connection reset"}
	}
	if n > 0 && c.cutWriteArmed.Load() {
		if c.cutWrite.Add(int64(-n)) <= 0 {
			c.cutWriteArmed.Store(false)
			c.inject("write cut")
		}
	}
	return n, err
}

// Close unregisters the connection and closes the transport.
func (c *FaultyConn) Close() error {
	c.closeOnce.Do(func() { close(c.closeCh) })
	c.f.mu.Lock()
	delete(c.f.conns, c)
	c.f.mu.Unlock()
	return c.Conn.Close()
}
