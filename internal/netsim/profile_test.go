package netsim

import (
	"net"
	"testing"
	"time"
)

func TestProfilePresets(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("got %d presets", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Bandwidth <= ps[i-1].Bandwidth {
			t.Fatalf("presets not ordered worst-first: %s <= %s", ps[i].Name, ps[i-1].Name)
		}
	}
	for _, p := range ps {
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %+v ok=%v", p.Name, got, ok)
		}
		if eff := p.EffectiveBandwidth(); eff > p.Bandwidth || eff <= 0 {
			t.Fatalf("%s: effective bandwidth %d out of range", p.Name, eff)
		}
		l, err := p.Link()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if l.Latency != p.Latency {
			t.Fatalf("%s: link latency %v", p.Name, l.Latency)
		}
	}
	if _, ok := ProfileByName("isdn"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestProfileLossCostsBandwidth(t *testing.T) {
	clean := Profile{Name: "x", Bandwidth: 10_000}
	lossy := Profile{Name: "x", Bandwidth: 10_000, Loss: 0.10}
	if lossy.EffectiveBandwidth() >= clean.EffectiveBandwidth() {
		t.Fatalf("loss did not reduce goodput: %d vs %d",
			lossy.EffectiveBandwidth(), clean.EffectiveBandwidth())
	}
	cl, _ := clean.Link()
	ll, _ := lossy.Link()
	if ll.TransferTime(100_000) <= cl.TransferTime(100_000) {
		t.Fatal("lossy transfer not slower")
	}
}

func TestProfileThrottlePacesWrites(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	// 64 KB/s: 16 KB should take ~250 ms.
	p := Profile{Name: "t", Bandwidth: 64_000}
	tc, err := p.Throttle(client)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		var total int
		for total < 16384 {
			n, err := server.Read(buf)
			total += n
			if err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := tc.Write(make([]byte, 16384)); err != nil {
		t.Fatal(err)
	}
	<-done
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("16 KB at 64 KB/s took only %v", elapsed)
	}
}
