// Package netsim models the network conditions of §4.4 of the paper —
// "communication bandwidth limitations" between the interaction server and
// physically distant clinics. It provides both an analytic link model
// (compute what a transfer would cost, used by the experiment harness so
// benchmarks need not sleep) and a throttled net.Conn wrapper (actually
// paces bytes, used by integration tests that exercise the real RPC path
// under constrained bandwidth).
package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Link is an analytic model of a network path: fixed propagation latency
// plus serialization at a bandwidth, with FIFO queueing.
type Link struct {
	// Bandwidth in bytes per second.
	Bandwidth int64
	// Latency is the one-way propagation delay.
	Latency time.Duration

	mu        sync.Mutex
	busyUntil time.Time
}

// NewLink returns a link model.
func NewLink(bandwidthBps int64, latency time.Duration) (*Link, error) {
	if bandwidthBps <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %d must be positive", bandwidthBps)
	}
	if latency < 0 {
		return nil, fmt.Errorf("netsim: negative latency")
	}
	return &Link{Bandwidth: bandwidthBps, Latency: latency}, nil
}

// TransferTime returns the unloaded time to deliver n bytes: latency plus
// serialization delay.
func (l *Link) TransferTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	ser := time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
	return l.Latency + ser
}

// Enqueue models sending n bytes at the given instant over the shared
// link, honoring earlier queued transfers, and returns the arrival time.
func (l *Link) Enqueue(now time.Time, n int64) time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := now
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	ser := time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
	l.busyUntil = start.Add(ser)
	return l.busyUntil.Add(l.Latency)
}

// Reset clears the queueing state.
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.busyUntil = time.Time{}
}

// ThrottledConn wraps a net.Conn, pacing writes to a byte rate. Reads are
// unmodified (throttle both directions by wrapping both ends).
type ThrottledConn struct {
	net.Conn
	bandwidth int64 // bytes per second
	mu        sync.Mutex
	nextFree  time.Time
}

// Throttle wraps conn with a write-side bandwidth limit.
func Throttle(conn net.Conn, bandwidthBps int64) (*ThrottledConn, error) {
	if bandwidthBps <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %d must be positive", bandwidthBps)
	}
	return &ThrottledConn{Conn: conn, bandwidth: bandwidthBps}, nil
}

// Write paces the payload: each chunk reserves its serialization time on
// a virtual clock and sleeps until its reservation matures.
func (t *ThrottledConn) Write(p []byte) (int, error) {
	const chunk = 4096
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > chunk {
			n = chunk
		}
		t.mu.Lock()
		now := time.Now()
		start := now
		if t.nextFree.After(start) {
			start = t.nextFree
		}
		ser := time.Duration(float64(n) / float64(t.bandwidth) * float64(time.Second))
		t.nextFree = start.Add(ser)
		wait := t.nextFree.Sub(now)
		t.mu.Unlock()
		if wait > 0 {
			time.Sleep(wait)
		}
		m, err := t.Conn.Write(p[written : written+n])
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
