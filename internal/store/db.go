package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mmconf/internal/blob"
)

// Options configure a DB.
type Options struct {
	// Sync selects the WAL durability mode. The zero value is SyncAlways.
	Sync SyncMode
	// GroupSize is the group-commit batch for SyncGroup (default 64).
	GroupSize int
	// Blob tunes the content-addressed blob store (chunk size, segment
	// size, background compaction threshold). Zero values select the
	// blob package defaults.
	Blob blob.Options
}

// DB is the database server's storage engine: a directory holding a
// snapshot, a write-ahead log, and a content-addressed blob store. Open
// replays the WAL over the snapshot, so a crash at any point loses at
// most the operations the sync mode had not yet flushed. Blob reference
// counts are derived state: every Open recomputes them from the
// surviving TBlob cells, so they self-heal after any crash.
type DB struct {
	mu    sync.RWMutex
	dir   string
	opts  Options
	wal   *wal
	blobs *blob.Store
	state map[string]*table
	// replaySkipped counts WAL records recovery could not apply and
	// skipped (poisoned legacy records, or records a checkpoint already
	// covers after a crash between snapshot rename and WAL truncation).
	replaySkipped int
	// blobMissing holds digests that some TBlob cell references but the
	// blob store does not hold. The WAL's pre-sync hook makes payloads
	// durable before the rows that reference them, so this is empty in
	// normal operation; it can still fill under SyncNever (rows durable
	// only by OS writeback) or torn segment writes. Reads of those
	// cells fail loudly; fsck reports them.
	blobMissing []blob.Digest
	// migratedBlobs counts payloads moved out of a pre-CAS heap.blob by
	// this Open.
	migratedBlobs int

	// relMu guards pendingRel: blob releases queued until the WAL
	// records that justify them (row deletes/updates) are fsynced.
	// Releasing earlier could free payload bytes whose delete is lost in
	// a crash; queued handles lost in a crash merely leak until the next
	// Open's refcount recompute reclaims them.
	relMu      sync.Mutex
	pendingRel []blob.Handle
}

const (
	snapshotFile = "snapshot.gob"
	walFile      = "wal.log"
	// legacyHeapFile is the first-generation offset-addressed heap. Open
	// migrates it into casDir and renames it away.
	legacyHeapFile = "heap.blob"
	casDir         = "cas"
)

// Open opens (or creates) a database in dir. If the directory holds a
// pre-CAS heap.blob, its payloads are migrated into the content-addressed
// store one-shot, the handles in every TBlob cell are rewritten, and the
// old heap is renamed to heap.blob.migrated.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	db := &DB{dir: dir, opts: opts, state: make(map[string]*table)}
	if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	skipped, err := replayWAL(filepath.Join(dir, walFile), db.apply)
	if err != nil {
		return nil, err
	}
	db.replaySkipped = skipped
	w, err := openWAL(filepath.Join(dir, walFile), opts.Sync, opts.GroupSize)
	if err != nil {
		return nil, err
	}
	db.wal = w
	bs, err := blob.Open(filepath.Join(dir, casDir), opts.Blob)
	if err != nil {
		w.close()
		return nil, err
	}
	db.blobs = bs
	w.onSync = db.drainBlobReleases
	// Blob payloads must never lag the rows that reference them: fsync
	// dirty blob segments before every WAL fsync, so a record carrying a
	// new handle only becomes durable after its payload bytes are.
	w.onBeforeSync = bs.Sync
	if err := db.migrateLegacyHeap(); err != nil {
		db.wal.close()
		db.blobs.Close()
		return nil, err
	}
	// Refcounts are not journaled: recompute them from the rows that
	// actually survived recovery. Orphans (payloads put by operations
	// whose rows never became durable) are freed here.
	db.blobMissing = db.blobs.ResetRefs(db.blobRefCountsLocked())
	return db, nil
}

// blobRefCountsLocked counts, per digest, how many TBlob cells reference
// each stored object. Caller holds db.mu (or is single-threaded in Open).
func (db *DB) blobRefCountsLocked() map[blob.Digest]int64 {
	counts := make(map[blob.Digest]int64)
	for _, tb := range db.state {
		for ci, col := range tb.schema {
			if col.Type != TBlob {
				continue
			}
			for _, vals := range tb.rows {
				if h := vals[ci].H; !h.IsZero() && !h.Legacy() {
					counts[h.Digest]++
				}
			}
		}
	}
	return counts
}

// drainBlobReleases performs the releases queued behind WAL durability.
// Called by the WAL after every successful fsync and by checkpoints.
func (db *DB) drainBlobReleases() {
	db.relMu.Lock()
	pending := db.pendingRel
	db.pendingRel = nil
	db.relMu.Unlock()
	for _, h := range pending {
		// ErrNotFound here means a concurrent recount already dropped
		// the object; nothing to unwind.
		_ = db.blobs.Release(h)
	}
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	if err := db.wal.flush(); err != nil {
		first = err
	}
	db.drainBlobReleases()
	if err := db.blobs.Sync(); err != nil && first == nil {
		first = err
	}
	if err := db.wal.close(); err != nil && first == nil {
		first = err
	}
	if err := db.blobs.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Flush forces pending group-committed WAL records and blob writes to disk.
func (db *DB) Flush() error {
	if err := db.blobs.Sync(); err != nil {
		return err
	}
	return db.wal.flush()
}

// tableLocked returns the internal table; the caller holds db.mu.
func (db *DB) tableLocked(name string) (*table, error) {
	tb, ok := db.state[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return tb, nil
}

// logAndApply validates rec against the current state, logs it, then
// applies it. Validation MUST come first: a record that cannot apply
// must never reach the WAL — it would be replayed at every future Open,
// and a hard replay failure would brick the database over one bad
// operation. Caller holds db.mu.
func (db *DB) logAndApply(rec walRecord) error {
	if err := db.validateLocked(rec); err != nil {
		return err
	}
	if err := db.wal.append(rec); err != nil {
		return err
	}
	return db.apply(rec)
}

// validateLocked checks that apply(rec) will succeed against the current
// state, mutating nothing. It mirrors apply's error paths exactly (plus
// a dry run of the index maintenance) so the WAL only ever holds
// records that fold cleanly. Caller holds db.mu.
func (db *DB) validateLocked(rec walRecord) error {
	switch rec.Op {
	case opCreateTable:
		if _, dup := db.state[rec.Table]; dup {
			return fmt.Errorf("store: table %q already exists", rec.Table)
		}
		_, err := newTable(rec.Table, rec.Schema)
		return err
	case opDropTable:
		_, err := db.tableLocked(rec.Table)
		return err
	}
	tb, err := db.tableLocked(rec.Table)
	if err != nil {
		return err
	}
	switch rec.Op {
	case opInsert:
		if _, dup := tb.rows[rec.ID]; dup {
			return fmt.Errorf("store: table %q: duplicate row id %d", rec.Table, rec.ID)
		}
		return tb.validateRow(rec.Vals)
	case opUpdate:
		if _, ok := tb.rows[rec.ID]; !ok {
			return fmt.Errorf("store: table %q: no row %d", rec.Table, rec.ID)
		}
		return tb.validateRow(rec.Vals)
	case opDelete:
		if _, ok := tb.rows[rec.ID]; !ok {
			return fmt.Errorf("store: table %q: no row %d", rec.Table, rec.ID)
		}
		return nil
	case opCreateIndex:
		return tb.validateIndex(rec.Col)
	default:
		return fmt.Errorf("store: unknown wal op %d", rec.Op)
	}
}

// apply folds one WAL record into the in-memory state. It must stay a
// pure function of (state, record) so recovery replays deterministically.
func (db *DB) apply(rec walRecord) error {
	switch rec.Op {
	case opCreateTable:
		if _, dup := db.state[rec.Table]; dup {
			return fmt.Errorf("store: table %q already exists", rec.Table)
		}
		tb, err := newTable(rec.Table, rec.Schema)
		if err != nil {
			return err
		}
		db.state[rec.Table] = tb
		return nil
	case opDropTable:
		if _, ok := db.state[rec.Table]; !ok {
			return fmt.Errorf("store: no table %q", rec.Table)
		}
		delete(db.state, rec.Table)
		return nil
	}
	tb, err := db.tableLocked(rec.Table)
	if err != nil {
		return err
	}
	switch rec.Op {
	case opInsert:
		return tb.insert(rec.ID, rec.Vals)
	case opUpdate:
		return tb.update(rec.ID, rec.Vals)
	case opDelete:
		return tb.delete(rec.ID)
	case opCreateIndex:
		return tb.createIndex(rec.Col)
	default:
		return fmt.Errorf("store: unknown wal op %d", rec.Op)
	}
}

// CreateTable creates a new relation.
func (db *DB) CreateTable(name string, schema []Column) (*Table, error) {
	if _, err := newTable(name, schema); err != nil {
		return nil, err // validate before logging
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.state[name]; dup {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	if err := db.logAndApply(walRecord{Op: opCreateTable, Table: name, Schema: schema}); err != nil {
		return nil, err
	}
	return &Table{db: db, name: name}, nil
}

// DropTable removes a relation and all its rows. Blob payloads referenced
// only by the dropped rows remain on disk until CompactBlobs (or the next
// Open) recomputes reference counts and reclaims them.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.state[name]; !ok {
		return fmt.Errorf("store: no table %q", name)
	}
	return db.logAndApply(walRecord{Op: opDropTable, Table: name})
}

// Table returns a handle to an existing relation.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.state[name]; !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return &Table{db: db, name: name}, nil
}

// HasTable reports whether the relation exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.state[name]
	return ok
}

// Tables lists the relation names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.state))
	for n := range db.state {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PutBlob stores a payload in the content-addressed store and returns
// its handle, to be kept in a TBlob column. Identical payloads share
// storage: a re-put only bumps the object's reference count. The chunk
// bytes are not fsynced here; the WAL's pre-sync hook syncs dirty blob
// segments before any record fsync, so the row that carries the handle
// cannot become durable ahead of the payload it references.
func (db *DB) PutBlob(data []byte) (blob.Handle, error) {
	return db.blobs.Put(data)
}

// GetBlob fetches a payload by handle. The zero handle returns
// blob.ErrNoBlob.
func (db *DB) GetBlob(h blob.Handle) ([]byte, error) {
	return db.blobs.Get(h)
}

// ReleaseBlob drops one reference to the payload behind h, called when a
// row that held the handle is deleted or overwritten. The space is not
// reclaimed before the WAL record of that delete is durable: until the
// next fsync the release sits in a queue, so a crash can only leak (the
// next Open recomputes refcounts from rows and reclaims), never free a
// payload whose delete got lost.
func (db *DB) ReleaseBlob(h blob.Handle) error {
	if h.IsZero() {
		return blob.ErrNoBlob
	}
	if db.wal.isClean() {
		return db.blobs.Release(h)
	}
	db.relMu.Lock()
	db.pendingRel = append(db.pendingRel, h)
	db.relMu.Unlock()
	return nil
}

// ContainsBlob reports whether the local store already holds the
// payload h names — the whole-object fast path of digest replication.
func (db *DB) ContainsBlob(h blob.Handle) bool {
	return db.blobs.Contains(h)
}

// BlobManifest returns the ordered chunk digest list of the stored
// payload behind h — the sender side of digest replication.
func (db *DB) BlobManifest(h blob.Handle) ([]blob.Digest, error) {
	return db.blobs.Manifest(h)
}

// MissingBlobChunks reports which of the given chunk digests the local
// store lacks — the receiver-side manifest diff of digest replication.
func (db *DB) MissingBlobChunks(chunks []blob.Digest) []blob.Digest {
	return db.blobs.MissingChunks(chunks)
}

// GetBlobChunk reads one stored chunk's payload by digest, for shipping
// to a replicating peer.
func (db *DB) GetBlobChunk(cd blob.Digest) ([]byte, error) {
	return db.blobs.GetChunk(cd)
}

// PutBlobFromChunks materializes a replicated payload from its manifest
// plus the transferred chunks (locally held chunks are shared, not
// rewritten). Durability follows PutBlob: the WAL pre-sync hook syncs
// blob segments before any row referencing the handle becomes durable.
func (db *DB) PutBlobFromChunks(d blob.Digest, length uint32, chunks []blob.Digest, data map[blob.Digest][]byte) (blob.Handle, error) {
	return db.blobs.PutFromChunks(d, length, chunks, data)
}

// BlobStats returns the blob store's counters and gauges (dedup hits,
// live/free bytes, compactions, ...) plus how many row-referenced digests
// are missing from the store.
func (db *DB) BlobStats() (blob.Stats, int) {
	db.mu.RLock()
	missing := len(db.blobMissing)
	db.mu.RUnlock()
	return db.blobs.Stats(), missing
}

// MigratedBlobs reports how many payloads this Open moved out of a
// pre-CAS heap.blob file. Zero unless the database predates the
// content-addressed store.
func (db *DB) MigratedBlobs() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.migratedBlobs
}

// WALStats reports cumulative WAL appends and fsyncs (for the E4 group-
// commit ablation).
func (db *DB) WALStats() (appends, syncs int64) {
	return db.wal.stats()
}

// ReplaySkipped reports how many WAL records the last Open skipped
// because they no longer applied (see replayWAL). Zero in normal
// operation.
func (db *DB) ReplaySkipped() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replaySkipped
}

// snapshot is the gob form of the full relational state.
type dbSnapshot struct {
	Tables []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Schema  []Column
	NextID  uint64
	IDs     []uint64
	Rows    [][]value
	Indexes []string
}

// Checkpoint writes the current state as a snapshot and truncates the WAL.
// The snapshot goes through a temp file and atomic rename, so a crash
// mid-checkpoint recovers from the previous snapshot plus the intact WAL.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	var snap dbSnapshot
	names := make([]string, 0, len(db.state))
	for n := range db.state {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tb := db.state[n]
		ts := tableSnapshot{Name: n, Schema: tb.schema, NextID: tb.nextID}
		ids := make([]uint64, 0, len(tb.rows))
		for id := range tb.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ts.IDs = append(ts.IDs, id)
			ts.Rows = append(ts.Rows, tb.rows[id])
		}
		for col := range tb.indexes {
			ts.Indexes = append(ts.Indexes, col)
		}
		sort.Strings(ts.Indexes)
		snap.Tables = append(snap.Tables, ts)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("store: snapshot encode: %w", err)
	}
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// The rename made the snapshot visible, but only in the in-memory
	// directory: fsync the directory before truncating the WAL, or a
	// power loss could forget the rename after the WAL is already gone —
	// losing every operation since the previous checkpoint.
	if err := syncDir(db.dir); err != nil {
		return err
	}
	// Flush (not just sync) the blob store: the index snapshot it writes
	// lets the next Open skip the segment recovery scan.
	if err := db.blobs.Flush(); err != nil {
		return err
	}
	// truncate fires the WAL's onSync hook: the snapshot now covers
	// every logged delete, so queued blob releases drain here too.
	return db.wal.truncate()
}

// syncDir fsyncs a directory, making recent renames in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// CompactBlobs reconciles blob reference counts against the TBlob cells
// and forces a full segment compaction, returning the file bytes
// reclaimed. Unlike the pre-CAS vacuum this never rewrites a handle —
// digests are stable across moves — so no checkpoint is required and a
// crash mid-compaction at worst leaves duplicate blocks the next Open's
// recovery scan dedups. Day-to-day reclamation does not need this call:
// deletes feed the free lists and the background compactor directly; it
// remains the hammer for recounting after bulk table drops.
func (db *DB) CompactBlobs() (reclaimed int64, err error) {
	db.mu.Lock()
	if err := db.wal.flush(); err != nil {
		db.mu.Unlock()
		return 0, err
	}
	db.drainBlobReleases()
	db.blobMissing = db.blobs.ResetRefs(db.blobRefCountsLocked())
	db.mu.Unlock()
	// The segment moves proceed without db.mu: readers keep reading
	// (digests never change), writers keep writing into other segments.
	return db.blobs.Compact()
}

// loadSnapshot restores state from the snapshot file, if present.
func (db *DB) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(db.dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var snap dbSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	for _, ts := range snap.Tables {
		tb, err := newTable(ts.Name, ts.Schema)
		if err != nil {
			return err
		}
		if len(ts.IDs) != len(ts.Rows) {
			return fmt.Errorf("store: snapshot table %q shape mismatch", ts.Name)
		}
		for i, id := range ts.IDs {
			if err := tb.insert(id, ts.Rows[i]); err != nil {
				return err
			}
		}
		tb.nextID = ts.NextID
		for _, col := range ts.Indexes {
			if err := tb.createIndex(col); err != nil {
				return err
			}
		}
		db.state[ts.Name] = tb
	}
	return nil
}
