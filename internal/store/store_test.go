package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mmconf/internal/blob"
)

func openTestDB(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

var imageSchema = []Column{
	{Name: "FLD_QUALITY", Type: TInt},
	{Name: "FLD_TEXTS", Type: TString},
	{Name: "FLD_CM", Type: TFloat},
	{Name: "FLD_META", Type: TBytes},
	{Name: "FLD_DATA", Type: TBlob},
}

func TestCreateTableAndCRUD(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	tbl, err := db.CreateTable("IMAGE_OBJECTS_TABLE", imageSchema)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	h, err := db.PutBlob([]byte("jpeg-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := tbl.Insert(Row{int64(90), "ct axial", 2.5, []byte{1, 2}, h})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	row, ok, err := tbl.Get(id)
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if row[0].(int64) != 90 || row[1].(string) != "ct axial" || row[2].(float64) != 2.5 {
		t.Errorf("row = %v", row)
	}
	data, err := db.GetBlob(row[4].(blob.Handle))
	if err != nil || string(data) != "jpeg-bytes" {
		t.Errorf("blob = %q, %v", data, err)
	}
	// Update.
	if err := tbl.Update(id, Row{int64(70), "ct axial lowq", 2.5, []byte{3}, h}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	row, _, _ = tbl.Get(id)
	if row[0].(int64) != 70 {
		t.Errorf("update not applied: %v", row)
	}
	// Delete.
	if err := tbl.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := tbl.Get(id); ok {
		t.Error("deleted row still present")
	}
	if err := tbl.Delete(id); err == nil {
		t.Error("double delete accepted")
	}
	if err := tbl.Update(id, Row{int64(1), "x", 0.0, nil, blob.Handle{}}); err == nil {
		t.Error("update of missing row accepted")
	}
	if n, _ := tbl.Len(); n != 0 {
		t.Errorf("Len = %d", n)
	}
}

func TestSchemaValidation(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	if _, err := db.CreateTable("", imageSchema); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "", Type: TInt}}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}); err == nil {
		t.Error("duplicate column accepted")
	}
	tbl, err := db.CreateTable("t", []Column{{Name: "a", Type: TInt}, {Name: "b", Type: TString}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", imageSchema); err == nil {
		t.Error("duplicate table accepted")
	}
	// Wrong arity and wrong types.
	if _, err := tbl.Insert(Row{int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := tbl.Insert(Row{"not-int", "s"}); err == nil {
		t.Error("mistyped int accepted")
	}
	if _, err := tbl.Insert(Row{int64(1), 42}); err == nil {
		t.Error("mistyped string accepted")
	}
}

func TestTableLookupOperations(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	tbl, err := db.CreateTable("objs", []Column{
		{Name: "kind", Type: TString},
		{Name: "size", Type: TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		kind := "image"
		if i%3 == 0 {
			kind = "audio"
		}
		if _, err := tbl.Insert(Row{kind, int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("kind"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if err := tbl.CreateIndex("kind"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := tbl.CreateIndex("nosuch"); err == nil {
		t.Error("index on unknown column accepted")
	}
	ids, err := tbl.LookupString("kind", "audio")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 7 { // i = 0,3,6,9,12,15,18
		t.Errorf("audio rows = %d, want 7", len(ids))
	}
	// Index maintenance across update and delete.
	if err := tbl.Update(ids[0], Row{"image", int64(999)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	ids2, _ := tbl.LookupString("kind", "audio")
	if len(ids2) != 5 {
		t.Errorf("audio rows after update+delete = %d, want 5", len(ids2))
	}
	if _, err := tbl.LookupString("size", "x"); err == nil {
		t.Error("lookup on unindexed column accepted")
	}
	// Int index.
	if err := tbl.CreateIndex("size"); err != nil {
		t.Fatal(err)
	}
	ids3, err := tbl.LookupInt("size", 999)
	if err != nil || len(ids3) != 1 {
		t.Errorf("LookupInt = %v, %v", ids3, err)
	}
}

func TestScan(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{int64(i * i)})
	}
	var got []uint64
	err := tbl.Scan(func(id uint64, row Row) bool {
		got = append(got, id)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan not in id order: %v", got)
		}
	}
	if len(got) != 10 {
		t.Errorf("scanned %d rows", len(got))
	}
	// Early stop.
	count := 0
	tbl.Scan(func(id uint64, row Row) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop at %d", count)
	}
}

func TestDropTable(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	if !db.HasTable("t") {
		t.Fatal("table missing")
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if db.HasTable("t") {
		t.Error("table survived drop")
	}
	if err := db.DropTable("t"); err == nil {
		t.Error("double drop accepted")
	}
	if _, err := db.Table("t"); err == nil {
		t.Error("handle to dropped table granted")
	}
}

func TestTablesListing(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	db.CreateTable("b", []Column{{Name: "v", Type: TInt}})
	db.CreateTable("a", []Column{{Name: "v", Type: TInt}})
	names := db.Tables()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Tables = %v", names)
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", []Column{{Name: "s", Type: TString}, {Name: "d", Type: TBlob}})
	h, _ := db.PutBlob([]byte("payload"))
	id, _ := tbl.Insert(Row{"alpha", h})
	tbl.Insert(Row{"beta", h})
	tbl.CreateIndex("s")
	db.blobs.Sync()
	// Simulate crash: no Close, no Checkpoint. Reopen from WAL alone.
	db.wal.close()
	db.blobs.Close()

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err := tbl2.Get(id)
	if err != nil || !ok || row[0].(string) != "alpha" {
		t.Fatalf("row after recovery: %v %v %v", row, ok, err)
	}
	data, err := db2.GetBlob(row[1].(blob.Handle))
	if err != nil || string(data) != "payload" {
		t.Errorf("blob after recovery: %q %v", data, err)
	}
	ids, err := tbl2.LookupString("s", "beta")
	if err != nil || len(ids) != 1 {
		t.Errorf("index after recovery: %v %v", ids, err)
	}
	// New ids keep ascending after recovery.
	id3, _ := tbl2.Insert(Row{"gamma", h})
	if id3 <= 2 {
		t.Errorf("id after recovery = %d", id3)
	}
}

func TestRecoveryFromSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	for i := 0; i < 5; i++ {
		tbl.Insert(Row{int64(i)})
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint mutations land in the fresh WAL.
	tbl.Insert(Row{int64(100)})
	tbl.Delete(1)
	db.wal.close()
	db.blobs.Close()

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	n, _ := tbl2.Len()
	if n != 5 { // 5 inserted, 1 more, 1 deleted
		t.Errorf("rows after snapshot+wal recovery = %d, want 5", n)
	}
	if _, ok, _ := tbl2.Get(1); ok {
		t.Error("deleted row resurrected")
	}
	if row, ok, _ := tbl2.Get(6); !ok || row[0].(int64) != 100 {
		t.Errorf("post-checkpoint insert lost: %v %v", row, ok)
	}
}

func TestTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	tbl.Insert(Row{int64(7)})
	db.wal.close()
	db.blobs.Close()
	// Append garbage to the WAL simulating a torn write.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2, 3, 4, 42})
	f.Close()

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	if n, _ := tbl2.Len(); n != 1 {
		t.Errorf("rows = %d, want 1", n)
	}
	// The torn tail must have been truncated so new appends are readable.
	tbl2.Insert(Row{int64(8)})
	db2.wal.close()
	db2.blobs.Close()
	db3, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	tbl3, _ := db3.Table("t")
	if n, _ := tbl3.Len(); n != 2 {
		t.Errorf("rows after second recovery = %d, want 2", n)
	}
}

func TestGroupCommitStats(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncGroup, GroupSize: 10})
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	for i := 0; i < 25; i++ {
		tbl.Insert(Row{int64(i)})
	}
	appends, syncs := db.WALStats()
	if appends != 26 { // create + 25 inserts
		t.Errorf("appends = %d", appends)
	}
	if syncs < 2 || syncs > 3 {
		t.Errorf("group syncs = %d, want 2-3 for 26 appends at group size 10", syncs)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	_, syncs2 := db.WALStats()
	if syncs2 != syncs+1 {
		t.Errorf("flush did not sync: %d -> %d", syncs, syncs2)
	}
}

func TestSyncModesDurability(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncGroup, SyncNever} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir, Options{Sync: mode, GroupSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
			tbl.Insert(Row{int64(1)})
			if err := db.Close(); err != nil { // clean close flushes in every mode
				t.Fatal(err)
			}
			db2, err := Open(dir, Options{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			tbl2, err := db2.Table("t")
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := tbl2.Len(); n != 1 {
				t.Errorf("rows = %d", n)
			}
		})
	}
}

func TestBytesRowsAreCopied(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	tbl, _ := db.CreateTable("t", []Column{{Name: "b", Type: TBytes}})
	src := []byte{1, 2, 3}
	id, _ := tbl.Insert(Row{src})
	src[0] = 99 // caller mutation must not reach the stored row
	row, _, _ := tbl.Get(id)
	got := row[0].([]byte)
	if got[0] != 1 {
		t.Error("stored bytes alias the caller's slice")
	}
	got[1] = 98 // reader mutation must not reach the stored row
	row2, _, _ := tbl.Get(id)
	if row2[0].([]byte)[1] != 2 {
		t.Error("returned bytes alias the stored row")
	}
}

func TestConcurrentInserts(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	const workers = 8
	const per = 100
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if _, err := tbl.Insert(Row{int64(w*1000 + i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := tbl.Len(); n != workers*per {
		t.Errorf("rows = %d, want %d", n, workers*per)
	}
	// Ids must be unique and dense.
	seen := make(map[uint64]bool)
	tbl.Scan(func(id uint64, row Row) bool {
		if seen[id] {
			t.Errorf("duplicate id %d", id)
		}
		seen[id] = true
		return true
	})
}

func TestBlobRoundTripThroughTable(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncNever})
	tbl, _ := db.CreateTable("t", []Column{{Name: "d", Type: TBlob}})
	payload := bytes.Repeat([]byte{0xC7}, 100_000)
	h, err := db.PutBlob(payload)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := tbl.Insert(Row{h})
	row, _, _ := tbl.Get(id)
	got, err := db.GetBlob(row[0].(blob.Handle))
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("blob round trip failed: %d bytes, %v", len(got), err)
	}
}

func TestCompactBlobsReclaimsGarbage(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", []Column{{Name: "d", Type: TBlob}})
	// Distinct payloads: identical ones would dedup to a single object
	// and leave nothing to reclaim (see TestCompactBlobsDedup).
	mkPayload := func(i int) []byte {
		p := bytes.Repeat([]byte{byte(i)}, 10_000)
		p[0] = byte(i >> 8)
		return p
	}
	var keepIDs []uint64
	for i := 0; i < 20; i++ {
		h, err := db.PutBlob(mkPayload(i))
		if err != nil {
			t.Fatal(err)
		}
		id, err := tbl.Insert(Row{h})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			keepIDs = append(keepIDs, id)
		} else if err := tbl.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	// Rows were deleted through the raw table API (no ReleaseBlob), so
	// the payloads linger until CompactBlobs recounts references from
	// the surviving rows and drains the sparse segments.
	reclaimed, err := db.CompactBlobs()
	if err != nil {
		t.Fatalf("CompactBlobs: %v", err)
	}
	if reclaimed < 10*10_000 {
		t.Errorf("reclaimed %d bytes, want ≥ 100000", reclaimed)
	}
	// Survivors read back intact — handles are digests, stable across
	// compaction.
	for i, id := range keepIDs {
		row, ok, err := tbl.Get(id)
		if err != nil || !ok {
			t.Fatalf("row %d: %v %v", id, ok, err)
		}
		data, err := db.GetBlob(row[0].(blob.Handle))
		if err != nil || !bytes.Equal(data, mkPayload(2*i)) {
			t.Fatalf("blob of row %d corrupted: %v", id, err)
		}
	}
	// State survives a reopen.
	db.Close()
	db2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	for i, id := range keepIDs {
		row, ok, err := tbl2.Get(id)
		if err != nil || !ok {
			t.Fatalf("row %d after reopen: %v %v", id, ok, err)
		}
		data, err := db2.GetBlob(row[0].(blob.Handle))
		if err != nil || !bytes.Equal(data, mkPayload(2*i)) {
			t.Fatalf("blob of row %d after reopen: %v", id, err)
		}
	}
	// New writes still work.
	h, err := db2.PutBlob([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := db2.GetBlob(h); err != nil || string(got) != "fresh" {
		t.Fatalf("post-compaction put: %q %v", got, err)
	}
}
