package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// opKind enumerates the logical operations the write-ahead log records.
type opKind uint8

const (
	opCreateTable opKind = iota
	opInsert
	opUpdate
	opDelete
	opCreateIndex
	opDropTable
)

// walRecord is one logged operation. Every mutation of the relational
// state is expressed as exactly one record, so replay is a pure fold.
type walRecord struct {
	Op     opKind
	Table  string
	Schema []Column // opCreateTable
	ID     uint64   // opInsert (assigned id), opUpdate, opDelete
	Vals   []value  // opInsert, opUpdate
	Col    string   // opCreateIndex
}

// SyncMode controls when the WAL is flushed to stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs after every record — maximal durability,
	// one fsync per operation.
	SyncAlways SyncMode = iota
	// SyncGroup batches records and fsyncs when the batch reaches
	// GroupSize records or an explicit Flush — the group-commit mode the
	// E4 ablation measures.
	SyncGroup
	// SyncNever leaves flushing to the OS — fastest, durable only up to
	// the last checkpoint. Appropriate for caches and test fixtures.
	SyncNever
)

// wal is an append-only log of walRecords with CRC framing:
//
//	length uint32 | crc uint32 | gob(walRecord)
type wal struct {
	mu        sync.Mutex
	f         *os.File
	mode      SyncMode
	groupSize int
	pending   int  // records since last fsync (SyncGroup)
	dirty     bool // bytes written since the last fsync (any mode)
	appends   int64
	syncs     int64
	// onSync, if set, runs after every successful fsync (and after
	// truncate), while the log is clean. The store layer uses it to
	// drain blob releases that were waiting on record durability. It
	// must not call back into the wal.
	onSync func()
	// onBeforeSync, if set, runs immediately before every fsync; an
	// error aborts the sync (and the append that triggered it). The
	// store layer uses it to fsync dirty blob segments first, so a
	// record referencing a blob handle can never become durable ahead
	// of the payload bytes it points at. Must not call back into the
	// wal.
	onBeforeSync func() error
}

const defaultGroupSize = 64

func openWAL(path string, mode SyncMode, groupSize int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal %s: %w", path, err)
	}
	if groupSize <= 0 {
		groupSize = defaultGroupSize
	}
	return &wal{f: f, mode: mode, groupSize: groupSize}, nil
}

// append logs one record, honoring the sync mode.
func (w *wal) append(rec walRecord) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return fmt.Errorf("store: wal encode: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(body.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body.Bytes()))

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if _, err := w.f.Write(body.Bytes()); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	w.appends++
	w.dirty = true
	switch w.mode {
	case SyncAlways:
		if err := w.syncLocked(); err != nil {
			return err
		}
		w.notifySynced()
	case SyncGroup:
		w.pending++
		if w.pending >= w.groupSize {
			w.pending = 0
			if err := w.syncLocked(); err != nil {
				return err
			}
			w.notifySynced()
		}
	}
	return nil
}

// syncLocked runs the pre-sync hook, then fsyncs the log. Caller holds
// w.mu with dirty bytes pending. On a hook failure the fsync does not
// happen (and is not counted): the records stay pending, exactly as
// un-durable as the blob bytes the hook failed to write.
func (w *wal) syncLocked() error {
	if w.onBeforeSync != nil {
		if err := w.onBeforeSync(); err != nil {
			return fmt.Errorf("store: wal pre-sync: %w", err)
		}
	}
	w.syncs++
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	w.dirty = false
	return nil
}

// notifySynced fires the onSync hook. Caller holds w.mu with dirty false.
func (w *wal) notifySynced() {
	if w.onSync != nil {
		w.onSync()
	}
}

// isClean reports whether every appended record has been fsynced.
func (w *wal) isClean() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dirty
}

// flush forces any pending records to disk. With nothing written since
// the last fsync it is free — no syscall, no syncs increment — so the
// WALStats the E4 ablation reads count only real flushes.
func (w *wal) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.dirty {
		return nil
	}
	w.pending = 0
	if err := w.syncLocked(); err != nil {
		return err
	}
	w.notifySynced()
	return nil
}

// truncate resets the log after a checkpoint.
func (w *wal) truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal seek: %w", err)
	}
	w.pending = 0
	w.dirty = false
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.notifySynced()
	return nil
}

func (w *wal) close() error {
	return w.f.Close()
}

// stats returns cumulative append and fsync counters.
func (w *wal) stats() (appends, syncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

// replayWAL folds every intact record of the log at path into apply,
// stopping silently at the first torn or corrupt record (the tail written
// during a crash) and truncating it away. A record that fails to apply
// is skipped, not fatal: it is either a poisoned record from before
// validation-first logging, or a record the snapshot already contains
// (crash between checkpoint rename and WAL truncation) — refusing it
// would brick every future Open over state that is otherwise sound.
// skipped reports how many records were passed over.
func replayWAL(path string, apply func(walRecord) error) (skipped int, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	var off int64
	var hdr [8]byte
	for {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break // clean EOF or short header — stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		body := make([]byte, length)
		if _, err := f.ReadAt(body, off+8); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != want {
			break
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			break
		}
		if err := apply(rec); err != nil {
			skipped++
		}
		off += 8 + int64(length)
	}
	if info, err := f.Stat(); err == nil && info.Size() > off {
		if err := f.Truncate(off); err != nil {
			return skipped, fmt.Errorf("store: wal truncate torn tail: %w", err)
		}
	}
	return skipped, nil
}
