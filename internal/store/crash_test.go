package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// appendRawRecord writes one CRC-framed walRecord straight to the log
// file, bypassing every validation layer — simulating a WAL produced by
// the pre-validation code, where a record that cannot apply could be
// made durable.
func appendRawRecord(t *testing.T, dir string, rec walRecord) {
	t.Helper()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(body.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body.Bytes()))
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(body.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestFailedApplyNeverReachesWAL is the regression test for the
// log-then-apply ordering bug: an operation that cannot apply must be
// rejected before it is appended, so the WAL never holds a record that
// would fail at every future replay.
func TestFailedApplyNeverReachesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{int64(1)}); err != nil {
		t.Fatal(err)
	}
	appendsBefore, _ := db.WALStats()

	// Drive doomed records through the same path Table/DB mutations use.
	// Each must fail validation and leave the WAL untouched.
	db.mu.Lock()
	doomed := []walRecord{
		{Op: opInsert, Table: "t", ID: 1, Vals: []value{{Kind: TInt, I: 9}}},       // duplicate row id
		{Op: opInsert, Table: "missing", ID: 1},                                    // no such table
		{Op: opUpdate, Table: "t", ID: 99, Vals: []value{{Kind: TInt}}},            // no such row
		{Op: opDelete, Table: "t", ID: 99},                                         // no such row
		{Op: opCreateTable, Table: "t", Schema: []Column{{Name: "v", Type: TInt}}}, // duplicate table
		{Op: opCreateIndex, Table: "t", Col: "nope"},                               // no such column
	}
	for _, rec := range doomed {
		if err := db.logAndApply(rec); err == nil {
			db.mu.Unlock()
			t.Fatalf("doomed record %+v applied cleanly", rec)
		}
	}
	db.mu.Unlock()

	appendsAfter, _ := db.WALStats()
	if appendsAfter != appendsBefore {
		t.Fatalf("failed operations reached the WAL: appends %d -> %d", appendsBefore, appendsAfter)
	}

	// Simulate a crash (no clean Close flush path) and reopen: the log
	// must replay in full with nothing skipped.
	db.wal.close()
	db.blobs.Close()
	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if n := db2.ReplaySkipped(); n != 0 {
		t.Errorf("replay skipped %d records, want 0", n)
	}
	tbl2, _ := db2.Table("t")
	if n, _ := tbl2.Len(); n != 1 {
		t.Errorf("rows after recovery = %d, want 1", n)
	}
}

// TestPoisonedWALRecordSkippedOnOpen plants a durable record that cannot
// apply — the artifact the old append-before-validate ordering could
// leave behind — and checks Open survives it: the poisoned record is
// skipped (and reported), while records after it still replay.
func TestPoisonedWALRecordSkippedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	if _, err := tbl.Insert(Row{int64(7)}); err != nil {
		t.Fatal(err)
	}
	db.wal.close()
	db.blobs.Close()

	// A poisoned record (insert clashing with row id 1) followed by a
	// perfectly good one.
	appendRawRecord(t, dir, walRecord{Op: opInsert, Table: "t", ID: 1, Vals: []value{{Kind: TInt, I: 666}}})
	appendRawRecord(t, dir, walRecord{Op: opInsert, Table: "t", ID: 2, Vals: []value{{Kind: TInt, I: 8}}})

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen over poisoned record bricked the database: %v", err)
	}
	defer db2.Close()
	if n := db2.ReplaySkipped(); n != 1 {
		t.Errorf("ReplaySkipped = %d, want 1", n)
	}
	tbl2, _ := db2.Table("t")
	if row, ok, _ := tbl2.Get(1); !ok || row[0].(int64) != 7 {
		t.Errorf("row 1 = %v %v, want original value 7 preserved", row, ok)
	}
	if row, ok, _ := tbl2.Get(2); !ok || row[0].(int64) != 8 {
		t.Errorf("record after the poisoned one was not replayed: %v %v", row, ok)
	}
}

// TestCheckpointCrashBeforeTruncate simulates a crash in the window
// between the snapshot rename and the WAL truncation: the reopened
// database sees the new snapshot plus a WAL full of already-applied
// records. Those duplicates must be skipped benignly, not brick Open.
func TestCheckpointCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	for i := 0; i < 5; i++ {
		if _, err := tbl.Insert(Row{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Save the pre-checkpoint WAL, checkpoint (snapshot + truncate), then
	// put the old WAL back — the on-disk state a crash between rename and
	// truncate leaves behind.
	walPath := filepath.Join(dir, walFile)
	saved, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.wal.close()
	db.blobs.Close()
	if err := os.WriteFile(walPath, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen after checkpoint-crash window: %v", err)
	}
	defer db2.Close()
	// createTable + 5 inserts are all in the snapshot already: every
	// replayed record is a duplicate and must be skipped.
	if n := db2.ReplaySkipped(); n != 6 {
		t.Errorf("ReplaySkipped = %d, want 6 (all records already in snapshot)", n)
	}
	tbl2, _ := db2.Table("t")
	if n, _ := tbl2.Len(); n != 5 {
		t.Errorf("rows = %d, want 5 (no duplicates, no losses)", n)
	}
	// The database must still be writable and durable after recovery.
	if _, err := tbl2.Insert(Row{int64(99)}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	db2.wal.close()
	db2.blobs.Close()
	db3, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	tbl3, _ := db3.Table("t")
	if n, _ := tbl3.Len(); n != 6 {
		t.Errorf("rows after second recovery = %d, want 6", n)
	}
}

// TestBlobSyncedBeforeWALSync checks the durability ordering for media
// writes: every WAL fsync must run the blob pre-sync hook first, so a
// record carrying a blob handle can never become durable ahead of its
// payload bytes (a power loss would otherwise yield a durable row whose
// payload is gone). A failing pre-sync must abort the commit, not let
// the WAL fsync proceed.
func TestBlobSyncedBeforeWALSync(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncAlways})
	if db.wal.onBeforeSync == nil {
		t.Fatal("WAL pre-sync hook not wired to the blob store")
	}
	inner := db.wal.onBeforeSync
	var hookCalls int
	db.wal.onBeforeSync = func() error { hookCalls++; return inner() }
	tbl, err := db.CreateTable("t", imageSchema)
	if err != nil {
		t.Fatal(err)
	}
	h, err := db.PutBlob([]byte("payload the row will reference"))
	if err != nil {
		t.Fatal(err)
	}
	before := hookCalls
	if _, err := tbl.Insert(Row{int64(1), "x", 1.0, []byte{1}, h}); err != nil {
		t.Fatal(err)
	}
	if hookCalls <= before {
		t.Error("WAL fsync ran without the blob pre-sync hook")
	}

	// A pre-sync failure must fail the append and skip the fsync.
	_, syncsBefore := db.WALStats()
	db.wal.onBeforeSync = func() error { return os.ErrClosed }
	if _, err := tbl.Insert(Row{int64(2), "y", 1.0, []byte{2}, h}); err == nil {
		t.Error("append committed despite a failing blob pre-sync")
	}
	if _, syncsAfter := db.WALStats(); syncsAfter != syncsBefore {
		t.Errorf("WAL fsync ran despite pre-sync failure (syncs %d -> %d)", syncsBefore, syncsAfter)
	}
	db.wal.onBeforeSync = inner
}

// TestNoopFlushIsFree is the regression test for the phantom-fsync bug:
// Flush with nothing pending must not touch the disk or inflate the sync
// counter the E4 ablation reports.
func TestNoopFlushIsFree(t *testing.T) {
	db, _ := openTestDB(t, Options{Sync: SyncGroup, GroupSize: 4})
	tbl, _ := db.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	if _, err := tbl.Insert(Row{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil { // real flush: two records pending
		t.Fatal(err)
	}
	_, syncs := db.WALStats()
	for i := 0; i < 10; i++ {
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if _, after := db.WALStats(); after != syncs {
		t.Errorf("10 no-op flushes moved syncs %d -> %d, want unchanged", syncs, after)
	}
	// SyncAlways leaves nothing pending after every append: flush must
	// stay free there too.
	db2, _ := openTestDB(t, Options{Sync: SyncAlways})
	tbl2, _ := db2.CreateTable("t", []Column{{Name: "v", Type: TInt}})
	tbl2.Insert(Row{int64(1)})
	_, syncs2 := db2.WALStats()
	if err := db2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, after := db2.WALStats(); after != syncs2 {
		t.Errorf("no-op flush under SyncAlways moved syncs %d -> %d", syncs2, after)
	}
}
