package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mmconf/internal/blob"
)

// migrateLegacyHeap moves every payload out of a pre-CAS heap.blob into
// the content-addressed store, rewriting the legacy offset handles held
// in TBlob cells, checkpointing the rewritten state, and renaming the
// heap to heap.blob.migrated. It is a no-op when no legacy heap exists.
// Called once from Open, before refcounts are recomputed; identical
// payloads stored N times in the heap collapse to one object with N
// references.
func (db *DB) migrateLegacyHeap() error {
	heapPath := filepath.Join(db.dir, legacyHeapFile)
	lh, err := blob.OpenLegacyHeap(heapPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open legacy heap: %w", err)
	}
	defer lh.Close()

	for name, tb := range db.state {
		for ci, col := range tb.schema {
			if col.Type != TBlob {
				continue
			}
			for id, vals := range tb.rows {
				h := vals[ci].H
				if !h.Legacy() {
					continue
				}
				data, err := lh.Get(h)
				if err != nil {
					return fmt.Errorf("store: migrate table %q row %d: %w", name, id, err)
				}
				nh, err := db.blobs.Put(data)
				if err != nil {
					return fmt.Errorf("store: migrate table %q row %d: %w", name, id, err)
				}
				vals[ci].H = nh
				db.migratedBlobs++
			}
		}
	}
	// Persist the rewritten handles before retiring the heap: the
	// checkpoint's snapshot is the only durable record of the new
	// digests. A crash before the rename replays the migration from the
	// still-present heap (Puts dedup to no-ops).
	if err := db.checkpointLocked(); err != nil {
		return fmt.Errorf("store: migrate checkpoint: %w", err)
	}
	if err := os.Rename(heapPath, heapPath+".migrated"); err != nil {
		return fmt.Errorf("store: retire legacy heap: %w", err)
	}
	return syncDir(db.dir)
}

// FsckReport is the result of a blob-store consistency check.
type FsckReport struct {
	// Objects is the number of distinct blob objects in the store;
	// Referenced is how many TBlob cells point at them.
	Objects    int
	Referenced int
	// BytesChecked is the payload bytes read and digest-verified.
	BytesChecked int64
	// Missing lists digests referenced by rows but absent from the
	// store; Corrupt lists objects present but failing their checksum;
	// Orphans counts stored objects no row references (normally zero —
	// Open reconciles them away).
	Missing []blob.Digest
	Corrupt []blob.Digest
	Orphans int
	// RefMismatches counts objects whose stored reference count differs
	// from the number of cells referencing them.
	RefMismatches int
}

// Clean reports whether the store passed every check.
func (r FsckReport) Clean() bool {
	return len(r.Missing) == 0 && len(r.Corrupt) == 0 && r.Orphans == 0 && r.RefMismatches == 0
}

// FsckBlobs verifies the blob store against the relational state: every
// TBlob cell resolves to an object whose payload reads back checksum-
// clean, every stored object is referenced, and reference counts match
// the cells. Reads happen under the database read lock; a quiescent
// database is not required but writes will block for the duration.
func (db *DB) FsckBlobs() (FsckReport, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var rep FsckReport
	counts := db.blobRefCountsLocked()
	stored := db.blobs.Objects()
	rep.Objects = len(stored)

	checked := make(map[blob.Digest]bool)
	for d, want := range counts {
		rep.Referenced += int(want)
		have, ok := stored[d]
		if !ok {
			rep.Missing = append(rep.Missing, d)
			continue
		}
		if have != want {
			rep.RefMismatches++
		}
		if checked[d] {
			continue
		}
		checked[d] = true
	}
	// Verify payloads once per distinct digest, via the cells that
	// reference them (the handle carries the expected length).
	verified := make(map[blob.Digest]bool)
	for _, tb := range db.state {
		for ci, col := range tb.schema {
			if col.Type != TBlob {
				continue
			}
			for _, vals := range tb.rows {
				h := vals[ci].H
				if h.IsZero() || h.Legacy() || verified[h.Digest] {
					continue
				}
				verified[h.Digest] = true
				data, err := db.blobs.Get(h)
				if err != nil {
					if !errors.Is(err, blob.ErrNotFound) {
						rep.Corrupt = append(rep.Corrupt, h.Digest)
					}
					continue // missing already recorded above
				}
				rep.BytesChecked += int64(len(data))
			}
		}
	}
	for d := range stored {
		if counts[d] == 0 {
			rep.Orphans++
		}
	}
	return rep, nil
}
